//! Hermetic stand-in for the `serde` facade crate.
//!
//! The build environment for this workspace has no crates.io access, so
//! this stub keeps the source-level serde surface the workspace actually
//! uses — `use serde::{Serialize, Deserialize}` plus the two derives —
//! compiling without pulling in the real dependency graph. The traits
//! are markers with blanket implementations and the derives expand to
//! nothing; any code that needs real serialization should use
//! `ic_obs::json` (hand-rolled, deterministic) instead.
//!
//! To restore the real serde, point `[workspace.dependencies] serde`
//! back at crates.io; no source changes are required.

/// Marker for types that declare themselves serializable.
///
/// Blanket-implemented for every type so `#[derive(Serialize)]` and
/// `T: Serialize` bounds stay satisfied under the stub.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types that declare themselves deserializable.
///
/// Mirrors the real trait's lifetime arity so `Deserialize<'de>` bounds
/// would also compile.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned-data variant, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize)]
    struct Probe {
        _x: u32,
    }

    fn assert_serialize<T: super::Serialize>() {}

    #[test]
    fn derive_and_bounds_compile() {
        assert_serialize::<Probe>();
        assert_serialize::<Vec<f64>>();
    }
}
