//! No-op `Serialize`/`Deserialize` derives for the offline serde stub.
//!
//! The stub `serde` crate blanket-implements its marker traits, so the
//! derives have nothing to generate — they only need to exist so that
//! `#[derive(Serialize, Deserialize)]` attributes across the workspace
//! keep parsing. `#[serde(...)]` helper attributes are accepted and
//! ignored.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
