//! Cross-validation of the two queueing substrates: the analytic
//! M/G/k approximations (used by Figure 12) against the discrete-event
//! client-server simulation (used by the auto-scaler experiments).
//! Where both can express the same system, they must agree.

use immersion_cloud::sim::stats::Tally;
use immersion_cloud::sim::SimTime;
use immersion_cloud::workloads::mgk::ClientServerSim;
use immersion_cloud::workloads::queueing::MgkQueue;

/// Runs the DES as a plain M/G/k queue (one VM with k vcores) and
/// returns (mean sojourn, p95 sojourn).
fn simulate(k: u32, lambda: f64, service_mean: f64, scv: f64, seed: u64) -> (f64, f64) {
    let mut sim = ClientServerSim::new(seed, service_mean, scv, k, 0.0);
    sim.add_vm();
    sim.set_qps(lambda);
    // Warm up, then measure.
    sim.advance_to(SimTime::from_secs(60));
    sim.take_completions();
    sim.advance_to(SimTime::from_secs(60 + 600));
    let mut tally: Tally = sim.take_completions().into_iter().map(|(_, l)| l).collect();
    (tally.mean(), tally.percentile(0.95))
}

#[test]
fn mean_sojourn_matches_analytic_at_moderate_load() {
    for (k, lambda) in [(4u32, 900.0f64), (8, 1800.0), (16, 3600.0)] {
        let service = 0.0028;
        let scv = 1.5;
        let analytic = MgkQueue::new(k, lambda, service, scv).mean_sojourn();
        let (sim_mean, _) = simulate(k, lambda, service, scv, 42);
        let err = (sim_mean - analytic).abs() / analytic;
        // Allen–Cunneen is an approximation; 10 % agreement at ρ = 0.63
        // validates both sides.
        assert!(
            err < 0.10,
            "k={k} λ={lambda}: sim {sim_mean:.5} vs analytic {analytic:.5} ({:.1}% off)",
            err * 100.0
        );
    }
}

#[test]
fn p95_sojourn_matches_analytic_within_tail_tolerance() {
    let (k, lambda, service, scv) = (8u32, 2000.0, 0.0028, 1.5);
    let analytic = MgkQueue::new(k, lambda, service, scv).sojourn_quantile(0.95);
    let (_, sim_p95) = simulate(k, lambda, service, scv, 7);
    let err = (sim_p95 - analytic).abs() / analytic;
    assert!(
        err < 0.20,
        "sim P95 {sim_p95:.5} vs analytic {analytic:.5} ({:.1}% off)",
        err * 100.0
    );
}

#[test]
fn exponential_service_matches_mm_k_theory() {
    // SCV = 1 reduces Allen–Cunneen to exact M/M/k; the DES must agree
    // tightly.
    let (k, lambda, service) = (4u32, 1000.0, 0.0028);
    let analytic = MgkQueue::new(k, lambda, service, 1.0).mean_sojourn();
    let (sim_mean, _) = simulate(k, lambda, service, 1.0, 11);
    let err = (sim_mean - analytic).abs() / analytic;
    assert!(err < 0.08, "sim {sim_mean:.5} vs exact {analytic:.5}");
}

#[test]
fn both_substrates_agree_on_the_overclocking_benefit() {
    // Speeding service by 1.206× must shrink the P95 by a similar factor
    // in both worlds.
    let (k, lambda, service, scv) = (8u32, 2200.0, 0.0028, 1.5);
    let ratio = 4.1 / 3.4;

    let analytic_base = MgkQueue::new(k, lambda, service, scv).sojourn_quantile(0.95);
    let analytic_oc = MgkQueue::new(k, lambda, service / ratio, scv).sojourn_quantile(0.95);

    let (_, sim_base) = simulate(k, lambda, service, scv, 13);
    let mut sim_oc_run = ClientServerSim::new(13, service, scv, k, 0.0);
    let vm = sim_oc_run.add_vm();
    sim_oc_run.set_freq_ratio(vm, ratio);
    sim_oc_run.set_qps(lambda);
    sim_oc_run.advance_to(SimTime::from_secs(60));
    sim_oc_run.take_completions();
    sim_oc_run.advance_to(SimTime::from_secs(660));
    let mut tally: Tally = sim_oc_run
        .take_completions()
        .into_iter()
        .map(|(_, l)| l)
        .collect();
    let sim_oc = tally.percentile(0.95);

    let analytic_gain = 1.0 - analytic_oc / analytic_base;
    let sim_gain = 1.0 - sim_oc / sim_base;
    assert!(
        (analytic_gain - sim_gain).abs() < 0.08,
        "analytic gain {analytic_gain:.3} vs sim gain {sim_gain:.3}"
    );
    assert!(sim_gain > 0.10, "overclocking should visibly cut the tail");
}
