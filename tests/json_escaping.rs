//! Cross-crate JSON contract: every string `ic-obs`'s hand-rolled
//! writer emits must round-trip through `ic-scenario`'s hand-rolled
//! parser. The two codecs are written independently (the writer is
//! allocation-averse, the parser is diagnostic-happy), so this is the
//! place where their corner cases — C0 controls, DEL, astral-plane
//! unicode — are forced to agree.

use immersion_cloud::obs::json::{write_escaped, write_fields, Value};
use immersion_cloud::scenario::json::{self, Json};

fn roundtrip(s: &str) -> String {
    let mut encoded = String::new();
    write_escaped(s, &mut encoded);
    match json::parse(&encoded) {
        Ok(Json::Str(decoded)) => decoded,
        other => panic!("{encoded:?} did not parse back to a string: {other:?}"),
    }
}

#[test]
fn every_c0_control_and_del_round_trips() {
    for code in (0u32..0x20).chain([0x7f]) {
        let ch = char::from_u32(code).expect("valid control char");
        let s = format!("a{ch}b");
        assert_eq!(roundtrip(&s), s, "U+{code:04X} failed to round-trip");
    }
}

#[test]
fn bmp_and_astral_plane_unicode_round_trips() {
    for s in [
        "🦀 ferris",
        "math \u{1d4b3} italic",
        "max \u{10FFFF} scalar",
        "中文字段",
        "c1 range \u{80}\u{9f} stays raw",
        "mixed \t tab \u{7f} del 🦀 crab \"quoted\" back\\slash",
    ] {
        assert_eq!(roundtrip(s), s);
    }
}

#[test]
fn field_maps_with_hostile_keys_and_values_parse_as_objects() {
    let fields = vec![
        ("plain", Value::U64(7)),
        ("ratio", Value::F64(0.125)),
        ("flag", Value::Bool(true)),
        ("nasty\nstring", Value::str("line1\nline2\u{7f}🦀")),
    ];
    let mut out = String::from("{");
    write_fields(&fields, &mut out);
    out.push('}');
    let doc = json::parse(&out).expect("field map parses");
    assert_eq!(doc.get("plain"), Some(&Json::Num(7.0)));
    assert_eq!(doc.get("ratio"), Some(&Json::Num(0.125)));
    assert_eq!(doc.get("flag"), Some(&Json::Bool(true)));
    assert_eq!(
        doc.get("nasty\nstring"),
        Some(&Json::Str("line1\nline2\u{7f}🦀".to_string()))
    );
}

#[test]
fn value_to_json_round_trips_numbers_exactly() {
    for v in [0.0, -1.5, 1e-9, 12345678.25, f64::MAX] {
        let encoded = Value::F64(v).to_json();
        match json::parse(&encoded) {
            Ok(Json::Num(parsed)) => assert_eq!(parsed, v, "{encoded}"),
            other => panic!("{encoded:?} parsed as {other:?}"),
        }
    }
}
