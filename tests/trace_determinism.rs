//! Trace determinism: two same-seed runs must emit byte-identical
//! structured output.
//!
//! Trace events are keyed by simulation time plus a recorder-assigned
//! sequence number — never wall-clock — so the JSONL and CSV encodings
//! of a seeded run are reproducible down to the byte. Wall-clock only
//! ever appears in metric histograms (`ic-obs`'s `EngineMetrics` times
//! handlers itself via `EngineObserver::on_event_start`), which these
//! tests deliberately avoid asserting on.

use immersion_cloud::autoscale::policy::Policy;
use immersion_cloud::autoscale::runner::{ramp_schedule, Runner, RunnerConfig};
use immersion_cloud::obs::{shared_flight, shared_recorder, shared_registry, TraceHandle};

fn short_config() -> RunnerConfig {
    let mut config = RunnerConfig::paper();
    // A 500->1500 QPS ramp with 1-minute steps: long enough to trigger
    // scale-out and frequency decisions, short enough for a unit test.
    config.schedule = ramp_schedule(500.0, 1500.0, 500.0, 60.0);
    config
}

fn traced_run(policy: Policy, seed: u64) -> (TraceHandle, String) {
    let trace = shared_recorder(1 << 16);
    let metrics = shared_registry();
    Runner::new(short_config(), policy, seed)
        .with_trace(trace.clone())
        .with_metrics(metrics.clone())
        .run();
    let metrics_json = metrics.borrow().to_json();
    (trace, metrics_json)
}

#[test]
fn same_seed_runs_emit_identical_jsonl() {
    let (a, _) = traced_run(Policy::OcA, 42);
    let (b, _) = traced_run(Policy::OcA, 42);
    let a = a.borrow();
    let b = b.borrow();
    assert!(!a.is_empty(), "run must trace something");
    assert_eq!(a.to_jsonl(), b.to_jsonl(), "JSONL streams diverged");
    assert_eq!(a.to_csv(), b.to_csv(), "CSV streams diverged");
}

#[test]
fn same_seed_runs_emit_identical_metric_snapshots() {
    let (_, a) = traced_run(Policy::OcE, 7);
    let (_, b) = traced_run(Policy::OcE, 7);
    assert_eq!(a, b, "metric snapshots diverged");
    assert!(a.contains("asc_decisions_total{step}"));
}

#[test]
fn different_seeds_diverge() {
    // Sanity check that the byte-equality above is not vacuous: the
    // trace actually depends on the stochastic workload.
    let (a, _) = traced_run(Policy::OcA, 1);
    let (b, _) = traced_run(Policy::OcA, 2);
    assert_ne!(a.borrow().to_jsonl(), b.borrow().to_jsonl());
}

fn flight_chrome_export(policy: Policy, seed: u64) -> String {
    let flight = shared_flight(1 << 16);
    Runner::new(short_config(), policy, seed)
        .with_flight(flight.clone())
        .run();
    let recorder = flight.borrow();
    assert!(!recorder.is_empty(), "run must record spans");
    assert_eq!(
        recorder.dropped(),
        0,
        "ring must not overflow in a short run"
    );
    recorder.to_chrome_trace()
}

#[test]
fn same_seed_runs_emit_identical_chrome_traces() {
    let a = flight_chrome_export(Policy::OcA, 42);
    let b = flight_chrome_export(Policy::OcA, 42);
    assert_eq!(a, b, "Chrome-trace exports diverged");
    // The export carries the expected track structure.
    assert!(a.contains("\"traceEvents\":["));
    assert!(a.contains("\"displayTimeUnit\":\"ms\""));
    assert!(a.contains("\"name\":\"run\""));
}

#[test]
fn different_seed_flight_traces_diverge() {
    assert_ne!(
        flight_chrome_export(Policy::OcA, 1),
        flight_chrome_export(Policy::OcA, 2),
        "flight spans must depend on the stochastic workload"
    );
}

#[test]
fn traces_never_contain_wall_clock_fields() {
    let (trace, _) = traced_run(Policy::OcA, 42);
    for line in trace.borrow().to_jsonl().lines() {
        assert!(
            !line.contains("wall"),
            "wall-clock leaked into trace: {line}"
        );
    }
}
