//! Reproduction-band assertions: every headline claim of the paper,
//! checked end-to-end against the models.

use immersion_cloud::power::cpu::CpuSku;
use immersion_cloud::power::leakage::LeakageModel;
use immersion_cloud::power::server::{ImmersionSavings, ServerPower};
use immersion_cloud::power::units::{Frequency, Voltage};
use immersion_cloud::reliability::lifetime::{
    table5_rows, CompositeLifetimeModel, OperatingConditions,
};
use immersion_cloud::tco::{CoolingScenario, TcoModel};
use immersion_cloud::thermal::fluid::DielectricFluid;
use immersion_cloud::thermal::junction::{table3_platforms, ThermalInterface};
use immersion_cloud::thermal::technology::CoolingTechnology;
use immersion_cloud::workloads::apps::AppProfile;
use immersion_cloud::workloads::configs::CpuConfig;
use immersion_cloud::workloads::gpu::{figure11_sweep, GpuConfig, VggModel};
use immersion_cloud::workloads::mix::Scenario;
use immersion_cloud::workloads::perfmodel::{figure9_sweep, improvement_pct};
use immersion_cloud::workloads::stream::{StreamKernel, StreamModel};

#[test]
fn table1_2pic_is_the_most_efficient_technology() {
    let rows = CoolingTechnology::catalog();
    let best = rows.last().unwrap();
    assert_eq!(best.name(), "2PIC");
    assert!(rows.iter().all(|t| t.avg_pue() >= best.avg_pue()));
    assert!(rows
        .iter()
        .all(|t| t.max_server_cooling_w() <= best.max_server_cooling_w()));
}

#[test]
fn table3_immersion_buys_one_turbo_bin_at_iso_power() {
    for (label, iface, power, tj) in table3_platforms() {
        assert!(
            (iface.junction_temp_c(power) - tj).abs() < 1.0,
            "{label} junction temperature"
        );
    }
    let sku = CpuSku::skylake_8168();
    let air = ThermalInterface::air(35.0, 12.0, 0.22);
    let tank = ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.12, 0.4);
    assert_eq!(
        sku.max_turbo(&tank, sku.tdp_w())
            .bins_above(sku.max_turbo(&air, sku.tdp_w())),
        1
    );
}

#[test]
fn section4_savings_stack_to_182w_per_server() {
    let savings = ImmersionSavings::compute(
        &ServerPower::open_compute_air(),
        2,
        &LeakageModel::skylake(),
        92.0,
        68.0,
        Voltage::from_volts(0.90),
        &CoolingTechnology::direct_evaporative(),
        &CoolingTechnology::immersion_2p(DielectricFluid::fc3284()),
    );
    assert!((savings.total_w() - 182.0).abs() < 3.0, "{savings:?}");
}

#[test]
fn table5_lifetimes_reproduce_under_the_composite_model() {
    let model = CompositeLifetimeModel::fitted_5nm();
    for row in table5_rows() {
        let years = model.lifetime_years(&row.conditions);
        if row.paper_years >= 10.0 && !row.overclocked {
            assert!(years > 10.0, "{} nominal: {years}", row.cooling);
        } else if row.cooling == "Air cooling" && row.overclocked {
            assert!(years < 1.0, "air OC: {years}");
        } else {
            assert!(
                (years - row.paper_years).abs() < 0.6,
                "{} OC {}: model {years} vs paper {}",
                row.cooling,
                row.overclocked,
                row.paper_years
            );
        }
    }
}

#[test]
fn paper_23_pct_overclock_preserves_air_lifetime_in_hfe() {
    let model = CompositeLifetimeModel::fitted_5nm();
    let air = model.lifetime_years(&OperatingConditions::new(0.90, 85.0, 20.0));
    let hfe_oc = model.lifetime_years(&OperatingConditions::new(0.98, 60.0, 35.0));
    assert!((air - hfe_oc).abs() / air < 0.1);
}

#[test]
fn figure9_improvements_land_in_the_10_to_25_pct_band() {
    let sweep = figure9_sweep();
    for app in AppProfile::cpu_suite() {
        let best = sweep
            .iter()
            .filter(|p| p.app == app.name())
            .map(|p| p.improvement_pct)
            .fold(f64::MIN, f64::max);
        assert!((10.0..=25.0).contains(&best), "{}: {best:.1}%", app.name());
    }
}

#[test]
fn figure9_power_never_decreases_with_aggressiveness() {
    let order = ["B2", "OC1", "OC2", "OC3"];
    for app in AppProfile::cpu_suite() {
        let sweep = figure9_sweep();
        let powers: Vec<f64> = order
            .iter()
            .map(|cfg| {
                sweep
                    .iter()
                    .find(|p| p.app == app.name() && &p.config == cfg)
                    .unwrap()
                    .avg_power_w
            })
            .collect();
        assert!(
            powers.windows(2).all(|w| w[1] >= w[0]),
            "{}: {powers:?}",
            app.name()
        );
    }
}

#[test]
fn figure10_stream_headline_deltas() {
    let m = StreamModel::calibrated();
    let b4 = m.speedup_over_b1(StreamKernel::Triad, &CpuConfig::b4());
    let oc3 = m.speedup_over_b1(StreamKernel::Triad, &CpuConfig::oc3());
    assert!((b4 - 1.17).abs() < 0.02, "B4 {b4}");
    assert!((oc3 - 1.24).abs() < 0.02, "OC3 {oc3}");
}

#[test]
fn figure11_gpu_story() {
    // Up to ~15 % faster; VGG16B indifferent to memory overclocking;
    // P99 power +19 %.
    let sweep = figure11_sweep();
    let best = sweep
        .iter()
        .map(|p| 1.0 - p.normalized_time)
        .fold(0.0, f64::max);
    assert!((0.10..=0.16).contains(&best), "best {best}");
    let b16 = VggModel::by_name("VGG16B").unwrap();
    let gain = b16.normalized_time(&GpuConfig::ocg2()) - b16.normalized_time(&GpuConfig::ocg3());
    assert!(gain.abs() < 0.002, "VGG16B memory-OC gain {gain}");
    let base = sweep
        .iter()
        .find(|p| p.config == "Base")
        .unwrap()
        .p99_power_w;
    let ocg3 = sweep
        .iter()
        .find(|p| p.config == "OCG3")
        .unwrap()
        .p99_power_w;
    assert!((ocg3 / base - 1.19).abs() < 0.03);
}

#[test]
fn figure13_oversubscription_story() {
    for s in Scenario::table10() {
        assert_eq!(s.total_vcores(), 20);
        // B2 oversubscribed: everything degrades, LS worst.
        assert!(s
            .evaluate(&CpuConfig::b2())
            .iter()
            .all(|r| r.improvement_pct < 0.0));
        // OC3: everything improves >= 6 % except TeraSort in scenario 1.
        for r in s.evaluate(&CpuConfig::oc3()) {
            if r.scenario == "Scenario 1" && r.app == "TeraSort" {
                assert!(r.improvement_pct < 6.0);
            } else {
                assert!(r.improvement_pct >= 6.0, "{} {}", r.scenario, r.app);
            }
        }
    }
}

#[test]
fn sql_is_memory_bound_and_bi_is_not() {
    let b2 = CpuConfig::b2();
    let sql_mem_step = improvement_pct(&AppProfile::sql(), &CpuConfig::oc3(), &b2)
        - improvement_pct(&AppProfile::sql(), &CpuConfig::oc2(), &b2);
    let bi_mem_step = improvement_pct(&AppProfile::bi(), &CpuConfig::oc3(), &b2)
        - improvement_pct(&AppProfile::bi(), &CpuConfig::oc2(), &b2);
    assert!(sql_mem_step > 4.0, "SQL memory step {sql_mem_step}");
    assert!(bi_mem_step < 0.5, "BI memory step {bi_mem_step}");
}

#[test]
fn tco_headlines() {
    let tco = TcoModel::paper();
    assert!(
        (tco.cost_per_pcore_relative(CoolingScenario::NonOverclockable2pic) - 0.93).abs() < 1e-9
    );
    assert!((tco.cost_per_pcore_relative(CoolingScenario::Overclockable2pic) - 0.96).abs() < 1e-9);
    let vcore = tco.cost_per_vcore_relative(CoolingScenario::Overclockable2pic, 1.10);
    assert!((vcore - 0.87).abs() < 0.01, "vcore {vcore}");
}

#[test]
fn figure12_generalizes_to_slo_planning() {
    // The SLO planner must land on the same 16-vs-12 answer Figure 12
    // reports at its operating point.
    use immersion_cloud::workloads::slo::{reclaimed_capacity, LatencySlo};
    let slo = LatencySlo::new(0.95, 0.034);
    let (base, oc) = reclaimed_capacity(1150.0, 0.010, 1.5, slo, 1.206, 64).unwrap();
    assert_eq!(base, 16, "B2 cores");
    assert_eq!(oc, 12, "OC3 cores");
}

#[test]
fn figure4_turbo_staircase_lifts_under_immersion() {
    use immersion_cloud::power::turbo::TurboTable;
    let sku = CpuSku::skylake_8180();
    let cap = immersion_cloud::power::units::Frequency::from_ghz(3.8);
    let air = TurboTable::derive(
        &sku,
        &ThermalInterface::air(35.0, 12.1, 0.21),
        sku.tdp_w(),
        cap,
    );
    let tank = TurboTable::derive(
        &sku,
        &ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 1.6),
        sku.tdp_w(),
        cap,
    );
    assert_eq!(air.all_core().ghz(), 2.6);
    assert_eq!(tank.all_core().ghz(), 2.7);
    // Lightly-threaded headroom exists even in air (the paper's
    // telemetry observation), and immersion widens it everywhere.
    assert!(air.frequency_for(4) > air.all_core());
    for n in 1..=28 {
        assert!(tank.frequency_for(n) >= air.frequency_for(n));
    }
}

#[test]
fn table5_dtj_swings_emerge_from_transient_physics() {
    use immersion_cloud::thermal::transient::swing_comparison;
    let (air_swing, tank_swing) =
        swing_comparison(&DielectricFluid::fc3284(), 5.0, 305.0, 1200.0, 4);
    assert!(air_swing > 2.0 * tank_swing);
}

#[test]
fn overclocked_socket_draws_about_305w() {
    let sku = CpuSku::skylake_8180();
    let tank = ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 1.6);
    let ss = sku.overclocked_state(&tank);
    assert!((ss.power_w - 305.0).abs() < 20.0, "power {}", ss.power_w);
    // The V/f anchor: ~0.98 V at +23 %.
    let f = Frequency::from_mhz((sku.air_turbo().step_bins(1).mhz() as f64 * 1.23).round() as u32);
    let v = sku.voltage_for(f);
    assert!((v.volts() - 0.98).abs() < 0.01, "voltage {v}");
}
