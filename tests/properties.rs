//! Property-based tests on cross-crate invariants.
//!
//! The hermetic build has no `proptest`, so these use a small in-tree
//! harness: each property runs `CASES` times against inputs drawn from a
//! seeded [`SimRng`], so failures are reproducible from the case index
//! embedded in the panic message.

use immersion_cloud::cluster::cluster::Cluster;
use immersion_cloud::cluster::placement::{Oversubscription, PlacementPolicy};
use immersion_cloud::cluster::server::ServerSpec;
use immersion_cloud::cluster::vm::VmSpec;
use immersion_cloud::power::capping::{PowerAllocator, PowerRequest, Priority};
use immersion_cloud::power::cpu::CpuSku;
use immersion_cloud::power::units::{Frequency, Voltage};
use immersion_cloud::reliability::lifetime::{CompositeLifetimeModel, OperatingConditions};
use immersion_cloud::sim::dist::{Dist, Exponential, LogNormal};
use immersion_cloud::sim::engine::Engine;
use immersion_cloud::sim::rng::SimRng;
use immersion_cloud::sim::stats::Tally;
use immersion_cloud::sim::time::SimTime;
use immersion_cloud::telemetry::eq1::predict_utilization;
use immersion_cloud::thermal::fluid::DielectricFluid;
use immersion_cloud::thermal::junction::ThermalInterface;

const CASES: u64 = 48;

/// Runs `property` against `CASES` independently seeded generators. The
/// closure panics (via assert!) to signal a failing case; the case index
/// is appended so failures replay deterministically.
fn check(name: &str, mut property: impl FnMut(&mut SimRng)) {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0xC0FFEE ^ (case << 8));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".into());
            panic!("property {name} failed on case {case}: {msg}");
        }
    }
}

fn vec_of(
    rng: &mut SimRng,
    min: usize,
    max: usize,
    mut gen: impl FnMut(&mut SimRng) -> f64,
) -> Vec<f64> {
    let n = min + rng.index(max - min);
    (0..n).map(|_| gen(rng)).collect()
}

/// The engine executes events in non-decreasing time order no matter the
/// scheduling order.
#[test]
fn engine_executes_in_time_order() {
    check("engine_executes_in_time_order", |rng| {
        let n = 1 + rng.index(99);
        let times: Vec<u64> = (0..n).map(|_| rng.index(10_000) as u64).collect();
        let mut engine: Engine<Vec<u64>> = Engine::new();
        for &t in &times {
            engine.schedule(SimTime::from_millis(t), move |log: &mut Vec<u64>, _| {
                log.push(t)
            });
        }
        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log.len(), times.len());
        assert!(log.windows(2).all(|w| w[0] <= w[1]));
    });
}

/// Equation 1 is bounded and monotone: higher target frequency never
/// raises predicted utilization.
#[test]
fn eq1_monotone_and_bounded() {
    check("eq1_monotone_and_bounded", |rng| {
        let util = rng.uniform();
        let p = rng.uniform();
        let f0 = rng.uniform_range(1.0, 5.0);
        let f1 = f0 + rng.uniform_range(0.0, 2.0);
        let u1 = predict_utilization(util, p, f0, f1);
        assert!(u1 <= util + 1e-12);
        assert!(u1 >= util * f0 / f1 - 1e-12);
        // Further increase never helps a fully stalled workload.
        let stalled = predict_utilization(util, 0.0, f0, f1);
        assert!((stalled - util).abs() < 1e-12);
    });
}

/// The lifetime model is monotone: hotter or higher-voltage operating
/// points never live longer.
#[test]
fn lifetime_monotone() {
    check("lifetime_monotone", |rng| {
        let v = rng.uniform_range(0.85, 1.05);
        let tj = rng.uniform_range(45.0, 110.0);
        let dv = rng.uniform_range(0.0, 0.1);
        let dt = rng.uniform_range(0.0, 20.0);
        let model = CompositeLifetimeModel::fitted_5nm();
        let base = model.lifetime_years(&OperatingConditions::new(v, tj, 30.0));
        let hotter = model.lifetime_years(&OperatingConditions::new(v, tj + dt, 30.0));
        let pushier = model.lifetime_years(&OperatingConditions::new(v + dv, tj, 30.0));
        assert!(hotter <= base + 1e-12);
        assert!(pushier <= base + 1e-12);
    });
}

/// Junction temperature is affine and monotone in power, and
/// `max_power_for_tj` inverts `junction_temp_c`.
#[test]
fn junction_monotone_in_power() {
    check("junction_monotone_in_power", |rng| {
        let r = rng.uniform_range(0.01, 0.5);
        let p1 = rng.uniform_range(0.0, 400.0);
        let dp = rng.uniform_range(0.0, 200.0);
        let iface = ThermalInterface::two_phase(DielectricFluid::fc3284(), r, 1.0);
        assert!(iface.junction_temp_c(p1 + dp) >= iface.junction_temp_c(p1));
        let tj = iface.junction_temp_c(p1);
        let back = iface.max_power_for_tj(tj);
        assert!((back - p1).abs() < 1e-6);
    });
}

/// The power allocator conserves the budget (when floors fit) and never
/// grants outside [floor, demand].
#[test]
fn allocator_respects_budget_and_bounds() {
    check("allocator_respects_budget_and_bounds", |rng| {
        let budget = rng.uniform_range(100.0, 2000.0);
        let n = 1 + rng.index(11);
        let requests: Vec<PowerRequest> = (0..n)
            .map(|i| {
                let floor = rng.uniform_range(10.0, 100.0);
                let extra = rng.uniform_range(0.0, 200.0);
                PowerRequest {
                    id: i as u64,
                    priority: match rng.index(3) {
                        0 => Priority::Batch,
                        1 => Priority::Normal,
                        _ => Priority::Critical,
                    },
                    floor_w: floor,
                    demand_w: floor + extra,
                }
            })
            .collect();
        let grants = PowerAllocator::new(budget).allocate(&requests);
        let floors: f64 = requests.iter().map(|r| r.floor_w).sum();
        let total: f64 = grants.iter().map(|g| g.granted_w).sum();
        if floors <= budget {
            assert!(total <= budget + 1e-6, "total {total} > budget {budget}");
        }
        for (r, g) in requests.iter().zip(&grants) {
            assert!(g.granted_w >= r.floor_w - 1e-9);
            assert!(g.granted_w <= r.demand_w + 1e-9);
        }
    });
}

/// Bin packing never exceeds any server's (oversubscribed) capacity in
/// either dimension, under any policy.
#[test]
fn packing_never_exceeds_capacity() {
    check("packing_never_exceeds_capacity", |rng| {
        let policy = [
            PlacementPolicy::FirstFit,
            PlacementPolicy::BestFit,
            PlacementPolicy::WorstFit,
        ][rng.index(3)];
        let ratio = rng.uniform_range(1.0, 1.5);
        let mut cluster = Cluster::new(
            vec![
                ServerSpec::custom(
                    16,
                    128.0,
                    Frequency::from_ghz(2.7),
                    Frequency::from_ghz(3.3)
                );
                4
            ],
            policy,
            Oversubscription::ratio(ratio),
        );
        let n = 1 + rng.index(59);
        for _ in 0..n {
            let vcores = 1 + rng.index(7) as u32;
            let mem = rng.uniform_range(1.0, 64.0);
            let _ = cluster.create_vm(SimTime::ZERO, VmSpec::new(vcores, mem));
        }
        let cap = Oversubscription::ratio(ratio).vcore_capacity(16);
        for server in cluster.servers() {
            assert!(server.allocated_vcores() <= cap);
            assert!(server.allocated_memory_gb() <= 128.0 + 1e-9);
        }
    });
}

/// Tally percentiles are order statistics: bounded by min/max and
/// monotone in q.
#[test]
fn tally_percentiles_are_order_statistics() {
    check("tally_percentiles_are_order_statistics", |rng| {
        let values = vec_of(rng, 1, 200, |r| r.uniform_range(-1e6, 1e6));
        let q1 = rng.uniform();
        let q2 = rng.uniform();
        let mut tally: Tally = values.iter().copied().collect();
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let p_lo = tally.percentile(lo);
        let p_hi = tally.percentile(hi);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(p_lo <= p_hi);
        assert!(p_lo >= min && p_hi <= max);
    });
}

/// Distribution sample means converge to the analytic mean.
#[test]
fn distribution_means_converge() {
    check("distribution_means_converge", |rng| {
        let mean = rng.uniform_range(0.1, 10.0);
        let mut sample_rng = rng.fork();
        let exp = Exponential::with_mean(mean);
        let ln = LogNormal::with_mean_scv(mean, 1.0);
        let n = 20_000;
        let exp_mean: f64 = (0..n).map(|_| exp.sample(&mut sample_rng)).sum::<f64>() / n as f64;
        let ln_mean: f64 = (0..n).map(|_| ln.sample(&mut sample_rng)).sum::<f64>() / n as f64;
        assert!(
            (exp_mean - mean).abs() / mean < 0.1,
            "exp {exp_mean} vs {mean}"
        );
        assert!(
            (ln_mean - mean).abs() / mean < 0.1,
            "ln {ln_mean} vs {mean}"
        );
    });
}

/// The turbo staircase never increases with more active cores, and
/// immersion never lowers any step.
#[test]
fn turbo_staircase_monotone() {
    check("turbo_staircase_monotone", |rng| {
        use immersion_cloud::power::turbo::TurboTable;
        let limit_w = rng.uniform_range(150.0, 305.0);
        let cap_bins = 5 + rng.index(10) as i32;
        let sku = CpuSku::skylake_8180();
        let cap = sku.air_turbo().step_bins(cap_bins);
        let air = TurboTable::derive(&sku, &ThermalInterface::air(35.0, 12.1, 0.21), limit_w, cap);
        let tank = TurboTable::derive(
            &sku,
            &ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 1.6),
            limit_w,
            cap,
        );
        let mut last = Frequency::from_mhz(u32::MAX);
        for n in 1..=sku.cores() {
            let f = air.frequency_for(n);
            assert!(f <= last);
            assert!(tank.frequency_for(n) >= f);
            last = f;
        }
    });
}

/// The power hierarchy never grants more than any domain's budget (when
/// the floors fit it).
#[test]
fn hierarchy_conserves_budget() {
    check("hierarchy_conserves_budget", |rng| {
        use immersion_cloud::power::hierarchy::PowerDomain;
        let dc_budget = rng.uniform_range(2000.0, 20_000.0);
        let n_racks = 1 + rng.index(4);
        let racks: Vec<(f64, usize)> = (0..n_racks)
            .map(|_| (rng.uniform_range(1500.0, 6000.0), 1 + rng.index(11)))
            .collect();
        let children: Vec<PowerDomain> = racks
            .iter()
            .enumerate()
            .map(|(i, &(budget, sockets))| {
                PowerDomain::leaf(
                    format!("rack-{i}"),
                    budget,
                    (0..sockets as u64)
                        .map(|j| PowerRequest {
                            id: j,
                            priority: if j % 2 == 0 {
                                Priority::Batch
                            } else {
                                Priority::Critical
                            },
                            floor_w: 100.0,
                            demand_w: 305.0,
                        })
                        .collect(),
                )
            })
            .collect();
        let dc = PowerDomain::interior("dc", dc_budget, children);
        let grants = dc.resolve();
        let total: f64 = grants.iter().map(|(_, g)| g.granted_w).sum();
        if dc.total_floor_w() <= dc_budget {
            assert!(total <= dc_budget + 1e-6, "total {total} > dc {dc_budget}");
        }
        // Per-rack budgets hold whenever the rack's own floors fit.
        for (i, &(budget, sockets)) in racks.iter().enumerate() {
            let rack_total: f64 = grants
                .iter()
                .filter(|(n, _)| *n == format!("rack-{i}"))
                .map(|(_, g)| g.granted_w)
                .sum();
            if 100.0 * sockets as f64 <= budget {
                assert!(rack_total <= budget + 1e-6);
            }
        }
    });
}

/// Histogram quantiles are monotone in q and bounded by the exact max;
/// the mean is exact.
#[test]
fn histogram_quantiles_bounded() {
    check("histogram_quantiles_bounded", |rng| {
        use immersion_cloud::sim::hist::LogHistogram;
        let values = vec_of(rng, 1, 300, |r| r.uniform_range(0.0, 1e6));
        let mut h = LogHistogram::new(1e-3, 1.7, 48);
        for &v in &values {
            h.record(v);
        }
        let exact_mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((h.mean() - exact_mean).abs() < 1e-6 * exact_mean.max(1.0));
        let mut last = 0.0;
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            let est = h.quantile(q);
            assert!(est >= last - 1e-12);
            assert!(est <= h.max() + 1e-12);
            last = est;
        }
    });
}

/// The thermal node never overshoots its steady state from below
/// (first-order systems are monotone), and always settles between
/// reference and steady state.
#[test]
fn thermal_node_no_overshoot() {
    check("thermal_node_no_overshoot", |rng| {
        use immersion_cloud::thermal::transient::ThermalNode;
        let r = rng.uniform_range(0.02, 0.5);
        let c = rng.uniform_range(10.0, 1000.0);
        let power = rng.uniform_range(0.0, 400.0);
        let dt = rng.uniform_range(0.1, 500.0);
        let mut node = ThermalNode::new(r, c, 40.0);
        let steady = 40.0 + r * power;
        for _ in 0..50 {
            let t = node.step(power, dt);
            assert!(t >= 40.0 - 1e-9);
            assert!(t <= steady + 1e-9);
        }
    });
}

/// The diurnal load stays within [trough, crest] for all time.
#[test]
fn diurnal_load_bounded() {
    check("diurnal_load_bounded", |rng| {
        use immersion_cloud::workloads::loadgen::DiurnalLoad;
        let base = rng.uniform_range(0.0, 5000.0);
        let amp = rng.uniform_range(0.0, 5000.0);
        let t = rng.uniform_range(0.0, 1e6);
        let d = DiurnalLoad::daily(base, amp);
        let q = d.at(t);
        assert!(q >= d.trough_qps() - 1e-9);
        assert!(q <= d.crest_qps() + 1e-9);
    });
}

/// Histogram merge is commutative and associative: any merge order
/// yields identical bins, counts, and moments.
#[test]
fn histogram_merge_commutative_associative() {
    use immersion_cloud::sim::hist::LogHistogram;
    check("histogram_merge_commutative_associative", |rng| {
        let fresh = || LogHistogram::new(1e-3, 1.7, 48);
        let fill = |rng: &mut SimRng| {
            let mut h = fresh();
            for v in vec_of(rng, 0, 120, |r| r.uniform_range(0.0, 1e6)) {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (fill(rng), fill(rng), fill(rng));
        let merged = |parts: &[&LogHistogram]| {
            let mut out = fresh();
            for p in parts {
                out.merge(p);
            }
            out
        };
        let ab = merged(&[&a, &b]);
        let ba = merged(&[&b, &a]);
        assert_eq!(ab.bins(), ba.bins());
        assert_eq!(ab.count(), ba.count());
        assert!((ab.mean() - ba.mean()).abs() < 1e-9 * ab.mean().abs().max(1.0));
        let mut ab_c = merged(&[&a, &b]);
        ab_c.merge(&c);
        let mut bc = merged(&[&b, &c]);
        let mut a_bc = fresh();
        a_bc.merge(&a);
        a_bc.merge(&bc);
        bc = a_bc;
        assert_eq!(ab_c.bins(), bc.bins());
        assert_eq!(ab_c.count(), bc.count());
        assert_eq!(ab_c.max(), bc.max());
    });
}

/// Registry merge adds counters, sums histogram populations, and keeps
/// snapshots byte-identical regardless of insertion order.
#[test]
fn registry_merge_adds_and_orders_deterministically() {
    use immersion_cloud::obs::MetricsRegistry;
    check("registry_merge_adds_and_orders_deterministically", |rng| {
        let names = ["a_total", "b_total", "c_total"];
        let fill = |rng: &mut SimRng| {
            let mut reg = MetricsRegistry::new();
            // Insert in a random order; BTreeMap storage must make the
            // snapshot independent of it.
            let mut order: Vec<usize> = (0..names.len()).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.index(i + 1));
            }
            let mut counts = [0u64; 3];
            for &i in &order {
                let n = rng.index(50) as u64;
                reg.counter_add(names[i], n);
                counts[i] = n;
            }
            for v in vec_of(rng, 1, 60, |r| r.uniform_range(1e-4, 10.0)) {
                reg.histogram_record("lat_seconds", v);
            }
            (reg, counts)
        };
        let (a, ca) = fill(rng);
        let (b, cb) = fill(rng);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for (i, name) in names.iter().enumerate() {
            assert_eq!(ab.counter(name), ca[i] + cb[i]);
            assert_eq!(ab.counter(name), ba.counter(name));
        }
        let merged_count = ab.histogram("lat_seconds").map_or(0, |h| h.count());
        let a_count = a.histogram("lat_seconds").map_or(0, |h| h.count());
        let b_count = b.histogram("lat_seconds").map_or(0, |h| h.count());
        assert_eq!(merged_count, a_count + b_count);
        assert_eq!(
            ab.to_json(),
            ba.to_json(),
            "merge order leaked into snapshot"
        );
    });
}

/// Registry quantiles are order statistics of the recorded samples:
/// monotone in q and never above the histogram's observed max.
#[test]
fn registry_quantiles_bounded() {
    use immersion_cloud::obs::MetricsRegistry;
    check("registry_quantiles_bounded", |rng| {
        let mut reg = MetricsRegistry::new();
        let values = vec_of(rng, 1, 200, |r| r.uniform_range(1e-5, 1e3));
        for &v in &values {
            reg.histogram_record("x", v);
        }
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut last = 0.0;
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            let est = reg.quantile("x", q);
            assert!(est >= last - 1e-12, "quantile not monotone at q={q}");
            assert!(
                est <= max + 1e-12,
                "quantile {est} above max {max} at q={q}"
            );
            last = est;
        }
    });
}

/// Scenario JSON round-trips losslessly: serialize → parse recovers
/// every field, even after random f64 perturbations (the writer emits
/// shortest-round-trip literals).
#[test]
fn scenario_roundtrip_preserves_every_field() {
    use immersion_cloud::scenario::Scenario;
    check("scenario_roundtrip_preserves_every_field", |rng| {
        let mut s = Scenario::paper();
        // Perturb a sampling of fields across the calibration surface so
        // the round-trip is tested on arbitrary doubles, not just the
        // paper's tidy literals.
        let p = rng.index(s.thermal.platforms.len());
        s.thermal.platforms[p].r_th_c_per_w *= rng.uniform_range(0.5, 2.0);
        let f = rng.index(s.thermal.fluids.len());
        s.thermal.fluids[f].boiling_point_c += rng.uniform_range(-10.0, 10.0);
        s.power.vf.nominal_v = rng.uniform_range(0.7, s.power.vf.oc_v);
        let r = rng.index(s.reliability.table5.len());
        s.reliability.table5[r].voltage_v += rng.uniform_range(-0.2, 0.2);
        let a = rng.index(s.workloads.apps.len());
        s.workloads.apps[a].mem_bw_gbps = rng.uniform_range(0.0, 100.0);
        s.name = format!("perturbed-{}", rng.index(1_000_000));

        let parsed = Scenario::from_json(&s.to_json()).expect("round-trip parses");
        assert_eq!(parsed, s, "round-trip dropped or altered a field");
    });
}

/// Calibration is live, not decorative: perturbing a platform's thermal
/// resistance moves its Table III junction temperature, and perturbing a
/// Table V fit point's voltage moves its modeled lifetime.
#[test]
fn scenario_perturbation_changes_outputs() {
    use immersion_cloud::reliability::lifetime::table5_rows_from;
    use immersion_cloud::scenario::Scenario;
    use immersion_cloud::thermal::junction::table3_platforms_from;
    check("scenario_perturbation_changes_outputs", |rng| {
        let base = Scenario::paper();
        let mut s = base.clone();

        let p = rng.index(s.thermal.platforms.len());
        s.thermal.platforms[p].r_th_c_per_w *= rng.uniform_range(1.1, 2.0);
        let power = base.thermal.platforms[p].measured_power_w;
        let tj_base = table3_platforms_from(&base.thermal)[p]
            .1
            .junction_temp_c(power);
        let tj_pert = table3_platforms_from(&s.thermal)[p]
            .1
            .junction_temp_c(power);
        assert!(
            tj_pert > tj_base,
            "higher R_th must raise Tj ({tj_pert} vs {tj_base})"
        );

        let r = rng.index(s.reliability.table5.len());
        s.reliability.table5[r].voltage_v += rng.uniform_range(0.05, 0.2);
        let model = CompositeLifetimeModel::from_calibration(&base.reliability);
        let life_base = model.lifetime_years(&table5_rows_from(&base.reliability)[r].conditions);
        let life_pert = model.lifetime_years(&table5_rows_from(&s.reliability)[r].conditions);
        assert!(
            life_pert < life_base,
            "higher voltage must shorten lifetime ({life_pert} vs {life_base})"
        );
    });
}

/// Socket steady-state power is monotone in frequency and voltage.
#[test]
fn socket_power_monotone() {
    check("socket_power_monotone", |rng| {
        let fbins = rng.index(12) as i32;
        let extra_mv = rng.index(100) as u32;
        let sku = CpuSku::skylake_8180();
        let iface = ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 1.6);
        let f0 = sku.base();
        let f1 = f0.step_bins(fbins);
        let v = Voltage::from_mv(900 + extra_mv);
        let p0 = sku
            .steady_state(&iface, f0, Voltage::from_volts(0.9))
            .power_w;
        let p1 = sku.steady_state(&iface, f1, v).power_w;
        assert!(p1 >= p0 - 1e-9);
    });
}
