//! Property-based tests on cross-crate invariants.

use immersion_cloud::cluster::cluster::Cluster;
use immersion_cloud::cluster::placement::{Oversubscription, PlacementPolicy};
use immersion_cloud::cluster::server::ServerSpec;
use immersion_cloud::cluster::vm::VmSpec;
use immersion_cloud::power::capping::{PowerAllocator, PowerRequest, Priority};
use immersion_cloud::power::cpu::CpuSku;
use immersion_cloud::power::units::{Frequency, Voltage};
use immersion_cloud::reliability::lifetime::{CompositeLifetimeModel, OperatingConditions};
use immersion_cloud::sim::dist::{Dist, Exponential, LogNormal};
use immersion_cloud::sim::engine::Engine;
use immersion_cloud::sim::rng::SimRng;
use immersion_cloud::sim::stats::Tally;
use immersion_cloud::sim::time::SimTime;
use immersion_cloud::telemetry::eq1::predict_utilization;
use immersion_cloud::thermal::fluid::DielectricFluid;
use immersion_cloud::thermal::junction::ThermalInterface;
use proptest::prelude::*;

proptest! {
    /// The engine executes events in non-decreasing time order no
    /// matter the scheduling order.
    #[test]
    fn engine_executes_in_time_order(times in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        for &t in &times {
            engine.schedule(SimTime::from_millis(t), move |log: &mut Vec<u64>, _| log.push(t));
        }
        let mut log = Vec::new();
        engine.run(&mut log);
        prop_assert_eq!(log.len(), times.len());
        prop_assert!(log.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Equation 1 is bounded and monotone: higher target frequency never
    /// raises predicted utilization.
    #[test]
    fn eq1_monotone_and_bounded(
        util in 0.0f64..=1.0,
        p in 0.0f64..=1.0,
        f0 in 1.0f64..5.0,
        df in 0.0f64..2.0,
    ) {
        let f1 = f0 + df;
        let u1 = predict_utilization(util, p, f0, f1);
        prop_assert!(u1 <= util + 1e-12);
        prop_assert!(u1 >= util * f0 / f1 - 1e-12);
        // Further increase never helps a fully stalled workload.
        let stalled = predict_utilization(util, 0.0, f0, f1);
        prop_assert!((stalled - util).abs() < 1e-12);
    }

    /// The lifetime model is monotone: hotter or higher-voltage operating
    /// points never live longer.
    #[test]
    fn lifetime_monotone(
        v in 0.85f64..1.05,
        tj in 45.0f64..110.0,
        dv in 0.0f64..0.1,
        dt in 0.0f64..20.0,
    ) {
        let model = CompositeLifetimeModel::fitted_5nm();
        let base = model.lifetime_years(&OperatingConditions::new(v, tj, 30.0));
        let hotter = model.lifetime_years(&OperatingConditions::new(v, tj + dt, 30.0));
        let pushier = model.lifetime_years(&OperatingConditions::new(v + dv, tj, 30.0));
        prop_assert!(hotter <= base + 1e-12);
        prop_assert!(pushier <= base + 1e-12);
    }

    /// Junction temperature is affine and monotone in power.
    #[test]
    fn junction_monotone_in_power(
        r in 0.01f64..0.5,
        p1 in 0.0f64..400.0,
        dp in 0.0f64..200.0,
    ) {
        let iface = ThermalInterface::two_phase(DielectricFluid::fc3284(), r, 1.0);
        prop_assert!(iface.junction_temp_c(p1 + dp) >= iface.junction_temp_c(p1));
        // max_power_for_tj inverts junction_temp_c.
        let tj = iface.junction_temp_c(p1);
        let back = iface.max_power_for_tj(tj);
        prop_assert!((back - p1).abs() < 1e-6);
    }

    /// The power allocator conserves the budget (when floors fit) and
    /// never grants outside [floor, demand].
    #[test]
    fn allocator_respects_budget_and_bounds(
        budget in 100.0f64..2000.0,
        demands in prop::collection::vec((10.0f64..100.0, 0.0f64..200.0, 0u8..3), 1..12),
    ) {
        let requests: Vec<PowerRequest> = demands
            .iter()
            .enumerate()
            .map(|(i, &(floor, extra, pri))| PowerRequest {
                id: i as u64,
                priority: match pri {
                    0 => Priority::Batch,
                    1 => Priority::Normal,
                    _ => Priority::Critical,
                },
                floor_w: floor,
                demand_w: floor + extra,
            })
            .collect();
        let grants = PowerAllocator::new(budget).allocate(&requests);
        let floors: f64 = requests.iter().map(|r| r.floor_w).sum();
        let total: f64 = grants.iter().map(|g| g.granted_w).sum();
        if floors <= budget {
            prop_assert!(total <= budget + 1e-6, "total {total} > budget {budget}");
        }
        for (r, g) in requests.iter().zip(&grants) {
            prop_assert!(g.granted_w >= r.floor_w - 1e-9);
            prop_assert!(g.granted_w <= r.demand_w + 1e-9);
        }
    }

    /// Bin packing never exceeds any server's (oversubscribed) capacity
    /// in either dimension, under any policy.
    #[test]
    fn packing_never_exceeds_capacity(
        policy_idx in 0usize..3,
        ratio in 1.0f64..1.5,
        vms in prop::collection::vec((1u32..8, 1.0f64..64.0), 1..60),
    ) {
        let policy = [PlacementPolicy::FirstFit, PlacementPolicy::BestFit, PlacementPolicy::WorstFit][policy_idx];
        let mut cluster = Cluster::new(
            vec![ServerSpec::custom(16, 128.0, Frequency::from_ghz(2.7), Frequency::from_ghz(3.3)); 4],
            policy,
            Oversubscription::ratio(ratio),
        );
        for (vcores, mem) in vms {
            let _ = cluster.create_vm(VmSpec::new(vcores, mem));
        }
        let cap = Oversubscription::ratio(ratio).vcore_capacity(16);
        for server in cluster.servers() {
            prop_assert!(server.allocated_vcores() <= cap);
            prop_assert!(server.allocated_memory_gb() <= 128.0 + 1e-9);
        }
    }

    /// Tally percentiles are order statistics: bounded by min/max and
    /// monotone in q.
    #[test]
    fn tally_percentiles_are_order_statistics(
        values in prop::collection::vec(-1e6f64..1e6, 1..200),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let mut tally: Tally = values.iter().copied().collect();
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let p_lo = tally.percentile(lo);
        let p_hi = tally.percentile(hi);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p_lo <= p_hi);
        prop_assert!(p_lo >= min && p_hi <= max);
    }

    /// Distribution sample means converge to the analytic mean.
    #[test]
    fn distribution_means_converge(seed in 0u64..1000, mean in 0.1f64..10.0) {
        let mut rng = SimRng::seed_from_u64(seed);
        let exp = Exponential::with_mean(mean);
        let ln = LogNormal::with_mean_scv(mean, 1.0);
        let n = 20_000;
        let exp_mean: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / n as f64;
        let ln_mean: f64 = (0..n).map(|_| ln.sample(&mut rng)).sum::<f64>() / n as f64;
        prop_assert!((exp_mean - mean).abs() / mean < 0.1, "exp {exp_mean} vs {mean}");
        prop_assert!((ln_mean - mean).abs() / mean < 0.1, "ln {ln_mean} vs {mean}");
    }

    /// The turbo staircase never increases with more active cores, and
    /// immersion never lowers any step.
    #[test]
    fn turbo_staircase_monotone(limit_w in 150.0f64..305.0, cap_bins in 5i32..15) {
        use immersion_cloud::power::turbo::TurboTable;
        let sku = CpuSku::skylake_8180();
        let cap = sku.air_turbo().step_bins(cap_bins);
        let air = TurboTable::derive(
            &sku,
            &ThermalInterface::air(35.0, 12.1, 0.21),
            limit_w,
            cap,
        );
        let tank = TurboTable::derive(
            &sku,
            &ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 1.6),
            limit_w,
            cap,
        );
        let mut last = Frequency::from_mhz(u32::MAX);
        for n in 1..=sku.cores() {
            let f = air.frequency_for(n);
            prop_assert!(f <= last);
            prop_assert!(tank.frequency_for(n) >= f);
            last = f;
        }
    }

    /// The power hierarchy never grants more than any domain's budget
    /// (when the floors fit it).
    #[test]
    fn hierarchy_conserves_budget(
        dc_budget in 2000.0f64..20_000.0,
        racks in prop::collection::vec((1500.0f64..6000.0, 1usize..12), 1..5),
    ) {
        use immersion_cloud::power::hierarchy::PowerDomain;
        let children: Vec<PowerDomain> = racks
            .iter()
            .enumerate()
            .map(|(i, &(budget, sockets))| {
                PowerDomain::leaf(
                    format!("rack-{i}"),
                    budget,
                    (0..sockets as u64)
                        .map(|j| PowerRequest {
                            id: j,
                            priority: if j % 2 == 0 { Priority::Batch } else { Priority::Critical },
                            floor_w: 100.0,
                            demand_w: 305.0,
                        })
                        .collect(),
                )
            })
            .collect();
        let dc = PowerDomain::interior("dc", dc_budget, children);
        let grants = dc.resolve();
        let total: f64 = grants.iter().map(|(_, g)| g.granted_w).sum();
        if dc.total_floor_w() <= dc_budget {
            prop_assert!(total <= dc_budget + 1e-6, "total {total} > dc {dc_budget}");
        }
        // Per-rack budgets hold whenever the rack's own floors fit.
        for (i, &(budget, sockets)) in racks.iter().enumerate() {
            let rack_total: f64 = grants
                .iter()
                .filter(|(n, _)| *n == format!("rack-{i}"))
                .map(|(_, g)| g.granted_w)
                .sum();
            if 100.0 * sockets as f64 <= budget {
                prop_assert!(rack_total <= budget + 1e-6);
            }
        }
    }

    /// Histogram quantiles are monotone in q and bounded by the exact
    /// max; the mean is exact.
    #[test]
    fn histogram_quantiles_bounded(values in prop::collection::vec(0.0f64..1e6, 1..300)) {
        use immersion_cloud::sim::hist::LogHistogram;
        let mut h = LogHistogram::new(1e-3, 1.7, 48);
        for &v in &values {
            h.record(v);
        }
        let exact_mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((h.mean() - exact_mean).abs() < 1e-6 * exact_mean.max(1.0));
        let mut last = 0.0;
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            let est = h.quantile(q);
            prop_assert!(est >= last - 1e-12);
            prop_assert!(est <= h.max() + 1e-12);
            last = est;
        }
    }

    /// The thermal node never overshoots its steady state from below
    /// (first-order systems are monotone), and always settles between
    /// reference and steady state.
    #[test]
    fn thermal_node_no_overshoot(
        r in 0.02f64..0.5,
        c in 10.0f64..1000.0,
        power in 0.0f64..400.0,
        dt in 0.1f64..500.0,
    ) {
        use immersion_cloud::thermal::transient::ThermalNode;
        let mut node = ThermalNode::new(r, c, 40.0);
        let steady = 40.0 + r * power;
        for _ in 0..50 {
            let t = node.step(power, dt);
            prop_assert!(t >= 40.0 - 1e-9);
            prop_assert!(t <= steady + 1e-9);
        }
    }

    /// The diurnal load stays within [trough, crest] for all time.
    #[test]
    fn diurnal_load_bounded(
        base in 0.0f64..5000.0,
        amp in 0.0f64..5000.0,
        t in 0.0f64..1e6,
    ) {
        use immersion_cloud::workloads::loadgen::DiurnalLoad;
        let d = DiurnalLoad::daily(base, amp);
        let q = d.at(t);
        prop_assert!(q >= d.trough_qps() - 1e-9);
        prop_assert!(q <= d.crest_qps() + 1e-9);
    }

    /// Socket steady-state power is monotone in frequency and voltage.
    #[test]
    fn socket_power_monotone(fbins in 0i32..12, extra_mv in 0u32..100) {
        let sku = CpuSku::skylake_8180();
        let iface = ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 1.6);
        let f0 = sku.base();
        let f1 = f0.step_bins(fbins);
        let v = Voltage::from_mv(900 + extra_mv);
        let p0 = sku.steady_state(&iface, f0, Voltage::from_volts(0.9)).power_w;
        let p1 = sku.steady_state(&iface, f1, v).power_w;
        prop_assert!(p1 >= p0 - 1e-9);
    }
}
