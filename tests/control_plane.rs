//! Integration tests across the control plane: the `Controller`
//! runtime driving governor + capping + failover on one clock, plus
//! the model-level interactions (wear accounting, bottleneck
//! steering, budget legality) those loops compose from.

use immersion_cloud::autoscale::asc::AutoScaler;
use immersion_cloud::autoscale::policy::{AscConfig, Policy};
use immersion_cloud::chaos::{
    DegradationController, DegradationPolicy, LatencySlo, SloInputs, SloScorecard,
};
use immersion_cloud::cluster::cluster::Cluster;
use immersion_cloud::cluster::placement::{Oversubscription, PlacementPolicy};
use immersion_cloud::cluster::server::ServerSpec;
use immersion_cloud::cluster::vm::{VmClass, VmSpec};
use immersion_cloud::controlplane::controllers::{
    FailoverController, GovernorController, PowerCapController, ScriptController,
};
use immersion_cloud::controlplane::{Action, ControlPlane, FleetConfigBuilder, FleetWorld, World};
use immersion_cloud::core::bottleneck::{analyze, BottleneckThresholds, OverclockTarget};
use immersion_cloud::core::governor::{Constraint, GovernorConfig, OverclockGovernor};
use immersion_cloud::core::usecases::buffer::absorb_failure;
use immersion_cloud::par::ParPool;
use immersion_cloud::power::capping::{PowerAllocator, PowerRequest, Priority};
use immersion_cloud::power::cpu::CpuSku;
use immersion_cloud::power::units::Frequency;
use immersion_cloud::reliability::lifetime::{CompositeLifetimeModel, OperatingConditions};
use immersion_cloud::reliability::stability::StabilityModel;
use immersion_cloud::reliability::wear::WearTracker;
use immersion_cloud::scenario::FaultConfig;
use immersion_cloud::sim::time::{SimDuration, SimTime};
use immersion_cloud::telemetry::counters::CoreCounters;
use immersion_cloud::thermal::fluid::DielectricFluid;
use immersion_cloud::thermal::junction::ThermalInterface;

fn governor() -> OverclockGovernor {
    OverclockGovernor::new(
        CpuSku::skylake_8180(),
        ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0),
        CompositeLifetimeModel::fitted_5nm(),
        StabilityModel::paper_characterization(),
        GovernorConfig::default(),
    )
}

/// Runs the full controller set on the small composed fleet and
/// digests every externally observable outcome into one string, so
/// equality means record-for-record identity.
fn composed_digest(seed: u64) -> String {
    let config = FleetConfigBuilder::small(seed).build();
    let budget_w = config.budget_w;
    let world = FleetWorld::new(config);
    let mut plane = ControlPlane::new(world);

    let asc_cfg = AscConfig::paper();
    let asc_period = SimDuration::from_secs_f64(asc_cfg.decision_period_s);
    plane.register(Box::new(AutoScaler::new(asc_cfg, Policy::OcA)), asc_period);
    plane.register(
        Box::new(PowerCapController::new(PowerAllocator::new(budget_w))),
        SimDuration::from_secs(30),
    );
    let gov_id = plane.register(
        Box::new(GovernorController::new(
            governor(),
            Frequency::from_ghz(4.1),
            Frequency::from_ghz(3.4),
        )),
        SimDuration::from_secs(30),
    );
    plane.register(
        Box::new(
            ScriptController::new(vec![
                (SimTime::from_secs(200), Action::FailServer { server: 0 }),
                (SimTime::from_secs(400), Action::RepairServer { server: 0 }),
            ])
            .expect("script events are time-sorted"),
        ),
        SimDuration::from_secs(15),
    );
    let fo_id = plane.register(
        Box::new(FailoverController::new(1.2)),
        SimDuration::from_secs(15),
    );

    let end = SimTime::from_secs(600);
    plane.run_until(end);

    let ticks = plane.ticks_total();
    let decision = plane
        .controller::<GovernorController>(gov_id)
        .and_then(|g| g.last_decision().cloned())
        .expect("governor ticked");
    let boosted = plane
        .controller::<FailoverController>(fo_id)
        .map(|f| f.boosted())
        .unwrap_or(false);

    let mut world = plane.into_world();
    let completions = world.sim_mut().take_completions();
    let snap = world.telemetry(end);
    let cluster = snap.cluster.clone().expect("fleet models placement");
    format!(
        "ticks={ticks} events={} completed={} vms={} parked={} failed={:?} \
         grants={:?} gov={:.4}GHz/{:?} boost={boosted} completions={completions:?}",
        world.sim().events_processed(),
        world.sim().completed_requests(),
        world.sim().active_vms().len(),
        world.parked().len(),
        cluster.failed_servers,
        world.grants(),
        decision.frequency.ghz(),
        decision.binding,
    )
}

#[test]
fn controller_runtime_is_deterministic() {
    // Two composed runs from the same seed agree on every observable,
    // down to each request's completion timestamp.
    let a = composed_digest(42);
    let b = composed_digest(42);
    assert_eq!(a, b);
    // The run exercised the interesting paths: ticks fired, requests
    // completed, the repair landed, and the boost was released.
    assert!(a.contains("failed=[]"), "{a}");
    assert!(a.contains("boost=false"), "{a}");
    assert!(!a.contains("completed=0 "), "{a}");
    // A different seed produces a genuinely different trajectory.
    assert_ne!(a, composed_digest(43));
}

#[test]
fn composed_records_identical_across_worker_counts() {
    // The composed run is a pure function of its seed: scattering it
    // across pools of different widths (the `IC_PAR_WORKERS` axis)
    // yields byte-identical digests in every slot.
    let baseline = composed_digest(42);
    for workers in [1usize, 2, 7] {
        let pool = ParPool::with_workers(workers);
        let digests = pool.scatter_gather(vec![42u64; 4], |_, seed| composed_digest(seed));
        assert_eq!(digests.len(), 4);
        for (slot, digest) in digests.iter().enumerate() {
            assert_eq!(
                digest, &baseline,
                "workers={workers} slot={slot} diverged from the serial run"
            );
        }
    }
}

/// End-to-end graceful degradation: a mid-run correctable-error burst
/// trips the [`DegradationController`] drain, the failover controller
/// re-places the evicted VM, the server returns after the cooldown —
/// and every layer of SLO accounting reconciles exactly with the one
/// commanded drain window, with no drift between the world's books and
/// the scorecard.
fn drain_recover_scorecard(seed: u64) -> (SloScorecard, f64, usize, usize) {
    // Pack the fleet to capacity (4 servers x 14 VMs at 1.2x oversub):
    // the drained server's VMs cannot be re-placed on the survivors, so
    // they park and ride out the outage in the failover queue.
    let mut config = FleetConfigBuilder::small(seed).initial_vms(56).build();
    // Fault bookkeeping on, but no scheduled faults: the only injection
    // is the scripted burst below.
    config.faults = Some(FaultConfig::disabled());
    let servers = config.servers;
    let world = FleetWorld::new(config);
    let mut plane = ControlPlane::new(world);

    // The seed VM lands on server 0; a 10-error burst there crosses the
    // drain threshold on the next degradation tick.
    plane.register(
        Box::new(
            ScriptController::new(vec![(
                SimTime::from_secs(200),
                Action::InjectErrorBurst {
                    server: 0,
                    count: 10,
                },
            )])
            .expect("script events are time-sorted"),
        ),
        SimDuration::from_secs(15),
    );
    let deg_id = plane.register(
        Box::new(DegradationController::new(DegradationPolicy {
            // Isolate the drain path: the fleet-wide de-OC cannot fire.
            fleet_errors_per_tick: u64::MAX,
            server_burst_errors: 5,
            deoc_ratio: 1.0,
            drain_cooldown_s: 90.0,
        })),
        SimDuration::from_secs(15),
    );
    plane.register(
        Box::new(FailoverController::new(1.2)),
        SimDuration::from_secs(15),
    );

    let end = SimTime::from_secs(600);
    plane.run_until(end);

    let drains = plane
        .controller::<DegradationController>(deg_id)
        .map(|d| d.drains())
        .unwrap_or(0);
    assert_eq!(drains, 1, "exactly one proactive drain");

    let mut world = plane.into_world();
    let completions = world.sim_mut().take_completions();
    let completions_s: Vec<(f64, f64)> = completions
        .iter()
        .map(|&(t, lat)| (t.as_secs_f64(), lat))
        .collect();
    let snap = world.telemetry(end);
    let faults = snap.faults.clone().expect("fault telemetry is on");
    assert_eq!(faults.error_bursts, 1);
    assert_eq!(faults.errors_by_server[0], 10);
    let cluster = snap.cluster.clone().expect("fleet models placement");

    let inputs = SloInputs {
        completions: &completions_s,
        horizon_s: 600.0,
        availability: world.availability(end),
        failures: world.failures_applied(),
        recovered_vms: world.recovered_vms(),
        error_bursts: faults.error_bursts,
        errors_total: faults.errors_by_server.iter().sum(),
    };
    let scorecard = SloScorecard::compute(
        &inputs,
        &LatencySlo {
            p95_s: 0.015,
            p99_s: 0.040,
        },
    );

    // The books reconcile: the drain opened at the degradation tick
    // after the burst (t = 210 s) and closed when the cooldown expired
    // (t = 300 s) — exactly 90 server-seconds of downtime, nothing
    // more, and availability is that same window over the fleet's
    // server-time.
    let downtime_s = world.downtime_s(end);
    assert!(
        (downtime_s - 90.0).abs() < 1e-9,
        "drain window drifted: {downtime_s} s"
    );
    let expected_avail = 1.0 - 90.0 / (servers as f64 * 600.0);
    assert!(
        (scorecard.availability - expected_avail).abs() < 1e-12,
        "availability {} vs expected {expected_avail}",
        scorecard.availability
    );
    assert_eq!(scorecard.failures, 1, "the drain is the only failure");
    assert!(
        scorecard.recovered_vms >= 1,
        "no evicted VM rode the failover queue back"
    );
    assert_eq!(scorecard.completed, completions.len() as u64);
    (
        scorecard,
        downtime_s,
        cluster.failed_servers.len(),
        world.parked().len(),
    )
}

#[test]
fn drained_server_recovers_without_slo_drift() {
    let (scorecard, _, failed_end, parked_end) = drain_recover_scorecard(42);
    // Fully healed at the horizon: no failed servers, no stranded VMs.
    assert_eq!(failed_end, 0);
    assert_eq!(parked_end, 0);
    assert!(scorecard.completed > 0);
    // The whole pipeline is a pure function of the seed — the scorecard
    // does not drift across reruns.
    let (again, downtime_again, _, _) = drain_recover_scorecard(42);
    assert_eq!(scorecard, again);
    assert!((downtime_again - 90.0).abs() < 1e-9);
}

#[test]
fn capped_datacenter_throttles_batch_sockets_first() {
    // Three sockets share a 700 W rack budget; the critical one keeps
    // its overclock while batch sockets are squeezed toward base power.
    let allocator = PowerAllocator::new(700.0);
    let requests = vec![
        PowerRequest {
            id: 0,
            priority: Priority::Critical,
            floor_w: 140.0,
            demand_w: 305.0,
        },
        PowerRequest {
            id: 1,
            priority: Priority::Normal,
            floor_w: 140.0,
            demand_w: 305.0,
        },
        PowerRequest {
            id: 2,
            priority: Priority::Batch,
            floor_w: 140.0,
            demand_w: 305.0,
        },
    ];
    let grants = allocator.allocate(&requests);
    let gov = governor();
    let freqs: Vec<Frequency> = grants
        .iter()
        .map(|g| gov.decide(Frequency::from_ghz(3.3), g.granted_w).frequency)
        .collect();
    // Critical socket got full demand → highest frequency.
    assert!(freqs[0] >= freqs[1]);
    assert!(freqs[1] >= freqs[2]);
    assert!(freqs[0] > freqs[2], "priority must matter: {freqs:?}");
    // The batch socket still runs (floor respected).
    assert!(freqs[2] >= CpuSku::skylake_8180().base());
}

#[test]
fn governor_and_wear_tracker_manage_red_band_spending() {
    let gov = governor();
    let model = CompositeLifetimeModel::fitted_5nm();
    let mut wear = WearTracker::new(5.0);

    // Year 1: moderate utilization banks credit.
    let nominal = OperatingConditions::new(0.90, 51.0, 35.0);
    wear.accrue_with_utilization(&model, &nominal, 1.0, 0.4);
    assert!(wear.credit_years(1.0) > 0.5);

    // The banked credit affords a year in the red band (well beyond the
    // governor's lifetime ceiling).
    let red_f = gov.lifetime_ceiling().step_bins(3);
    let v = gov.sku().voltage_for(red_f);
    let iface = ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0);
    let ss = gov.sku().steady_state(&iface, red_f, v);
    let red = OperatingConditions::new(v.volts(), ss.tj_c, 35.0);
    assert!(wear.can_afford(&model, &red, 1.0, &nominal));

    // But not indefinitely.
    assert!(!wear.can_afford(&model, &red, 4.0, &nominal));
}

#[test]
fn bottleneck_analysis_steers_the_overclock_target() {
    // A memory-bound VM should not trigger core overclocking.
    let mut counters = CoreCounters::new();
    let t0 = counters.sample(0.0);
    counters.advance(0.9, 3.4e9, 0.65);
    let delta = counters.sample(1.0).since(&t0);
    let analysis = analyze(&delta, BottleneckThresholds::default());
    assert_eq!(analysis.target, OverclockTarget::Memory);

    // Equation 1 agrees: core frequency barely moves its utilization.
    let predicted = immersion_cloud::telemetry::eq1::predict_utilization(
        analysis.utilization,
        analysis.productivity,
        3.4,
        4.1,
    );
    assert!(predicted > analysis.utilization * 0.90);
}

#[test]
fn failure_storm_with_virtual_buffer() {
    // A 12-server fleet at moderate fill absorbs two sequential
    // failures by boosting survivors; the third failure on a full
    // cluster finally strands VMs — and reports it honestly.
    let mut cluster = Cluster::new(
        vec![ServerSpec::open_compute(); 12],
        PlacementPolicy::WorstFit,
        Oversubscription::ratio(1.2),
    );
    for _ in 0..36 {
        cluster
            .create_vm(
                SimTime::ZERO,
                VmSpec::new(12, 32.0).with_class(VmClass::Regular),
            )
            .expect("room");
    }
    let boost = Frequency::from_ghz(3.3);

    let r1 = absorb_failure(&mut cluster, SimTime::from_secs(10), 0, boost).unwrap();
    assert!(r1.failover.unplaced.is_empty(), "{r1:?}");
    let r2 = absorb_failure(&mut cluster, SimTime::from_secs(20), 1, boost).unwrap();
    assert!(r2.failover.unplaced.is_empty(), "{r2:?}");
    assert_eq!(cluster.vm_count(), 36);

    // Fill the remaining capacity completely, then lose another server.
    cluster.fill_with(SimTime::from_secs(30), VmSpec::new(12, 32.0));
    let r3 = absorb_failure(&mut cluster, SimTime::from_secs(40), 2, boost).unwrap();
    assert!(
        !r3.failover.unplaced.is_empty(),
        "full cluster cannot absorb"
    );
}

#[test]
fn oversubscribed_fleet_keeps_power_within_provisioned_budget() {
    // Overclocking every socket in a 10-server rack would breach a
    // 5 kW provision; the allocator + governor keep the draw legal.
    let sku = CpuSku::skylake_8180();
    let iface = ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 1.6);
    let gov = OverclockGovernor::new(
        sku.clone(),
        iface.clone(),
        CompositeLifetimeModel::fitted_5nm(),
        StabilityModel::paper_characterization(),
        GovernorConfig {
            target_lifetime_years: 4.0,
            tj_min_c: 50.0,
        },
    );
    let budget = 5_000.0;
    let allocator = PowerAllocator::new(budget);
    let requests: Vec<PowerRequest> = (0..20) // 10 servers × 2 sockets
        .map(|i| PowerRequest {
            id: i,
            priority: if i < 4 {
                Priority::Critical
            } else {
                Priority::Normal
            },
            floor_w: 150.0,
            demand_w: 305.0,
        })
        .collect();
    assert!(allocator.is_oversubscribed(&requests));
    let grants = allocator.allocate(&requests);

    let mut total = 0.0;
    for g in &grants {
        let d = gov.decide(Frequency::from_ghz(3.4), g.granted_w);
        let v = sku.voltage_for(d.frequency);
        total += sku.steady_state(&iface, d.frequency, v).power_w;
        // Every socket still at or above base frequency.
        assert!(d.frequency >= sku.base());
    }
    assert!(
        total <= budget * 1.01,
        "fleet draw {total:.0} W exceeds budget {budget} W"
    );
    // Critical sockets got at least as much frequency as normal ones.
    let crit = gov
        .decide(Frequency::from_ghz(3.4), grants[0].granted_w)
        .frequency;
    let norm = gov
        .decide(Frequency::from_ghz(3.4), grants[10].granted_w)
        .frequency;
    assert!(crit >= norm);
}

#[test]
fn stability_constraint_binds_before_crash_territory() {
    let gov = governor();
    let d = gov.decide(Frequency::from_ghz(4.5), 10_000.0);
    assert!(d.frequency <= gov.stability_ceiling());
    assert!(matches!(
        d.binding,
        Constraint::Stability | Constraint::Lifetime
    ));
    let stability = StabilityModel::paper_characterization();
    let turbo = gov.sku().air_turbo().step_bins(1);
    let ratio = d.frequency.ratio_to(turbo);
    assert!(!stability.crash_risk(ratio), "granted ratio {ratio}");
}
