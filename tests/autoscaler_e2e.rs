//! End-to-end auto-scaler experiments: the Figure 15 model validation
//! and a shortened Table XI comparison (the full 45-minute ramp runs in
//! the bench harness).

use immersion_cloud::autoscale::policy::Policy;
use immersion_cloud::autoscale::runner::{ramp_schedule, Runner, RunnerConfig};
use immersion_cloud::sim::SimTime;

fn short_config() -> RunnerConfig {
    let mut cfg = RunnerConfig::paper();
    cfg.schedule = ramp_schedule(500.0, 2500.0, 500.0, 300.0);
    cfg
}

#[test]
fn figure15_model_validation() {
    // Scale-up/down only (3 fixed VMs) through the 1000/2000/500/3000/
    // 1000 QPS schedule: every frequency increase must lower
    // utilization, and the frequency must track the load shape.
    let result = Runner::new(RunnerConfig::validation(), Policy::OcA, 42).run();

    // VM count pinned to 3 throughout.
    assert_eq!(result.max_vms, 3);
    assert!(result
        .vm_count
        .points()
        .iter()
        .all(|&(_, v)| (v - 3.0).abs() < 1e-9));

    // During the 2000-QPS phase (t in [300, 600)) the auto-scaler
    // overclocks; during the 500-QPS phase (t in [600, 900)) it returns
    // to base frequency.
    let f_high = result
        .frequency_pct
        .value_at(SimTime::from_secs(550))
        .unwrap();
    let f_low = result
        .frequency_pct
        .value_at(SimTime::from_secs(880))
        .unwrap();
    assert!(f_high > 50.0, "should overclock under 2000 QPS: {f_high}%");
    assert!(f_low < 10.0, "should relax at 500 QPS: {f_low}%");

    // At 3000 QPS utilization would exceed the scale-out threshold at
    // base frequency (3000·0.0028/12 = 0.70); overclocking pulls it
    // down substantially (the paper's Figure 15 shows the same shape).
    let util_at_peak = result
        .utilization
        .value_at(SimTime::from_secs(1150))
        .unwrap();
    assert!(
        util_at_peak < 70.0,
        "overclocking should hold utilization below the raw 70%: {util_at_peak}"
    );
}

#[test]
fn frequency_increase_lowers_utilization() {
    // The core claim behind Equation 1's validation: find any step where
    // frequency rose while load was constant and check utilization fell
    // shortly after.
    let result = Runner::new(RunnerConfig::validation(), Policy::OcA, 7).run();
    let freq = result.frequency_pct.points();
    let mut checked = 0;
    for pair in freq.windows(2) {
        let (t0, f0) = pair[0];
        let (t1, f1) = pair[1];
        // A frequency step-up strictly inside the 2000-QPS phase.
        if f1 > f0 + 20.0 && t0 > SimTime::from_secs(310) && t1 < SimTime::from_secs(560) {
            let before = result.utilization.value_at(t0).unwrap();
            let after = result
                .utilization
                .value_at(t1 + immersion_cloud::sim::SimDuration::from_secs(30))
                .unwrap();
            assert!(
                after < before + 1.0,
                "utilization should not rise after a frequency boost: {before} -> {after}"
            );
            checked += 1;
        }
    }
    assert!(
        checked > 0,
        "expected at least one frequency step to verify"
    );
}

#[test]
fn table11_shortened_comparison() {
    let (base, oce, oca) = (
        Runner::new(short_config(), Policy::Baseline, 42).run(),
        Runner::new(short_config(), Policy::OcE, 42).run(),
        Runner::new(short_config(), Policy::OcA, 42).run(),
    );

    // Tail latency: both overclocking policies beat the baseline, OC-A
    // beats OC-E (paper: 0.58 and 0.46).
    let oce_p95 = oce.p95_latency_s / base.p95_latency_s;
    let oca_p95 = oca.p95_latency_s / base.p95_latency_s;
    assert!(oce_p95 < 0.9, "OC-E norm P95 {oce_p95}");
    assert!(oca_p95 < 0.9, "OC-A norm P95 {oca_p95}");
    assert!(oca_p95 <= oce_p95 + 0.05, "OC-A should be at least as good");

    // Average latency improves even more (paper: 0.27 / 0.23).
    assert!(oce.avg_latency_s / base.avg_latency_s < 0.5);
    assert!(oca.avg_latency_s / base.avg_latency_s < 0.5);

    // OC-A runs fewer VMs (paper: 5 vs 6 on the full ramp).
    assert!(oca.max_vms < base.max_vms);
    assert_eq!(oce.max_vms, base.max_vms);

    // And saves VM×hours for the customer (paper: 11 %).
    let saving = 1.0 - oca.vm_hours / base.vm_hours;
    assert!(saving > 0.05, "VM-hours saving {saving}");

    // Power: overclocking costs the provider energy; OC-A (sustained
    // overclock) costs more than OC-E (bursts only).
    assert!(oca.avg_power_w > base.avg_power_w);
    assert!(oca.avg_power_w > oce.avg_power_w);

    // Identical arrivals were served in all three runs.
    assert_eq!(base.completed, oce.completed);
    assert!((base.completed as f64 - oca.completed as f64).abs() < 10.0);
}

#[test]
fn runs_are_reproducible_across_invocations() {
    let a = Runner::new(short_config(), Policy::OcE, 99).run();
    let b = Runner::new(short_config(), Policy::OcE, 99).run();
    assert_eq!(a.p95_latency_s, b.p95_latency_s);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.utilization.points(), b.utilization.points());
}
