//! End-to-end runs over diurnal load: the auto-scaler riding a
//! day/night curve, and the power-valley overclocking argument.

use immersion_cloud::autoscale::policy::Policy;
use immersion_cloud::autoscale::runner::{Runner, RunnerConfig};
use immersion_cloud::power::capping::{PowerAllocator, PowerRequest, Priority};
use immersion_cloud::workloads::loadgen::{DiurnalLoad, SpikeTrain};

#[test]
fn autoscaler_follows_a_diurnal_curve() {
    // One compressed "day" (2 hours) with a 3:1 peak-to-trough ratio.
    let day = DiurnalLoad::new(600.0, 1400.0, 7200.0);
    let mut cfg = RunnerConfig::paper();
    cfg.schedule = day.to_schedule(24);
    cfg.initial_vms = 1;

    let r = Runner::new(cfg, Policy::OcA, 42).run();

    // The fleet grows toward the crest and shrinks after it: the VM
    // count series must rise then fall.
    let peak_vms = r
        .vm_count
        .points()
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max);
    let final_vms = r.vm_count.points().last().map(|&(_, v)| v).unwrap();
    assert!(peak_vms >= 2.0, "should scale out toward the crest");
    assert!(
        final_vms < peak_vms,
        "should scale in on the downslope: final {final_vms} vs peak {peak_vms}"
    );
    assert!(r.completed > 100_000);
}

#[test]
fn oca_overclocks_on_the_upslope_and_relaxes_in_the_trough() {
    let day = DiurnalLoad::new(400.0, 700.0, 7200.0).with_phase(-1800.0);
    let mut cfg = RunnerConfig::paper();
    cfg.schedule = day.to_schedule(24);
    let r = Runner::new(cfg, Policy::OcA, 7).run();

    // The frequency series must actually move in both directions.
    let f_max = r.frequency_pct.max().unwrap();
    let f_min = r
        .frequency_pct
        .points()
        .iter()
        .skip(50)
        .map(|&(_, f)| f)
        .fold(f64::MAX, f64::min);
    assert!(f_max > 50.0, "should overclock near the crest: {f_max}");
    assert!(f_min < 20.0, "should relax in the trough: {f_min}");
}

#[test]
fn diurnal_valleys_leave_power_headroom_for_overclocking() {
    // The Section IV argument: a power-oversubscribed rack can overclock
    // in the load valleys without tripping capping. Quantify it.
    let day = DiurnalLoad::daily(1000.0, 2000.0);
    // Suppose capping-free overclocking needs the load below 60 % of
    // crest (power roughly tracks load).
    let threshold = 0.60 * day.crest_qps();
    let headroom_fraction = day.fraction_below(threshold);
    assert!(
        headroom_fraction > 0.4,
        "valleys should cover a large share of the day: {headroom_fraction}"
    );

    // And an allocator view: at trough load the rack fits everyone's
    // overclock demand; at crest it does not.
    let rack = PowerAllocator::new(3200.0);
    let demand_at = |qps: f64| -> Vec<PowerRequest> {
        // 10 sockets; power demand scales with load share.
        let share = qps / day.crest_qps();
        (0..10)
            .map(|i| PowerRequest {
                id: i,
                priority: Priority::Normal,
                floor_w: 150.0,
                demand_w: 150.0 + 155.0 * share + 100.0, // base + load + overclock ask
            })
            .collect()
    };
    assert!(!rack.is_oversubscribed(&demand_at(day.trough_qps())));
    assert!(rack.is_oversubscribed(&demand_at(day.crest_qps())));
}

#[test]
fn spike_on_diurnal_base_forces_extra_scale_out() {
    let day = DiurnalLoad::new(500.0, 500.0, 7200.0);
    let base_schedule = day.to_schedule(24);
    let spiked_schedule = SpikeTrain::new()
        .spike(1800.0, 900.0, 2.2)
        .apply(&base_schedule);

    let run = |schedule: Vec<(f64, f64)>| {
        let mut cfg = RunnerConfig::paper();
        cfg.schedule = schedule;
        Runner::new(cfg, Policy::Baseline, 11).run()
    };
    let calm = run(base_schedule);
    let spiked = run(spiked_schedule);
    assert!(
        spiked.max_vms > calm.max_vms,
        "the spike should force extra capacity: {} vs {}",
        spiked.max_vms,
        calm.max_vms
    );
}
