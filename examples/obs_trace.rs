//! Observability end-to-end: runs the Table XI auto-scaler scenario
//! with structured tracing and metrics attached, then prints the
//! per-policy summary *from the recorded metrics alone* — the
//! `RunResult` is thrown away to prove the registry captures enough.
//!
//! ```sh
//! cargo run --release --example obs_trace
//! ```

use immersion_cloud::autoscale::policy::Policy;
use immersion_cloud::autoscale::runner::{ramp_schedule, Runner, RunnerConfig};
use immersion_cloud::obs::{shared_recorder, shared_registry};

fn main() {
    println!("== traced auto-scaling (Table XI scenario) ==\n");
    // The shortened 500 -> 2500 QPS ramp; RunnerConfig::paper() gives
    // the full experiment.
    let mut config = RunnerConfig::paper();
    config.schedule = ramp_schedule(500.0, 2500.0, 500.0, 300.0);

    println!(
        "{:10} {:>10} {:>10} {:>10} {:>9} {:>8} {:>9}",
        "Config", "Decisions", "ScaleOut", "ScaleIn", "P95 ms", "MaxVMs", "VMxHours"
    );
    let mut sample_lines: Vec<String> = Vec::new();
    let mut kind_counts: Vec<(String, u64)> = Vec::new();
    for policy in [Policy::Baseline, Policy::OcE, Policy::OcA] {
        let trace = shared_recorder(1 << 18);
        let metrics = shared_registry();
        // Deliberately discard the RunResult: everything printed below
        // comes from the observability layer.
        let _ = Runner::new(config.clone(), policy, 42)
            .with_trace(trace.clone())
            .with_metrics(metrics.clone())
            .run();

        let reg = metrics.borrow();
        println!(
            "{:10} {:>10} {:>10} {:>10} {:>9.2} {:>8} {:>9.2}",
            format!("{policy:?}"),
            reg.counter("asc_decisions_total{step}"),
            reg.counter("asc_decisions_total{scale_out}"),
            reg.counter("asc_decisions_total{scale_in}"),
            reg.gauge("runner_p95_latency_s").unwrap_or(f64::NAN) * 1e3,
            reg.gauge("runner_max_vms").unwrap_or(f64::NAN),
            reg.gauge("runner_vm_hours").unwrap_or(f64::NAN),
        );

        if matches!(policy, Policy::OcA) {
            let rec = trace.borrow();
            for ((target, kind), n) in rec.counts_by_kind() {
                kind_counts.push((format!("{target}/{kind}"), n));
            }
            sample_lines = rec
                .to_jsonl()
                .lines()
                .filter(|l| {
                    l.contains("\"kind\":\"freq_change\"") || l.contains("\"kind\":\"scale_out\"")
                })
                .take(4)
                .map(str::to_string)
                .collect();
        }
    }

    println!("\nOC-A trace events by kind:");
    for (kind, n) in &kind_counts {
        println!("  {kind:24} {n:>7}");
    }

    println!("\nSample OC-A trace records (JSONL):");
    for line in &sample_lines {
        println!("  {line}");
    }
}
