//! Counter-based bottleneck analysis: deciding *which component* to
//! overclock for an opaque VM, from Aperf/Pperf telemetry alone
//! (paper Sections IV "Performance" and V).
//!
//! ```sh
//! cargo run --example bottleneck_tuning
//! ```

use immersion_cloud::core::bottleneck::{analyze, BottleneckThresholds};
use immersion_cloud::telemetry::counters::CoreCounters;
use immersion_cloud::telemetry::eq1::predict_utilization;
use immersion_cloud::workloads::apps::AppProfile;
use immersion_cloud::workloads::configs::CpuConfig;
use immersion_cloud::workloads::perfmodel::improvement_pct;

fn main() {
    println!("== which component should we overclock? ==\n");
    println!(
        "{:14} {:>12} {:>12} {:>16} {:>10} {:>10}",
        "App", "Productivity", "Target", "Eq1 util 60%->", "OC1 gain", "OC3 gain"
    );

    let b2 = CpuConfig::b2();
    for app in AppProfile::cpu_suite() {
        // Emulate 30 s of the app running busy on one core: the counters
        // see its stall fraction.
        let mut counters = CoreCounters::new();
        let before = counters.sample(0.0);
        counters.advance(27.0, 3.4e9, app.bottleneck().stall_fraction());
        let delta = counters.sample(30.0).since(&before);

        let analysis = analyze(&delta, BottleneckThresholds::default());
        let predicted = predict_utilization(0.60, analysis.productivity, 3.4, 4.1);

        println!(
            "{:14} {:>12.2} {:>12} {:>15.1}% {:>9.1}% {:>9.1}%",
            app.name(),
            analysis.productivity,
            format!("{:?}", analysis.target),
            predicted * 100.0,
            improvement_pct(&app, &CpuConfig::oc1(), &b2),
            improvement_pct(&app, &CpuConfig::oc3(), &b2),
        );
    }

    println!(
        "\nReading: high productivity (BI, Training) -> core overclocking \
         captures nearly all the gain;\nlow productivity (TeraSort, DiskSpeed) \
         -> core alone is wasteful, uncore/memory must come along."
    );
}
