//! The unified control plane: auto-scaling, priority power capping,
//! the overclock governor, and virtual failover buffers all driving
//! one simulated fleet on one clock (paper Sections IV-VI).
//!
//! Each loop is a `Controller` registered with the `ControlPlane`
//! scheduler at its own cadence; a scripted mid-run server failure
//! exercises the failover path end to end.
//!
//! ```sh
//! cargo run --release --example control_plane
//! ```

use immersion_cloud::autoscale::asc::AutoScaler;
use immersion_cloud::autoscale::policy::{AscConfig, Policy};
use immersion_cloud::controlplane::controllers::{
    FailoverController, GovernorController, PowerCapController, ScriptController,
};
use immersion_cloud::controlplane::{Action, ControlPlane, FleetConfigBuilder, FleetWorld, World};
use immersion_cloud::core::governor::{GovernorConfig, OverclockGovernor};
use immersion_cloud::power::capping::PowerAllocator;
use immersion_cloud::power::cpu::CpuSku;
use immersion_cloud::power::units::Frequency;
use immersion_cloud::reliability::lifetime::CompositeLifetimeModel;
use immersion_cloud::reliability::stability::StabilityModel;
use immersion_cloud::sim::stats::Tally;
use immersion_cloud::sim::time::{SimDuration, SimTime};
use immersion_cloud::thermal::fluid::DielectricFluid;
use immersion_cloud::thermal::junction::ThermalInterface;

fn main() {
    println!("== one fleet, four control loops, one clock ==\n");

    // A small oversubscribed fleet: 4 immersed servers, a 500 W power
    // budget split across a critical and a batch domain, and a QPS
    // schedule that ramps 500 -> 1500 over ten minutes.
    let config = FleetConfigBuilder::small(42).build();
    let budget_w = config.budget_w;
    let last_s = config.schedule.last().map(|&(t, _)| t).unwrap_or(0.0);
    let end_s = last_s + 300.0;
    let (fail_at_s, repair_at_s) = (450.0, 750.0);
    println!(
        "fleet: {} servers, {:.0} W budget, horizon {end_s:.0} s",
        config.servers, budget_w
    );
    println!(
        "injected fault: server 0 fails at {fail_at_s:.0} s, repaired at {repair_at_s:.0} s\n"
    );

    let world = FleetWorld::new(config);
    let mut plane = ControlPlane::new(world);

    // The auto-scaler reacts fastest (scale-up-then-out, OC-A policy).
    let asc_cfg = AscConfig::paper();
    let asc_period = SimDuration::from_secs_f64(asc_cfg.decision_period_s);
    plane.register(Box::new(AutoScaler::new(asc_cfg, Policy::OcA)), asc_period);

    // Power capping re-plans every 30 s; the governor shares the
    // cadence and is registered after it so fresh grants land first.
    plane.register(
        Box::new(PowerCapController::new(PowerAllocator::new(budget_w))),
        SimDuration::from_secs(30),
    );
    let governor = OverclockGovernor::new(
        CpuSku::skylake_8180(),
        ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0),
        CompositeLifetimeModel::fitted_5nm(),
        StabilityModel::paper_characterization(),
        GovernorConfig::default(),
    );
    let gov_id = plane.register(
        Box::new(GovernorController::new(
            governor,
            Frequency::from_ghz(4.1),
            Frequency::from_ghz(3.4),
        )),
        SimDuration::from_secs(30),
    );

    // The fault script injects the failure/repair; the failover
    // controller watches for it and boosts the survivors (the virtual
    // buffer of Section V).
    plane.register(
        Box::new(
            ScriptController::new(vec![
                (
                    SimTime::from_secs_f64(fail_at_s),
                    Action::FailServer { server: 0 },
                ),
                (
                    SimTime::from_secs_f64(repair_at_s),
                    Action::RepairServer { server: 0 },
                ),
            ])
            .expect("script events are time-sorted"),
        ),
        SimDuration::from_secs(15),
    );
    let fo_id = plane.register(
        Box::new(FailoverController::new(1.2)),
        SimDuration::from_secs(15),
    );

    plane.run_until(SimTime::from_secs_f64(end_s));

    println!(
        "after {:.0} s and {} control ticks:",
        end_s,
        plane.ticks_total()
    );
    let decision = plane
        .controller::<GovernorController>(gov_id)
        .and_then(|g| g.last_decision().cloned())
        .expect("governor ticked");
    let boosted = plane
        .controller::<FailoverController>(fo_id)
        .map(|f| f.boosted())
        .unwrap_or(false);

    let end = SimTime::from_secs_f64(end_s);
    let mut world = plane.into_world();
    print!("  power grants:");
    for (domain, watts) in world.grants() {
        print!(" domain {domain} -> {watts:.0} W;");
    }
    println!();
    println!(
        "  governor settled at {:.2} GHz on the squeezed grant (bound by {:?})",
        decision.frequency.ghz(),
        decision.binding
    );

    let mut latencies: Tally = world
        .sim_mut()
        .take_completions()
        .into_iter()
        .map(|(_, lat)| lat)
        .collect();
    let cluster = world
        .telemetry(end)
        .cluster
        .clone()
        .expect("fleet models placement");
    println!(
        "  served {} requests, P95 {:.1} ms",
        world.sim().completed_requests(),
        latencies.percentile(0.95) * 1e3
    );
    println!(
        "  end state: {} serving VMs, {} parked, {} failed servers, survivor boost {}",
        world.sim().active_vms().len(),
        world.parked().len(),
        cluster.failed_servers.len(),
        if boosted { "engaged" } else { "released" }
    );
    println!(
        "\nThe same wiring runs as a recorded experiment: \
         `cargo run --release -p ic-bench --bin composed_controlplane`."
    );
}
