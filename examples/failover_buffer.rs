//! Virtual failover buffers (paper Section V, Figure 6): run VMs on all
//! capacity, inject a server failure, and absorb it by overclocking the
//! survivors.
//!
//! ```sh
//! cargo run --example failover_buffer
//! ```

use immersion_cloud::cluster::cluster::Cluster;
use immersion_cloud::cluster::placement::{Oversubscription, PlacementPolicy};
use immersion_cloud::cluster::server::ServerSpec;
use immersion_cloud::cluster::vm::VmSpec;
use immersion_cloud::core::usecases::buffer::{
    absorb_failure, static_buffer_servers, virtual_buffer_servers,
};
use immersion_cloud::power::units::Frequency;

fn main() {
    println!("== virtual failover buffers ==\n");

    // 1. Buffer sizing: static vs virtual.
    let fleet = 24;
    let tolerated = 2;
    let headroom = 1.22; // green band of the immersed Open Compute blades
    println!("Fleet of {fleet} servers, tolerating {tolerated} concurrent failures:");
    println!(
        "  static buffer : {} idle spare servers",
        static_buffer_servers(tolerated)
    );
    println!(
        "  virtual buffer: {} spares (survivors overclock x{headroom})\n",
        virtual_buffer_servers(fleet, tolerated, headroom)
    );

    // 2. Inject a failure and watch the absorption.
    let mut cluster = Cluster::new(
        vec![ServerSpec::open_compute(); 8],
        PlacementPolicy::WorstFit,
        Oversubscription::ratio(1.22),
    );
    for _ in 0..20 {
        cluster
            .create_vm(VmSpec::new(12, 48.0))
            .expect("fleet has room");
    }
    println!(
        "Before failure: {} VMs on 8 servers (density {:.2})",
        cluster.vm_count(),
        cluster.packing_density()
    );

    let report =
        absorb_failure(&mut cluster, 2, Frequency::from_ghz(3.3)).expect("server index is valid");
    println!("\nServer 2 failed!");
    println!(
        "  re-created {} VMs on survivors, {} unplaced",
        report.failover.recreated.len(),
        report.failover.unplaced.len()
    );
    println!(
        "  survivors boosted to {} (residual capacity deficit {:.0}%)",
        report.boosted_frequency,
        report.residual_deficit * 100.0
    );
    println!(
        "  after failure: {} VMs on {} healthy servers (density {:.2})",
        cluster.vm_count(),
        cluster.servers().iter().filter(|s| !s.is_failed()).count(),
        cluster.packing_density()
    );
}
