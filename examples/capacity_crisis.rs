//! Capacity-crisis mitigation (paper Section V, Figure 7): bridging a
//! supply/demand gap with overclock-backed oversubscription until new
//! servers land.
//!
//! ```sh
//! cargo run --example capacity_crisis
//! ```

use immersion_cloud::core::usecases::capacity::{CapacitySnapshot, CapacityTimeline};

fn main() {
    println!("== capacity-crisis mitigation ==\n");

    // A year of quarters: demand grows faster than forecast while a new
    // building slips two quarters.
    let timeline = CapacityTimeline::new(vec![
        CapacitySnapshot {
            demand_vcores: 80_000.0,
            supply_vcores: 100_000.0,
        },
        CapacitySnapshot {
            demand_vcores: 105_000.0,
            supply_vcores: 100_000.0,
        },
        CapacitySnapshot {
            demand_vcores: 118_000.0,
            supply_vcores: 100_000.0,
        },
        CapacitySnapshot {
            demand_vcores: 126_000.0,
            supply_vcores: 150_000.0,
        },
    ]);

    let headroom = 1.22; // overclocking compensates up to 22 % oversubscription
    let memory_cap = 1.15; // stranded memory covers 15 % more VMs

    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>10}",
        "Quarter", "Demand", "Supply", "Gap", "Bridged?"
    );
    for (i, p) in timeline.periods().iter().enumerate() {
        println!(
            "{:>8} {:>12.0} {:>12.0} {:>10.0} {:>10}",
            format!("Q{}", i + 1),
            p.demand_vcores,
            p.supply_vcores,
            p.gap_vcores(),
            if p.gap_vcores() == 0.0 {
                "-"
            } else if p.bridged_by(headroom, memory_cap) {
                "yes"
            } else {
                "partly"
            }
        );
    }

    println!(
        "\nCrisis quarters: {} of {}",
        timeline.crisis_periods(),
        timeline.periods().len()
    );
    println!(
        "Quarters fully bridged by overclocking: {}",
        timeline.bridged_periods(headroom, memory_cap)
    );
    let (without, with) = timeline.denied_vcore_periods(headroom, memory_cap);
    println!(
        "Denied vcore-quarters: {without:.0} without overclocking, {with:.0} with ({:.0}% reduction)",
        (1.0 - with / without.max(1e-9)) * 100.0
    );
}
