//! Dense VM packing via oversubscription + overclocking, with its TCO
//! impact (paper Sections V and VI-C).
//!
//! ```sh
//! cargo run --example dense_packing
//! ```

use immersion_cloud::cluster::cluster::Cluster;
use immersion_cloud::cluster::placement::{Oversubscription, PlacementPolicy};
use immersion_cloud::cluster::server::ServerSpec;
use immersion_cloud::cluster::vm::VmSpec;
use immersion_cloud::core::usecases::packing::{max_neutral_ratio, plan_packing};
use immersion_cloud::power::units::Frequency;
use immersion_cloud::sim::time::SimTime;
use immersion_cloud::tco::{CoolingScenario, TcoModel};

fn main() {
    println!("== dense VM packing via overclocking ==\n");

    // 1. How much oversubscription can overclocking compensate?
    let base = Frequency::from_ghz(3.4);
    let green_top = Frequency::from_ghz(4.1);
    println!(
        "Green-band headroom: {:.0}% over base",
        (max_neutral_ratio(base, green_top) - 1.0) * 100.0
    );
    let plan = plan_packing(base, green_top, 1.20).expect("within headroom");
    println!(
        "Plan: sell {:.0}% more vcores, compensate at {}\n",
        (plan.oversubscription.as_ratio() - 1.0) * 100.0,
        plan.compensating_frequency
    );

    // 2. Pack a small fleet both ways and compare density.
    let fleet = || {
        Cluster::new(
            vec![ServerSpec::open_compute(); 10],
            PlacementPolicy::BestFit,
            Oversubscription::none(),
        )
    };
    let vm = VmSpec::new(4, 16.0);

    let mut plain = fleet();
    let n_plain = plain.fill_with(SimTime::ZERO, vm).len();

    let mut dense = fleet();
    dense.set_oversubscription(plan.oversubscription);
    let n_dense = dense.fill_with(SimTime::ZERO, vm).len();
    for i in 0..dense.servers().len() {
        dense
            .server_mut(i)
            .expect("server exists")
            .set_frequency(plan.compensating_frequency);
    }

    println!("10 × 48-core servers, 4-vcore VMs:");
    println!(
        "  1:1 packing      : {:3} VMs (density {:.2})",
        n_plain,
        plain.packing_density()
    );
    println!(
        "  overclock-backed : {:3} VMs (density {:.2}) -> +{:.0}% VMs",
        n_dense,
        dense.packing_density(),
        (n_dense as f64 / n_plain as f64 - 1.0) * 100.0
    );

    // 3. The SLO view of the same trade (the generalized Figure 12):
    //    cores needed to hold a P95 target, base vs overclocked.
    use immersion_cloud::workloads::slo::{reclaimed_capacity, LatencySlo};
    let slo = LatencySlo::new(0.95, 0.034);
    if let Some((base_cores, oc_cores)) = reclaimed_capacity(1150.0, 0.010, 1.5, slo, 1.206, 64) {
        println!(
            "\nHolding a 34 ms P95 at 1150 QPS: {base_cores} cores at B2 vs {oc_cores} overclocked \
             ({} cores reclaimed)",
            base_cores - oc_cores
        );
    }

    // 4. The TCO story (Table VI + Section VI-C).
    let tco = TcoModel::paper();
    println!("\n{}", tco.render_table6());
    let vcore = tco.cost_per_vcore_relative(CoolingScenario::Overclockable2pic, 1.10);
    println!(
        "Cost per virtual core at 10% oversubscription: {:.0}% vs air baseline",
        (vcore - 1.0) * 100.0
    );
}
