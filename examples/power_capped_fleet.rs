//! Power-oversubscribed overclocking: a rack/row/facility hierarchy
//! with priority-aware capping feeding per-socket governor decisions
//! (paper Section IV, "Power consumption").
//!
//! ```sh
//! cargo run --example power_capped_fleet
//! ```

use immersion_cloud::core::governor::{GovernorConfig, OverclockGovernor};
use immersion_cloud::power::capping::{PowerRequest, Priority};
use immersion_cloud::power::cpu::CpuSku;
use immersion_cloud::power::hierarchy::PowerDomain;
use immersion_cloud::power::rapl::{RaplConfig, RaplController};
use immersion_cloud::power::units::Frequency;
use immersion_cloud::reliability::lifetime::CompositeLifetimeModel;
use immersion_cloud::reliability::stability::StabilityModel;
use immersion_cloud::thermal::fluid::DielectricFluid;
use immersion_cloud::thermal::junction::ThermalInterface;

fn rack(name: &str, budget_w: f64, sockets: u64, priority: Priority) -> PowerDomain {
    PowerDomain::leaf(
        name,
        budget_w,
        (0..sockets)
            .map(|i| PowerRequest {
                id: i,
                priority,
                floor_w: 150.0,  // base-frequency draw
                demand_w: 305.0, // full overclock ask
            })
            .collect(),
    )
}

fn main() {
    println!("== overclocking under an oversubscribed power hierarchy ==\n");

    // A row with one latency-critical rack and two batch racks, under a
    // facility breaker sized for ~70 % of the aggregate overclock ask.
    let row = PowerDomain::interior(
        "row-7",
        13_000.0,
        vec![
            rack("rack-crit", 6_000.0, 16, Priority::Critical),
            rack("rack-b1", 6_000.0, 16, Priority::Batch),
            rack("rack-b2", 6_000.0, 16, Priority::Batch),
        ],
    );
    println!(
        "Aggregate demand {:.0} W vs row budget {:.0} W (oversubscription {:.2})\n",
        row.total_demand_w(),
        row.budget_w(),
        row.oversubscription()
    );

    let grants = row.resolve();
    let sku = CpuSku::skylake_8180();
    let tank = ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0);
    let governor = OverclockGovernor::new(
        sku.clone(),
        tank.clone(),
        CompositeLifetimeModel::fitted_5nm(),
        StabilityModel::paper_characterization(),
        GovernorConfig::default(),
    );

    // Summarize per rack: average grant and the frequency it buys.
    for rack_name in ["rack-crit", "rack-b1", "rack-b2"] {
        let rack_grants: Vec<f64> = grants
            .iter()
            .filter(|(n, _)| n == rack_name)
            .map(|(_, g)| g.granted_w)
            .collect();
        let avg = rack_grants.iter().sum::<f64>() / rack_grants.len() as f64;
        let decision = governor.decide(Frequency::from_ghz(3.3), avg);
        println!(
            "{rack_name:10}: avg grant {avg:6.1} W -> {} (bound by {:?})",
            decision.frequency, decision.binding
        );
    }

    // And the closed-loop view: what does a RAPL capper settle to under
    // the batch racks' per-socket grant?
    let batch_grant = grants
        .iter()
        .find(|(n, _)| n == "rack-b1")
        .map(|(_, g)| g.granted_w)
        .expect("rack exists");
    let mut rapl = RaplController::new(
        RaplConfig::pl1(batch_grant),
        sku.base(),
        Frequency::from_ghz(3.3),
    );
    let settled = rapl.settle(&sku, &tank, 20, 1000);
    println!(
        "\nRAPL under the batch grant ({batch_grant:.0} W) settles at {settled} \
         — matching the governor's open-form answer."
    );
}
