//! Quickstart: immerse a server, characterize overclocking, and ask the
//! governor for a safe frequency.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use immersion_cloud::core::governor::{GovernorConfig, OverclockGovernor};
use immersion_cloud::power::cpu::CpuSku;
use immersion_cloud::power::units::Frequency;
use immersion_cloud::reliability::lifetime::{CompositeLifetimeModel, OperatingConditions};
use immersion_cloud::reliability::stability::StabilityModel;
use immersion_cloud::thermal::fluid::DielectricFluid;
use immersion_cloud::thermal::junction::ThermalInterface;
use immersion_cloud::thermal::tank::TankPrototype;

fn main() {
    println!("== immersion-cloud quickstart ==\n");

    // 1. A two-phase immersion tank and an air-cooled baseline.
    let tank = TankPrototype::small_tank_1();
    println!("Tank: {} filled with {}", tank.name(), tank.fluid());
    let air = ThermalInterface::air(35.0, 12.1, 0.21);
    let immersed = tank.interface(0.084, 0.0);

    // 2. Thermal headroom: the same socket runs ~20+ °C cooler immersed.
    let sku = CpuSku::skylake_8180();
    let ss_air = sku.steady_state(&air, sku.air_turbo(), sku.nominal_voltage());
    let ss_tank = sku.steady_state(&immersed, sku.air_turbo(), sku.nominal_voltage());
    println!("\n{} at all-core turbo ({}):", sku.name(), sku.air_turbo());
    println!(
        "  air : {:6.1} W, junction {:5.1} °C",
        ss_air.power_w, ss_air.tj_c
    );
    println!(
        "  2PIC: {:6.1} W, junction {:5.1} °C  (leakage saving {:.1} W)",
        ss_tank.power_w,
        ss_tank.tj_c,
        ss_air.static_w - ss_tank.static_w
    );

    // 3. Lifetime: what does overclocking cost, per cooling medium?
    let model = CompositeLifetimeModel::fitted_5nm();
    println!("\nProjected lifetimes (Table V conditions):");
    for (label, cond) in [
        (
            "air, nominal     ",
            OperatingConditions::new(0.90, 85.0, 20.0),
        ),
        (
            "air, overclocked ",
            OperatingConditions::new(0.98, 101.0, 20.0),
        ),
        (
            "HFE-7000, nominal",
            OperatingConditions::new(0.90, 51.0, 35.0),
        ),
        (
            "HFE-7000, OC     ",
            OperatingConditions::new(0.98, 60.0, 35.0),
        ),
    ] {
        println!("  {label}: {:5.1} years", model.lifetime_years(&cond));
    }

    // 4. The governor intersects stability, lifetime, and power budgets.
    let governor = OverclockGovernor::new(
        CpuSku::skylake_8180(),
        ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0),
        CompositeLifetimeModel::fitted_5nm(),
        StabilityModel::paper_characterization(),
        GovernorConfig::default(),
    );
    let request = Frequency::from_ghz(3.4);
    for budget_w in [305.0, 205.0, 150.0] {
        let d = governor.decide(request, budget_w);
        println!(
            "\nRequest {request} with a {budget_w:.0} W budget -> grant {} (bound by {:?})",
            d.frequency, d.binding
        );
        println!(
            "  ceilings: stability {}, lifetime {}, power {}",
            d.stability_ceiling, d.lifetime_ceiling, d.power_ceiling
        );
    }
}
