//! Overclocking-enhanced auto-scaling: compares the three policies of
//! the paper's Section VI-D on a load ramp and prints a Table XI-style
//! summary.
//!
//! ```sh
//! cargo run --release --example autoscaling
//! ```

use immersion_cloud::autoscale::policy::Policy;
use immersion_cloud::autoscale::runner::{ramp_schedule, Runner, RunnerConfig};

fn main() {
    println!("== overclocking-enhanced auto-scaling ==\n");
    // A shortened ramp (500 -> 2500 QPS) for an interactive run; use
    // RunnerConfig::paper() for the full Table XI experiment.
    let mut config = RunnerConfig::paper();
    config.schedule = ramp_schedule(500.0, 2500.0, 500.0, 300.0);

    println!(
        "Client-Server workload: {} vcores/VM, {:.1} ms mean demand, ramp to 2500 QPS\n",
        config.vcores_per_vm,
        config.service_mean_s * 1e3
    );

    let results: Vec<_> = [Policy::Baseline, Policy::OcE, Policy::OcA]
        .into_iter()
        .map(|policy| Runner::new(config.clone(), policy, 42).run())
        .collect();
    let base_p95 = results[0].p95_latency_s;
    let base_avg = results[0].avg_latency_s;

    println!(
        "{:10} {:>9} {:>9} {:>8} {:>9} {:>9} {:>10}",
        "Config", "NormP95", "NormAvg", "MaxVMs", "VMxHours", "AvgPower", "Completed"
    );
    for r in &results {
        println!(
            "{:10} {:>9.2} {:>9.2} {:>8} {:>9.2} {:>8.1}W {:>10}",
            r.policy,
            r.p95_latency_s / base_p95,
            r.avg_latency_s / base_avg,
            r.max_vms,
            r.vm_hours,
            r.avg_power_w,
            r.completed
        );
    }

    println!("\nUtilization at five-minute marks (percent):");
    print!("{:>8}", "t");
    for r in &results {
        print!("{:>10}", r.policy);
    }
    println!();
    let marks: Vec<_> = (0..=5)
        .map(|i| immersion_cloud::sim::SimTime::from_secs(i * 300))
        .collect();
    for t in marks {
        print!("{:>7}s", t.as_secs_f64() as u64);
        for r in &results {
            match r.utilization.value_at(t) {
                Some(v) => print!("{v:>9.1}%"),
                None => print!("{:>10}", "-"),
            }
        }
        println!();
    }
}
