//! `immersion-cloud`: a reproduction of *Cost-Efficient Overclocking in
//! Immersion-Cooled Datacenters* (ISCA 2021) as a Rust workspace.
//!
//! This facade crate re-exports every subsystem behind stable module
//! names so examples and downstream users need a single dependency:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`scenario`] | `ic-scenario` | Serializable calibration scenarios (`Scenario::paper()`, JSON codec) |
//! | [`sim`] | `ic-sim` | Discrete-event engine, RNG, distributions, statistics |
//! | [`par`] | `ic-par` | Deterministic scatter-gather pool for intra-experiment sweeps |
//! | [`thermal`] | `ic-thermal` | Cooling technologies, fluids, junction model, tanks |
//! | [`power`] | `ic-power` | V/f curves, leakage, socket/server power, capping |
//! | [`reliability`] | `ic-reliability` | Lifetime model (Table V), wear credit, stability |
//! | [`telemetry`] | `ic-telemetry` | Aperf/Pperf counters and Equation 1 |
//! | [`workloads`] | `ic-workloads` | Table VII–IX configs/apps, Figure 9–11 models, M/G/k app |
//! | [`cluster`] | `ic-cluster` | Servers, VMs, bin packing, oversubscription, failover |
//! | [`core`] | `ic-core` | Operating domains, bottleneck analysis, overclock governor, use-cases |
//! | [`autoscale`] | `ic-autoscale` | The overclocking-enhanced auto-scaler (Table XI) |
//! | [`controlplane`] | `ic-controlplane` | Controller trait, telemetry bus, single-clock control-plane runtime |
//! | [`chaos`] | `ic-chaos` | Wear-coupled fault injection, graceful degradation, SLO scorecard |
//! | [`tco`] | `ic-tco` | Table VI TCO model |
//! | [`obs`] | `ic-obs` | Structured tracing, metrics registry, engine observer |
//!
//! # Quickstart
//!
//! ```
//! use immersion_cloud::thermal::junction::ThermalInterface;
//! use immersion_cloud::thermal::fluid::DielectricFluid;
//! use immersion_cloud::power::cpu::CpuSku;
//!
//! // Drop a Skylake 8180 into FC-3284 and watch it earn a turbo bin.
//! let sku = CpuSku::skylake_8180();
//! let air = ThermalInterface::air(35.0, 12.1, 0.21);
//! let tank = ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 1.6);
//! assert!(sku.max_turbo(&tank, sku.tdp_w()) > sku.max_turbo(&air, sku.tdp_w()));
//! ```

pub use ic_autoscale as autoscale;
pub use ic_chaos as chaos;
pub use ic_cluster as cluster;
pub use ic_controlplane as controlplane;
pub use ic_core as core;
pub use ic_obs as obs;
pub use ic_par as par;
pub use ic_power as power;
pub use ic_reliability as reliability;
pub use ic_scenario as scenario;
pub use ic_sim as sim;
pub use ic_tco as tco;
pub use ic_telemetry as telemetry;
pub use ic_thermal as thermal;
pub use ic_workloads as workloads;
