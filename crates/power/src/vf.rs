//! The voltage/frequency operating curve.
//!
//! The paper's experimental curve, measured on the overclockable Xeon
//! W-3175X in small tank #1, shows that raising socket power from 205 W
//! (0.90 V) to 305 W (0.98 V) buys 23 % more frequency than all-core
//! turbo (Section IV, "Lifetime"). We model V(f) as linear between
//! calibration anchors — accurate over the narrow 0.90–0.98 V span the
//! paper explores — and expose the Table VII-style voltage offset knob.

use crate::units::{Frequency, Voltage};
use ic_scenario::{PowerCalibration, VfAnchors};
use serde::{Deserialize, Serialize};

/// A linear voltage/frequency curve anchored at the nominal operating
/// point.
///
/// # Example
///
/// ```
/// use ic_power::vf::VfCurve;
/// use ic_power::units::{Frequency, Voltage};
///
/// let curve = VfCurve::xeon_w3175x();
/// // All-core turbo runs at the nominal 0.90 V...
/// assert_eq!(curve.voltage_for(Frequency::from_ghz(3.4)), Voltage::from_volts(0.90));
/// // ...and the paper's +23 % overclock needs 0.98 V.
/// let oc = Frequency::from_ghz(3.4 * 1.23);
/// assert!((curve.voltage_for(oc).volts() - 0.98).abs() < 0.005);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VfCurve {
    anchor_f: Frequency,
    anchor_v: Voltage,
    /// Millivolts required per additional MHz above the anchor.
    slope_mv_per_mhz: f64,
    /// Voltage floor: below the anchor frequency the rail does not drop
    /// further than this.
    min_v: Voltage,
    offset_mv: i32,
}

impl VfCurve {
    /// Builds a curve through two measured operating points.
    ///
    /// # Panics
    ///
    /// Panics if the two points do not have strictly increasing frequency
    /// and non-decreasing voltage.
    pub fn from_points(low: (Frequency, Voltage), high: (Frequency, Voltage)) -> Self {
        assert!(
            high.0 > low.0,
            "anchor frequencies must increase: {} !> {}",
            high.0,
            low.0
        );
        assert!(high.1 >= low.1, "voltage must not decrease with frequency");
        let slope = (high.1.mv() - low.1.mv()) as f64 / (high.0.mhz() - low.0.mhz()) as f64;
        VfCurve {
            anchor_f: low.0,
            anchor_v: low.1,
            slope_mv_per_mhz: slope,
            min_v: low.1,
            offset_mv: 0,
        }
    }

    /// Builds the curve through a scenario's two V/f anchor points.
    pub fn from_anchors(anchors: &VfAnchors) -> Self {
        VfCurve::from_points(
            (
                Frequency::from_ghz(anchors.nominal_ghz),
                Voltage::from_volts(anchors.nominal_v),
            ),
            (
                Frequency::from_ghz(anchors.nominal_ghz * anchors.oc_frequency_ratio),
                Voltage::from_volts(anchors.oc_v),
            ),
        )
    }

    /// The scenario's curve re-anchored at another nominal frequency:
    /// the anchor voltages and overclock ratio carry over, as the paper
    /// does when extrapolating from the W-3175X to locked SKUs.
    pub fn from_anchors_at(anchors: &VfAnchors, all_core_turbo: Frequency) -> Self {
        let oc = Frequency::from_mhz(
            (all_core_turbo.mhz() as f64 * anchors.oc_frequency_ratio).round() as u32,
        );
        VfCurve::from_points(
            (all_core_turbo, Voltage::from_volts(anchors.nominal_v)),
            (oc, Voltage::from_volts(anchors.oc_v)),
        )
    }

    /// The paper's measured Xeon W-3175X curve: all-core turbo 3.4 GHz at
    /// 0.90 V, +23 % (≈ 4.18 GHz) at 0.98 V.
    pub fn xeon_w3175x() -> Self {
        Self::from_anchors(&PowerCalibration::paper().vf)
    }

    /// The equivalent curve for the locked server Skylakes (8168/8180),
    /// extrapolated from the W-3175X as the paper does: nominal all-core
    /// turbo at 0.90 V, +23 % at 0.98 V.
    pub fn skylake_server(all_core_turbo: Frequency) -> Self {
        Self::from_anchors_at(&PowerCalibration::paper().vf, all_core_turbo)
    }

    /// Returns a copy with an additional fixed voltage offset (the
    /// Table VII "voltage offset (mV)" knob used by configs OC1–OC3).
    pub fn with_offset_mv(mut self, offset: i32) -> Self {
        self.offset_mv = offset;
        self
    }

    /// The rail voltage required to run at `f`, including any offset.
    /// Below the anchor frequency the curve clamps to the anchor voltage
    /// (processor minimum operating voltage dominates).
    pub fn voltage_for(&self, f: Frequency) -> Voltage {
        let base = if f <= self.anchor_f {
            self.min_v
        } else {
            let extra = (f.mhz() - self.anchor_f.mhz()) as f64 * self.slope_mv_per_mhz;
            Voltage::from_mv(self.anchor_v.mv() + extra.round() as u32)
        };
        base.with_offset_mv(self.offset_mv)
    }

    /// The highest frequency whose required voltage stays at or below
    /// `v_max`.
    pub fn max_frequency_at(&self, v_max: Voltage) -> Frequency {
        let v_max = v_max.mv() as i64 - self.offset_mv as i64;
        if v_max < self.anchor_v.mv() as i64 {
            return Frequency::ZERO;
        }
        if self.slope_mv_per_mhz == 0.0 {
            return Frequency::from_mhz(u32::MAX);
        }
        let extra_mhz = (v_max - self.anchor_v.mv() as i64) as f64 / self.slope_mv_per_mhz;
        Frequency::from_mhz(self.anchor_f.mhz() + extra_mhz.floor() as u32)
    }

    /// The anchor (nominal) operating point.
    pub fn anchor(&self) -> (Frequency, Voltage) {
        (self.anchor_f, self.anchor_v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w3175x_anchors_match_paper() {
        let c = VfCurve::xeon_w3175x();
        assert_eq!(c.voltage_for(Frequency::from_ghz(3.4)).volts(), 0.90);
        let oc = Frequency::from_mhz((3400.0 * 1.23f64).round() as u32);
        assert!((c.voltage_for(oc).volts() - 0.98).abs() < 0.005);
    }

    #[test]
    fn below_anchor_clamps_to_min_voltage() {
        let c = VfCurve::xeon_w3175x();
        assert_eq!(c.voltage_for(Frequency::from_ghz(2.0)).volts(), 0.90);
    }

    #[test]
    fn voltage_is_monotone_in_frequency() {
        let c = VfCurve::skylake_server(Frequency::from_ghz(2.6));
        let mut last = Voltage::from_mv(0);
        for mhz in (2000..4000).step_by(100) {
            let v = c.voltage_for(Frequency::from_mhz(mhz));
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn offset_shifts_whole_curve() {
        let c = VfCurve::xeon_w3175x().with_offset_mv(50);
        assert_eq!(c.voltage_for(Frequency::from_ghz(3.4)).mv(), 950);
    }

    #[test]
    fn max_frequency_inverts_voltage_for() {
        let c = VfCurve::skylake_server(Frequency::from_ghz(2.7));
        let f = c.max_frequency_at(Voltage::from_volts(0.98));
        // 0.98 V buys ≈ +23 % over 2.7 GHz.
        assert!((f.ghz() - 2.7 * 1.23).abs() < 0.05, "f = {f}");
        // And the voltage at that frequency doesn't exceed the cap.
        assert!(c.voltage_for(f) <= Voltage::from_volts(0.98));
        // Below the floor nothing runs.
        assert_eq!(
            c.max_frequency_at(Voltage::from_volts(0.5)),
            Frequency::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "anchor frequencies must increase")]
    fn degenerate_anchors_panic() {
        let p = (Frequency::from_ghz(3.4), Voltage::from_volts(0.9));
        let _ = VfCurve::from_points(p, p);
    }
}
