//! Frequency and voltage newtypes.
//!
//! Processor frequencies move in discrete 100 MHz *bins* (the paper's
//! Table III reports "one frequency bin (3 %, 100 MHz)" gained in 2PIC),
//! so [`Frequency`] is stored in integer megahertz and provides bin
//! arithmetic. [`Voltage`] is stored in integer millivolts, matching the
//! Table VII/VIII "voltage offset (mV)" knobs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The size of one processor frequency bin: 100 MHz.
pub const BIN_MHZ: u32 = 100;

/// A processor clock frequency, stored in MHz.
///
/// # Example
///
/// ```
/// use ic_power::units::Frequency;
///
/// let base = Frequency::from_ghz(3.4);
/// let oc = base.step_bins(7); // + 700 MHz
/// assert_eq!(oc, Frequency::from_ghz(4.1));
/// assert!((oc.ratio_to(base) - 1.206).abs() < 1e-3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Frequency(u32);

impl Frequency {
    /// Zero hertz — the "off" sentinel.
    pub const ZERO: Frequency = Frequency(0);

    /// Creates a frequency from megahertz.
    pub const fn from_mhz(mhz: u32) -> Self {
        Frequency(mhz)
    }

    /// Creates a frequency from gigahertz, rounded to the nearest MHz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is negative, non-finite, or absurdly large
    /// (> 100 GHz).
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(
            ghz.is_finite() && (0.0..=100.0).contains(&ghz),
            "implausible frequency {ghz} GHz"
        );
        Frequency((ghz * 1000.0).round() as u32)
    }

    /// The frequency in megahertz.
    pub const fn mhz(self) -> u32 {
        self.0
    }

    /// The frequency in gigahertz.
    pub fn ghz(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Steps up (positive) or down (negative) by whole 100 MHz bins,
    /// saturating at zero.
    pub fn step_bins(self, bins: i32) -> Frequency {
        let delta = bins * BIN_MHZ as i32;
        Frequency((self.0 as i64 + delta as i64).max(0) as u32)
    }

    /// The number of whole bins between `self` and `lower` (negative if
    /// `self` is slower).
    pub fn bins_above(self, lower: Frequency) -> i32 {
        (self.0 as i64 - lower.0 as i64) as i32 / BIN_MHZ as i32
    }

    /// `self / other` as a ratio of clock rates.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio_to(self, other: Frequency) -> f64 {
        assert!(other.0 > 0, "cannot take ratio to zero frequency");
        self.0 as f64 / other.0 as f64
    }

    /// Clamps this frequency into `[lo, hi]`.
    pub fn clamp(self, lo: Frequency, hi: Frequency) -> Frequency {
        Frequency(self.0.clamp(lo.0, hi.0))
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} GHz", self.ghz())
    }
}

/// A supply voltage, stored in millivolts.
///
/// # Example
///
/// ```
/// use ic_power::units::Voltage;
///
/// let nominal = Voltage::from_volts(0.90);
/// let oc = nominal.with_offset_mv(80);
/// assert_eq!(oc, Voltage::from_volts(0.98));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Voltage(u32);

impl Voltage {
    /// Creates a voltage from millivolts.
    pub const fn from_mv(mv: u32) -> Self {
        Voltage(mv)
    }

    /// Creates a voltage from volts, rounded to the nearest millivolt.
    ///
    /// # Panics
    ///
    /// Panics if `volts` is negative, non-finite, or above 5 V (no
    /// processor rail is that high).
    pub fn from_volts(volts: f64) -> Self {
        assert!(
            volts.is_finite() && (0.0..=5.0).contains(&volts),
            "implausible voltage {volts} V"
        );
        Voltage((volts * 1000.0).round() as u32)
    }

    /// The voltage in millivolts.
    pub const fn mv(self) -> u32 {
        self.0
    }

    /// The voltage in volts.
    pub fn volts(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Applies a signed offset in millivolts (the Table VII/VIII knob),
    /// saturating at zero.
    pub fn with_offset_mv(self, offset: i32) -> Voltage {
        Voltage((self.0 as i64 + offset as i64).max(0) as u32)
    }

    /// `self² / other²` — the dynamic-power scaling factor between two
    /// voltage operating points.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn squared_ratio_to(self, other: Voltage) -> f64 {
        assert!(other.0 > 0, "cannot take ratio to zero voltage");
        let r = self.0 as f64 / other.0 as f64;
        r * r
    }
}

impl fmt::Display for Voltage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} V", self.volts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_round_trips() {
        assert_eq!(Frequency::from_ghz(2.6).mhz(), 2600);
        assert_eq!(Frequency::from_mhz(3400).ghz(), 3.4);
    }

    #[test]
    fn bin_stepping() {
        let f = Frequency::from_ghz(3.1);
        assert_eq!(f.step_bins(1), Frequency::from_ghz(3.2));
        assert_eq!(f.step_bins(-2), Frequency::from_ghz(2.9));
        assert_eq!(Frequency::from_mhz(50).step_bins(-1), Frequency::ZERO);
    }

    #[test]
    fn bins_above_counts_whole_bins() {
        let hi = Frequency::from_ghz(4.1);
        let lo = Frequency::from_ghz(3.4);
        assert_eq!(hi.bins_above(lo), 7);
        assert_eq!(lo.bins_above(hi), -7);
    }

    #[test]
    fn ratio_between_frequencies() {
        let turbo = Frequency::from_ghz(2.6);
        let oc = Frequency::from_ghz(3.2);
        assert!((oc.ratio_to(turbo) - 1.2308).abs() < 1e-3);
    }

    #[test]
    fn clamp_bounds() {
        let lo = Frequency::from_ghz(3.4);
        let hi = Frequency::from_ghz(4.1);
        assert_eq!(Frequency::from_ghz(5.0).clamp(lo, hi), hi);
        assert_eq!(Frequency::from_ghz(1.0).clamp(lo, hi), lo);
        assert_eq!(
            Frequency::from_ghz(3.7).clamp(lo, hi),
            Frequency::from_ghz(3.7)
        );
    }

    #[test]
    fn voltage_offsets() {
        let v = Voltage::from_volts(0.90);
        assert_eq!(v.with_offset_mv(50).mv(), 950);
        assert_eq!(v.with_offset_mv(-1000).mv(), 0);
    }

    #[test]
    fn squared_ratio() {
        let v0 = Voltage::from_volts(0.90);
        let v1 = Voltage::from_volts(0.98);
        assert!((v1.squared_ratio_to(v0) - 1.1857).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "implausible frequency")]
    fn negative_frequency_panics() {
        let _ = Frequency::from_ghz(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Frequency::from_ghz(3.4).to_string(), "3.4 GHz");
        assert_eq!(Voltage::from_volts(0.98).to_string(), "0.980 V");
    }
}
