//! Processor and datacenter power models for Section IV of
//! "Cost-Efficient Overclocking in Immersion-Cooled Datacenters"
//! (ISCA 2021).
//!
//! Overclocking's first cost is power. This crate models:
//!
//! * [`units`] — frequency/voltage newtypes and 100 MHz frequency bins,
//! * [`vf`] — the voltage/frequency curve measured on the Xeon W-3175X
//!   (0.90 V @ 205 W → 0.98 V @ 305 W buys +23 % frequency),
//! * [`leakage`] — temperature- and voltage-dependent static power,
//!   calibrated to the paper's "11 W of static power per socket saved
//!   when junction temperature drops 17–22 °C",
//! * [`cpu`] — whole-socket power with thermal feedback (leakage depends
//!   on junction temperature, which depends on power), reproducing Table
//!   III's "one extra turbo bin in 2PIC at identical power",
//! * [`server`] — the Open Compute server component breakdown (700 W in
//!   air, 658 W immersed) and the paper's 182 W/server savings estimate,
//! * [`capping`] — RAPL-style priority-aware power capping for
//!   oversubscribed power delivery infrastructure,
//! * [`cache`] — memoized steady-state solves and precomputed per-SKU
//!   operating-point tables for sweep-style callers,
//! * [`batch`] — a structure-of-arrays batch solver running the same
//!   fixed point across many operating points per pass, bitwise-equal
//!   to the scalar path.
//!
//! # Example
//!
//! ```
//! use ic_power::cpu::CpuSku;
//! use ic_thermal::junction::ThermalInterface;
//! use ic_thermal::fluid::DielectricFluid;
//!
//! let sku = CpuSku::skylake_8180();
//! let air = ThermalInterface::air(35.0, 12.1, 0.21);
//! let tank = ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 1.6);
//! // 2PIC's lower junction temperature buys one extra 100 MHz turbo bin
//! // at the same 205 W TDP (Table III).
//! let air_turbo = sku.max_turbo(&air, sku.tdp_w());
//! let tank_turbo = sku.max_turbo(&tank, sku.tdp_w());
//! assert_eq!((tank_turbo.ghz() - air_turbo.ghz() * 1.0) .max(0.0) > 0.05, true);
//! ```

pub mod batch;
pub mod cache;
pub mod capping;
pub mod cpu;
pub mod hierarchy;
pub mod leakage;
pub mod rapl;
pub mod server;
pub mod turbo;
pub mod units;
pub mod vf;

pub use cpu::CpuSku;
pub use units::{Frequency, Voltage};
pub use vf::VfCurve;
