//! Per-active-core turbo behaviour.
//!
//! Figure 4's turbo domain is opportunistic: "Intel offers Turbo Boost
//! v2.0, which opportunistically increases core speed depending on the
//! number of active cores and type of instructions executed", and the
//! paper's telemetry analysis finds overclocking headroom precisely
//! where few cores are active. [`TurboTable`] derives the classic
//! stepped frequency-vs-active-cores curve from the socket power model:
//! with `n` active cores, each core may run as fast as the TDP allows
//! when only `n/total` of the dynamic power is being drawn.

use crate::batch::BatchPoint;
use crate::cache::SteadyStateCache;
use crate::cpu::CpuSku;
use crate::units::Frequency;
use ic_thermal::junction::ThermalInterface;
use serde::{Deserialize, Serialize};

/// A derived turbo table: the highest per-core frequency for each
/// active-core count, under a given cooling interface and power limit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TurboTable {
    /// `entries[n-1]` = max frequency with `n` active cores.
    entries: Vec<Frequency>,
    single_core_cap: Frequency,
}

impl TurboTable {
    /// Derives the table for `sku` under `iface` with a `power_limit_w`
    /// package budget. `single_core_cap` models the silicon's maximum
    /// boost bin (lightly-threaded ceiling) independent of power.
    pub fn derive(
        sku: &CpuSku,
        iface: &ThermalInterface,
        power_limit_w: f64,
        single_core_cap: Frequency,
    ) -> Self {
        let total = sku.cores();
        let mut entries = Vec::with_capacity(total as usize);
        // Every active-core count scans the same frequency ladder, so
        // the (f, v) steady states repeat `total` times over — memoize
        // them across the derivation, and solve the whole ladder up
        // front in one structure-of-arrays pass. The batch solver is
        // bitwise-equal to the scalar path, so every ladder point the
        // scans below read has the exact value a lazy solve would have
        // produced — the derived entries are unchanged.
        let cache = SteadyStateCache::new();
        let mut ladder: Vec<(Frequency, crate::units::Voltage)> = Vec::new();
        let mut f = sku.base();
        for _ in 0..40 {
            f = f.step_bins(1);
            if f > single_core_cap {
                break;
            }
            ladder.push((f, sku.voltage_for(f)));
        }
        let points: Vec<BatchPoint<'_>> = ladder
            .iter()
            .map(|&(f, v)| BatchPoint { iface, f, v })
            .collect();
        cache.steady_state_batch(sku, &points);
        for active in 1..=total {
            // Dynamic power scales with the active share; leakage is
            // whole-die. Find the highest bin whose scaled steady-state
            // power fits the limit.
            let share = active as f64 / total as f64;
            let mut best = sku.base();
            let mut f = sku.base();
            for _ in 0..40 {
                f = f.step_bins(1);
                if f > single_core_cap {
                    break;
                }
                let v = sku.voltage_for(f);
                let full = cache.steady_state(sku, iface, f, v);
                let scaled = full.static_w + (full.power_w - full.static_w) * share;
                if scaled <= power_limit_w {
                    best = f;
                } else {
                    break;
                }
            }
            entries.push(best.clamp(sku.base(), single_core_cap));
        }
        TurboTable {
            entries,
            single_core_cap,
        }
    }

    /// The max per-core frequency with `active` cores busy.
    ///
    /// # Panics
    ///
    /// Panics if `active` is zero or exceeds the core count.
    pub fn frequency_for(&self, active: u32) -> Frequency {
        assert!(
            active >= 1 && active as usize <= self.entries.len(),
            "active core count {active} out of range"
        );
        self.entries[active as usize - 1]
    }

    /// The all-core turbo (every core active).
    pub fn all_core(&self) -> Frequency {
        *self.entries.last().expect("non-empty table")
    }

    /// The single-core boost.
    pub fn single_core(&self) -> Frequency {
        self.entries[0]
    }

    /// The number of core-count steps in the table where the frequency
    /// changes (the "bins" of the classic staircase plot).
    pub fn staircase_steps(&self) -> usize {
        self.entries.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_thermal::fluid::DielectricFluid;

    fn air() -> ThermalInterface {
        ThermalInterface::air(35.0, 12.1, 0.21)
    }
    fn tank() -> ThermalInterface {
        ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 1.6)
    }

    fn table(iface: &ThermalInterface) -> TurboTable {
        let sku = CpuSku::skylake_8180();
        TurboTable::derive(&sku, iface, sku.tdp_w(), Frequency::from_ghz(3.8))
    }

    #[test]
    fn frequency_non_increasing_in_active_cores() {
        let t = table(&air());
        let mut last = Frequency::from_mhz(u32::MAX);
        for n in 1..=28 {
            let f = t.frequency_for(n);
            assert!(f <= last, "{n} cores: {f}");
            last = f;
        }
    }

    #[test]
    fn endpoints_match_the_spec_shape() {
        let t = table(&air());
        // All-core = the Table III air turbo; single-core hits the cap.
        assert_eq!(t.all_core(), Frequency::from_ghz(2.6));
        assert_eq!(t.single_core(), Frequency::from_ghz(3.8));
        assert!(t.staircase_steps() >= 3, "staircase should have steps");
    }

    #[test]
    fn immersion_lifts_the_whole_staircase() {
        let a = table(&air());
        let i = table(&tank());
        for n in 1..=28 {
            assert!(i.frequency_for(n) >= a.frequency_for(n), "{n} cores");
        }
        // And the all-core point gains the Table III bin.
        assert_eq!(i.all_core(), Frequency::from_ghz(2.7));
    }

    #[test]
    fn few_active_cores_reach_the_overclocking_domain() {
        // The paper's telemetry point: with few active cores there is
        // headroom beyond all-core turbo even in air.
        let t = table(&air());
        assert!(t.frequency_for(4) > t.all_core());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_active_cores_panics() {
        table(&air()).frequency_for(0);
    }
}
