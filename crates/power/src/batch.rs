//! Structure-of-arrays batch solver for the steady-state fixed point.
//!
//! [`CpuSku::steady_state`] runs a 64-iteration power/temperature
//! fixed point one operating point at a time. Fleet-scale callers —
//! re-deriving per-domain demand after a fleet-wide frequency change,
//! prewarming a frequency ladder — need the same solve across hundreds
//! of points at once. [`steady_state_batch`] runs the identical
//! per-point iteration over lane chunks: the SKU's calibration
//! constants are loaded once per chunk, the per-lane state (dynamic
//! power, running power, junction temperature) lives in small
//! contiguous arrays, and converged lanes drop out of the loop via a
//! mask instead of a branch out of the chunk.
//!
//! Bitwise equivalence with the scalar path is load-bearing (the
//! control plane's determinism guarantees sit on top of it), so every
//! lane executes exactly the float-op sequence of
//! [`CpuSku::steady_state`]: same seed values, same `tj.min(149.0)`
//! clamp, same convergence test, same early exit. Lanes never mix, so
//! chunk composition cannot perturb a lane's result. The equivalence
//! property test in this module pins that.

use crate::cpu::{CpuSku, SteadyState};
use crate::units::{Frequency, Voltage};
use ic_thermal::junction::ThermalInterface;

/// One operating point in a batch solve: the thermal interface the
/// socket dissipates through plus the (frequency, voltage) target.
#[derive(Debug, Clone, Copy)]
pub struct BatchPoint<'a> {
    /// The thermal path from junction to coolant.
    pub iface: &'a ThermalInterface,
    /// Target core frequency.
    pub f: Frequency,
    /// Rail voltage at that frequency.
    pub v: Voltage,
}

/// Lanes per chunk. Eight f64 lanes span one or two cache lines per
/// state array, enough for the compiler to unroll the per-iteration
/// sweep while keeping the converged-lane mask cheap to scan.
const LANES: usize = 8;

/// Solves the steady-state fixed point for every point in `points`,
/// appending one [`SteadyState`] per point to `out` in request order.
///
/// Bitwise-identical to calling [`CpuSku::steady_state`] per point.
pub fn steady_state_batch_into(
    sku: &CpuSku,
    points: &[BatchPoint<'_>],
    out: &mut Vec<SteadyState>,
) {
    out.reserve(points.len());
    let leakage = *sku.leakage();
    for chunk in points.chunks(LANES) {
        let n = chunk.len();
        let mut dyn_w = [0.0f64; LANES];
        let mut power = [0.0f64; LANES];
        let mut tj = [0.0f64; LANES];
        let mut ref_c = [0.0f64; LANES];
        let mut r_c_per_w = [0.0f64; LANES];
        let mut volts = [Voltage::from_mv(1); LANES];
        let mut active = [false; LANES];
        for (l, p) in chunk.iter().enumerate() {
            // Seed exactly as the scalar solver does: power starts at
            // the dynamic term, tj at the junction temperature that
            // power alone produces.
            dyn_w[l] = sku.dynamic_power_w(p.f, p.v);
            power[l] = dyn_w[l];
            tj[l] = p.iface.junction_temp_c(power[l]);
            ref_c[l] = p.iface.reference_temp_c();
            r_c_per_w[l] = p.iface.resistance_c_per_w();
            volts[l] = p.v;
            active[l] = true;
        }
        for _ in 0..64 {
            let mut any_active = false;
            for l in 0..n {
                if !active[l] {
                    continue;
                }
                // The scalar iteration, verbatim: leakage at the
                // clamped junction temperature, total power, junction
                // update (reference + resistance × power, the exact
                // `junction_temp_c` expression), absolute-tolerance
                // convergence test.
                let static_w = leakage.power_w(tj[l].min(149.0), volts[l]);
                let next = dyn_w[l] + static_w;
                tj[l] = ref_c[l] + r_c_per_w[l] * next;
                if (next - power[l]).abs() < 1e-9 {
                    power[l] = next;
                    active[l] = false;
                } else {
                    power[l] = next;
                    any_active = true;
                }
            }
            if !any_active {
                break;
            }
        }
        for l in 0..n {
            out.push(SteadyState {
                power_w: power[l],
                tj_c: tj[l],
                static_w: power[l] - dyn_w[l],
            });
        }
    }
}

/// Allocating convenience wrapper over [`steady_state_batch_into`].
pub fn steady_state_batch(sku: &CpuSku, points: &[BatchPoint<'_>]) -> Vec<SteadyState> {
    let mut out = Vec::with_capacity(points.len());
    steady_state_batch_into(sku, points, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_sim::rng::SimRng;
    use ic_thermal::fluid::DielectricFluid;

    fn interfaces() -> Vec<ThermalInterface> {
        vec![
            ThermalInterface::air(35.0, 12.1, 0.21),
            ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 1.6),
            ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0),
        ]
    }

    #[test]
    fn batch_matches_scalar_bit_for_bit() {
        let skus = [CpuSku::skylake_8180(), CpuSku::xeon_w3175x()];
        let ifaces = interfaces();
        let mut rng = SimRng::seed_from_u64(7);
        for sku in &skus {
            // Random batch sizes, including partial chunks and sizes
            // around the lane boundary.
            for len in [0usize, 1, 3, 7, 8, 9, 16, 23, 100] {
                let points: Vec<(usize, Frequency, Voltage)> = (0..len)
                    .map(|_| {
                        let f = Frequency::from_mhz(1200 + rng.index(3000) as u32);
                        (rng.index(ifaces.len()), f, sku.voltage_for(f))
                    })
                    .collect();
                let batch_points: Vec<BatchPoint<'_>> = points
                    .iter()
                    .map(|&(i, f, v)| BatchPoint {
                        iface: &ifaces[i],
                        f,
                        v,
                    })
                    .collect();
                let batch = steady_state_batch(sku, &batch_points);
                assert_eq!(batch.len(), len);
                for (&(i, f, v), got) in points.iter().zip(&batch) {
                    let want = sku.steady_state(&ifaces[i], f, v);
                    assert_eq!(
                        (
                            want.power_w.to_bits(),
                            want.tj_c.to_bits(),
                            want.static_w.to_bits()
                        ),
                        (
                            got.power_w.to_bits(),
                            got.tj_c.to_bits(),
                            got.static_w.to_bits()
                        ),
                        "{} at {} MHz on iface {i}",
                        sku.name(),
                        f.mhz(),
                    );
                }
            }
        }
    }

    #[test]
    fn lane_results_do_not_depend_on_chunk_neighbors() {
        // The same point solved alone and surrounded by different
        // neighbors must agree bitwise — lanes never mix.
        let sku = CpuSku::xeon_w3175x();
        let ifaces = interfaces();
        let f = Frequency::from_ghz(4.1);
        let v = sku.voltage_for(f);
        let probe = BatchPoint {
            iface: &ifaces[2],
            f,
            v,
        };
        let alone = steady_state_batch(&sku, &[probe])[0];
        let mut crowd = vec![
            BatchPoint {
                iface: &ifaces[0],
                f: Frequency::from_ghz(2.1),
                v: sku.voltage_for(Frequency::from_ghz(2.1)),
            };
            7
        ];
        crowd.push(probe);
        let crowded = *steady_state_batch(&sku, &crowd).last().unwrap();
        assert_eq!(alone.power_w.to_bits(), crowded.power_w.to_bits());
        assert_eq!(alone.tj_c.to_bits(), crowded.tj_c.to_bits());
    }
}
