//! A RAPL-style closed-loop power capper.
//!
//! Intel RAPL (cited as \[18\] in the paper) enforces a running-average
//! power limit by stepping the core frequency down when the averaged
//! power exceeds the cap and back up when headroom returns. The paper's
//! concern: such capping "might offset any performance gains from
//! overclocking", so the governor must know whether a requested
//! operating point will survive the capper. [`RaplController`] simulates
//! the feedback loop against the socket power model.

use crate::cache::SteadyStateCache;
use crate::cpu::CpuSku;
use crate::units::Frequency;
use ic_thermal::junction::ThermalInterface;
use serde::{Deserialize, Serialize};

/// Absolute floor of the convergence band, watts.
const CONVERGENCE_ABS_W: f64 = 0.5;
/// Relative half-width of the convergence band.
const CONVERGENCE_REL: f64 = 0.02;

/// `true` when the running-average power has converged on the
/// instantaneous power: within 2 % relatively *or* 0.5 W absolutely,
/// whichever band is wider. A purely relative band collapses to zero
/// width as power approaches zero, so an idle or deeply-throttled
/// socket (instantaneous power ≈ 0 W) would never register as
/// converged even with the average pinned to it; the absolute floor
/// keeps the check meaningful there.
pub fn power_converged(avg_w: f64, instant_w: f64) -> bool {
    let tol = CONVERGENCE_ABS_W.max(CONVERGENCE_REL * instant_w.abs());
    (avg_w - instant_w).abs() < tol
}

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RaplConfig {
    /// The enforced power limit, watts.
    pub power_limit_w: f64,
    /// Exponential-averaging window, seconds (RAPL PL1-style).
    pub window_s: f64,
    /// Controller evaluation period, seconds.
    pub period_s: f64,
}

impl RaplConfig {
    /// A PL1-style long-term limit: 28 s window, 1 s control period.
    pub fn pl1(power_limit_w: f64) -> Self {
        assert!(power_limit_w > 0.0, "invalid power limit");
        RaplConfig {
            power_limit_w,
            window_s: 28.0,
            period_s: 1.0,
        }
    }
}

/// One step of the simulated capping loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RaplStep {
    /// Time since the loop started, seconds.
    pub t_s: f64,
    /// The frequency in force during this period.
    pub frequency: Frequency,
    /// Instantaneous socket power, watts.
    pub power_w: f64,
    /// Running-average power, watts.
    pub avg_power_w: f64,
    /// `true` if the controller throttled this step.
    pub throttled: bool,
}

/// The closed-loop capper.
#[derive(Debug, Clone)]
pub struct RaplController {
    config: RaplConfig,
    avg_power_w: f64,
    current: Frequency,
    floor: Frequency,
    target: Frequency,
    t_s: f64,
    /// The settle loop revisits a handful of frequency bins hundreds of
    /// times while the EMA drains; memoizing the solves makes settling
    /// cost one fixed point per distinct bin.
    cache: SteadyStateCache,
}

impl RaplController {
    /// Creates a controller that tries to run at `target` but never
    /// below `floor`.
    ///
    /// # Panics
    ///
    /// Panics if `floor > target`.
    pub fn new(config: RaplConfig, floor: Frequency, target: Frequency) -> Self {
        assert!(floor <= target, "floor above target");
        RaplController {
            config,
            avg_power_w: 0.0,
            current: target,
            floor,
            target,
            t_s: 0.0,
            cache: SteadyStateCache::new(),
        }
    }

    /// The frequency currently in force.
    pub fn current_frequency(&self) -> Frequency {
        self.current
    }

    /// The controller's steady-state memo table (hit-rate inspection).
    pub fn cache(&self) -> &SteadyStateCache {
        &self.cache
    }

    /// Solves every frequency bin the loop can visit — the ladder from
    /// `floor` to `target` — in one batch pass, so subsequent
    /// [`step`](Self::step)/[`settle`](Self::settle) calls are pure
    /// cache hits. The batch solver is bitwise-equal to the scalar
    /// path, so the settled trajectory is unchanged; only the cache's
    /// miss accounting moves from the first settle into the prewarm.
    pub fn prewarm(&mut self, sku: &CpuSku, iface: &ThermalInterface) {
        let mut ladder: Vec<(Frequency, crate::units::Voltage)> = Vec::new();
        let mut f = self.floor;
        loop {
            ladder.push((f, sku.voltage_for(f)));
            if f >= self.target {
                break;
            }
            f = f.step_bins(1).clamp(self.floor, self.target);
        }
        let points: Vec<crate::batch::BatchPoint<'_>> = ladder
            .iter()
            .map(|&(f, v)| crate::batch::BatchPoint { iface, f, v })
            .collect();
        self.cache.steady_state_batch(sku, &points);
    }

    /// Advances the loop one control period against the socket model.
    pub fn step(&mut self, sku: &CpuSku, iface: &ThermalInterface) -> RaplStep {
        let v = sku.voltage_for(self.current);
        let power = self.cache.steady_state(sku, iface, self.current, v).power_w;
        // Exponential moving average with time constant = window.
        let alpha = (self.config.period_s / self.config.window_s).min(1.0);
        if self.t_s == 0.0 {
            self.avg_power_w = power;
        } else {
            self.avg_power_w += alpha * (power - self.avg_power_w);
        }
        self.t_s += self.config.period_s;

        let mut throttled = false;
        if self.avg_power_w > self.config.power_limit_w && self.current > self.floor {
            self.current = self.current.step_bins(-1).clamp(self.floor, self.target);
            throttled = true;
        } else if self.avg_power_w <= self.config.power_limit_w && self.current < self.target {
            // Headroom: climb one bin, but only if the model predicts
            // the next bin still fits the cap (predictive up-step, as
            // real governors do to avoid limit cycles).
            let next = self.current.step_bins(1).clamp(self.floor, self.target);
            let next_power = self
                .cache
                .steady_state(sku, iface, next, sku.voltage_for(next))
                .power_w;
            if next_power <= self.config.power_limit_w {
                self.current = next;
            }
        }
        RaplStep {
            t_s: self.t_s,
            frequency: self.current,
            power_w: power,
            avg_power_w: self.avg_power_w,
            throttled,
        }
    }

    /// Runs the loop until the frequency is stable for `settle_periods`
    /// consecutive steps (or `max_steps` elapse) and returns the
    /// settled frequency — the *sustainable* operating point under this
    /// cap. This is what the overclock governor should promise, rather
    /// than a frequency the capper will claw back.
    pub fn settle(
        &mut self,
        sku: &CpuSku,
        iface: &ThermalInterface,
        settle_periods: u32,
        max_steps: u32,
    ) -> Frequency {
        let mut stable = 0;
        let mut last = self.current;
        for _ in 0..max_steps {
            let step = self.step(sku, iface);
            // Equilibrium = frequency unchanged AND the running average
            // has converged to the instantaneous power (otherwise the
            // loop is merely waiting for the EMA to drain).
            if step.frequency == last && power_converged(step.avg_power_w, step.power_w) {
                stable += 1;
                if stable >= settle_periods {
                    return step.frequency;
                }
            } else {
                stable = 0;
                last = step.frequency;
            }
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_thermal::fluid::DielectricFluid;

    fn tank() -> ThermalInterface {
        ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 1.6)
    }

    #[test]
    fn generous_cap_never_throttles() {
        let sku = CpuSku::skylake_8180();
        let mut ctl =
            RaplController::new(RaplConfig::pl1(400.0), sku.base(), Frequency::from_ghz(3.3));
        for _ in 0..60 {
            assert!(!ctl.step(&sku, &tank()).throttled);
        }
        assert_eq!(ctl.current_frequency(), Frequency::from_ghz(3.3));
    }

    #[test]
    fn tight_cap_settles_below_target() {
        let sku = CpuSku::skylake_8180();
        let mut ctl =
            RaplController::new(RaplConfig::pl1(205.0), sku.base(), Frequency::from_ghz(3.3));
        let settled = ctl.settle(&sku, &tank(), 10, 500);
        assert!(settled < Frequency::from_ghz(3.3));
        // The settled point genuinely fits the cap (within the bin
        // oscillation the up-step hysteresis allows).
        let v = sku.voltage_for(settled);
        let power = sku.steady_state(&tank(), settled, v).power_w;
        assert!(power <= 205.0 * 1.04, "settled power {power}");
    }

    #[test]
    fn settled_point_matches_governor_style_max_turbo() {
        // The closed loop should land within a bin of the open-form
        // inversion used by CpuSku::max_turbo.
        let sku = CpuSku::skylake_8180();
        let analytic = sku.max_turbo(&tank(), 205.0);
        let mut ctl =
            RaplController::new(RaplConfig::pl1(205.0), sku.base(), Frequency::from_ghz(3.3));
        let settled = ctl.settle(&sku, &tank(), 10, 500);
        assert!(
            settled.bins_above(analytic).abs() <= 1,
            "settled {settled} vs analytic {analytic}"
        );
    }

    #[test]
    fn never_drops_below_floor() {
        let sku = CpuSku::skylake_8180();
        let floor = Frequency::from_ghz(2.0);
        let mut ctl = RaplController::new(RaplConfig::pl1(50.0), floor, Frequency::from_ghz(3.3));
        for _ in 0..200 {
            ctl.step(&sku, &tank());
        }
        assert_eq!(ctl.current_frequency(), floor);
    }

    #[test]
    fn convergence_is_sane_at_zero_and_near_zero_power() {
        // A purely relative band has zero width at 0 W; the mixed
        // tolerance must accept a pinned average there...
        assert!(power_converged(0.0, 0.0));
        assert!(power_converged(0.3, 0.0));
        assert!(power_converged(0.2, 0.4));
        // ...while still rejecting a genuinely drifted average.
        assert!(!power_converged(0.8, 0.2));
        assert!(!power_converged(5.0, 0.0));
    }

    #[test]
    fn convergence_is_relative_at_operating_power() {
        // At 200 W the 2 % band (±4 W) dominates the 0.5 W floor.
        assert!(power_converged(203.0, 200.0));
        assert!(power_converged(197.0, 200.0));
        assert!(!power_converged(205.0, 200.0));
        assert!(!power_converged(194.0, 200.0));
    }

    #[test]
    fn settle_reuses_cached_steady_states() {
        let sku = CpuSku::skylake_8180();
        let mut ctl =
            RaplController::new(RaplConfig::pl1(205.0), sku.base(), Frequency::from_ghz(3.3));
        ctl.settle(&sku, &tank(), 10, 500);
        let cache = ctl.cache();
        assert!(
            cache.hit_rate() > 0.7,
            "settle loop should be memo-dominated, hit rate {}",
            cache.hit_rate()
        );
        // Distinct bins solved: at most the ladder between floor and
        // target (14 bins), each at two key roles (current + predictive).
        assert!(cache.len() <= 15, "distinct points {}", cache.len());
    }

    #[test]
    fn prewarm_keeps_the_trajectory_and_eliminates_settle_misses() {
        let sku = CpuSku::skylake_8180();
        let mut cold =
            RaplController::new(RaplConfig::pl1(205.0), sku.base(), Frequency::from_ghz(3.3));
        let mut warm =
            RaplController::new(RaplConfig::pl1(205.0), sku.base(), Frequency::from_ghz(3.3));
        warm.prewarm(&sku, &tank());
        let prewarm_misses = warm.cache().misses();
        assert!(prewarm_misses > 0);
        for _ in 0..200 {
            let a = cold.step(&sku, &tank());
            let b = warm.step(&sku, &tank());
            assert_eq!(a, b, "prewarmed trajectory must be bitwise-identical");
        }
        assert_eq!(
            warm.cache().misses(),
            prewarm_misses,
            "every bin the loop visits was prewarmed"
        );
    }

    #[test]
    fn recovers_when_cap_is_raised() {
        let sku = CpuSku::skylake_8180();
        let mut ctl =
            RaplController::new(RaplConfig::pl1(205.0), sku.base(), Frequency::from_ghz(3.3));
        let low = ctl.settle(&sku, &tank(), 10, 500);
        assert!(low < Frequency::from_ghz(3.3));
        // Raise the cap: the controller climbs back to target.
        ctl.config.power_limit_w = 400.0;
        let high = ctl.settle(&sku, &tank(), 10, 500);
        assert_eq!(high, Frequency::from_ghz(3.3));
    }
}
