//! Temperature- and voltage-dependent static (leakage) power.
//!
//! Operating at higher junction temperatures increases leakage power
//! exponentially (Su et al. \[65\] in the paper). The paper measures that
//! immersion's 17–22 °C junction-temperature reduction saves **11 W of
//! static power per socket** at iso-performance (Section IV, "Power
//! consumption"); this module's default model is calibrated to reproduce
//! exactly that.

use ic_scenario::{LeakageSpec, PowerCalibration};
use serde::{Deserialize, Serialize};

use crate::units::Voltage;

/// An exponential leakage model: `P_static(T, V) = k · V² · exp(β·T)`.
///
/// # Example
///
/// ```
/// use ic_power::leakage::LeakageModel;
/// use ic_power::units::Voltage;
///
/// let m = LeakageModel::skylake();
/// let v = Voltage::from_volts(0.90);
/// // Cooling the junction from 92 °C (air) to 68 °C (2PIC) saves ~11 W.
/// let saved = m.power_w(92.0, v) - m.power_w(68.0, v);
/// assert!((saved - 11.0).abs() < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageModel {
    /// Scale factor, watts at V = 1 V and T = 0 °C.
    k: f64,
    /// Exponential temperature coefficient, 1/°C. Silicon leakage roughly
    /// doubles every 30 °C, i.e. β ≈ 0.023.
    beta: f64,
}

impl LeakageModel {
    /// Creates a leakage model from its raw coefficients.
    ///
    /// # Panics
    ///
    /// Panics if either coefficient is non-positive or non-finite.
    pub fn new(k: f64, beta: f64) -> Self {
        assert!(k.is_finite() && k > 0.0, "invalid k {k}");
        assert!(beta.is_finite() && beta > 0.0, "invalid beta {beta}");
        LeakageModel { k, beta }
    }

    /// Builds a model from a scenario's leakage coefficients.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`LeakageModel::new`]; a spec
    /// from a validated [`ic_scenario::Scenario`] never does.
    pub fn from_spec(spec: &LeakageSpec) -> Self {
        Self::new(spec.k_w_per_v2, spec.beta_per_c)
    }

    /// The Skylake-class model calibrated so that a 0.90 V socket leaks
    /// 11 W more at 92 °C (air-cooled Table III junction temperature)
    /// than at 68 °C (2PIC), with β = 0.022/°C.
    pub fn skylake() -> Self {
        Self::from_spec(&PowerCalibration::paper().leakage)
    }

    /// The scale factor `k`, watts at V = 1 V and T = 0 °C.
    pub fn k_w_per_v2(&self) -> f64 {
        self.k
    }

    /// The exponential temperature coefficient `β`, 1/°C.
    pub fn beta_per_c(&self) -> f64 {
        self.beta
    }

    /// Static power in watts at junction temperature `tj_c` and rail
    /// voltage `v`.
    ///
    /// # Panics
    ///
    /// Panics if `tj_c` is non-finite or outside a physical (−50, 150) °C
    /// range.
    pub fn power_w(&self, tj_c: f64, v: Voltage) -> f64 {
        assert!(
            tj_c.is_finite() && (-50.0..150.0).contains(&tj_c),
            "implausible junction temperature {tj_c} °C"
        );
        let volts = v.volts();
        self.k * volts * volts * (self.beta * tj_c).exp()
    }

    /// The saving from cooling the junction from `hot_c` to `cold_c` at
    /// voltage `v`. Negative if `cold_c > hot_c`.
    pub fn saving_w(&self, hot_c: f64, cold_c: f64, v: Voltage) -> f64 {
        self.power_w(hot_c, v) - self.power_w(cold_c, v)
    }

    /// The exponential temperature coefficient β (1/°C).
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Default for LeakageModel {
    fn default() -> Self {
        LeakageModel::skylake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_saves_11w_per_socket() {
        let m = LeakageModel::skylake();
        let saved = m.saving_w(92.0, 68.0, Voltage::from_volts(0.90));
        assert!((saved - 11.0).abs() < 1e-9, "saved = {saved}");
    }

    #[test]
    fn leakage_grows_exponentially_with_temperature() {
        let m = LeakageModel::skylake();
        let v = Voltage::from_volts(0.90);
        let p50 = m.power_w(50.0, v);
        let p80 = m.power_w(80.0, v);
        let p110 = m.power_w(110.0, v);
        // Doubling roughly every 30 °C at β = 0.022 → ×1.93.
        assert!((p80 / p50 - (0.022f64 * 30.0).exp()).abs() < 1e-9);
        assert!(p110 / p80 > 1.9 && p110 / p80 < 2.0);
    }

    #[test]
    fn leakage_scales_with_v_squared() {
        let m = LeakageModel::skylake();
        let lo = m.power_w(70.0, Voltage::from_volts(0.90));
        let hi = m.power_w(70.0, Voltage::from_volts(0.98));
        assert!((hi / lo - (0.98f64 / 0.90).powi(2)).abs() < 1e-6);
    }

    #[test]
    fn magnitude_is_plausible_share_of_tdp() {
        // At the air-cooled operating point leakage should be a modest
        // fraction of the 205 W TDP (10–20 %).
        let m = LeakageModel::skylake();
        let p = m.power_w(92.0, Voltage::from_volts(0.90));
        assert!((20.0..41.0).contains(&p), "leakage = {p} W");
    }

    #[test]
    fn saving_sign_convention() {
        let m = LeakageModel::skylake();
        let v = Voltage::from_volts(0.9);
        assert!(m.saving_w(90.0, 60.0, v) > 0.0);
        assert!(m.saving_w(60.0, 90.0, v) < 0.0);
    }

    #[test]
    #[should_panic(expected = "implausible junction temperature")]
    fn absurd_temperature_panics() {
        let _ = LeakageModel::skylake().power_w(400.0, Voltage::from_volts(0.9));
    }
}
