//! Priority-aware power capping for oversubscribed power delivery.
//!
//! Overclocking in power-oversubscribed datacenters increases the chance
//! of hitting circuit-breaker limits and triggering capping mechanisms
//! (e.g. Intel RAPL), which throttle CPU frequency and memory bandwidth —
//! potentially erasing any overclocking gains (Section IV, "Power
//! consumption"). The paper recommends workload-priority-based capping
//! (\[38\], \[62\], \[70\]) so that critical or overclocked workloads are
//! throttled last. [`PowerAllocator`] implements that policy: when
//! demand exceeds the budget it satisfies consumers in priority order,
//! reducing the lowest-priority consumers toward their floors first.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An invalid capping configuration or request.
#[derive(Debug, Clone, PartialEq)]
pub enum CapError {
    /// A negative or non-finite power budget.
    InvalidBudget {
        /// The rejected budget, watts.
        budget_w: f64,
    },
    /// A request with a negative floor, non-finite demand, or
    /// `demand_w < floor_w`.
    InvalidRequest {
        /// The rejected request.
        request: PowerRequest,
    },
}

impl fmt::Display for CapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapError::InvalidBudget { budget_w } => write!(f, "invalid budget {budget_w}"),
            CapError::InvalidRequest { request } => write!(f, "invalid request {request:?}"),
        }
    }
}

impl std::error::Error for CapError {}

/// How important a power consumer is when the budget runs short.
/// Higher variants are throttled later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Preemptible batch work: first to be capped.
    Batch = 0,
    /// Ordinary third-party VMs.
    Normal = 1,
    /// Latency-sensitive or overclocked workloads: capped last.
    Critical = 2,
}

/// One server (or socket) asking for power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerRequest {
    /// Caller-chosen identifier, returned in the grant.
    pub id: u64,
    /// Scheduling priority under contention.
    pub priority: Priority,
    /// The minimum power the consumer needs to stay operational (e.g.
    /// base-frequency draw). Never reduced below this.
    pub floor_w: f64,
    /// The power the consumer wants right now (e.g. overclocked draw).
    pub demand_w: f64,
}

/// A consumer's share of the budget after allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerGrant {
    /// Matches the request id.
    pub id: u64,
    /// Granted watts, in `[floor_w, demand_w]`.
    pub granted_w: f64,
    /// `true` if the grant is below demand (the consumer must throttle).
    pub capped: bool,
}

/// Reusable working buffers for
/// [`PowerAllocator::try_allocate_into`]: the priority-sorted index
/// permutation and the per-request running grants. One instance per
/// control loop; contents are scratch only (cleared on every call).
#[derive(Debug, Clone, Default)]
pub struct AllocScratch {
    order: Vec<usize>,
    granted: Vec<f64>,
}

/// A fixed power budget shared by prioritized consumers.
///
/// # Example
///
/// ```
/// use ic_power::capping::{PowerAllocator, PowerRequest, Priority};
///
/// let alloc = PowerAllocator::new(500.0);
/// let grants = alloc.allocate(&[
///     PowerRequest { id: 1, priority: Priority::Critical, floor_w: 100.0, demand_w: 300.0 },
///     PowerRequest { id: 2, priority: Priority::Batch, floor_w: 100.0, demand_w: 300.0 },
/// ]);
/// // The critical consumer gets its full demand; batch absorbs the cut.
/// assert_eq!(grants[0].granted_w, 300.0);
/// assert_eq!(grants[1].granted_w, 200.0);
/// assert!(grants[1].capped);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerAllocator {
    budget_w: f64,
}

impl PowerAllocator {
    /// Creates an allocator with the given budget. Negative or
    /// non-finite budgets are rejected.
    pub fn try_new(budget_w: f64) -> Result<Self, CapError> {
        if budget_w.is_finite() && budget_w >= 0.0 {
            Ok(PowerAllocator { budget_w })
        } else {
            Err(CapError::InvalidBudget { budget_w })
        }
    }

    /// Panicking shorthand for [`PowerAllocator::try_new`], for budgets
    /// known valid at the call site.
    ///
    /// # Panics
    ///
    /// Panics if `budget_w` is negative or non-finite.
    pub fn new(budget_w: f64) -> Self {
        Self::try_new(budget_w).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The budget in watts.
    pub fn budget_w(&self) -> f64 {
        self.budget_w
    }

    /// `true` if the sum of demands exceeds the budget (capping will
    /// occur).
    pub fn is_oversubscribed(&self, requests: &[PowerRequest]) -> bool {
        requests.iter().map(|r| r.demand_w).sum::<f64>() > self.budget_w
    }

    /// Distributes the budget. Every consumer receives at least its floor
    /// (floors are honoured even if they exceed the budget — tripping a
    /// breaker is modelled upstream, not by starving servers below
    /// operational minimums). Remaining budget is then granted in
    /// priority order, highest first; within a priority class, shortfall
    /// is shared proportionally to each consumer's headroom
    /// (`demand − floor`).
    ///
    /// Grants are returned in the same order as `requests`. A request
    /// with `demand_w < floor_w` or negative values is rejected.
    pub fn try_allocate(&self, requests: &[PowerRequest]) -> Result<Vec<PowerGrant>, CapError> {
        let mut out = Vec::with_capacity(requests.len());
        self.try_allocate_into(requests, &mut AllocScratch::default(), &mut out)?;
        Ok(out)
    }

    /// Buffer-reusing form of [`try_allocate`](Self::try_allocate):
    /// identical grants (bitwise — same arithmetic in the same order),
    /// but the sort order and per-request working state live in
    /// `scratch` and the grants land in `out` (cleared first), so a
    /// per-tick caller allocates nothing once the buffers have grown to
    /// the fleet size.
    pub fn try_allocate_into(
        &self,
        requests: &[PowerRequest],
        scratch: &mut AllocScratch,
        out: &mut Vec<PowerGrant>,
    ) -> Result<(), CapError> {
        out.clear();
        for r in requests {
            if !(r.floor_w >= 0.0 && r.demand_w >= r.floor_w && r.demand_w.is_finite()) {
                return Err(CapError::InvalidRequest { request: r.clone() });
            }
        }
        let floors: f64 = requests.iter().map(|r| r.floor_w).sum();
        let mut remaining = (self.budget_w - floors).max(0.0);

        // Group indexes by priority, highest class served first.
        let order = &mut scratch.order;
        order.clear();
        order.extend(0..requests.len());
        order.sort_by(|&a, &b| requests[b].priority.cmp(&requests[a].priority));

        let granted = &mut scratch.granted;
        granted.clear();
        granted.extend(requests.iter().map(|r| r.floor_w));
        let mut i = 0;
        while i < order.len() {
            // Collect the whole priority class.
            let class = requests[order[i]].priority;
            let mut j = i;
            while j < order.len() && requests[order[j]].priority == class {
                j += 1;
            }
            let members = &order[i..j];
            let headroom: f64 = members
                .iter()
                .map(|&m| requests[m].demand_w - requests[m].floor_w)
                .sum();
            if headroom <= remaining {
                // Everyone in this class gets full demand.
                for &m in members {
                    granted[m] = requests[m].demand_w;
                }
                remaining -= headroom;
            } else {
                // Proportional sharing of what's left.
                let share = if headroom > 0.0 {
                    remaining / headroom
                } else {
                    0.0
                };
                for &m in members {
                    let h = requests[m].demand_w - requests[m].floor_w;
                    granted[m] = requests[m].floor_w + h * share;
                }
                remaining = 0.0;
            }
            i = j;
        }

        out.extend(
            requests
                .iter()
                .zip(granted.iter())
                .map(|(r, &g)| PowerGrant {
                    id: r.id,
                    granted_w: g,
                    capped: g < r.demand_w - 1e-9,
                }),
        );
        Ok(())
    }

    /// Panicking shorthand for [`PowerAllocator::try_allocate`], for
    /// requests known valid at the call site.
    ///
    /// # Panics
    ///
    /// Panics if any request has `demand_w < floor_w` or negative values.
    pub fn allocate(&self, requests: &[PowerRequest]) -> Vec<PowerGrant> {
        self.try_allocate(requests)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, priority: Priority, floor: f64, demand: f64) -> PowerRequest {
        PowerRequest {
            id,
            priority,
            floor_w: floor,
            demand_w: demand,
        }
    }

    #[test]
    fn no_contention_everyone_gets_demand() {
        let alloc = PowerAllocator::new(1000.0);
        let grants = alloc.allocate(&[
            req(1, Priority::Batch, 50.0, 200.0),
            req(2, Priority::Critical, 50.0, 300.0),
        ]);
        assert!(grants.iter().all(|g| !g.capped));
        assert_eq!(grants[0].granted_w, 200.0);
        assert_eq!(grants[1].granted_w, 300.0);
    }

    #[test]
    fn critical_throttled_last() {
        let alloc = PowerAllocator::new(450.0);
        let grants = alloc.allocate(&[
            req(1, Priority::Batch, 100.0, 300.0),
            req(2, Priority::Critical, 100.0, 300.0),
        ]);
        assert_eq!(grants[1].granted_w, 300.0);
        assert!((grants[0].granted_w - 150.0).abs() < 1e-9);
        assert!(grants[0].capped && !grants[1].capped);
    }

    #[test]
    fn within_class_proportional_sharing() {
        let alloc = PowerAllocator::new(400.0);
        let grants = alloc.allocate(&[
            req(1, Priority::Normal, 100.0, 300.0), // headroom 200
            req(2, Priority::Normal, 100.0, 200.0), // headroom 100
        ]);
        // Remaining after floors: 200 over headroom 300 → 2/3 share.
        assert!((grants[0].granted_w - (100.0 + 200.0 * 2.0 / 3.0)).abs() < 1e-9);
        assert!((grants[1].granted_w - (100.0 + 100.0 * 2.0 / 3.0)).abs() < 1e-9);
        let total: f64 = grants.iter().map(|g| g.granted_w).sum();
        assert!((total - 400.0).abs() < 1e-9);
    }

    #[test]
    fn floors_always_honoured() {
        let alloc = PowerAllocator::new(100.0);
        let grants = alloc.allocate(&[
            req(1, Priority::Batch, 80.0, 200.0),
            req(2, Priority::Critical, 80.0, 200.0),
        ]);
        assert_eq!(grants[0].granted_w, 80.0);
        assert_eq!(grants[1].granted_w, 80.0);
    }

    #[test]
    fn grants_never_exceed_budget_when_floors_fit() {
        let alloc = PowerAllocator::new(777.0);
        let reqs: Vec<PowerRequest> = (0..10)
            .map(|i| {
                req(
                    i,
                    if i % 2 == 0 {
                        Priority::Batch
                    } else {
                        Priority::Normal
                    },
                    10.0,
                    150.0,
                )
            })
            .collect();
        let total: f64 = alloc.allocate(&reqs).iter().map(|g| g.granted_w).sum();
        assert!(total <= 777.0 + 1e-9);
    }

    #[test]
    fn oversubscription_detection() {
        let alloc = PowerAllocator::new(500.0);
        assert!(!alloc.is_oversubscribed(&[req(1, Priority::Normal, 0.0, 400.0)]));
        assert!(alloc.is_oversubscribed(&[
            req(1, Priority::Normal, 0.0, 400.0),
            req(2, Priority::Normal, 0.0, 200.0)
        ]));
    }

    #[test]
    fn three_priority_classes_cascade() {
        let alloc = PowerAllocator::new(350.0);
        let grants = alloc.allocate(&[
            req(1, Priority::Batch, 50.0, 200.0),
            req(2, Priority::Normal, 50.0, 200.0),
            req(3, Priority::Critical, 50.0, 200.0),
        ]);
        // Floors: 150. Remaining 200 → Critical +150 (full), Normal +50,
        // Batch +0.
        assert_eq!(grants[2].granted_w, 200.0);
        assert_eq!(grants[1].granted_w, 100.0);
        assert_eq!(grants[0].granted_w, 50.0);
    }

    #[test]
    #[should_panic(expected = "invalid request")]
    fn demand_below_floor_panics() {
        PowerAllocator::new(100.0).allocate(&[req(1, Priority::Batch, 50.0, 10.0)]);
    }

    #[test]
    fn try_new_reports_typed_error() {
        assert_eq!(
            PowerAllocator::try_new(-1.0),
            Err(CapError::InvalidBudget { budget_w: -1.0 })
        );
        assert!(PowerAllocator::try_new(f64::NAN).is_err());
        assert_eq!(PowerAllocator::try_new(500.0).unwrap().budget_w(), 500.0);
        let msg = CapError::InvalidBudget { budget_w: -1.0 }.to_string();
        assert!(msg.contains("invalid budget"));
    }

    #[test]
    fn try_allocate_reports_typed_error() {
        let alloc = PowerAllocator::new(100.0);
        let bad = req(7, Priority::Batch, 50.0, 10.0);
        match alloc.try_allocate(std::slice::from_ref(&bad)) {
            Err(CapError::InvalidRequest { request }) => assert_eq!(request, bad),
            other => panic!("expected InvalidRequest, got {other:?}"),
        }
        let ok = alloc
            .try_allocate(&[req(1, Priority::Normal, 10.0, 50.0)])
            .unwrap();
        assert_eq!(ok.len(), 1);
        assert!(!ok[0].capped);
    }
}
