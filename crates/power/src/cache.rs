//! Memoized steady-state solves and precomputed operating-point tables.
//!
//! [`CpuSku::steady_state`] runs a 64-iteration power/temperature fixed
//! point. Sweep-style callers — the RAPL settle loop, turbo-table
//! derivation, the governor's ceiling searches — ask for the *same*
//! handful of (frequency, voltage, interface) points thousands of
//! times, so this module adds two complementary layers:
//!
//! * [`SteadyStateCache`] — a quantized-key memo table. The key is the
//!   operating point on the workspace's native quantization grid
//!   (integer MHz from the 100 MHz bin arithmetic in
//!   [`units`](crate::units), integer millivolts, the thermal
//!   interface's identity key) plus the SKU's calibration constants.
//!   Memoizing a deterministic solver returns bitwise-identical results,
//!   so cached and direct answers agree exactly — the equivalence tests
//!   below pin that. Binning keys coarser than the MHz grid would alias
//!   distinct overclock points (3936 MHz vs 3.9 GHz), which is why the
//!   key quantizes to the grid the solver itself sees, not to whole
//!   bins.
//! * [`OperatingPointTable`] — an eagerly precomputed per-SKU table of
//!   bin-stepped operating points, for callers that scan the whole
//!   frequency ladder (Table III max-turbo inversion) rather than probe
//!   single points.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use crate::batch::BatchPoint;
use crate::cpu::{CpuSku, SteadyState};
use crate::units::{Frequency, Voltage, BIN_MHZ};
use ic_obs::flight::FlightHandle;
use ic_obs::json::Value;
use ic_obs::metrics::MetricsRegistry;
use ic_obs::trace::TraceLevel;
use ic_thermal::junction::ThermalInterface;

/// The memo key: every input the fixed point depends on, quantized to
/// the grid the solver already operates on (no lossy rounding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OperatingPointKey {
    mhz: u32,
    mv: u32,
    /// `ThermalInterface::thermal_key()` — reference temperature and
    /// resistance bit patterns.
    thermal: (u64, u64),
    /// The SKU's calibration constants: effective capacitance and the
    /// two leakage coefficients, as bit patterns.
    sku: (u64, u64, u64),
}

impl OperatingPointKey {
    fn new(sku: &CpuSku, iface: &ThermalInterface, f: Frequency, v: Voltage) -> Self {
        OperatingPointKey {
            mhz: f.mhz(),
            mv: v.mv(),
            thermal: iface.thermal_key(),
            sku: (
                sku.c_eff().to_bits(),
                sku.leakage().k_w_per_v2().to_bits(),
                sku.leakage().beta_per_c().to_bits(),
            ),
        }
    }
}

/// A memo table over [`CpuSku::steady_state`] with hit/miss counters.
///
/// Interior-mutable (`RefCell`/`Cell`) so read-style callers — the
/// governor's `&self` ceiling methods — can consult it without
/// threading `&mut` through their APIs. Not `Sync`: each worker in a
/// parallel sweep owns its own cache (or its own governor/controller,
/// which owns one), which also keeps hit-rate accounting per-instance.
///
/// # Example
///
/// ```
/// use ic_power::cache::SteadyStateCache;
/// use ic_power::cpu::CpuSku;
/// use ic_thermal::junction::ThermalInterface;
///
/// let cache = SteadyStateCache::new();
/// let sku = CpuSku::skylake_8180();
/// let air = ThermalInterface::air(35.0, 12.1, 0.21);
/// let a = cache.steady_state(&sku, &air, sku.air_turbo(), sku.nominal_voltage());
/// let b = cache.steady_state(&sku, &air, sku.air_turbo(), sku.nominal_voltage());
/// assert_eq!(a, b);
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SteadyStateCache {
    map: RefCell<HashMap<OperatingPointKey, SteadyState>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    /// Optional flight recorder for hit/miss instants (attached by
    /// tracing drivers; `None` costs one branch per lookup).
    flight: RefCell<Option<FlightHandle>>,
}

impl SteadyStateCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The memoized equivalent of [`CpuSku::steady_state`]: bitwise the
    /// same result, one fixed-point solve per distinct operating point.
    pub fn steady_state(
        &self,
        sku: &CpuSku,
        iface: &ThermalInterface,
        f: Frequency,
        v: Voltage,
    ) -> SteadyState {
        let key = OperatingPointKey::new(sku, iface, f, v);
        if let Some(&ss) = self.map.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            if let Some(flight) = self.flight.borrow().as_ref() {
                flight.borrow_mut().instant(
                    "steady_cache",
                    "hit",
                    TraceLevel::Debug,
                    vec![("mhz", Value::U64(f.mhz() as u64))],
                );
            }
            return ss;
        }
        let ss = sku.steady_state(iface, f, v);
        self.misses.set(self.misses.get() + 1);
        self.map.borrow_mut().insert(key, ss);
        if let Some(flight) = self.flight.borrow().as_ref() {
            flight.borrow_mut().instant(
                "steady_cache",
                "miss_solve_insert",
                TraceLevel::Info,
                vec![
                    ("mhz", Value::U64(f.mhz() as u64)),
                    ("mv", Value::U64(v.mv() as u64)),
                    ("size", Value::U64(self.map.borrow().len() as u64)),
                ],
            );
        }
        ss
    }

    /// The batched equivalent of calling
    /// [`steady_state`](Self::steady_state) once per point, in order:
    /// same results (bitwise), same hit/miss counter trajectory, same
    /// flight-instant sequence. Distinct uncached points are solved in
    /// one structure-of-arrays pass ([`crate::batch`]); cached points
    /// and within-batch duplicates short-circuit as hits exactly as
    /// they would sequentially.
    ///
    /// Appends one result per point to `out` in request order.
    pub fn steady_state_batch_into(
        &self,
        sku: &CpuSku,
        points: &[BatchPoint<'_>],
        out: &mut Vec<SteadyState>,
    ) {
        // Pass 1: find first occurrences of keys the map does not hold.
        // Batches repeat a few distinct operating points many times
        // (heterogeneity bins, ladder rungs), so a linear scan over the
        // small first-occurrence list beats hashing every request.
        let mut fresh: Vec<(OperatingPointKey, usize)> = Vec::new();
        {
            let map = self.map.borrow();
            for (i, p) in points.iter().enumerate() {
                let key = OperatingPointKey::new(sku, p.iface, p.f, p.v);
                if !map.contains_key(&key) && !fresh.iter().any(|&(k, _)| k == key) {
                    fresh.push((key, i));
                }
            }
        }
        // One batch solve over the distinct new points.
        let solve_points: Vec<BatchPoint<'_>> = fresh.iter().map(|&(_, i)| points[i]).collect();
        let solved = crate::batch::steady_state_batch(sku, &solve_points);
        // Pass 2: replay in request order so counters, insertions, and
        // flight instants land in the exact sequence sequential calls
        // would produce (a first occurrence is a miss inserted before
        // the next request is examined; everything else is a hit).
        let mut next_fresh = 0usize;
        out.reserve(points.len());
        for (i, p) in points.iter().enumerate() {
            if next_fresh < fresh.len() && fresh[next_fresh].1 == i {
                let key = fresh[next_fresh].0;
                let ss = solved[next_fresh];
                next_fresh += 1;
                self.misses.set(self.misses.get() + 1);
                self.map.borrow_mut().insert(key, ss);
                if let Some(flight) = self.flight.borrow().as_ref() {
                    flight.borrow_mut().instant(
                        "steady_cache",
                        "miss_solve_insert",
                        TraceLevel::Info,
                        vec![
                            ("mhz", Value::U64(p.f.mhz() as u64)),
                            ("mv", Value::U64(p.v.mv() as u64)),
                            ("size", Value::U64(self.map.borrow().len() as u64)),
                        ],
                    );
                }
                out.push(ss);
            } else {
                let key = OperatingPointKey::new(sku, p.iface, p.f, p.v);
                let ss = *self.map.borrow().get(&key).expect("resolved in pass 1");
                self.hits.set(self.hits.get() + 1);
                if let Some(flight) = self.flight.borrow().as_ref() {
                    flight.borrow_mut().instant(
                        "steady_cache",
                        "hit",
                        TraceLevel::Debug,
                        vec![("mhz", Value::U64(p.f.mhz() as u64))],
                    );
                }
                out.push(ss);
            }
        }
    }

    /// Allocating wrapper over
    /// [`steady_state_batch_into`](Self::steady_state_batch_into).
    pub fn steady_state_batch(&self, sku: &CpuSku, points: &[BatchPoint<'_>]) -> Vec<SteadyState> {
        let mut out = Vec::with_capacity(points.len());
        self.steady_state_batch_into(sku, points, &mut out);
        out
    }

    /// The memoized equivalent of [`CpuSku::max_turbo`]: the same
    /// bin-stepped search, with each candidate's solve going through the
    /// cache.
    pub fn max_turbo(
        &self,
        sku: &CpuSku,
        iface: &ThermalInterface,
        power_limit_w: f64,
    ) -> Frequency {
        let mut best = sku.base();
        let mut f = sku.base();
        for _ in 0..30 {
            f = f.step_bins(1);
            let v = sku.voltage_for(f);
            if self.steady_state(sku, iface, f, v).power_w <= power_limit_w {
                best = f;
            } else {
                break;
            }
        }
        best
    }

    /// Lookups served from the memo table.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that ran the fixed-point solver.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Hits as a fraction of all lookups (0 when never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.hits.get() as f64 / total as f64
        }
    }

    /// Distinct operating points currently memoized.
    pub fn len(&self) -> usize {
        self.map.borrow().len()
    }

    /// `true` if no operating point has been solved yet.
    pub fn is_empty(&self) -> bool {
        self.map.borrow().is_empty()
    }

    /// Drops all memoized points and zeroes the counters.
    pub fn clear(&self) {
        self.map.borrow_mut().clear();
        self.hits.set(0);
        self.misses.set(0);
    }

    /// Attaches a flight recorder: subsequent lookups record a
    /// `steady_cache`/`hit` instant (`Debug`) on the memo path and a
    /// `steady_cache`/`miss_solve_insert` instant (`Info`, with the
    /// operating point and the post-insert size) on the solve path,
    /// stamped at the recorder's current simulation time.
    pub fn attach_flight(&self, flight: FlightHandle) {
        *self.flight.borrow_mut() = Some(flight);
    }

    /// Detaches the flight recorder (lookups go back to counting only).
    pub fn detach_flight(&self) {
        *self.flight.borrow_mut() = None;
    }

    /// Publishes the cache's state into `metrics` as gauges:
    /// `steady_cache_hits`, `steady_cache_misses`,
    /// `steady_cache_hit_rate` (matching [`hit_rate`](Self::hit_rate)
    /// exactly), and `steady_cache_size`.
    pub fn export_metrics(&self, metrics: &mut MetricsRegistry) {
        metrics.gauge_set("steady_cache_hits", self.hits.get() as f64);
        metrics.gauge_set("steady_cache_misses", self.misses.get() as f64);
        metrics.gauge_set("steady_cache_hit_rate", self.hit_rate());
        metrics.gauge_set("steady_cache_size", self.len() as f64);
    }
}

/// One precomputed row of an [`OperatingPointTable`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// The bin-aligned frequency of this row.
    pub frequency: Frequency,
    /// The V/f-curve voltage the SKU needs at that frequency.
    pub voltage: Voltage,
    /// The solved steady state at (`frequency`, `voltage`).
    pub state: SteadyState,
}

/// A per-SKU table of solved operating points, one per 100 MHz bin from
/// base upward — the precomputed complement to [`SteadyStateCache`] for
/// callers that scan the whole ladder (max-turbo inversions, staircase
/// plots) instead of probing isolated points.
///
/// # Example
///
/// ```
/// use ic_power::cache::OperatingPointTable;
/// use ic_power::cpu::CpuSku;
/// use ic_thermal::junction::ThermalInterface;
///
/// let sku = CpuSku::skylake_8180();
/// let air = ThermalInterface::air(35.0, 12.1, 0.21);
/// let table = OperatingPointTable::build(&sku, &air, 30);
/// assert_eq!(table.max_turbo(sku.tdp_w()), sku.max_turbo(&air, sku.tdp_w()));
/// ```
#[derive(Debug, Clone)]
pub struct OperatingPointTable {
    base_mhz: u32,
    points: Vec<OperatingPoint>,
}

impl OperatingPointTable {
    /// Solves `bins_above_base + 1` operating points (base included) for
    /// `sku` under `iface`, each at the V/f-curve voltage.
    pub fn build(sku: &CpuSku, iface: &ThermalInterface, bins_above_base: u32) -> Self {
        let base = sku.base();
        let points = (0..=bins_above_base)
            .map(|bin| {
                let frequency = base.step_bins(bin as i32);
                let voltage = sku.voltage_for(frequency);
                OperatingPoint {
                    frequency,
                    voltage,
                    state: sku.steady_state(iface, frequency, voltage),
                }
            })
            .collect();
        OperatingPointTable {
            base_mhz: base.mhz(),
            points,
        }
    }

    /// The precomputed point at `f`, if `f` is bin-aligned and inside
    /// the table's range.
    pub fn lookup(&self, f: Frequency) -> Option<&OperatingPoint> {
        let mhz = f.mhz();
        if mhz < self.base_mhz || !(mhz - self.base_mhz).is_multiple_of(BIN_MHZ) {
            return None;
        }
        self.points.get(((mhz - self.base_mhz) / BIN_MHZ) as usize)
    }

    /// The highest tabulated frequency whose steady-state power fits
    /// `power_limit_w` — [`CpuSku::max_turbo`] as a table scan: step up
    /// from base, stop at the first bin over the limit.
    pub fn max_turbo(&self, power_limit_w: f64) -> Frequency {
        let mut best = Frequency::from_mhz(self.base_mhz);
        for p in &self.points[1..] {
            if p.state.power_w <= power_limit_w {
                best = p.frequency;
            } else {
                break;
            }
        }
        best
    }

    /// The number of tabulated points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the table has no points (never, for a built table).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All tabulated points in ascending frequency order.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_sim::rng::SimRng;
    use ic_thermal::fluid::DielectricFluid;

    fn interfaces() -> Vec<ThermalInterface> {
        vec![
            ThermalInterface::air(35.0, 12.0, 0.22),
            ThermalInterface::air(35.0, 12.1, 0.21),
            ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 1.6),
            ThermalInterface::two_phase(DielectricFluid::hfe7000(), 0.084, 0.0),
        ]
    }

    fn skus() -> Vec<CpuSku> {
        vec![
            CpuSku::skylake_8168(),
            CpuSku::skylake_8180(),
            CpuSku::xeon_w3175x(),
            CpuSku::i9_9900k(),
        ]
    }

    #[test]
    fn cached_equals_direct_at_random_operating_points() {
        // Property test: over randomly drawn (SKU, interface, f, v)
        // points — including bin-misaligned overclock frequencies — the
        // cached answer is bitwise the direct solver's answer, on both
        // the miss and the hit path.
        let cache = SteadyStateCache::new();
        let mut rng = SimRng::seed_from_u64(2021);
        let skus = skus();
        let ifaces = interfaces();
        for _ in 0..500 {
            let sku = &skus[rng.index(skus.len())];
            let iface = &ifaces[rng.index(ifaces.len())];
            let f = Frequency::from_mhz(1200 + rng.index(3000) as u32);
            let v = Voltage::from_mv(850 + rng.index(200) as u32);
            let direct = sku.steady_state(iface, f, v);
            let miss = cache.steady_state(sku, iface, f, v);
            let hit = cache.steady_state(sku, iface, f, v);
            assert_eq!(direct, miss, "{} at {f} {v}", sku.name());
            assert_eq!(direct, hit, "{} at {f} {v} (hit path)", sku.name());
        }
        assert!(cache.hits() >= 500, "every second lookup must hit");
        assert!(cache.hit_rate() >= 0.5);
    }

    #[test]
    fn batch_matches_sequential_including_cache_hit_interleavings() {
        // Property test: a batched lookup over a random mix of repeated
        // and fresh points — against a cache that is itself randomly
        // pre-warmed — must match per-point sequential calls exactly:
        // same results bitwise, same hit/miss counter trajectory.
        let mut rng = SimRng::seed_from_u64(88);
        let skus = skus();
        let ifaces = interfaces();
        for round in 0..20 {
            let sku = &skus[rng.index(skus.len())];
            let batched = SteadyStateCache::new();
            let sequential = SteadyStateCache::new();
            // Pre-warm both caches identically with a few points.
            for _ in 0..rng.index(4) {
                let f = Frequency::from_mhz(1200 + 100 * rng.index(30) as u32);
                let v = sku.voltage_for(f);
                let iface = &ifaces[rng.index(ifaces.len())];
                batched.steady_state(sku, iface, f, v);
                sequential.steady_state(sku, iface, f, v);
            }
            // Draw from a small pool so the batch holds duplicates of
            // both cached and uncached points, interleaved.
            let pool: Vec<(usize, Frequency)> = (0..4)
                .map(|_| {
                    (
                        rng.index(ifaces.len()),
                        Frequency::from_mhz(1200 + 100 * rng.index(30) as u32),
                    )
                })
                .collect();
            let picks: Vec<(usize, Frequency, Voltage)> = (0..rng.index(40))
                .map(|_| {
                    let (i, f) = pool[rng.index(pool.len())];
                    (i, f, sku.voltage_for(f))
                })
                .collect();
            let points: Vec<BatchPoint<'_>> = picks
                .iter()
                .map(|&(i, f, v)| BatchPoint {
                    iface: &ifaces[i],
                    f,
                    v,
                })
                .collect();
            let got = batched.steady_state_batch(sku, &points);
            let want: Vec<SteadyState> = picks
                .iter()
                .map(|&(i, f, v)| sequential.steady_state(sku, &ifaces[i], f, v))
                .collect();
            assert_eq!(got, want, "round {round}");
            assert_eq!(
                (batched.hits(), batched.misses()),
                (sequential.hits(), sequential.misses()),
                "round {round} counter trajectory"
            );
            assert_eq!(batched.len(), sequential.len(), "round {round}");
        }
    }

    #[test]
    fn cached_max_turbo_matches_direct() {
        let cache = SteadyStateCache::new();
        for sku in skus() {
            for iface in interfaces() {
                for limit in [120.0, 205.0, 255.0, 400.0] {
                    assert_eq!(
                        cache.max_turbo(&sku, &iface, limit),
                        sku.max_turbo(&iface, limit),
                        "{} limit {limit}",
                        sku.name()
                    );
                }
            }
        }
        assert!(cache.hits() > 0, "repeated limits must share solves");
    }

    #[test]
    fn distinct_skus_and_interfaces_do_not_collide() {
        // Same (f, v) under different SKUs/interfaces must occupy
        // distinct memo slots.
        let cache = SteadyStateCache::new();
        let f = Frequency::from_ghz(2.6);
        let v = Voltage::from_volts(0.9);
        for sku in skus() {
            for iface in interfaces() {
                let got = cache.steady_state(&sku, &iface, f, v);
                assert_eq!(got, sku.steady_state(&iface, f, v), "{}", sku.name());
            }
        }
        assert_eq!(cache.len(), 16);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn near_miss_frequencies_are_not_aliased() {
        // 3936 MHz (the +23 % overclock point of a 3.2 GHz flat-top) and
        // its 3.9 GHz bin neighbour must resolve separately.
        let cache = SteadyStateCache::new();
        let sku = CpuSku::skylake_8180();
        let iface = ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 1.6);
        let a = Frequency::from_mhz(3936);
        let b = Frequency::from_mhz(3900);
        let pa = cache.steady_state(&sku, &iface, a, sku.voltage_for(a));
        let pb = cache.steady_state(&sku, &iface, b, sku.voltage_for(b));
        assert!(pa.power_w > pb.power_w, "{} vs {}", pa.power_w, pb.power_w);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn clear_resets_contents_and_counters() {
        let cache = SteadyStateCache::new();
        let sku = CpuSku::skylake_8180();
        let iface = ThermalInterface::air(35.0, 12.1, 0.21);
        cache.steady_state(&sku, &iface, sku.base(), sku.nominal_voltage());
        cache.steady_state(&sku, &iface, sku.base(), sku.nominal_voltage());
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert_eq!(cache.hit_rate(), 0.0);
    }

    #[test]
    fn exported_gauges_match_counters_and_hit_rate() {
        let cache = SteadyStateCache::new();
        let sku = CpuSku::skylake_8180();
        let iface = ThermalInterface::air(35.0, 12.1, 0.21);
        // 1 miss + 3 hits on one point, 1 miss on another: rate 3/5.
        for _ in 0..4 {
            cache.steady_state(&sku, &iface, sku.base(), sku.nominal_voltage());
        }
        cache.steady_state(&sku, &iface, sku.air_turbo(), sku.nominal_voltage());

        let mut metrics = MetricsRegistry::new();
        cache.export_metrics(&mut metrics);
        assert_eq!(metrics.gauge("steady_cache_hits"), Some(3.0));
        assert_eq!(metrics.gauge("steady_cache_misses"), Some(2.0));
        assert_eq!(
            metrics.gauge("steady_cache_hit_rate"),
            Some(cache.hit_rate())
        );
        assert_eq!(metrics.gauge("steady_cache_hit_rate"), Some(0.6));
        assert_eq!(metrics.gauge("steady_cache_size"), Some(2.0));
    }

    #[test]
    fn attached_flight_records_hit_and_miss_instants() {
        let cache = SteadyStateCache::new();
        let flight = ic_obs::flight::shared_flight(1024);
        cache.attach_flight(flight.clone());
        let sku = CpuSku::skylake_8180();
        let iface = ThermalInterface::air(35.0, 12.1, 0.21);
        cache.steady_state(&sku, &iface, sku.base(), sku.nominal_voltage());
        cache.steady_state(&sku, &iface, sku.base(), sku.nominal_voltage());

        let counts = flight.borrow().counts_by_kind();
        assert_eq!(counts[&("steady_cache", "miss_solve_insert")], 1);
        assert_eq!(counts[&("steady_cache", "hit")], 1);

        cache.detach_flight();
        cache.steady_state(&sku, &iface, sku.base(), sku.nominal_voltage());
        assert_eq!(
            flight.borrow().counts_by_kind()[&("steady_cache", "hit")],
            1
        );
    }

    #[test]
    fn table_rows_match_direct_solves() {
        for sku in skus() {
            let iface = ThermalInterface::air(35.0, 12.0, 0.22);
            let table = OperatingPointTable::build(&sku, &iface, 30);
            assert_eq!(table.len(), 31);
            for p in table.points() {
                assert_eq!(p.voltage, sku.voltage_for(p.frequency));
                assert_eq!(
                    p.state,
                    sku.steady_state(&iface, p.frequency, p.voltage),
                    "{} at {}",
                    sku.name(),
                    p.frequency
                );
            }
        }
    }

    #[test]
    fn table_max_turbo_matches_sku_over_limit_sweep() {
        let sku = CpuSku::skylake_8180();
        for iface in interfaces() {
            let table = OperatingPointTable::build(&sku, &iface, 30);
            for limit in (100..=420).step_by(20) {
                let limit = limit as f64;
                assert_eq!(
                    table.max_turbo(limit),
                    sku.max_turbo(&iface, limit),
                    "limit {limit}"
                );
            }
        }
    }

    #[test]
    fn table_lookup_rejects_misaligned_and_out_of_range() {
        let sku = CpuSku::skylake_8180();
        let iface = ThermalInterface::air(35.0, 12.1, 0.21);
        let table = OperatingPointTable::build(&sku, &iface, 10);
        assert!(table.lookup(sku.base()).is_some());
        assert!(table.lookup(sku.base().step_bins(10)).is_some());
        assert!(table.lookup(sku.base().step_bins(11)).is_none());
        assert!(table
            .lookup(Frequency::from_mhz(sku.base().mhz() + 50))
            .is_none());
        assert!(table.lookup(Frequency::from_mhz(100)).is_none());
    }
}
