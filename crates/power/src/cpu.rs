//! Whole-socket CPU power with thermal feedback.
//!
//! Socket power is dynamic switching power plus leakage:
//!
//! ```text
//! P = C_eff · V² · f  +  P_static(T_j, V),      T_j = T_ref + R_th · P
//! ```
//!
//! Leakage depends on junction temperature, which depends on total power,
//! so the steady state is a fixed point; [`CpuSku::steady_state`] solves
//! it iteratively. `C_eff` is calibrated per SKU so the air-cooled
//! operating point of Table III reproduces: the 24-core Skylake 8168
//! draws its 205 W TDP at 3.1 GHz all-core turbo in air, the 28-core
//! 8180 at 2.6 GHz. With the same TDP budget in a 2PIC tank, reduced
//! leakage buys exactly one additional 100 MHz turbo bin — the paper's
//! headline characterization result.

use crate::leakage::LeakageModel;
use crate::units::{Frequency, Voltage};
use crate::vf::VfCurve;
use ic_thermal::junction::ThermalInterface;
use serde::{Deserialize, Serialize};

/// A processor SKU with a calibrated power model.
///
/// # Example
///
/// ```
/// use ic_power::cpu::CpuSku;
/// use ic_thermal::junction::ThermalInterface;
/// use ic_thermal::fluid::DielectricFluid;
///
/// let sku = CpuSku::skylake_8168();
/// let air = ThermalInterface::air(35.0, 12.0, 0.22);
/// let ss = sku.steady_state(&air, sku.air_turbo(), sku.nominal_voltage());
/// assert!((ss.power_w - 205.0).abs() < 3.0);
/// assert!((ss.tj_c - 92.0).abs() < 1.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSku {
    name: String,
    cores: u32,
    tdp_w: f64,
    base_f: Frequency,
    air_turbo_f: Frequency,
    nominal_v: Voltage,
    vf: VfCurve,
    leakage: LeakageModel,
    c_eff_w_per_v2_ghz: f64,
}

/// A solved steady-state operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteadyState {
    /// Total socket power in watts.
    pub power_w: f64,
    /// Junction temperature in °C.
    pub tj_c: f64,
    /// Static (leakage) share of the power, watts.
    pub static_w: f64,
}

impl CpuSku {
    /// Builds a SKU, calibrating effective capacitance so that the socket
    /// draws exactly `tdp_w` at (`air_turbo_f`, `nominal_v`) with the
    /// junction at `tj_cal_c` — the measured air-cooled operating point.
    ///
    /// The V/f curve is anchored one bin above air turbo (the whole turbo
    /// domain runs at nominal voltage; overclocking beyond it climbs the
    /// measured W-3175X slope to +23 % frequency at 0.98 V-equivalent).
    ///
    /// # Panics
    ///
    /// Panics if the TDP is not positive, the core count is zero, or the
    /// calibration point leaves no dynamic power budget.
    #[allow(clippy::too_many_arguments)] // mirrors the datasheet parameter set
    pub fn new(
        name: impl Into<String>,
        cores: u32,
        tdp_w: f64,
        base_f: Frequency,
        air_turbo_f: Frequency,
        nominal_v: Voltage,
        tj_cal_c: f64,
        leakage: LeakageModel,
    ) -> Self {
        assert!(tdp_w > 0.0 && tdp_w.is_finite(), "invalid TDP {tdp_w}");
        assert!(cores > 0, "a CPU needs at least one core");
        assert!(base_f <= air_turbo_f, "base above turbo");
        let static_w = leakage.power_w(tj_cal_c, nominal_v);
        let dyn_w = tdp_w - static_w;
        assert!(
            dyn_w > 0.0,
            "leakage {static_w} W exceeds TDP {tdp_w} W at calibration point"
        );
        let c_eff = dyn_w / (nominal_v.volts().powi(2) * air_turbo_f.ghz());
        let flat_top = air_turbo_f.step_bins(1);
        let oc_point = Frequency::from_mhz((flat_top.mhz() as f64 * 1.23).round() as u32);
        let vf = VfCurve::from_points(
            (flat_top, nominal_v),
            (
                oc_point,
                Voltage::from_mv((nominal_v.mv() as f64 * 0.98 / 0.90).round() as u32),
            ),
        );
        CpuSku {
            name: name.into(),
            cores,
            tdp_w,
            base_f,
            air_turbo_f,
            nominal_v,
            vf,
            leakage,
            c_eff_w_per_v2_ghz: c_eff,
        }
    }

    /// The 24-core Intel Skylake 8168 (205 W TDP) from the large tank:
    /// 3.1 GHz all-core turbo at 92 °C in air (Table III).
    pub fn skylake_8168() -> Self {
        CpuSku::new(
            "Skylake 8168",
            24,
            205.0,
            Frequency::from_ghz(2.7),
            Frequency::from_ghz(3.1),
            Voltage::from_volts(0.90),
            // Self-consistent with the air interface: 47 + 0.22 × 205.
            92.1,
            LeakageModel::skylake(),
        )
    }

    /// The 28-core Intel Skylake 8180 (205 W TDP) from the large tank:
    /// 2.6 GHz all-core turbo at 90 °C in air (Table III).
    pub fn skylake_8180() -> Self {
        CpuSku::new(
            "Skylake 8180",
            28,
            205.0,
            Frequency::from_ghz(2.1),
            Frequency::from_ghz(2.6),
            Voltage::from_volts(0.90),
            // Self-consistent with the air interface: 47.1 + 0.21 × 205.
            90.15,
            LeakageModel::skylake(),
        )
    }

    /// The 28-core overclockable Xeon W-3175X (255 W TDP) from small tank
    /// #1: 3.1 GHz base, 3.4 GHz all-core turbo (config B2), overclocked
    /// to 4.1 GHz in configs OC1–OC3.
    pub fn xeon_w3175x() -> Self {
        CpuSku::new(
            "Xeon W-3175X",
            28,
            255.0,
            Frequency::from_ghz(3.1),
            Frequency::from_ghz(3.4),
            Voltage::from_volts(0.90),
            90.0,
            LeakageModel::skylake(),
        )
    }

    /// The 8-core Intel i9-9900K (95 W TDP) from small tank #2, host of
    /// the RTX 2080 Ti GPU experiments.
    pub fn i9_9900k() -> Self {
        CpuSku::new(
            "Core i9-9900K",
            8,
            95.0,
            Frequency::from_ghz(3.6),
            Frequency::from_ghz(4.7),
            Voltage::from_volts(1.0),
            90.0,
            LeakageModel::skylake(),
        )
    }

    /// Looks a preset SKU up by its marketing name (case-insensitive);
    /// scenario platform specs reference SKUs through these names.
    pub fn by_name(name: &str) -> Option<CpuSku> {
        [
            Self::skylake_8168(),
            Self::skylake_8180(),
            Self::xeon_w3175x(),
            Self::i9_9900k(),
        ]
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// The SKU's marketing name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Physical core count.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Rated thermal design power, watts.
    pub fn tdp_w(&self) -> f64 {
        self.tdp_w
    }

    /// Guaranteed base frequency.
    pub fn base(&self) -> Frequency {
        self.base_f
    }

    /// All-core turbo frequency achieved in air at TDP.
    pub fn air_turbo(&self) -> Frequency {
        self.air_turbo_f
    }

    /// Nominal rail voltage.
    pub fn nominal_voltage(&self) -> Voltage {
        self.nominal_v
    }

    /// The SKU's voltage/frequency curve.
    pub fn vf_curve(&self) -> &VfCurve {
        &self.vf
    }

    /// The leakage model.
    pub fn leakage(&self) -> &LeakageModel {
        &self.leakage
    }

    /// The calibrated effective capacitance, W/(V²·GHz).
    pub fn c_eff(&self) -> f64 {
        self.c_eff_w_per_v2_ghz
    }

    /// Dynamic power at frequency `f` and voltage `v`, all cores active.
    pub fn dynamic_power_w(&self, f: Frequency, v: Voltage) -> f64 {
        self.c_eff_w_per_v2_ghz * v.volts().powi(2) * f.ghz()
    }

    /// The voltage the V/f curve requires to run at `f`.
    pub fn voltage_for(&self, f: Frequency) -> Voltage {
        self.vf.voltage_for(f).max(self.nominal_v)
    }

    /// Solves the power/temperature fixed point for running all cores at
    /// (`f`, `v`) through the given thermal interface.
    pub fn steady_state(&self, iface: &ThermalInterface, f: Frequency, v: Voltage) -> SteadyState {
        let dyn_w = self.dynamic_power_w(f, v);
        let mut power = dyn_w;
        let mut tj = iface.junction_temp_c(power);
        for _ in 0..64 {
            let static_w = self.leakage.power_w(tj.min(149.0), v);
            let next = dyn_w + static_w;
            tj = iface.junction_temp_c(next);
            if (next - power).abs() < 1e-9 {
                power = next;
                break;
            }
            power = next;
        }
        SteadyState {
            power_w: power,
            tj_c: tj,
            static_w: power - dyn_w,
        }
    }

    /// The highest all-core frequency, stepped in 100 MHz bins from base,
    /// whose steady-state power stays at or below `power_limit_w` under
    /// `iface`, using the V/f curve for voltage. This is how Table III's
    /// "max turbo" column is produced.
    pub fn max_turbo(&self, iface: &ThermalInterface, power_limit_w: f64) -> Frequency {
        let mut best = self.base_f;
        let mut f = self.base_f;
        // Search up to +30 bins (3 GHz) above base; far beyond any
        // physically reachable point for these SKUs.
        for _ in 0..30 {
            f = f.step_bins(1);
            let v = self.voltage_for(f);
            if self.steady_state(iface, f, v).power_w <= power_limit_w {
                best = f;
            } else {
                break;
            }
        }
        best
    }

    /// The steady state at the paper's overclocked operating point:
    /// +23 % frequency over the 2PIC turbo at the 0.98/0.90-scaled
    /// voltage, nominally 305 W for the Skylake server parts.
    pub fn overclocked_state(&self, iface: &ThermalInterface) -> SteadyState {
        let f2pic = self.air_turbo_f.step_bins(1);
        let f = Frequency::from_mhz((f2pic.mhz() as f64 * 1.23).round() as u32);
        let v = self.voltage_for(f);
        self.steady_state(iface, f, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_thermal::fluid::DielectricFluid;

    fn air_8168() -> ThermalInterface {
        ThermalInterface::air(35.0, 12.0, 0.22)
    }
    fn air_8180() -> ThermalInterface {
        ThermalInterface::air(35.0, 12.1, 0.21)
    }
    fn tank_8168() -> ThermalInterface {
        ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.12, 0.4)
    }
    fn tank_8180() -> ThermalInterface {
        ThermalInterface::two_phase(DielectricFluid::fc3284(), 0.08, 1.6)
    }

    #[test]
    fn calibration_point_reproduces_tdp_and_tj() {
        let sku = CpuSku::skylake_8180();
        let ss = sku.steady_state(&air_8180(), sku.air_turbo(), sku.nominal_voltage());
        assert!((ss.power_w - 205.0).abs() < 3.0, "power {}", ss.power_w);
        assert!((ss.tj_c - 90.0).abs() < 1.5, "tj {}", ss.tj_c);
    }

    #[test]
    fn table3_one_extra_bin_in_2pic() {
        for (sku, air, tank, air_ghz, tank_ghz) in [
            (CpuSku::skylake_8168(), air_8168(), tank_8168(), 3.1, 3.2),
            (CpuSku::skylake_8180(), air_8180(), tank_8180(), 2.6, 2.7),
        ] {
            let t_air = sku.max_turbo(&air, sku.tdp_w());
            let t_tank = sku.max_turbo(&tank, sku.tdp_w());
            assert_eq!(t_air, Frequency::from_ghz(air_ghz), "{} air", sku.name());
            assert_eq!(t_tank, Frequency::from_ghz(tank_ghz), "{} 2PIC", sku.name());
        }
    }

    #[test]
    fn iso_power_iso_turbo_between_air_and_tank() {
        // Table III: measured power is ~204.4–204.5 W in both environments;
        // the tank's advantage is temperature, not power.
        let sku = CpuSku::skylake_8168();
        let a = sku.steady_state(&air_8168(), Frequency::from_ghz(3.1), sku.nominal_voltage());
        let t = sku.steady_state(
            &tank_8168(),
            Frequency::from_ghz(3.1),
            sku.nominal_voltage(),
        );
        assert!(a.power_w > t.power_w, "leakage should drop in the tank");
        assert!((a.tj_c - t.tj_c) > 15.0, "tank should run much cooler");
    }

    #[test]
    fn overclocked_state_near_305w() {
        // Section IV: 205 W @ 0.90 V → 305 W @ 0.98 V per socket. Our
        // composite model lands within ~5 % (uncore/memory scaling is
        // carried by the server model, not the socket model).
        let sku = CpuSku::skylake_8180();
        let ss = sku.overclocked_state(&tank_8180());
        assert!(
            (ss.power_w - 305.0).abs() < 20.0,
            "overclocked power {}",
            ss.power_w
        );
        assert!(ss.tj_c < 80.0, "2PIC keeps the OC junction below 80 °C");
    }

    #[test]
    fn dynamic_power_scales_v2f() {
        let sku = CpuSku::skylake_8180();
        let f = Frequency::from_ghz(2.0);
        let p1 = sku.dynamic_power_w(f, Voltage::from_volts(0.9));
        let p2 = sku.dynamic_power_w(f.step_bins(10), Voltage::from_volts(0.9));
        assert!((p2 / p1 - 1.5).abs() < 1e-9);
        let p3 = sku.dynamic_power_w(f, Voltage::from_volts(1.8));
        assert!((p3 / p1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn steady_state_static_share_is_positive_and_minor() {
        let sku = CpuSku::skylake_8168();
        let ss = sku.steady_state(&air_8168(), sku.air_turbo(), sku.nominal_voltage());
        assert!(ss.static_w > 0.0);
        assert!(ss.static_w < ss.power_w * 0.3);
    }

    #[test]
    fn max_turbo_honours_lower_power_caps() {
        let sku = CpuSku::skylake_8180();
        let capped = sku.max_turbo(&air_8180(), 150.0);
        let uncapped = sku.max_turbo(&air_8180(), 205.0);
        assert!(capped < uncapped);
    }

    #[test]
    fn voltage_never_below_nominal() {
        let sku = CpuSku::skylake_8180();
        assert_eq!(
            sku.voltage_for(Frequency::from_ghz(1.0)),
            sku.nominal_voltage()
        );
        assert!(sku.voltage_for(Frequency::from_ghz(3.3)) > sku.nominal_voltage());
    }

    #[test]
    fn sku_catalog_core_counts() {
        assert_eq!(CpuSku::skylake_8168().cores(), 24);
        assert_eq!(CpuSku::skylake_8180().cores(), 28);
        assert_eq!(CpuSku::xeon_w3175x().cores(), 28);
        assert_eq!(CpuSku::i9_9900k().cores(), 8);
    }
}
