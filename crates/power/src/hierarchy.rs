//! Hierarchical power delivery: datacenter → row → rack → server.
//!
//! The paper warns that "overclocking in oversubscribed datacenters
//! increases the chance of hitting limits and triggering power capping
//! mechanisms" at any level of the delivery hierarchy (Section IV,
//! citing Dynamo \[70\] and priority-aware capping \[38\], \[62\]). This
//! module nests [`PowerAllocator`]s: a request must fit under its
//! server's rack budget, the rack under its row, the row under the
//! facility breaker — and capping cascades top-down so a hot row
//! squeezes its own racks before neighbours feel anything.

use crate::capping::{PowerAllocator, PowerGrant, PowerRequest};
use serde::{Deserialize, Serialize};

/// A node in the power-delivery tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerDomain {
    name: String,
    budget_w: f64,
    children: Vec<PowerDomain>,
    /// Leaf domains hold the consumer requests directly.
    requests: Vec<PowerRequest>,
}

impl PowerDomain {
    /// Creates an interior domain with child domains.
    ///
    /// # Panics
    ///
    /// Panics if the budget is not positive or `children` is empty.
    pub fn interior(name: impl Into<String>, budget_w: f64, children: Vec<PowerDomain>) -> Self {
        assert!(budget_w > 0.0 && budget_w.is_finite(), "invalid budget");
        assert!(!children.is_empty(), "interior domain needs children");
        PowerDomain {
            name: name.into(),
            budget_w,
            children,
            requests: Vec::new(),
        }
    }

    /// Creates a leaf domain (e.g. a rack) with direct consumers.
    ///
    /// # Panics
    ///
    /// Panics if the budget is not positive.
    pub fn leaf(name: impl Into<String>, budget_w: f64, requests: Vec<PowerRequest>) -> Self {
        assert!(budget_w > 0.0 && budget_w.is_finite(), "invalid budget");
        PowerDomain {
            name: name.into(),
            budget_w,
            children: Vec::new(),
            requests,
        }
    }

    /// The domain label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The domain's breaker budget, watts.
    pub fn budget_w(&self) -> f64 {
        self.budget_w
    }

    /// Total demand underneath this domain, watts.
    pub fn total_demand_w(&self) -> f64 {
        if self.children.is_empty() {
            self.requests.iter().map(|r| r.demand_w).sum()
        } else {
            self.children.iter().map(|c| c.total_demand_w()).sum()
        }
    }

    /// Total floors underneath this domain, watts.
    pub fn total_floor_w(&self) -> f64 {
        if self.children.is_empty() {
            self.requests.iter().map(|r| r.floor_w).sum()
        } else {
            self.children.iter().map(|c| c.total_floor_w()).sum()
        }
    }

    /// The oversubscription ratio of this domain: demand / budget.
    pub fn oversubscription(&self) -> f64 {
        self.total_demand_w() / self.budget_w
    }

    /// Resolves the whole tree top-down: each domain receives
    /// `min(own budget, parent's grant share)` and distributes it to its
    /// children proportionally to their demand (floors always honoured),
    /// with leaves running the priority-aware allocator. Returns all
    /// leaf grants as `(domain name, grant)` pairs in depth-first order.
    pub fn resolve(&self) -> Vec<(String, PowerGrant)> {
        let effective = self.budget_w;
        self.resolve_with(effective)
    }

    fn resolve_with(&self, granted_w: f64) -> Vec<(String, PowerGrant)> {
        let effective = granted_w.min(self.budget_w);
        if self.children.is_empty() {
            return PowerAllocator::new(effective.max(0.0))
                .allocate(&self.requests)
                .into_iter()
                .map(|g| (self.name.clone(), g))
                .collect();
        }
        // Distribute to children: floors first, then remaining budget
        // funds priority classes top-down *across* children (a critical
        // rack outranks a batch rack elsewhere in the row), proportional
        // within a class.
        let floors: Vec<f64> = self.children.iter().map(|c| c.total_floor_w()).collect();
        let class_headrooms: Vec<[f64; 3]> = self
            .children
            .iter()
            .map(|c| c.headroom_by_priority())
            .collect();
        let total_floor: f64 = floors.iter().sum();
        let mut spare = (effective - total_floor).max(0.0);
        let mut funded: Vec<f64> = vec![0.0; self.children.len()];
        // Class index 2 = Critical, 0 = Batch.
        for class in (0..3).rev() {
            let class_total: f64 = class_headrooms.iter().map(|h| h[class]).sum();
            if class_total <= 0.0 {
                continue;
            }
            let ratio = (spare / class_total).min(1.0);
            for (f, h) in funded.iter_mut().zip(&class_headrooms) {
                *f += h[class] * ratio;
            }
            spare -= class_total * ratio;
            if spare <= 0.0 {
                break;
            }
        }
        let mut out = Vec::new();
        for ((child, floor), fund) in self.children.iter().zip(&floors).zip(&funded) {
            out.extend(child.resolve_with(floor + fund));
        }
        out
    }

    /// Above-floor demand underneath this domain, split by priority
    /// class (`[Batch, Normal, Critical]`).
    fn headroom_by_priority(&self) -> [f64; 3] {
        if self.children.is_empty() {
            let mut out = [0.0; 3];
            for r in &self.requests {
                out[r.priority as usize] += (r.demand_w - r.floor_w).max(0.0);
            }
            out
        } else {
            let mut out = [0.0; 3];
            for c in &self.children {
                let h = c.headroom_by_priority();
                for i in 0..3 {
                    out[i] += h[i];
                }
            }
            out
        }
    }

    /// `true` if any domain in the tree is oversubscribed (demand above
    /// its own budget).
    pub fn any_oversubscribed(&self) -> bool {
        if self.oversubscription() > 1.0 {
            return true;
        }
        self.children.iter().any(|c| c.any_oversubscribed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capping::Priority;

    fn req(id: u64, pri: Priority, floor: f64, demand: f64) -> PowerRequest {
        PowerRequest {
            id,
            priority: pri,
            floor_w: floor,
            demand_w: demand,
        }
    }

    fn rack(name: &str, budget: f64, n: usize, pri: Priority) -> PowerDomain {
        PowerDomain::leaf(
            name,
            budget,
            (0..n as u64).map(|i| req(i, pri, 150.0, 305.0)).collect(),
        )
    }

    #[test]
    fn uncontended_tree_grants_demand() {
        let dc = PowerDomain::interior(
            "dc",
            10_000.0,
            vec![rack("rack-a", 4000.0, 8, Priority::Normal)],
        );
        let grants = dc.resolve();
        assert_eq!(grants.len(), 8);
        assert!(grants.iter().all(|(_, g)| !g.capped));
    }

    #[test]
    fn rack_breaker_caps_locally() {
        // The rack budget binds even though the DC has headroom.
        let dc = PowerDomain::interior(
            "dc",
            100_000.0,
            vec![
                rack("rack-a", 2000.0, 8, Priority::Normal), // demand 2440
                rack("rack-b", 4000.0, 8, Priority::Normal),
            ],
        );
        let grants = dc.resolve();
        let a_total: f64 = grants
            .iter()
            .filter(|(n, _)| n == "rack-a")
            .map(|(_, g)| g.granted_w)
            .sum();
        let b_capped = grants
            .iter()
            .filter(|(n, _)| n == "rack-b")
            .any(|(_, g)| g.capped);
        assert!(a_total <= 2000.0 + 1e-6);
        assert!(!b_capped, "rack-b must not pay for rack-a's breaker");
    }

    #[test]
    fn facility_breaker_squeezes_all_rows() {
        let dc = PowerDomain::interior(
            "dc",
            4000.0,
            vec![
                rack("rack-a", 3000.0, 8, Priority::Normal), // demand 2440
                rack("rack-b", 3000.0, 8, Priority::Normal),
            ],
        );
        assert!(dc.any_oversubscribed());
        let grants = dc.resolve();
        let total: f64 = grants.iter().map(|(_, g)| g.granted_w).sum();
        assert!(total <= 4000.0 + 1e-6, "total {total}");
        // Symmetric racks get symmetric shares.
        let a: f64 = grants
            .iter()
            .filter(|(n, _)| n == "rack-a")
            .map(|(_, g)| g.granted_w)
            .sum();
        let b: f64 = grants
            .iter()
            .filter(|(n, _)| n == "rack-b")
            .map(|(_, g)| g.granted_w)
            .sum();
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn priorities_matter_inside_a_capped_rack() {
        let mixed = PowerDomain::leaf(
            "rack",
            800.0,
            vec![
                req(0, Priority::Critical, 150.0, 305.0),
                req(1, Priority::Batch, 150.0, 305.0),
                req(2, Priority::Batch, 150.0, 305.0),
            ],
        );
        let grants = mixed.resolve();
        assert_eq!(grants[0].1.granted_w, 305.0);
        assert!(grants[1].1.granted_w < 305.0);
    }

    #[test]
    fn critical_rack_outranks_batch_racks_across_the_row() {
        let row = PowerDomain::interior(
            "row",
            13_000.0,
            vec![
                rack("crit", 6000.0, 16, Priority::Critical),
                rack("b1", 6000.0, 16, Priority::Batch),
                rack("b2", 6000.0, 16, Priority::Batch),
            ],
        );
        let grants = row.resolve();
        let avg = |name: &str| {
            let g: Vec<f64> = grants
                .iter()
                .filter(|(n, _)| n == name)
                .map(|(_, g)| g.granted_w)
                .collect();
            g.iter().sum::<f64>() / g.len() as f64
        };
        assert!(
            (avg("crit") - 305.0).abs() < 1e-6,
            "critical keeps full demand"
        );
        assert!(avg("b1") < 305.0, "batch absorbs the shortfall");
        assert!(
            (avg("b1") - avg("b2")).abs() < 1e-6,
            "batch racks share equally"
        );
    }

    #[test]
    fn three_level_hierarchy_composes() {
        let row1 = PowerDomain::interior(
            "row-1",
            5000.0,
            vec![
                rack("r1a", 3000.0, 8, Priority::Normal),
                rack("r1b", 3000.0, 8, Priority::Normal),
            ],
        );
        let row2 = PowerDomain::interior(
            "row-2",
            3000.0,
            vec![rack("r2a", 3000.0, 8, Priority::Normal)],
        );
        let dc = PowerDomain::interior("dc", 7000.0, vec![row1, row2]);
        let grants = dc.resolve();
        let total: f64 = grants.iter().map(|(_, g)| g.granted_w).sum();
        assert!(total <= 7000.0 + 1e-6);
        // Row-1's demand (4880) exceeds its share; its racks are capped.
        assert!(grants
            .iter()
            .filter(|(n, _)| n.starts_with("r1"))
            .any(|(_, g)| g.capped));
    }

    #[test]
    fn demand_and_floor_aggregate_recursively() {
        let dc = PowerDomain::interior(
            "dc",
            10_000.0,
            vec![
                rack("a", 4000.0, 4, Priority::Normal),
                rack("b", 4000.0, 2, Priority::Normal),
            ],
        );
        assert_eq!(dc.total_demand_w(), 6.0 * 305.0);
        assert_eq!(dc.total_floor_w(), 6.0 * 150.0);
        assert!((dc.oversubscription() - 1830.0 / 10_000.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "needs children")]
    fn empty_interior_panics() {
        let _ = PowerDomain::interior("dc", 100.0, vec![]);
    }
}
