//! Server-level power: the Open Compute component breakdown and the
//! immersion savings arithmetic of Section IV.
//!
//! Each large-tank blade consumes up to 700 W: 410 W for the two
//! processor sockets, 120 W for 24 DDR4 DIMMs (5 W each), 26 W for the
//! motherboard, 30 W for the FPGA, 72 W for six flash drives (12 W each),
//! and 42 W for the fans. Immersion removes the fans, and the paper's
//! savings estimate stacks three effects: 2 × 11 W of static power,
//! 42 W of fans, and 118 W of facility (PUE) overhead — about 182 W per
//! server.

use crate::leakage::LeakageModel;
use crate::units::{Frequency, Voltage};
use ic_thermal::technology::CoolingTechnology;
use serde::{Deserialize, Serialize};

/// One power-drawing server component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Component label, e.g. `"cpu"`, `"memory"`, `"fans"`.
    pub name: String,
    /// Maximum power draw in watts.
    pub power_w: f64,
}

/// A server's component-level power budget.
///
/// # Example
///
/// ```
/// use ic_power::server::ServerPower;
///
/// let air = ServerPower::open_compute_air();
/// assert_eq!(air.total_w(), 700.0);
/// let immersed = air.immersed();
/// assert_eq!(immersed.total_w(), 658.0); // fans removed
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerPower {
    components: Vec<Component>,
}

impl ServerPower {
    /// The Open Compute two-socket blade as configured for air cooling
    /// (Section III): 700 W total.
    pub fn open_compute_air() -> Self {
        ServerPower {
            components: vec![
                Component {
                    name: "cpu".into(),
                    power_w: 410.0,
                },
                Component {
                    name: "memory".into(),
                    power_w: 120.0,
                },
                Component {
                    name: "motherboard".into(),
                    power_w: 26.0,
                },
                Component {
                    name: "fpga".into(),
                    power_w: 30.0,
                },
                Component {
                    name: "storage".into(),
                    power_w: 72.0,
                },
                Component {
                    name: "fans".into(),
                    power_w: 42.0,
                },
            ],
        }
    }

    /// Builds a custom breakdown.
    ///
    /// # Panics
    ///
    /// Panics if any component has negative or non-finite power.
    pub fn from_components(components: Vec<Component>) -> Self {
        assert!(
            components
                .iter()
                .all(|c| c.power_w.is_finite() && c.power_w >= 0.0),
            "component power must be finite and non-negative"
        );
        ServerPower { components }
    }

    /// The same server prepared for immersion: fans removed or disabled.
    pub fn immersed(&self) -> ServerPower {
        ServerPower {
            components: self
                .components
                .iter()
                .filter(|c| c.name != "fans")
                .cloned()
                .collect(),
        }
    }

    /// The same server with each socket allowed `extra_w_per_socket` of
    /// overclocking headroom. The paper assumes up to +100 W per socket
    /// (205 W → 305 W), i.e. +200 W for the dual-socket blade.
    ///
    /// # Panics
    ///
    /// Panics if `extra_w_per_socket` is negative or non-finite.
    pub fn overclocked(&self, extra_w_per_socket: f64, sockets: u32) -> ServerPower {
        assert!(
            extra_w_per_socket.is_finite() && extra_w_per_socket >= 0.0,
            "invalid overclock headroom"
        );
        let mut components = self.components.clone();
        for c in &mut components {
            if c.name == "cpu" {
                c.power_w += extra_w_per_socket * sockets as f64;
            }
        }
        ServerPower { components }
    }

    /// Total server power in watts.
    pub fn total_w(&self) -> f64 {
        self.components.iter().map(|c| c.power_w).sum()
    }

    /// The power of a named component, or `None` if absent.
    pub fn component_w(&self, name: &str) -> Option<f64> {
        self.components
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.power_w)
    }

    /// All components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }
}

/// DIMM power scaling with memory frequency: roughly linear in clock over
/// the 2.4–3.0 GHz range Table VII explores.
///
/// # Example
///
/// ```
/// use ic_power::server::MemoryPower;
/// use ic_power::units::Frequency;
///
/// let m = MemoryPower::ddr4_dimm();
/// // 5 W at DDR4-2400; 25 % more at 3.0 GHz.
/// assert_eq!(m.dimm_w(Frequency::from_ghz(2.4)), 5.0);
/// assert!((m.dimm_w(Frequency::from_ghz(3.0)) - 6.25).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryPower {
    base_w: f64,
    base_f: Frequency,
}

impl MemoryPower {
    /// The large-tank server's DDR4 DIMM: 5 W at 2.4 GHz.
    pub fn ddr4_dimm() -> Self {
        MemoryPower {
            base_w: 5.0,
            base_f: Frequency::from_ghz(2.4),
        }
    }

    /// Per-DIMM power at memory frequency `f` (linear in clock).
    pub fn dimm_w(&self, f: Frequency) -> f64 {
        self.base_w * f.ratio_to(self.base_f)
    }

    /// Power for a bank of `dimms` DIMMs at frequency `f`.
    pub fn bank_w(&self, dimms: u32, f: Frequency) -> f64 {
        self.dimm_w(f) * dimms as f64
    }
}

/// The Section IV per-server power-savings decomposition for moving a
/// server from an air-cooled datacenter into 2PIC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImmersionSavings {
    /// Static-power saving from cooler junctions, both sockets, watts.
    pub static_w: f64,
    /// Fan power eliminated, watts.
    pub fans_w: f64,
    /// Facility-overhead saving from the PUE reduction, watts.
    pub pue_w: f64,
}

impl ImmersionSavings {
    /// Computes the paper's decomposition: per-socket leakage saving at
    /// the measured junction temperatures, the server's fan power, and
    /// the peak-PUE facility saving.
    #[allow(clippy::too_many_arguments)] // mirrors the physical parameter set
    pub fn compute(
        server: &ServerPower,
        sockets: u32,
        leakage: &LeakageModel,
        air_tj_c: f64,
        tank_tj_c: f64,
        v: Voltage,
        from: &CoolingTechnology,
        to: &CoolingTechnology,
    ) -> Self {
        let static_w = leakage.saving_w(air_tj_c, tank_tj_c, v) * sockets as f64;
        let fans_w = server.component_w("fans").unwrap_or(0.0);
        let pue_w = from.peak_power_saving_w(to, server.total_w());
        ImmersionSavings {
            static_w,
            fans_w,
            pue_w,
        }
    }

    /// Total saving in watts.
    pub fn total_w(&self) -> f64 {
        self.static_w + self.fans_w + self.pue_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_thermal::fluid::DielectricFluid;

    #[test]
    fn open_compute_breakdown_sums_to_700() {
        let s = ServerPower::open_compute_air();
        assert_eq!(s.total_w(), 700.0);
        assert_eq!(s.component_w("cpu"), Some(410.0));
        assert_eq!(s.component_w("memory"), Some(120.0));
        assert_eq!(s.component_w("fans"), Some(42.0));
        assert_eq!(s.component_w("gpu"), None);
    }

    #[test]
    fn immersion_removes_fans() {
        let s = ServerPower::open_compute_air().immersed();
        assert_eq!(s.total_w(), 658.0);
        assert_eq!(s.component_w("fans"), None);
    }

    #[test]
    fn overclocking_adds_per_socket_headroom() {
        let s = ServerPower::open_compute_air()
            .immersed()
            .overclocked(100.0, 2);
        assert_eq!(s.component_w("cpu"), Some(610.0));
        assert_eq!(s.total_w(), 858.0);
    }

    #[test]
    fn memory_power_scales_linearly() {
        let m = MemoryPower::ddr4_dimm();
        assert_eq!(m.bank_w(24, Frequency::from_ghz(2.4)), 120.0);
        assert!((m.bank_w(24, Frequency::from_ghz(3.0)) - 150.0).abs() < 1e-9);
    }

    #[test]
    fn paper_182w_savings_decomposition() {
        // 2 × 11 W static + 42 W fans + 118 W PUE ≈ 182 W (Section IV).
        let server = ServerPower::open_compute_air();
        let savings = ImmersionSavings::compute(
            &server,
            2,
            &LeakageModel::skylake(),
            92.0,
            68.0,
            Voltage::from_volts(0.90),
            &CoolingTechnology::direct_evaporative(),
            &CoolingTechnology::immersion_2p(DielectricFluid::fc3284()),
        );
        assert!((savings.static_w - 22.0).abs() < 0.5, "{:?}", savings);
        assert_eq!(savings.fans_w, 42.0);
        assert!((savings.pue_w - 118.0).abs() < 2.0, "{:?}", savings);
        assert!((savings.total_w() - 182.0).abs() < 3.0, "{:?}", savings);
    }

    #[test]
    fn savings_offset_a_substantial_portion_of_overclock_power() {
        // The paper: savings "can alleviate a substantial portion" of the
        // +200 W overclocking increase.
        let server = ServerPower::open_compute_air();
        let savings = ImmersionSavings::compute(
            &server,
            2,
            &LeakageModel::skylake(),
            92.0,
            68.0,
            Voltage::from_volts(0.90),
            &CoolingTechnology::direct_evaporative(),
            &CoolingTechnology::immersion_2p(DielectricFluid::fc3284()),
        );
        let fraction = savings.total_w() / 200.0;
        assert!(fraction > 0.8, "offsets {fraction:.0}% of the OC power");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_component_power_panics() {
        let _ = ServerPower::from_components(vec![Component {
            name: "x".into(),
            power_w: -1.0,
        }]);
    }
}
