//! The cluster inventory: VM lifecycle, failure handling, and density
//! accounting.

use crate::placement::{Oversubscription, PlacementPolicy};
use crate::server::{Server, ServerSpec};
use crate::vm::{VmId, VmInstance, VmSpec};
use ic_obs::flight::FlightHandle;
use ic_obs::json::Value;
use ic_obs::trace::{TraceHandle, TraceLevel};
use ic_obs::ObsSinks;
use ic_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Why a cluster operation failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterError {
    /// No server has room for the requested VM.
    InsufficientCapacity,
    /// The VM id is unknown (or already deleted).
    UnknownVm,
    /// The server index is out of range.
    UnknownServer,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InsufficientCapacity => f.write_str("no server has sufficient capacity"),
            ClusterError::UnknownVm => f.write_str("unknown VM id"),
            ClusterError::UnknownServer => f.write_str("unknown server index"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// The outcome of a server failure: which VMs were re-created and which
/// could not be placed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailoverReport {
    /// VMs successfully re-created elsewhere (old id → new host index).
    pub recreated: Vec<(VmId, usize)>,
    /// VMs that found no capacity and are down.
    pub unplaced: Vec<VmId>,
}

/// A fleet of servers and the VMs placed on them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    servers: Vec<Server>,
    vms: BTreeMap<VmId, VmInstance>,
    policy: PlacementPolicy,
    oversub: Oversubscription,
    next_id: u64,
    sinks: ObsSinks,
}

impl Cluster {
    /// Creates a cluster from server shapes.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn new(specs: Vec<ServerSpec>, policy: PlacementPolicy, oversub: Oversubscription) -> Self {
        assert!(!specs.is_empty(), "a cluster needs servers");
        Cluster {
            servers: specs.into_iter().map(Server::new).collect(),
            vms: BTreeMap::new(),
            policy,
            oversub,
            next_id: 0,
            sinks: ObsSinks::none(),
        }
    }

    /// Attaches a trace recorder: VM lifecycle (create, delete, failover
    /// migration) and server failures/repairs are emitted as structured
    /// events. The cluster has no clock of its own — every mutating
    /// method takes the current simulation time, which flows from the
    /// driving event loop (the control plane's tick time or the
    /// lifecycle engine's `now`).
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.sinks.set_trace(trace);
    }

    /// The attached trace recorder, if any — so drivers can emit their
    /// own events (density samples, schedule changes) into the same
    /// stream.
    pub fn trace_handle(&self) -> Option<&TraceHandle> {
        self.sinks.trace()
    }

    /// Attaches a flight recorder: every emitted cluster event —
    /// placement, deletion, failover migration, server failure/repair —
    /// is mirrored as an instant on the flight timeline at the event's
    /// simulation time, alongside any
    /// [`attach_trace`](Self::attach_trace) stream.
    pub fn attach_flight(&mut self, flight: FlightHandle) {
        self.sinks.set_flight(flight);
    }

    /// Attaches the whole observability bundle at once.
    pub fn attach_sinks(&mut self, sinks: ObsSinks) {
        self.sinks = sinks;
    }

    fn emit(
        &self,
        now: SimTime,
        level: TraceLevel,
        kind: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) {
        self.sinks.instant(now, "cluster", level, kind, fields);
    }

    /// The servers, in index order.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Mutable access to one server (e.g. to set its frequency).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownServer`] if the index is out of
    /// range.
    pub fn server_mut(&mut self, index: usize) -> Result<&mut Server, ClusterError> {
        self.servers
            .get_mut(index)
            .ok_or(ClusterError::UnknownServer)
    }

    /// The active oversubscription setting.
    pub fn oversubscription(&self) -> Oversubscription {
        self.oversub
    }

    /// Changes the oversubscription ratio for *future* placements.
    pub fn set_oversubscription(&mut self, oversub: Oversubscription) {
        self.oversub = oversub;
    }

    /// Places a VM at simulation time `now` (stamped onto the emitted
    /// lifecycle event).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InsufficientCapacity`] if no healthy
    /// server can host it.
    pub fn create_vm(&mut self, now: SimTime, spec: VmSpec) -> Result<VmId, ClusterError> {
        let host =
            match self
                .policy
                .choose(&self.servers, spec.vcores(), spec.memory_gb(), self.oversub)
            {
                Some(host) => host,
                None => {
                    self.emit(
                        now,
                        TraceLevel::Warn,
                        "vm_reject",
                        vec![
                            ("vcores", Value::U64(spec.vcores() as u64)),
                            ("memory_gb", Value::F64(spec.memory_gb())),
                            ("density", Value::F64(self.packing_density())),
                        ],
                    );
                    return Err(ClusterError::InsufficientCapacity);
                }
            };
        self.servers[host].allocate(spec.vcores(), spec.memory_gb());
        let id = VmId(self.next_id);
        self.next_id += 1;
        self.vms.insert(id, VmInstance { id, spec, host });
        self.emit(
            now,
            TraceLevel::Info,
            "vm_create",
            vec![
                ("vm", Value::U64(id.0)),
                ("host", Value::U64(host as u64)),
                ("vcores", Value::U64(spec.vcores() as u64)),
                ("memory_gb", Value::F64(spec.memory_gb())),
                ("density", Value::F64(self.packing_density())),
            ],
        );
        Ok(id)
    }

    /// Deletes a VM and releases its resources.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownVm`] if the id is not live.
    pub fn delete_vm(&mut self, now: SimTime, id: VmId) -> Result<(), ClusterError> {
        let vm = self.vms.remove(&id).ok_or(ClusterError::UnknownVm)?;
        // The host may have failed since placement; failed servers have
        // already zeroed their allocations.
        if !self.servers[vm.host].is_failed() {
            self.servers[vm.host].release(vm.spec.vcores(), vm.spec.memory_gb());
        }
        self.emit(
            now,
            TraceLevel::Debug,
            "vm_delete",
            vec![
                ("vm", Value::U64(id.0)),
                ("host", Value::U64(vm.host as u64)),
                ("density", Value::F64(self.packing_density())),
            ],
        );
        Ok(())
    }

    /// A VM's current placement.
    pub fn vm(&self, id: VmId) -> Option<&VmInstance> {
        self.vms.get(&id)
    }

    /// The number of live VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// All live VMs hosted on a server.
    pub fn vms_on(&self, host: usize) -> Vec<&VmInstance> {
        self.vms.values().filter(|vm| vm.host == host).collect()
    }

    /// Fails a server and re-creates its VMs elsewhere (the paper's
    /// buffer scenario, Figure 6). VMs that cannot be placed are
    /// reported and removed.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownServer`] if the index is out of
    /// range.
    pub fn fail_server(
        &mut self,
        now: SimTime,
        index: usize,
    ) -> Result<FailoverReport, ClusterError> {
        if index >= self.servers.len() {
            return Err(ClusterError::UnknownServer);
        }
        self.servers[index].fail();
        let displaced: Vec<VmInstance> = self
            .vms
            .values()
            .filter(|vm| vm.host == index)
            .cloned()
            .collect();
        self.emit(
            now,
            TraceLevel::Warn,
            "server_fail",
            vec![
                ("server", Value::U64(index as u64)),
                ("displaced_vms", Value::U64(displaced.len() as u64)),
            ],
        );
        let mut report = FailoverReport {
            recreated: Vec::new(),
            unplaced: Vec::new(),
        };
        for vm in displaced {
            self.vms.remove(&vm.id);
            match self.policy.choose(
                &self.servers,
                vm.spec.vcores(),
                vm.spec.memory_gb(),
                self.oversub,
            ) {
                Some(host) => {
                    self.servers[host].allocate(vm.spec.vcores(), vm.spec.memory_gb());
                    let id = VmId(self.next_id);
                    self.next_id += 1;
                    self.vms.insert(
                        id,
                        VmInstance {
                            id,
                            spec: vm.spec,
                            host,
                        },
                    );
                    self.emit(
                        now,
                        TraceLevel::Info,
                        "vm_migrate",
                        vec![
                            ("vm", Value::U64(vm.id.0)),
                            ("from", Value::U64(index as u64)),
                            ("to", Value::U64(host as u64)),
                            ("new_vm", Value::U64(id.0)),
                        ],
                    );
                    report.recreated.push((vm.id, host));
                }
                None => {
                    self.emit(
                        now,
                        TraceLevel::Warn,
                        "vm_unplaced",
                        vec![
                            ("vm", Value::U64(vm.id.0)),
                            ("from", Value::U64(index as u64)),
                            ("vcores", Value::U64(vm.spec.vcores() as u64)),
                        ],
                    );
                    report.unplaced.push(vm.id);
                }
            }
        }
        Ok(report)
    }

    /// Repairs a failed server, returning it to service empty.
    /// Repairing a healthy server is a no-op (its live allocations must
    /// not be clobbered).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownServer`] if the index is out of
    /// range.
    pub fn repair_server(&mut self, now: SimTime, index: usize) -> Result<(), ClusterError> {
        if index >= self.servers.len() {
            return Err(ClusterError::UnknownServer);
        }
        if !self.servers[index].is_failed() {
            return Ok(());
        }
        self.servers[index].repair();
        self.emit(
            now,
            TraceLevel::Info,
            "server_repair",
            vec![("server", Value::U64(index as u64))],
        );
        Ok(())
    }

    /// Total pcores across healthy servers.
    pub fn healthy_pcores(&self) -> u32 {
        self.servers
            .iter()
            .filter(|s| !s.is_failed())
            .map(|s| s.spec().pcores())
            .sum()
    }

    /// Total allocated vcores.
    pub fn allocated_vcores(&self) -> u32 {
        self.vms.values().map(|vm| vm.spec.vcores()).sum()
    }

    /// Packing density: allocated vcores per healthy pcore. Exceeds 1.0
    /// only under oversubscription.
    pub fn packing_density(&self) -> f64 {
        let pcores = self.healthy_pcores();
        if pcores == 0 {
            0.0
        } else {
            self.allocated_vcores() as f64 / pcores as f64
        }
    }

    /// Packs as many copies of `spec` as fit, returning the created ids —
    /// the primitive behind the capacity-crisis experiments.
    pub fn fill_with(&mut self, now: SimTime, spec: VmSpec) -> Vec<VmId> {
        let mut out = Vec::new();
        while let Ok(id) = self.create_vm(now, spec) {
            out.push(id);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_power::units::Frequency;

    fn cluster(n: usize, pcores: u32, oversub: f64) -> Cluster {
        Cluster::new(
            vec![
                ServerSpec::custom(
                    pcores,
                    128.0,
                    Frequency::from_ghz(2.7),
                    Frequency::from_ghz(3.3),
                );
                n
            ],
            PlacementPolicy::FirstFit,
            if oversub > 1.0 {
                Oversubscription::ratio(oversub)
            } else {
                Oversubscription::none()
            },
        )
    }

    #[test]
    fn create_and_delete_round_trip() {
        let mut c = cluster(2, 16, 1.0);
        let id = c.create_vm(SimTime::ZERO, VmSpec::new(4, 16.0)).unwrap();
        assert_eq!(c.vm_count(), 1);
        assert_eq!(c.allocated_vcores(), 4);
        c.delete_vm(SimTime::ZERO, id).unwrap();
        assert_eq!(c.vm_count(), 0);
        assert_eq!(c.allocated_vcores(), 0);
        assert_eq!(c.delete_vm(SimTime::ZERO, id), Err(ClusterError::UnknownVm));
    }

    #[test]
    fn capacity_enforced_without_oversubscription() {
        let mut c = cluster(1, 16, 1.0);
        assert!(c.create_vm(SimTime::ZERO, VmSpec::new(16, 16.0)).is_ok());
        assert_eq!(
            c.create_vm(SimTime::ZERO, VmSpec::new(1, 1.0)),
            Err(ClusterError::InsufficientCapacity)
        );
    }

    #[test]
    fn oversubscription_adds_20_pct_density() {
        // The paper's headline: overclocking-backed oversubscription
        // raises packing density by 20 %.
        let mut base = cluster(4, 20, 1.0);
        let mut dense = cluster(4, 20, 1.2);
        let spec = VmSpec::new(4, 8.0);
        let n_base = base.fill_with(SimTime::ZERO, spec).len();
        let n_dense = dense.fill_with(SimTime::ZERO, spec).len();
        assert_eq!(n_base, 20); // 5 VMs per 20-pcore server
        assert_eq!(n_dense, 24); // 24 vcores per server → 6 VMs: +20 %
        assert!((dense.packing_density() - 1.2).abs() < 1e-9);
        assert_eq!(base.packing_density(), 1.0);
    }

    #[test]
    fn failover_recreates_on_surviving_servers() {
        let mut c = cluster(3, 16, 1.0);
        let spec = VmSpec::new(8, 16.0);
        for _ in 0..4 {
            c.create_vm(SimTime::ZERO, spec).unwrap();
        }
        // Two VMs per... FirstFit: server0 holds 2, server1 holds 2.
        let report = c.fail_server(SimTime::ZERO, 0).unwrap();
        assert_eq!(report.recreated.len(), 2);
        assert!(report.unplaced.is_empty());
        assert_eq!(c.vm_count(), 4);
        assert!(c.vms_on(0).is_empty());
    }

    #[test]
    fn failover_reports_unplaced_when_full() {
        let mut c = cluster(2, 16, 1.0);
        let spec = VmSpec::new(16, 16.0);
        c.create_vm(SimTime::ZERO, spec).unwrap();
        c.create_vm(SimTime::ZERO, spec).unwrap();
        let report = c.fail_server(SimTime::ZERO, 0).unwrap();
        assert_eq!(report.recreated.len(), 0);
        assert_eq!(report.unplaced.len(), 1);
        assert_eq!(c.vm_count(), 1);
    }

    #[test]
    fn repair_restores_capacity() {
        let mut c = cluster(2, 16, 1.0);
        c.fail_server(SimTime::ZERO, 0).unwrap();
        assert_eq!(c.healthy_pcores(), 16);
        c.repair_server(SimTime::ZERO, 0).unwrap();
        assert_eq!(c.healthy_pcores(), 32);
        assert!(c.create_vm(SimTime::ZERO, VmSpec::new(16, 1.0)).is_ok());
    }

    #[test]
    fn delete_vm_on_failed_host_is_safe() {
        let mut c = cluster(2, 16, 1.0);
        let a = c.create_vm(SimTime::ZERO, VmSpec::new(16, 16.0)).unwrap();
        let b = c.create_vm(SimTime::ZERO, VmSpec::new(16, 16.0)).unwrap();
        // Fill the cluster so failover cannot re-place.
        let report = c
            .fail_server(SimTime::ZERO, c.vm(a).map(|v| v.host).unwrap_or(0))
            .unwrap();
        assert_eq!(report.unplaced.len(), 1);
        // The surviving VM deletes cleanly.
        let survivor = if c.vm(a).is_some() { a } else { b };
        assert!(c.delete_vm(SimTime::ZERO, survivor).is_ok());
    }

    #[test]
    fn unknown_server_errors() {
        let mut c = cluster(1, 8, 1.0);
        assert_eq!(
            c.fail_server(SimTime::ZERO, 5),
            Err(ClusterError::UnknownServer)
        );
        assert_eq!(
            c.repair_server(SimTime::ZERO, 5),
            Err(ClusterError::UnknownServer)
        );
        assert!(c.server_mut(5).is_err());
    }

    #[test]
    fn traced_cluster_emits_lifecycle_events() {
        use ic_obs::trace::{shared_recorder, TraceLevel};

        let trace = shared_recorder(64);
        let mut c = cluster(2, 16, 1.0);
        c.attach_trace(trace.clone());
        let t10 = SimTime::from_secs(10);
        let a = c.create_vm(t10, VmSpec::new(16, 16.0)).unwrap();
        let _b = c.create_vm(t10, VmSpec::new(16, 16.0)).unwrap();
        // Cluster is full: the next create is rejected at Warn level.
        assert!(c.create_vm(t10, VmSpec::new(1, 1.0)).is_err());
        // Failing a full host leaves its VM unplaced.
        let t20 = SimTime::from_secs(20);
        let host = c.vm(a).unwrap().host;
        c.fail_server(t20, host).unwrap();
        c.repair_server(t20, host).unwrap();
        let survivor = c.vms_on(1 - host)[0].id;
        c.delete_vm(SimTime::from_secs(30), survivor).unwrap();

        let rec = trace.borrow();
        let counts = rec.counts_by_kind();
        assert_eq!(counts[&("cluster", "vm_create")], 2);
        assert_eq!(counts[&("cluster", "vm_reject")], 1);
        assert_eq!(counts[&("cluster", "server_fail")], 1);
        assert_eq!(counts[&("cluster", "vm_unplaced")], 1);
        assert_eq!(counts[&("cluster", "server_repair")], 1);
        assert_eq!(counts[&("cluster", "vm_delete")], 1);
        // Rejections and failures are anomalies: Warn level.
        assert!(rec
            .events()
            .filter(|e| e.kind == "vm_reject" || e.kind == "server_fail")
            .all(|e| e.level == TraceLevel::Warn));
        // Timestamps come from the driver-maintained clock.
        assert!(rec.events().any(|e| e.sim_time == SimTime::from_secs(20)));
    }

    #[test]
    fn flight_mirror_matches_trace_stream() {
        use ic_obs::flight::shared_flight;
        use ic_obs::trace::shared_recorder;

        let trace = shared_recorder(64);
        let flight = shared_flight(64);
        let mut c = cluster(2, 16, 1.0);
        c.attach_trace(trace.clone());
        c.attach_flight(flight.clone());
        let a = c
            .create_vm(SimTime::from_secs(10), VmSpec::new(8, 8.0))
            .unwrap();
        c.delete_vm(SimTime::from_secs(20), a).unwrap();

        // The flight instants mirror the trace events one-for-one.
        assert_eq!(
            flight.borrow().counts_by_kind(),
            trace.borrow().counts_by_kind()
        );
        let rec = flight.borrow();
        let delete = rec.spans().find(|s| s.name == "vm_delete").unwrap();
        assert_eq!(delete.start, SimTime::from_secs(20));
        assert_eq!(delete.kind, ic_obs::flight::SpanKind::Instant);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            ClusterError::InsufficientCapacity.to_string(),
            "no server has sufficient capacity"
        );
    }
}
