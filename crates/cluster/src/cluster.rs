//! The cluster inventory: VM lifecycle, failure handling, and density
//! accounting.

use crate::placement::{Oversubscription, PlacementPolicy};
use crate::server::{Server, ServerSpec};
use crate::vm::{VmId, VmInstance, VmSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Why a cluster operation failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterError {
    /// No server has room for the requested VM.
    InsufficientCapacity,
    /// The VM id is unknown (or already deleted).
    UnknownVm,
    /// The server index is out of range.
    UnknownServer,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InsufficientCapacity => f.write_str("no server has sufficient capacity"),
            ClusterError::UnknownVm => f.write_str("unknown VM id"),
            ClusterError::UnknownServer => f.write_str("unknown server index"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// The outcome of a server failure: which VMs were re-created and which
/// could not be placed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailoverReport {
    /// VMs successfully re-created elsewhere (old id → new host index).
    pub recreated: Vec<(VmId, usize)>,
    /// VMs that found no capacity and are down.
    pub unplaced: Vec<VmId>,
}

/// A fleet of servers and the VMs placed on them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    servers: Vec<Server>,
    vms: BTreeMap<VmId, VmInstance>,
    policy: PlacementPolicy,
    oversub: Oversubscription,
    next_id: u64,
}

impl Cluster {
    /// Creates a cluster from server shapes.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn new(
        specs: Vec<ServerSpec>,
        policy: PlacementPolicy,
        oversub: Oversubscription,
    ) -> Self {
        assert!(!specs.is_empty(), "a cluster needs servers");
        Cluster {
            servers: specs.into_iter().map(Server::new).collect(),
            vms: BTreeMap::new(),
            policy,
            oversub,
            next_id: 0,
        }
    }

    /// The servers, in index order.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Mutable access to one server (e.g. to set its frequency).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownServer`] if the index is out of
    /// range.
    pub fn server_mut(&mut self, index: usize) -> Result<&mut Server, ClusterError> {
        self.servers.get_mut(index).ok_or(ClusterError::UnknownServer)
    }

    /// The active oversubscription setting.
    pub fn oversubscription(&self) -> Oversubscription {
        self.oversub
    }

    /// Changes the oversubscription ratio for *future* placements.
    pub fn set_oversubscription(&mut self, oversub: Oversubscription) {
        self.oversub = oversub;
    }

    /// Places a VM.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InsufficientCapacity`] if no healthy
    /// server can host it.
    pub fn create_vm(&mut self, spec: VmSpec) -> Result<VmId, ClusterError> {
        let host = self
            .policy
            .choose(&self.servers, spec.vcores(), spec.memory_gb(), self.oversub)
            .ok_or(ClusterError::InsufficientCapacity)?;
        self.servers[host].allocate(spec.vcores(), spec.memory_gb());
        let id = VmId(self.next_id);
        self.next_id += 1;
        self.vms.insert(id, VmInstance { id, spec, host });
        Ok(id)
    }

    /// Deletes a VM and releases its resources.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownVm`] if the id is not live.
    pub fn delete_vm(&mut self, id: VmId) -> Result<(), ClusterError> {
        let vm = self.vms.remove(&id).ok_or(ClusterError::UnknownVm)?;
        // The host may have failed since placement; failed servers have
        // already zeroed their allocations.
        if !self.servers[vm.host].is_failed() {
            self.servers[vm.host].release(vm.spec.vcores(), vm.spec.memory_gb());
        }
        Ok(())
    }

    /// A VM's current placement.
    pub fn vm(&self, id: VmId) -> Option<&VmInstance> {
        self.vms.get(&id)
    }

    /// The number of live VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// All live VMs hosted on a server.
    pub fn vms_on(&self, host: usize) -> Vec<&VmInstance> {
        self.vms.values().filter(|vm| vm.host == host).collect()
    }

    /// Fails a server and re-creates its VMs elsewhere (the paper's
    /// buffer scenario, Figure 6). VMs that cannot be placed are
    /// reported and removed.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownServer`] if the index is out of
    /// range.
    pub fn fail_server(&mut self, index: usize) -> Result<FailoverReport, ClusterError> {
        if index >= self.servers.len() {
            return Err(ClusterError::UnknownServer);
        }
        self.servers[index].fail();
        let displaced: Vec<VmInstance> = self
            .vms
            .values()
            .filter(|vm| vm.host == index)
            .cloned()
            .collect();
        let mut report = FailoverReport {
            recreated: Vec::new(),
            unplaced: Vec::new(),
        };
        for vm in displaced {
            self.vms.remove(&vm.id);
            match self.policy.choose(
                &self.servers,
                vm.spec.vcores(),
                vm.spec.memory_gb(),
                self.oversub,
            ) {
                Some(host) => {
                    self.servers[host].allocate(vm.spec.vcores(), vm.spec.memory_gb());
                    let id = VmId(self.next_id);
                    self.next_id += 1;
                    self.vms.insert(
                        id,
                        VmInstance {
                            id,
                            spec: vm.spec,
                            host,
                        },
                    );
                    report.recreated.push((vm.id, host));
                }
                None => report.unplaced.push(vm.id),
            }
        }
        Ok(report)
    }

    /// Repairs a failed server, returning it to service empty.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownServer`] if the index is out of
    /// range.
    pub fn repair_server(&mut self, index: usize) -> Result<(), ClusterError> {
        if index >= self.servers.len() {
            return Err(ClusterError::UnknownServer);
        }
        self.servers[index].repair();
        Ok(())
    }

    /// Total pcores across healthy servers.
    pub fn healthy_pcores(&self) -> u32 {
        self.servers
            .iter()
            .filter(|s| !s.is_failed())
            .map(|s| s.spec().pcores())
            .sum()
    }

    /// Total allocated vcores.
    pub fn allocated_vcores(&self) -> u32 {
        self.vms.values().map(|vm| vm.spec.vcores()).sum()
    }

    /// Packing density: allocated vcores per healthy pcore. Exceeds 1.0
    /// only under oversubscription.
    pub fn packing_density(&self) -> f64 {
        let pcores = self.healthy_pcores();
        if pcores == 0 {
            0.0
        } else {
            self.allocated_vcores() as f64 / pcores as f64
        }
    }

    /// Packs as many copies of `spec` as fit, returning the created ids —
    /// the primitive behind the capacity-crisis experiments.
    pub fn fill_with(&mut self, spec: VmSpec) -> Vec<VmId> {
        let mut out = Vec::new();
        while let Ok(id) = self.create_vm(spec) {
            out.push(id);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_power::units::Frequency;

    fn cluster(n: usize, pcores: u32, oversub: f64) -> Cluster {
        Cluster::new(
            vec![
                ServerSpec::custom(
                    pcores,
                    128.0,
                    Frequency::from_ghz(2.7),
                    Frequency::from_ghz(3.3),
                );
                n
            ],
            PlacementPolicy::FirstFit,
            if oversub > 1.0 {
                Oversubscription::ratio(oversub)
            } else {
                Oversubscription::none()
            },
        )
    }

    #[test]
    fn create_and_delete_round_trip() {
        let mut c = cluster(2, 16, 1.0);
        let id = c.create_vm(VmSpec::new(4, 16.0)).unwrap();
        assert_eq!(c.vm_count(), 1);
        assert_eq!(c.allocated_vcores(), 4);
        c.delete_vm(id).unwrap();
        assert_eq!(c.vm_count(), 0);
        assert_eq!(c.allocated_vcores(), 0);
        assert_eq!(c.delete_vm(id), Err(ClusterError::UnknownVm));
    }

    #[test]
    fn capacity_enforced_without_oversubscription() {
        let mut c = cluster(1, 16, 1.0);
        assert!(c.create_vm(VmSpec::new(16, 16.0)).is_ok());
        assert_eq!(
            c.create_vm(VmSpec::new(1, 1.0)),
            Err(ClusterError::InsufficientCapacity)
        );
    }

    #[test]
    fn oversubscription_adds_20_pct_density() {
        // The paper's headline: overclocking-backed oversubscription
        // raises packing density by 20 %.
        let mut base = cluster(4, 20, 1.0);
        let mut dense = cluster(4, 20, 1.2);
        let spec = VmSpec::new(4, 8.0);
        let n_base = base.fill_with(spec).len();
        let n_dense = dense.fill_with(spec).len();
        assert_eq!(n_base, 20); // 5 VMs per 20-pcore server
        assert_eq!(n_dense, 24); // 24 vcores per server → 6 VMs: +20 %
        assert!((dense.packing_density() - 1.2).abs() < 1e-9);
        assert_eq!(base.packing_density(), 1.0);
    }

    #[test]
    fn failover_recreates_on_surviving_servers() {
        let mut c = cluster(3, 16, 1.0);
        let spec = VmSpec::new(8, 16.0);
        for _ in 0..4 {
            c.create_vm(spec).unwrap();
        }
        // Two VMs per... FirstFit: server0 holds 2, server1 holds 2.
        let report = c.fail_server(0).unwrap();
        assert_eq!(report.recreated.len(), 2);
        assert!(report.unplaced.is_empty());
        assert_eq!(c.vm_count(), 4);
        assert!(c.vms_on(0).is_empty());
    }

    #[test]
    fn failover_reports_unplaced_when_full() {
        let mut c = cluster(2, 16, 1.0);
        let spec = VmSpec::new(16, 16.0);
        c.create_vm(spec).unwrap();
        c.create_vm(spec).unwrap();
        let report = c.fail_server(0).unwrap();
        assert_eq!(report.recreated.len(), 0);
        assert_eq!(report.unplaced.len(), 1);
        assert_eq!(c.vm_count(), 1);
    }

    #[test]
    fn repair_restores_capacity() {
        let mut c = cluster(2, 16, 1.0);
        c.fail_server(0).unwrap();
        assert_eq!(c.healthy_pcores(), 16);
        c.repair_server(0).unwrap();
        assert_eq!(c.healthy_pcores(), 32);
        assert!(c.create_vm(VmSpec::new(16, 1.0)).is_ok());
    }

    #[test]
    fn delete_vm_on_failed_host_is_safe() {
        let mut c = cluster(2, 16, 1.0);
        let a = c.create_vm(VmSpec::new(16, 16.0)).unwrap();
        let b = c.create_vm(VmSpec::new(16, 16.0)).unwrap();
        // Fill the cluster so failover cannot re-place.
        let report = c.fail_server(c.vm(a).map(|v| v.host).unwrap_or(0)).unwrap();
        assert_eq!(report.unplaced.len(), 1);
        // The surviving VM deletes cleanly.
        let survivor = if c.vm(a).is_some() { a } else { b };
        assert!(c.delete_vm(survivor).is_ok());
    }

    #[test]
    fn unknown_server_errors() {
        let mut c = cluster(1, 8, 1.0);
        assert_eq!(c.fail_server(5), Err(ClusterError::UnknownServer));
        assert_eq!(c.repair_server(5), Err(ClusterError::UnknownServer));
        assert!(c.server_mut(5).is_err());
    }

    #[test]
    fn error_display() {
        assert_eq!(
            ClusterError::InsufficientCapacity.to_string(),
            "no server has sufficient capacity"
        );
    }
}
