//! Multi-dimensional VM placement.
//!
//! Providers place VMs with multi-dimensional bin packing (the paper
//! cites Azure's Protean allocator \[28\]); the dense-packing use-case
//! tightens the vcore dimension with an oversubscription ratio and
//! relies on overclocking to absorb the rare contention events.

use crate::server::Server;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An invalid placement configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementError {
    /// An oversubscription ratio below 1 or non-finite.
    InvalidRatio {
        /// The rejected ratio.
        ratio: f64,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::InvalidRatio { ratio } => {
                write!(f, "oversubscription ratio {ratio} must be >= 1 and finite")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// How aggressively pcores are oversubscribed.
///
/// # Example
///
/// ```
/// use ic_cluster::placement::Oversubscription;
///
/// // The paper's TCO case study: 10 % oversubscription, leveraging
/// // stranded memory on Azure servers.
/// let o = Oversubscription::ratio(1.10);
/// assert_eq!(o.vcore_capacity(48), 52);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Oversubscription {
    ratio: f64,
}

impl Oversubscription {
    /// No oversubscription: 1 vcore per pcore.
    pub fn none() -> Self {
        Oversubscription { ratio: 1.0 }
    }

    /// A vcore:pcore ratio (e.g. 1.25 for the paper's 20/16 scenarios).
    /// Ratios below 1 are rejected: use live migration, not
    /// undersubscription, to shed load.
    pub fn try_ratio(ratio: f64) -> Result<Self, PlacementError> {
        if ratio >= 1.0 && ratio.is_finite() {
            Ok(Oversubscription { ratio })
        } else {
            Err(PlacementError::InvalidRatio { ratio })
        }
    }

    /// Panicking shorthand for [`Oversubscription::try_ratio`], for
    /// ratios known valid at the call site.
    ///
    /// # Panics
    ///
    /// Panics if `ratio < 1` or is not finite.
    pub fn ratio(ratio: f64) -> Self {
        Self::try_ratio(ratio).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The configured ratio.
    pub fn as_ratio(&self) -> f64 {
        self.ratio
    }

    /// The sellable vcore capacity of a server with `pcores` physical
    /// cores (floor of `pcores × ratio`).
    pub fn vcore_capacity(&self, pcores: u32) -> u32 {
        (pcores as f64 * self.ratio).floor() as u32
    }
}

/// The packing heuristic used to choose a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// First server with room, in index order.
    FirstFit,
    /// The server whose remaining capacity is tightest after placement
    /// (best-fit on the vcore dimension, memory as tiebreaker) —
    /// maximizes density like production allocators do.
    BestFit,
    /// The server with the most free vcores (worst-fit): spreads load,
    /// minimizing interference at the cost of density.
    WorstFit,
}

impl PlacementPolicy {
    /// Chooses a host index for a `(vcores, memory_gb)` request, or
    /// `None` if nothing fits.
    pub fn choose(
        &self,
        servers: &[Server],
        vcores: u32,
        memory_gb: f64,
        oversub: Oversubscription,
    ) -> Option<usize> {
        let fits =
            |s: &Server| s.fits(vcores, memory_gb, oversub.vcore_capacity(s.spec().pcores()));
        match self {
            PlacementPolicy::FirstFit => servers.iter().position(fits),
            PlacementPolicy::BestFit => servers
                .iter()
                .enumerate()
                .filter(|(_, s)| fits(s))
                .min_by(|(_, a), (_, b)| {
                    let rem = |s: &Server| {
                        let cap = oversub.vcore_capacity(s.spec().pcores());
                        (
                            cap - s.allocated_vcores() - vcores,
                            s.spec().memory_gb() - s.allocated_memory_gb() - memory_gb,
                        )
                    };
                    let (av, am) = rem(a);
                    let (bv, bm) = rem(b);
                    av.cmp(&bv).then(am.total_cmp(&bm))
                })
                .map(|(i, _)| i),
            PlacementPolicy::WorstFit => servers
                .iter()
                .enumerate()
                .filter(|(_, s)| fits(s))
                .max_by_key(|(_, s)| {
                    oversub.vcore_capacity(s.spec().pcores()) - s.allocated_vcores()
                })
                .map(|(i, _)| i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerSpec;
    use ic_power::units::Frequency;

    fn small(pcores: u32) -> Server {
        Server::new(ServerSpec::custom(
            pcores,
            64.0,
            Frequency::from_ghz(2.7),
            Frequency::from_ghz(3.3),
        ))
    }

    #[test]
    fn oversubscription_capacity() {
        assert_eq!(Oversubscription::none().vcore_capacity(16), 16);
        assert_eq!(Oversubscription::ratio(1.25).vcore_capacity(16), 20);
        assert_eq!(Oversubscription::ratio(1.10).vcore_capacity(48), 52);
    }

    #[test]
    fn first_fit_takes_first_with_room() {
        let mut servers = vec![small(8), small(8), small(8)];
        servers[0].allocate(8, 0.0);
        let idx = PlacementPolicy::FirstFit
            .choose(&servers, 4, 1.0, Oversubscription::none())
            .unwrap();
        assert_eq!(idx, 1);
    }

    #[test]
    fn best_fit_prefers_tightest() {
        let mut servers = vec![small(16), small(16)];
        servers[1].allocate(10, 0.0); // 6 free vs 16 free
        let idx = PlacementPolicy::BestFit
            .choose(&servers, 4, 1.0, Oversubscription::none())
            .unwrap();
        assert_eq!(idx, 1);
    }

    #[test]
    fn worst_fit_prefers_emptiest() {
        let mut servers = vec![small(16), small(16)];
        servers[0].allocate(10, 0.0);
        let idx = PlacementPolicy::WorstFit
            .choose(&servers, 4, 1.0, Oversubscription::none())
            .unwrap();
        assert_eq!(idx, 1);
    }

    #[test]
    fn nothing_fits_returns_none() {
        let servers = vec![small(4)];
        for p in [
            PlacementPolicy::FirstFit,
            PlacementPolicy::BestFit,
            PlacementPolicy::WorstFit,
        ] {
            assert_eq!(p.choose(&servers, 8, 1.0, Oversubscription::none()), None);
        }
    }

    #[test]
    fn oversubscription_expands_fit() {
        let servers = vec![small(16)];
        assert_eq!(
            PlacementPolicy::FirstFit.choose(&servers, 20, 1.0, Oversubscription::none()),
            None
        );
        assert_eq!(
            PlacementPolicy::FirstFit.choose(&servers, 20, 1.0, Oversubscription::ratio(1.25)),
            Some(0)
        );
    }

    #[test]
    fn memory_constrains_even_with_free_cores() {
        let servers = vec![small(16)];
        assert_eq!(
            PlacementPolicy::BestFit.choose(&servers, 1, 100.0, Oversubscription::none()),
            None
        );
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn undersubscription_panics() {
        let _ = Oversubscription::ratio(0.5);
    }

    #[test]
    fn try_ratio_reports_typed_error() {
        assert_eq!(
            Oversubscription::try_ratio(0.5),
            Err(PlacementError::InvalidRatio { ratio: 0.5 })
        );
        assert!(Oversubscription::try_ratio(f64::NAN).is_err());
        assert!(Oversubscription::try_ratio(f64::INFINITY).is_err());
        assert_eq!(
            Oversubscription::try_ratio(1.25).unwrap(),
            Oversubscription::ratio(1.25)
        );
        let msg = PlacementError::InvalidRatio { ratio: 0.5 }.to_string();
        assert!(msg.contains("0.5") && msg.contains(">= 1"));
    }
}
