//! Physical hosts.

use ic_power::units::Frequency;
use serde::{Deserialize, Serialize};

/// The hardware shape of a server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    pcores: u32,
    memory_gb: f64,
    base_frequency: Frequency,
    max_overclock: Frequency,
}

impl ServerSpec {
    /// The large-tank Open Compute dual-socket blade: 2 × 24 cores,
    /// 384 GB, 2.7 GHz all-core in 2PIC, overclockable to +23 %.
    pub fn open_compute() -> Self {
        ServerSpec {
            pcores: 48,
            memory_gb: 384.0,
            base_frequency: Frequency::from_ghz(2.7),
            max_overclock: Frequency::from_ghz(3.3),
        }
    }

    /// The small-tank-#1 Xeon W-3175X host: 28 cores, 128 GB,
    /// B2 = 3.4 GHz, OC1 = 4.1 GHz.
    pub fn tank1_xeon() -> Self {
        ServerSpec {
            pcores: 28,
            memory_gb: 128.0,
            base_frequency: Frequency::from_ghz(3.4),
            max_overclock: Frequency::from_ghz(4.1),
        }
    }

    /// A custom shape.
    ///
    /// # Panics
    ///
    /// Panics if `pcores` is zero, memory is not positive, or the
    /// overclock ceiling is below the base frequency.
    pub fn custom(
        pcores: u32,
        memory_gb: f64,
        base_frequency: Frequency,
        max_overclock: Frequency,
    ) -> Self {
        assert!(pcores > 0, "a server needs cores");
        assert!(memory_gb > 0.0 && memory_gb.is_finite(), "invalid memory");
        assert!(max_overclock >= base_frequency, "overclock below base");
        ServerSpec {
            pcores,
            memory_gb,
            base_frequency,
            max_overclock,
        }
    }

    /// Physical cores.
    pub fn pcores(&self) -> u32 {
        self.pcores
    }

    /// Installed memory, GB.
    pub fn memory_gb(&self) -> f64 {
        self.memory_gb
    }

    /// Base (non-overclocked) all-core frequency.
    pub fn base_frequency(&self) -> Frequency {
        self.base_frequency
    }

    /// The highest allowed overclock.
    pub fn max_overclock(&self) -> Frequency {
        self.max_overclock
    }
}

/// A server's live state inside a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Server {
    spec: ServerSpec,
    allocated_vcores: u32,
    allocated_memory_gb: f64,
    frequency: Frequency,
    failed: bool,
}

impl Server {
    /// Creates a healthy, empty server at base frequency.
    pub fn new(spec: ServerSpec) -> Self {
        Server {
            spec,
            allocated_vcores: 0,
            allocated_memory_gb: 0.0,
            frequency: spec.base_frequency(),
            failed: false,
        }
    }

    /// The hardware shape.
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// Currently allocated vcores.
    pub fn allocated_vcores(&self) -> u32 {
        self.allocated_vcores
    }

    /// Currently allocated memory, GB.
    pub fn allocated_memory_gb(&self) -> f64 {
        self.allocated_memory_gb
    }

    /// The server's current all-core frequency.
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// Sets the all-core frequency, clamped to `[base, max_overclock]`.
    pub fn set_frequency(&mut self, f: Frequency) {
        self.frequency = f.clamp(self.spec.base_frequency(), self.spec.max_overclock());
    }

    /// The overclock ratio versus base frequency (1.0 = base).
    pub fn overclock_ratio(&self) -> f64 {
        self.frequency.ratio_to(self.spec.base_frequency())
    }

    /// `true` if the server has failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Marks the server failed (its VMs must be re-created elsewhere).
    pub(crate) fn fail(&mut self) {
        self.failed = true;
    }

    /// Restores a failed server to service, empty.
    pub(crate) fn repair(&mut self) {
        self.failed = false;
        self.allocated_vcores = 0;
        self.allocated_memory_gb = 0.0;
        self.frequency = self.spec.base_frequency();
    }

    /// Whether a request fits under the given vcore capacity (already
    /// scaled for oversubscription).
    pub(crate) fn fits(&self, vcores: u32, memory_gb: f64, vcore_capacity: u32) -> bool {
        !self.failed
            && self.allocated_vcores + vcores <= vcore_capacity
            && self.allocated_memory_gb + memory_gb <= self.spec.memory_gb()
    }

    pub(crate) fn allocate(&mut self, vcores: u32, memory_gb: f64) {
        self.allocated_vcores += vcores;
        self.allocated_memory_gb += memory_gb;
    }

    pub(crate) fn release(&mut self, vcores: u32, memory_gb: f64) {
        assert!(
            self.allocated_vcores >= vcores,
            "releasing unallocated vcores"
        );
        self.allocated_vcores -= vcores;
        self.allocated_memory_gb = (self.allocated_memory_gb - memory_gb).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_compute_shape() {
        let s = ServerSpec::open_compute();
        assert_eq!(s.pcores(), 48);
        assert_eq!(s.memory_gb(), 384.0);
        assert!(s.max_overclock() > s.base_frequency());
    }

    #[test]
    fn frequency_clamped_to_spec() {
        let mut srv = Server::new(ServerSpec::tank1_xeon());
        srv.set_frequency(Frequency::from_ghz(9.0));
        assert_eq!(srv.frequency(), Frequency::from_ghz(4.1));
        srv.set_frequency(Frequency::from_ghz(1.0));
        assert_eq!(srv.frequency(), Frequency::from_ghz(3.4));
    }

    #[test]
    fn overclock_ratio_tracks_frequency() {
        let mut srv = Server::new(ServerSpec::tank1_xeon());
        assert_eq!(srv.overclock_ratio(), 1.0);
        srv.set_frequency(Frequency::from_ghz(4.1));
        assert!((srv.overclock_ratio() - 4.1 / 3.4).abs() < 1e-9);
    }

    #[test]
    fn allocation_bookkeeping() {
        let mut srv = Server::new(ServerSpec::open_compute());
        assert!(srv.fits(24, 100.0, 48));
        srv.allocate(24, 100.0);
        assert!(!srv.fits(25, 10.0, 48));
        assert!(srv.fits(24, 10.0, 48));
        srv.release(24, 100.0);
        assert_eq!(srv.allocated_vcores(), 0);
        assert_eq!(srv.allocated_memory_gb(), 0.0);
    }

    #[test]
    fn failed_server_fits_nothing() {
        let mut srv = Server::new(ServerSpec::open_compute());
        srv.fail();
        assert!(!srv.fits(1, 1.0, 48));
        srv.repair();
        assert!(srv.fits(1, 1.0, 48));
    }

    #[test]
    fn memory_is_a_packing_dimension() {
        let mut srv = Server::new(ServerSpec::custom(
            64,
            32.0,
            Frequency::from_ghz(2.0),
            Frequency::from_ghz(2.0),
        ));
        assert!(!srv.fits(1, 33.0, 64));
        srv.allocate(1, 32.0);
        assert!(!srv.fits(1, 0.1, 64));
    }
}
