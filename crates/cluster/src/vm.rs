//! Virtual machine specifications and instances.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A VM's scheduling class, mirroring the paper's distinction between
/// latency-sensitive and batch workloads and the power-capping priority
/// ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum VmClass {
    /// Ordinary third-party VM.
    #[default]
    Regular,
    /// Latency-sensitive VM (capped last, never oversubscribed without
    /// consent).
    LatencySensitive,
    /// Preemptible batch VM (oversubscribed and capped first).
    Batch,
    /// A high-performance VM sold with guaranteed overclocking
    /// (Section V, "High-performance VMs").
    HighPerformance,
}

/// What a VM asks for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmSpec {
    vcores: u32,
    memory_gb: f64,
    class: VmClass,
}

impl VmSpec {
    /// Creates a regular-class VM spec.
    ///
    /// # Panics
    ///
    /// Panics if `vcores` is zero or `memory_gb` is not positive.
    pub fn new(vcores: u32, memory_gb: f64) -> Self {
        assert!(vcores > 0, "a VM needs at least one vcore");
        assert!(
            memory_gb > 0.0 && memory_gb.is_finite(),
            "invalid memory {memory_gb} GB"
        );
        VmSpec {
            vcores,
            memory_gb,
            class: VmClass::Regular,
        }
    }

    /// Sets the scheduling class.
    pub fn with_class(mut self, class: VmClass) -> Self {
        self.class = class;
        self
    }

    /// Virtual core count.
    pub fn vcores(&self) -> u32 {
        self.vcores
    }

    /// Memory request, GB.
    pub fn memory_gb(&self) -> f64 {
        self.memory_gb
    }

    /// Scheduling class.
    pub fn class(&self) -> VmClass {
        self.class
    }
}

impl fmt::Display for VmSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} VM ({} vcores, {} GB)",
            self.class, self.vcores, self.memory_gb
        )
    }
}

/// An opaque VM identifier issued by the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(pub(crate) u64);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

/// A placed VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmInstance {
    /// The VM's identifier.
    pub id: VmId,
    /// The requested resources.
    pub spec: VmSpec,
    /// The index of the hosting server in the cluster's server list.
    pub host: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_accessors() {
        let s = VmSpec::new(4, 16.0).with_class(VmClass::Batch);
        assert_eq!(s.vcores(), 4);
        assert_eq!(s.memory_gb(), 16.0);
        assert_eq!(s.class(), VmClass::Batch);
    }

    #[test]
    fn default_class_is_regular() {
        assert_eq!(VmSpec::new(1, 1.0).class(), VmClass::Regular);
    }

    #[test]
    fn display_formats() {
        let s = VmSpec::new(2, 8.0);
        assert!(s.to_string().contains("2 vcores"));
        assert_eq!(VmId(7).to_string(), "vm-7");
    }

    #[test]
    #[should_panic(expected = "at least one vcore")]
    fn zero_vcores_panics() {
        let _ = VmSpec::new(0, 1.0);
    }
}
