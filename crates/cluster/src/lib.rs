//! Server/VM inventory, multi-dimensional bin packing, oversubscription,
//! and failover for the paper's datacenter use-cases (Section V).
//!
//! Cloud providers "use multi-dimensional bin packing to place VMs on
//! servers" (Protean \[28\]); the dense-packing, buffer-reduction, and
//! capacity-crisis use-cases all manipulate this layer. The crate
//! provides:
//!
//! * [`vm`] — VM specifications (vcores, memory, priority class),
//! * [`server`] — physical hosts with per-server frequency state,
//! * [`placement`] — first-fit / best-fit-decreasing packing with a
//!   configurable pcore oversubscription ratio,
//! * [`cluster`] — the inventory: create/delete VMs, fail servers,
//!   re-create displaced VMs, and measure packing density,
//! * [`migration`] — a live-migration cost model (the paper's stop-gap
//!   escape hatch when oversubscription plus overclocking is not
//!   enough).
//!
//! # Example
//!
//! ```
//! use ic_cluster::cluster::Cluster;
//! use ic_cluster::placement::{PlacementPolicy, Oversubscription};
//! use ic_cluster::server::ServerSpec;
//! use ic_cluster::vm::VmSpec;
//! use ic_sim::time::SimTime;
//!
//! let mut cluster = Cluster::new(
//!     vec![ServerSpec::open_compute(); 4],
//!     PlacementPolicy::BestFit,
//!     Oversubscription::none(),
//! );
//! let vm = cluster.create_vm(SimTime::ZERO, VmSpec::new(4, 16.0)).unwrap();
//! assert_eq!(cluster.vm_count(), 1);
//! cluster.delete_vm(SimTime::ZERO, vm).unwrap();
//! ```

pub mod cluster;
pub mod lifecycle;
pub mod migration;
pub mod placement;
pub mod server;
pub mod vm;

pub use cluster::Cluster;
pub use placement::{Oversubscription, PlacementPolicy};
pub use server::ServerSpec;
pub use vm::VmSpec;
