//! Live VM migration cost model.
//!
//! The paper notes that oversubscription-plus-overclocking is a
//! *stop-gap* "until live VM migration (which is a resource-hungry and
//! lengthy operation) can eliminate the problem completely"
//! (Section V, "Dense VM packing"). This module quantifies that cost so
//! the use-case orchestrators can compare overclocking against
//! migrating.

use serde::{Deserialize, Serialize};

/// Pre-copy live-migration cost estimation.
///
/// Total copied data is the VM's memory plus re-copies of pages dirtied
/// while earlier rounds were in flight; the process converges when the
/// dirty rate is below the copy bandwidth.
///
/// # Example
///
/// ```
/// use ic_cluster::migration::MigrationModel;
///
/// let m = MigrationModel::new(10.0, 0.5); // 10 Gb/s link, 0.5 GB/s dirty
/// let est = m.estimate(16.0); // a 16 GB VM
/// assert!(est.duration_s > 16.0 / 1.25); // longer than one raw copy
/// assert!(est.downtime_ms < 1000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationModel {
    /// Network bandwidth dedicated to migration, Gb/s.
    link_gbps: f64,
    /// Rate at which the workload dirties memory, GB/s.
    dirty_rate_gbps: f64,
}

/// A migration cost estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationEstimate {
    /// Total wall-clock duration of the migration, seconds.
    pub duration_s: f64,
    /// Total data copied, GB.
    pub copied_gb: f64,
    /// Final stop-and-copy downtime, milliseconds.
    pub downtime_ms: f64,
}

impl MigrationModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics unless the link bandwidth is positive and the dirty rate
    /// is non-negative and strictly below the link's byte rate (pre-copy
    /// would never converge otherwise).
    pub fn new(link_gbps: f64, dirty_rate_gb_per_s: f64) -> Self {
        assert!(link_gbps > 0.0 && link_gbps.is_finite(), "invalid link");
        let copy_rate = link_gbps / 8.0;
        assert!(
            (0.0..copy_rate).contains(&dirty_rate_gb_per_s),
            "dirty rate {dirty_rate_gb_per_s} GB/s must be below copy rate {copy_rate} GB/s"
        );
        MigrationModel {
            link_gbps,
            dirty_rate_gbps: dirty_rate_gb_per_s,
        }
    }

    /// The effective copy rate, GB/s.
    pub fn copy_rate_gb_per_s(&self) -> f64 {
        self.link_gbps / 8.0
    }

    /// Estimates migrating a VM with `memory_gb` of RAM.
    ///
    /// # Panics
    ///
    /// Panics if `memory_gb` is not positive.
    pub fn estimate(&self, memory_gb: f64) -> MigrationEstimate {
        assert!(memory_gb > 0.0 && memory_gb.is_finite(), "invalid memory");
        let copy = self.copy_rate_gb_per_s();
        // Geometric series: each round copies what was dirtied during
        // the previous round; ratio r = dirty/copy < 1.
        let r = self.dirty_rate_gbps / copy;
        let copied_gb = memory_gb / (1.0 - r);
        let duration_s = copied_gb / copy;
        // Stop-and-copy once the residual set is small (threshold 64 MB
        // or one round's residue, whichever is larger).
        let residual_gb = (memory_gb * r.powi(8)).max(0.064);
        let downtime_ms = residual_gb / copy * 1000.0;
        MigrationEstimate {
            duration_s,
            copied_gb,
            downtime_ms,
        }
    }

    /// Whether overclocking for `overclock_duration_s` is cheaper (in
    /// wall-clock disruption terms) than migrating now: the paper's
    /// stop-gap decision.
    pub fn overclock_is_cheaper(&self, memory_gb: f64, overclock_duration_s: f64) -> bool {
        overclock_duration_s < self.estimate(memory_gb).duration_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_vm_migrates_in_one_copy() {
        let m = MigrationModel::new(10.0, 0.0);
        let est = m.estimate(16.0);
        assert!((est.copied_gb - 16.0).abs() < 1e-9);
        assert!((est.duration_s - 16.0 / 1.25).abs() < 1e-9);
    }

    #[test]
    fn dirty_pages_inflate_copy_volume() {
        let m = MigrationModel::new(10.0, 0.625); // r = 0.5
        let est = m.estimate(16.0);
        assert!((est.copied_gb - 32.0).abs() < 1e-9);
    }

    #[test]
    fn duration_scales_with_memory() {
        let m = MigrationModel::new(10.0, 0.5);
        assert!(m.estimate(64.0).duration_s > m.estimate(16.0).duration_s * 3.9);
    }

    #[test]
    fn downtime_is_subsecond_for_convergent_migrations() {
        let m = MigrationModel::new(25.0, 1.0);
        let est = m.estimate(128.0);
        assert!(est.downtime_ms < 500.0, "downtime {}", est.downtime_ms);
    }

    #[test]
    fn stopgap_decision() {
        let m = MigrationModel::new(10.0, 0.5);
        // A 128 GB VM takes a while to migrate: a 30 s overclock burst
        // is cheaper; a two-hour one is not.
        assert!(m.overclock_is_cheaper(128.0, 30.0));
        assert!(!m.overclock_is_cheaper(128.0, 7200.0));
    }

    #[test]
    #[should_panic(expected = "below copy rate")]
    fn divergent_dirty_rate_panics() {
        let _ = MigrationModel::new(8.0, 1.5);
    }
}
