//! Trace-driven VM lifecycle: arrivals, lifetimes, departures.
//!
//! The paper leans on the Resource Central observation that "VMs often
//! live long lifespans" \[16\] when arguing that oversubscription
//! overclocking may be needed for long periods. This module runs a VM
//! arrival/departure process over a [`Cluster`] on the discrete-event
//! engine, producing the packing-density and rejection time series the
//! capacity experiments consume.

use crate::cluster::Cluster;
use crate::vm::{VmId, VmSpec};
use ic_sim::dist::{Dist, Exponential, LogNormal};
use ic_sim::engine::Engine;
use ic_sim::rng::SimRng;
use ic_sim::series::TimeSeries;
use ic_sim::time::{SimDuration, SimTime};

/// The VM population mix: each entry is `(spec, weight)`; arrivals pick
/// a spec proportionally to weight.
#[derive(Debug, Clone)]
pub struct VmMix {
    entries: Vec<(VmSpec, f64)>,
}

impl VmMix {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or any weight is not positive.
    pub fn new(entries: Vec<(VmSpec, f64)>) -> Self {
        assert!(!entries.is_empty(), "mix needs entries");
        assert!(
            entries.iter().all(|&(_, w)| w > 0.0),
            "weights must be positive"
        );
        VmMix { entries }
    }

    /// A cloud-like default: mostly small VMs, some large.
    pub fn cloud_default() -> Self {
        VmMix::new(vec![
            (VmSpec::new(2, 8.0), 0.45),
            (VmSpec::new(4, 16.0), 0.35),
            (VmSpec::new(8, 32.0), 0.15),
            (VmSpec::new(16, 64.0), 0.05),
        ])
    }

    fn pick(&self, rng: &mut SimRng) -> VmSpec {
        let total: f64 = self.entries.iter().map(|&(_, w)| w).sum();
        let mut x = rng.uniform() * total;
        for &(spec, w) in &self.entries {
            if x < w {
                return spec;
            }
            x -= w;
        }
        self.entries.last().expect("non-empty").0
    }
}

/// Configuration of a lifecycle run.
#[derive(Debug, Clone)]
pub struct LifecycleConfig {
    /// Mean inter-arrival time, seconds.
    pub mean_interarrival_s: f64,
    /// Mean VM lifetime, seconds (lognormal, heavy-tailed: most VMs are
    /// short-lived, the long tail dominates occupancy — the Resource
    /// Central shape).
    pub mean_lifetime_s: f64,
    /// Lifetime squared coefficient of variation.
    pub lifetime_scv: f64,
    /// The VM mix.
    pub mix: VmMix,
}

impl LifecycleConfig {
    /// A default cloud trace: arrivals every 30 s, 4-hour mean lifetime
    /// with SCV 4 (heavy tail).
    pub fn cloud_default() -> Self {
        LifecycleConfig {
            mean_interarrival_s: 30.0,
            mean_lifetime_s: 4.0 * 3600.0,
            lifetime_scv: 4.0,
            mix: VmMix::cloud_default(),
        }
    }
}

/// The outcome of a lifecycle run.
#[derive(Debug)]
pub struct LifecycleResult {
    /// Packing density over time (allocated vcores / healthy pcores).
    pub density: TimeSeries,
    /// VMs accepted.
    pub accepted: u64,
    /// VMs rejected for lack of capacity.
    pub rejected: u64,
    /// Peak packing density reached.
    pub peak_density: f64,
}

struct State {
    cluster: Cluster,
    rng: SimRng,
    interarrival: Exponential,
    lifetime: LogNormal,
    mix: VmMix,
    accepted: u64,
    rejected: u64,
    density: TimeSeries,
    live: Vec<VmId>,
}

/// Runs the arrival/departure process over `cluster` until `horizon`.
///
/// # Panics
///
/// Panics if the configuration has non-positive rates.
pub fn run_lifecycle(
    cluster: Cluster,
    config: &LifecycleConfig,
    horizon: SimTime,
    seed: u64,
) -> LifecycleResult {
    assert!(config.mean_interarrival_s > 0.0 && config.mean_lifetime_s > 0.0);
    let mut engine: Engine<State> = Engine::new();
    let mut state = State {
        cluster,
        rng: SimRng::seed_from_u64(seed),
        interarrival: Exponential::with_mean(config.mean_interarrival_s),
        lifetime: LogNormal::with_mean_scv(config.mean_lifetime_s, config.lifetime_scv),
        mix: config.mix.clone(),
        accepted: 0,
        rejected: 0,
        density: TimeSeries::new("packing_density"),
        live: Vec::new(),
    };
    engine.schedule_labeled(SimTime::ZERO, "arrival", arrival);
    // Density sampling every minute.
    engine.schedule_labeled(SimTime::ZERO, "density_sample", sample_density);
    engine.run_until(&mut state, horizon);

    let peak_density = state.density.max().unwrap_or(0.0);
    LifecycleResult {
        density: state.density,
        accepted: state.accepted,
        rejected: state.rejected,
        peak_density,
    }
}

fn arrival(state: &mut State, engine: &mut Engine<State>) {
    let spec = state.mix.pick(&mut state.rng);
    match state.cluster.create_vm(engine.now(), spec) {
        Ok(id) => {
            state.accepted += 1;
            state.live.push(id);
            let life = state.lifetime.sample(&mut state.rng);
            engine.schedule_in_labeled(
                SimDuration::from_secs_f64(life.max(1.0)),
                "departure",
                move |state: &mut State, engine: &mut Engine<State>| {
                    let _ = state.cluster.delete_vm(engine.now(), id);
                    state.live.retain(|&v| v != id);
                },
            );
        }
        Err(_) => state.rejected += 1,
    }
    let gap = state.interarrival.sample(&mut state.rng);
    engine.schedule_in_labeled(
        SimDuration::from_secs_f64(gap.max(1e-3)),
        "arrival",
        arrival,
    );
}

fn sample_density(state: &mut State, engine: &mut Engine<State>) {
    let density = state.cluster.packing_density();
    state.density.push(engine.now(), density);
    // Oversubscription interference: with more vcores allocated than
    // healthy pcores, colocated VMs contend for cycles; the excess ratio
    // is the interference pressure the paper's Section V overclocking
    // compensates for.
    if let Some(trace) = state.cluster.trace_handle() {
        trace.borrow_mut().emit(
            engine.now(),
            "cluster",
            if density > 1.0 {
                ic_obs::trace::TraceLevel::Info
            } else {
                ic_obs::trace::TraceLevel::Debug
            },
            "oversub_sample",
            vec![
                ("density", ic_obs::json::Value::F64(density)),
                ("oversubscribed", ic_obs::json::Value::Bool(density > 1.0)),
                (
                    "interference_pressure",
                    ic_obs::json::Value::F64((density - 1.0).max(0.0)),
                ),
            ],
        );
    }
    engine.schedule_in_labeled(SimDuration::from_secs(60), "density_sample", sample_density);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{Oversubscription, PlacementPolicy};
    use crate::server::ServerSpec;

    fn small_cluster(n: usize, oversub: f64) -> Cluster {
        Cluster::new(
            vec![ServerSpec::open_compute(); n],
            PlacementPolicy::BestFit,
            if oversub > 1.0 {
                Oversubscription::ratio(oversub)
            } else {
                Oversubscription::none()
            },
        )
    }

    fn quick_config() -> LifecycleConfig {
        LifecycleConfig {
            mean_interarrival_s: 20.0,
            mean_lifetime_s: 3600.0,
            lifetime_scv: 4.0,
            mix: VmMix::cloud_default(),
        }
    }

    #[test]
    fn occupancy_approaches_littles_law() {
        // Offered vcore load = (lifetime / interarrival) × mean vcores.
        let result = run_lifecycle(
            small_cluster(50, 1.0),
            &quick_config(),
            SimTime::from_secs(8 * 3600),
            1,
        );
        // Mean vcores per VM: 2·.45+4·.35+8·.15+16·.05 = 4.3.
        // Offered = 3600/20 × 4.3 = 774 vcores of 2400 → density ≈ 0.32.
        let settled = result
            .density
            .value_at(SimTime::from_secs(8 * 3600 - 60))
            .unwrap();
        assert!((0.2..0.5).contains(&settled), "settled density {settled}");
        assert_eq!(result.rejected, 0);
    }

    #[test]
    fn overload_rejects_instead_of_overpacking() {
        let cfg = LifecycleConfig {
            mean_interarrival_s: 2.0, // 10× the load
            ..quick_config()
        };
        let result = run_lifecycle(small_cluster(4, 1.0), &cfg, SimTime::from_secs(4 * 3600), 2);
        assert!(result.rejected > 0);
        assert!(result.peak_density <= 1.0 + 1e-9);
    }

    #[test]
    fn oversubscription_raises_peak_density_and_cuts_rejections() {
        let cfg = LifecycleConfig {
            mean_interarrival_s: 2.0,
            ..quick_config()
        };
        let horizon = SimTime::from_secs(4 * 3600);
        let base = run_lifecycle(small_cluster(4, 1.0), &cfg, horizon, 3);
        let dense = run_lifecycle(small_cluster(4, 1.2), &cfg, horizon, 3);
        assert!(dense.peak_density > base.peak_density);
        assert!(dense.peak_density <= 1.2 + 1e-9);
        assert!(dense.rejected < base.rejected);
        assert!(dense.accepted > base.accepted);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let r = run_lifecycle(
                small_cluster(8, 1.0),
                &quick_config(),
                SimTime::from_secs(3600),
                7,
            );
            (r.accepted, r.rejected, r.peak_density.to_bits())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn traced_lifecycle_records_vm_events() {
        let trace = ic_obs::trace::shared_recorder(100_000);
        let mut cluster = small_cluster(8, 1.2);
        cluster.attach_trace(trace.clone());
        let r = run_lifecycle(cluster, &quick_config(), SimTime::from_secs(3600), 5);
        let rec = trace.borrow();
        let counts = rec.counts_by_kind();
        let creates = counts.get(&("cluster", "vm_create")).copied().unwrap_or(0);
        assert_eq!(creates, r.accepted, "one vm_create per accepted VM");
        assert!(counts.contains_key(&("cluster", "oversub_sample")));
        // Event timestamps follow the simulation clock, not wall time.
        let mut last = SimTime::ZERO;
        for e in rec.events() {
            assert!(e.sim_time >= last, "trace went backwards at seq {}", e.seq);
            last = e.sim_time;
        }
    }

    #[test]
    fn density_series_is_sampled_every_minute() {
        let r = run_lifecycle(
            small_cluster(2, 1.0),
            &quick_config(),
            SimTime::from_secs(600),
            9,
        );
        assert!(r.density.len() >= 10);
    }
}
