//! Load generators: diurnal patterns, spikes, and load-schedule algebra.
//!
//! The paper notes that providers "can overclock during periods of
//! power underutilization in datacenters due to workload variability
//! and diurnal patterns exhibited by long-running workloads"
//! (Section IV). [`DiurnalLoad`] produces such a pattern; [`SpikeTrain`]
//! injects the sudden surges the auto-scaler experiments stress; both
//! compose into QPS schedules for the client-server simulation.

use ic_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A smooth day/night load curve:
/// `base + amplitude · (1 + sin(2π(t − phase)/period)) / 2`, plus
/// optional multiplicative noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalLoad {
    base_qps: f64,
    amplitude_qps: f64,
    period_s: f64,
    phase_s: f64,
    noise_fraction: f64,
}

impl DiurnalLoad {
    /// Creates a diurnal curve.
    ///
    /// # Panics
    ///
    /// Panics if the base or amplitude is negative, the period is not
    /// positive, or the noise fraction is outside `[0, 1)`.
    pub fn new(base_qps: f64, amplitude_qps: f64, period_s: f64) -> Self {
        assert!(base_qps >= 0.0 && amplitude_qps >= 0.0, "negative load");
        assert!(period_s > 0.0, "period must be positive");
        DiurnalLoad {
            base_qps,
            amplitude_qps,
            period_s,
            phase_s: 0.0,
            noise_fraction: 0.0,
        }
    }

    /// A 24-hour curve in seconds.
    pub fn daily(base_qps: f64, amplitude_qps: f64) -> Self {
        DiurnalLoad::new(base_qps, amplitude_qps, 86_400.0)
    }

    /// Shifts the peak by `phase_s` seconds.
    pub fn with_phase(mut self, phase_s: f64) -> Self {
        self.phase_s = phase_s;
        self
    }

    /// Adds multiplicative noise of the given fraction (sampled per
    /// query of [`Self::sample`]).
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `[0, 1)`.
    pub fn with_noise(mut self, fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&fraction), "invalid noise fraction");
        self.noise_fraction = fraction;
        self
    }

    /// The noiseless load at time `t_s`.
    pub fn at(&self, t_s: f64) -> f64 {
        let angle = 2.0 * std::f64::consts::PI * (t_s - self.phase_s) / self.period_s;
        self.base_qps + self.amplitude_qps * (1.0 + angle.sin()) / 2.0
    }

    /// The load at `t_s` with noise applied.
    pub fn sample(&self, t_s: f64, rng: &mut SimRng) -> f64 {
        let clean = self.at(t_s);
        if self.noise_fraction == 0.0 {
            clean
        } else {
            (clean * (1.0 + self.noise_fraction * (2.0 * rng.uniform() - 1.0))).max(0.0)
        }
    }

    /// The trough (minimum) load — the valley where overclocking
    /// headroom is free.
    pub fn trough_qps(&self) -> f64 {
        self.base_qps
    }

    /// The crest (maximum) load.
    pub fn crest_qps(&self) -> f64 {
        self.base_qps + self.amplitude_qps
    }

    /// The fraction of the day the load sits at or below
    /// `threshold_qps` — how often a power-oversubscribed datacenter
    /// has capping-free overclocking headroom.
    pub fn fraction_below(&self, threshold_qps: f64) -> f64 {
        // Sample one period finely; the curve is smooth.
        let n = 10_000;
        let below = (0..n)
            .filter(|i| self.at(*i as f64 / n as f64 * self.period_s) <= threshold_qps)
            .count();
        below as f64 / n as f64
    }

    /// Renders the curve into a step schedule of `(start_s, qps)` pairs
    /// over one period, with `steps` equal intervals — directly
    /// consumable by the auto-scaler runner.
    pub fn to_schedule(&self, steps: u32) -> Vec<(f64, f64)> {
        assert!(steps > 0, "need at least one step");
        (0..steps)
            .map(|i| {
                let t = i as f64 / steps as f64 * self.period_s;
                (t, self.at(t))
            })
            .collect()
    }
}

/// Sudden load surges on top of a baseline: each spike multiplies the
/// load by `factor` for `duration_s`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpikeTrain {
    spikes: Vec<(f64, f64, f64)>, // (start_s, duration_s, factor)
}

impl SpikeTrain {
    /// Creates an empty train.
    pub fn new() -> Self {
        SpikeTrain { spikes: Vec::new() }
    }

    /// Adds a spike.
    ///
    /// # Panics
    ///
    /// Panics if the duration is not positive or the factor is below 1.
    pub fn spike(mut self, start_s: f64, duration_s: f64, factor: f64) -> Self {
        assert!(duration_s > 0.0, "spike needs a duration");
        assert!(factor >= 1.0, "spikes amplify load");
        self.spikes.push((start_s, duration_s, factor));
        self
    }

    /// The multiplicative factor in force at `t_s` (1.0 outside spikes;
    /// overlapping spikes multiply).
    pub fn factor_at(&self, t_s: f64) -> f64 {
        self.spikes
            .iter()
            .filter(|&&(s, d, _)| t_s >= s && t_s < s + d)
            .map(|&(_, _, f)| f)
            .product()
    }

    /// Applies the train to a schedule, splitting steps at spike
    /// boundaries.
    pub fn apply(&self, schedule: &[(f64, f64)]) -> Vec<(f64, f64)> {
        let mut boundaries: Vec<f64> = schedule.iter().map(|&(t, _)| t).collect();
        for &(s, d, _) in &self.spikes {
            boundaries.push(s);
            boundaries.push(s + d);
        }
        boundaries.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        boundaries.dedup();
        let base_at = |t: f64| {
            schedule
                .iter()
                .rev()
                .find(|&&(s, _)| s <= t)
                .map(|&(_, q)| q)
                .unwrap_or(0.0)
        };
        boundaries
            .into_iter()
            .map(|t| (t, base_at(t) * self.factor_at(t)))
            .collect()
    }
}

impl Default for SpikeTrain {
    fn default() -> Self {
        SpikeTrain::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_bounds() {
        let d = DiurnalLoad::daily(1000.0, 2000.0);
        assert_eq!(d.trough_qps(), 1000.0);
        assert_eq!(d.crest_qps(), 3000.0);
        for t in [0.0, 10_000.0, 40_000.0, 86_399.0] {
            let q = d.at(t);
            assert!((1000.0..=3000.0).contains(&q), "{q} at {t}");
        }
    }

    #[test]
    fn diurnal_is_periodic() {
        let d = DiurnalLoad::daily(500.0, 1000.0);
        assert!((d.at(1234.0) - d.at(1234.0 + 86_400.0)).abs() < 1e-9);
    }

    #[test]
    fn phase_shifts_the_peak() {
        let d = DiurnalLoad::daily(0.0, 100.0);
        let shifted = d.with_phase(3600.0);
        assert!((d.at(0.0) - shifted.at(3600.0)).abs() < 1e-9);
    }

    #[test]
    fn fraction_below_midpoint_is_half() {
        let d = DiurnalLoad::daily(0.0, 100.0);
        let f = d.fraction_below(50.0);
        assert!((f - 0.5).abs() < 0.01, "fraction {f}");
        assert_eq!(d.fraction_below(200.0), 1.0);
        assert_eq!(d.fraction_below(-1.0), 0.0);
    }

    #[test]
    fn noise_stays_within_band_and_is_deterministic() {
        let d = DiurnalLoad::daily(1000.0, 0.0).with_noise(0.1);
        let mut rng1 = SimRng::seed_from_u64(5);
        let mut rng2 = SimRng::seed_from_u64(5);
        for t in 0..100 {
            let a = d.sample(t as f64, &mut rng1);
            let b = d.sample(t as f64, &mut rng2);
            assert_eq!(a, b);
            assert!((900.0..=1100.0).contains(&a));
        }
    }

    #[test]
    fn schedule_covers_one_period() {
        let d = DiurnalLoad::new(100.0, 100.0, 1000.0);
        let s = d.to_schedule(10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0].0, 0.0);
        assert_eq!(s[9].0, 900.0);
    }

    #[test]
    fn spikes_multiply_in_their_window_only() {
        let train = SpikeTrain::new().spike(100.0, 50.0, 3.0);
        assert_eq!(train.factor_at(99.0), 1.0);
        assert_eq!(train.factor_at(100.0), 3.0);
        assert_eq!(train.factor_at(149.9), 3.0);
        assert_eq!(train.factor_at(150.0), 1.0);
    }

    #[test]
    fn overlapping_spikes_compound() {
        let train = SpikeTrain::new()
            .spike(0.0, 100.0, 2.0)
            .spike(50.0, 100.0, 1.5);
        assert_eq!(train.factor_at(75.0), 3.0);
    }

    #[test]
    fn apply_splits_schedule_at_spike_boundaries() {
        let base = vec![(0.0, 100.0), (200.0, 200.0)];
        let train = SpikeTrain::new().spike(50.0, 100.0, 2.0);
        let out = train.apply(&base);
        // Boundaries: 0, 50, 150, 200.
        assert_eq!(
            out,
            vec![(0.0, 100.0), (50.0, 200.0), (150.0, 100.0), (200.0, 200.0)]
        );
    }
}
