//! SLO-driven capacity planning: cores required to hold a latency
//! target, with and without overclocking.
//!
//! Figure 12's finding — OC3 with 12 pcores matches B2 with 16 — is one
//! point of a general trade: for any latency SLO, faster cores need
//! fewer of them. This module inverts the analytic M/G/k model: given
//! an arrival rate, a service law, and a P95 target, find the minimum
//! server count; the ratio between the base-frequency and overclocked
//! answers is the capacity the provider reclaims.

use crate::queueing::MgkQueue;
use serde::{Deserialize, Serialize};

/// A tail-latency service-level objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySlo {
    /// The quantile the target applies to (e.g. 0.95).
    pub quantile: f64,
    /// The latency bound, seconds.
    pub target_s: f64,
}

impl LatencySlo {
    /// Creates an SLO.
    ///
    /// # Panics
    ///
    /// Panics if the quantile is outside `(0, 1)` or the target is not
    /// positive.
    pub fn new(quantile: f64, target_s: f64) -> Self {
        assert!(quantile > 0.0 && quantile < 1.0, "invalid quantile");
        assert!(target_s > 0.0 && target_s.is_finite(), "invalid target");
        LatencySlo { quantile, target_s }
    }
}

/// The minimum number of servers (cores) meeting `slo` at arrival rate
/// `lambda` with the given service law, or `None` if even `max_k`
/// servers cannot (the SLO is below the service time itself).
///
/// # Panics
///
/// Panics if `lambda` or `service_mean` is not positive, or `max_k` is
/// zero.
pub fn required_servers(
    lambda: f64,
    service_mean: f64,
    scv: f64,
    slo: LatencySlo,
    max_k: u32,
) -> Option<u32> {
    assert!(lambda > 0.0 && service_mean > 0.0, "invalid load");
    assert!(max_k > 0, "need a positive search bound");
    let min_k = (lambda * service_mean).floor() as u32 + 1; // stability
    for k in min_k..=max_k {
        let q = MgkQueue::new(k, lambda, service_mean, scv);
        if q.sojourn_quantile(slo.quantile) <= slo.target_s {
            return Some(k);
        }
    }
    None
}

/// The capacity reclaimed by overclocking: how many fewer servers hold
/// the same SLO when service is `speedup`× faster. Returns
/// `(base_servers, overclocked_servers)`.
///
/// # Panics
///
/// Panics if `speedup < 1`, or propagates from [`required_servers`].
pub fn reclaimed_capacity(
    lambda: f64,
    service_mean: f64,
    scv: f64,
    slo: LatencySlo,
    speedup: f64,
    max_k: u32,
) -> Option<(u32, u32)> {
    assert!(speedup >= 1.0 && speedup.is_finite(), "invalid speedup");
    let base = required_servers(lambda, service_mean, scv, slo, max_k)?;
    let oc = required_servers(lambda, service_mean / speedup, scv, slo, max_k)?;
    Some((base, oc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo_ms(ms: f64) -> LatencySlo {
        LatencySlo::new(0.95, ms / 1000.0)
    }

    #[test]
    fn required_servers_monotone_in_load() {
        let mut last = 0;
        for lambda in [200.0, 500.0, 1000.0, 1500.0] {
            let k = required_servers(lambda, 0.01, 1.5, slo_ms(40.0), 64).unwrap();
            assert!(k >= last, "λ={lambda}: k={k}");
            last = k;
        }
    }

    #[test]
    fn tighter_slo_needs_more_servers() {
        let loose = required_servers(1000.0, 0.01, 1.5, slo_ms(60.0), 64).unwrap();
        let tight = required_servers(1000.0, 0.01, 1.5, slo_ms(34.0), 64).unwrap();
        assert!(tight > loose, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn impossible_slo_returns_none() {
        // The target is below the P95 of the service law itself: no
        // number of servers helps.
        assert_eq!(required_servers(100.0, 0.01, 1.5, slo_ms(5.0), 256), None);
    }

    #[test]
    fn figure12_shape_generalizes() {
        // At the Figure 12 operating point, a 20.6 % core overclock
        // (with SQL's full OC3 speedup ~1.21) frees several of 16 cores.
        let (base, oc) = reclaimed_capacity(1150.0, 0.01, 1.5, slo_ms(34.0), 1.206, 64).unwrap();
        assert!(base >= oc + 2, "base {base} vs oc {oc}");
        assert!((14..=18).contains(&base), "base {base}");
    }

    #[test]
    fn the_answer_actually_meets_the_slo() {
        let slo = slo_ms(40.0);
        let k = required_servers(900.0, 0.01, 1.5, slo, 64).unwrap();
        let q = MgkQueue::new(k, 900.0, 0.01, 1.5);
        assert!(q.sojourn_quantile(0.95) <= slo.target_s);
        // And k−1 must NOT meet it (minimality), unless k−1 is unstable.
        if (k - 1) as f64 > 900.0 * 0.01 {
            let q = MgkQueue::new(k - 1, 900.0, 0.01, 1.5);
            assert!(q.sojourn_quantile(0.95) > slo.target_s);
        }
    }

    #[test]
    fn unit_speedup_reclaims_nothing() {
        let (base, oc) = reclaimed_capacity(800.0, 0.01, 1.0, slo_ms(40.0), 1.0, 64).unwrap();
        assert_eq!(base, oc);
    }

    #[test]
    #[should_panic(expected = "invalid speedup")]
    fn sub_unit_speedup_panics() {
        let _ = reclaimed_capacity(800.0, 0.01, 1.0, slo_ms(40.0), 0.9, 64);
    }
}
