//! The executable Client-Server application: an M/G/k queue running on
//! the discrete-event engine.
//!
//! This is the workload of the paper's auto-scaling study (Section VI-D):
//! "client request arrivals are Markovian, the service times follow a
//! General distribution, and there are k servers (i.e., VMs)". Clients
//! send requests to a round-robin load balancer; each server VM runs
//! them on its virtual cores; completed requests record their sojourn
//! latency. The controlling system (the auto-scaler, or a test) owns the
//! clock: it calls [`ClientServerSim::advance_to`], then reads VM
//! telemetry (Aperf/Pperf counter samples, utilization) and issues
//! actions (add/remove VMs, change frequency ratios) exactly as the
//! paper's ASC does every 3 seconds.

use ic_sim::dist::{DistKind, DrawBuffer, LogNormal};
use ic_sim::engine::Engine;
use ic_sim::rng::{SimRng, StreamVersion};
use ic_sim::time::{SimDuration, SimTime};
use ic_telemetry::counters::{CoreCounters, CounterSample};
use std::collections::VecDeque;

/// Identifies a VM within the simulation.
pub type VmId = usize;

/// The reference core frequency in Hz that a frequency ratio of 1.0
/// corresponds to (config B2, 3.4 GHz).
pub const BASE_FREQ_HZ: f64 = 3.4e9;

#[derive(Debug)]
struct VmState {
    vcores: u32,
    /// Service-speed multiplier from frequency scaling (1.0 = B2).
    freq_ratio: f64,
    /// Service-speed multiplier from pcore oversubscription share.
    share: f64,
    /// Fraction of active cycles stalled (from the app profile).
    stall_fraction: f64,
    queue: VecDeque<Arrival>,
    busy: u32,
    counters: CoreCounters,
    active: bool,
    /// Completions recorded by this VM (for VM×hours style accounting).
    completed: u64,
}

#[derive(Debug, Clone, Copy)]
struct Arrival {
    at: SimTime,
    /// Service demand in seconds at frequency ratio 1.0 and full share.
    demand_s: f64,
}

/// Everything a request completion needs, parked in the in-flight slab
/// so the completion event only has to capture a slot index — one machine
/// word, which keeps the hottest closure in the workspace on the engine's
/// inline (allocation-free) path.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    vm_id: VmId,
    /// Scaled service time actually spent on the core, seconds.
    service_s: f64,
    arrival_at: SimTime,
    freq_hz: f64,
    stall: f64,
}

/// The arrival/service variate source — the hottest sampling site in
/// the workspace (two draws per request, millions of requests per
/// simulated run).
#[derive(Debug)]
enum Samplers {
    /// v1: one shared generator; service and inter-arrival draws
    /// interleave on it in event order, exactly as every pre-versioning
    /// record was produced.
    V1 { rng: SimRng, service: DistKind },
    /// v2: each draw family owns a dedicated buffered stream (derived
    /// by forking the seed root, so construction is deterministic).
    /// Refills run the ziggurat in tight batches; consumption order no
    /// longer affects the values either family produces.
    V2 {
        /// Unit-mean standard-exponential gaps, scaled by `1/qps` at
        /// consumption so load changes never invalidate the buffer.
        gap: DrawBuffer,
        /// Fully transformed service demands (seconds at ratio 1.0).
        demand: DrawBuffer,
    },
}

impl Samplers {
    fn new(seed: u64, service: DistKind, version: StreamVersion) -> Self {
        match version {
            StreamVersion::V1 => Samplers::V1 {
                rng: SimRng::seed_from_u64(seed),
                service,
            },
            StreamVersion::V2 => {
                let mut root = SimRng::seed_versioned(seed, StreamVersion::V2);
                let gap_rng = root.fork();
                let demand_rng = root.fork();
                Samplers::V2 {
                    gap: DrawBuffer::new(DistKind::Exponential { mean: 1.0 }, gap_rng),
                    demand: DrawBuffer::new(service, demand_rng),
                }
            }
        }
    }

    /// One service demand, in seconds at frequency ratio 1.0.
    #[inline]
    fn demand_s(&mut self) -> f64 {
        match self {
            Samplers::V1 { rng, service } => service.sample(rng),
            Samplers::V2 { demand, .. } => demand.next(),
        }
    }

    #[inline]
    fn version(&self) -> StreamVersion {
        match self {
            Samplers::V1 { .. } => StreamVersion::V1,
            Samplers::V2 { .. } => StreamVersion::V2,
        }
    }
}

/// Nanosecond conversion for v2-scheduled delays.
///
/// v2 event times are *defined* by this mapping: a truncating cast with
/// debug-only range checks, which stays on the CPU where the v1 path's
/// round-to-nearest (`SimDuration::from_secs_f64`) is a libm call on
/// baseline x86-64 — worth several ns on every arrival and dispatch.
/// v1 keeps `from_secs_f64` untouched, so every historical event time
/// is preserved.
#[inline]
fn dur_v2(secs: f64) -> SimDuration {
    debug_assert!(secs.is_finite() && secs >= 0.0, "bad v2 delay {secs}");
    SimDuration::from_nanos((secs * 1e9) as u64)
}

#[derive(Debug)]
struct Inner {
    samplers: Samplers,
    qps: f64,
    /// `1.0 / qps` (0 when idle), maintained by `set_qps` so the v2
    /// arrival path multiplies instead of divides.
    inv_qps: f64,
    arrival_chain_live: bool,
    vms: Vec<VmState>,
    /// Ids of active VMs in ascending order — maintained on add/remove so
    /// the per-arrival router never rebuilds (or allocates) the list.
    active_ids: Vec<VmId>,
    rr_next: usize,
    completed: Vec<(SimTime, f64)>,
    dropped: u64,
    vcores_per_vm: u32,
    default_stall_fraction: f64,
    /// Slab of dispatched-but-not-completed requests, indexed by the slot
    /// captured in each completion event.
    inflight: Vec<InFlight>,
    /// Recycled `inflight` slots; bounded by the peak number of busy
    /// cores, so the slab stops growing once the system reaches steady
    /// state.
    free_slots: Vec<u32>,
}

impl Inner {
    fn route(&mut self) -> Option<VmId> {
        let active = &self.active_ids;
        if active.is_empty() {
            return None;
        }
        let n = active.len();
        // `rr_next` stays `< n` across routes (the wrap below re-derives
        // `(rr_next + 1) % n` exactly); only a VM removal can strand it
        // at/above `n`, so the two hot-path integer divisions reduce to
        // predictable branches without changing the routing sequence.
        let mut pos = self.rr_next;
        if pos >= n {
            pos %= n;
        }
        let id = active[pos];
        self.rr_next = if pos + 1 == n { 0 } else { pos + 1 };
        Some(id)
    }
}

/// The Client-Server M/G/k simulation.
///
/// # Example
///
/// ```
/// use ic_workloads::mgk::ClientServerSim;
/// use ic_sim::time::SimTime;
///
/// let mut sim = ClientServerSim::new(42, 0.0028, 1.5, 4, 0.15);
/// let vm = sim.add_vm();
/// sim.set_qps(500.0);
/// sim.advance_to(SimTime::from_secs(30));
/// let util = sim.utilization_since(vm, &sim.sample(vm));
/// assert_eq!(util, 0.0); // a fresh sample spans no time
/// assert!(sim.completed_requests() > 10_000);
/// ```
#[derive(Debug)]
pub struct ClientServerSim {
    engine: Engine<Inner>,
    inner: Inner,
}

impl ClientServerSim {
    /// Creates a simulation.
    ///
    /// * `seed` — RNG seed (identical seeds replay identical arrivals).
    /// * `service_mean_s` — mean per-request core demand at frequency
    ///   ratio 1.0 (config B2), seconds.
    /// * `service_scv` — squared coefficient of variation of the service
    ///   law (lognormal).
    /// * `vcores_per_vm` — virtual cores per server VM (the paper's
    ///   Client-Server app uses 4).
    /// * `stall_fraction` — share of active cycles stalled, for the
    ///   Aperf/Pperf counters (the Client-Server profile is ~0.1).
    ///
    /// # Panics
    ///
    /// Panics if the service parameters are non-positive or
    /// `vcores_per_vm` is zero.
    pub fn new(
        seed: u64,
        service_mean_s: f64,
        service_scv: f64,
        vcores_per_vm: u32,
        stall_fraction: f64,
    ) -> Self {
        ClientServerSim::with_stream_version(
            seed,
            service_mean_s,
            service_scv,
            vcores_per_vm,
            stall_fraction,
            StreamVersion::V1,
        )
    }

    /// [`new`](Self::new) with an explicit sampler stream version.
    ///
    /// [`StreamVersion::V1`] replays the historical value sequence
    /// byte-for-byte; [`StreamVersion::V2`] draws from dedicated
    /// buffered ziggurat streams — a different (still seed-
    /// deterministic) sequence that samples several times faster.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`new`](Self::new).
    pub fn with_stream_version(
        seed: u64,
        service_mean_s: f64,
        service_scv: f64,
        vcores_per_vm: u32,
        stall_fraction: f64,
        version: StreamVersion,
    ) -> Self {
        assert!(vcores_per_vm > 0, "VMs need at least one vcore");
        let service = DistKind::from(LogNormal::with_mean_scv(service_mean_s, service_scv));
        ClientServerSim {
            engine: Engine::new(),
            inner: Inner {
                samplers: Samplers::new(seed, service, version),
                qps: 0.0,
                inv_qps: 0.0,
                arrival_chain_live: false,
                vms: Vec::new(),
                active_ids: Vec::new(),
                rr_next: 0,
                completed: Vec::new(),
                dropped: 0,
                vcores_per_vm,
                default_stall_fraction: stall_fraction.clamp(0.0, 1.0),
                inflight: Vec::new(),
                free_slots: Vec::new(),
            },
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Discrete events executed by the underlying engine so far — the
    /// cost figure experiment reports cite alongside their results.
    pub fn events_processed(&self) -> u64 {
        self.engine.events_processed()
    }

    /// Events that fell off the engine's inline fast path onto the boxed
    /// (heap) fallback. The arrival chain and the slot-indexed completion
    /// events are designed to keep this at zero; the regression test and
    /// the kernel benchmarks assert it.
    pub fn boxed_events(&self) -> u64 {
        self.engine.boxed_events_scheduled()
    }

    /// Attaches an engine observer (see
    /// [`ic_sim::observe::EngineObserver`]) that receives one record per
    /// executed simulation event.
    pub fn set_observer(&mut self, observer: Box<dyn ic_sim::observe::EngineObserver>) {
        self.engine.set_observer(observer);
    }

    /// Adds a server VM, immediately active. (Model VM-creation latency
    /// by calling this when the creation completes.)
    pub fn add_vm(&mut self) -> VmId {
        let id = self.inner.vms.len();
        self.inner.vms.push(VmState {
            vcores: self.inner.vcores_per_vm,
            freq_ratio: 1.0,
            share: 1.0,
            stall_fraction: self.inner.default_stall_fraction,
            queue: VecDeque::new(),
            busy: 0,
            counters: CoreCounters::new(),
            active: true,
            completed: 0,
        });
        self.inner.active_ids.push(id);
        id
    }

    /// Deactivates a VM: it stops receiving new requests and drains its
    /// queue. Returns `false` if the VM was already inactive.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid VM.
    pub fn remove_vm(&mut self, id: VmId) -> bool {
        let was_active = self.inner.vms[id].active;
        self.inner.vms[id].active = false;
        if was_active {
            // `active_ids` is ascending, so the slot is found by binary
            // search; removal preserves the order.
            let pos = self
                .inner
                .active_ids
                .binary_search(&id)
                .expect("active VM is in the routing list");
            self.inner.active_ids.remove(pos);
        }
        was_active
    }

    /// The ids of currently active VMs, ascending.
    pub fn active_vms(&self) -> Vec<VmId> {
        self.inner.active_ids.clone()
    }

    /// The ids of currently active VMs, ascending, without copying —
    /// the allocation-free counterpart of [`active_vms`]
    /// (telemetry assembly reads this every control tick).
    ///
    /// [`active_vms`]: Self::active_vms
    pub fn active_ids(&self) -> &[VmId] {
        &self.inner.active_ids
    }

    /// Sets every active VM's frequency ratio in one pass — the
    /// fleet-wide actuation path, equivalent to calling
    /// [`set_freq_ratio`](Self::set_freq_ratio) per active VM but
    /// without materializing the id list.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is not strictly positive.
    pub fn set_freq_ratio_all(&mut self, ratio: f64) {
        assert!(ratio > 0.0 && ratio.is_finite(), "invalid ratio {ratio}");
        let inner = &mut self.inner;
        for i in 0..inner.active_ids.len() {
            let id = inner.active_ids[i];
            inner.vms[id].freq_ratio = ratio;
        }
    }

    /// Sets every active VM's pcore share in one pass (see
    /// [`set_share`](Self::set_share)).
    ///
    /// # Panics
    ///
    /// Panics if the share is outside `(0, 1]`.
    pub fn set_share_all(&mut self, share: f64) {
        assert!(share > 0.0 && share <= 1.0, "invalid share {share}");
        let inner = &mut self.inner;
        for i in 0..inner.active_ids.len() {
            let id = inner.active_ids[i];
            inner.vms[id].share = share;
        }
    }

    /// Sets the client load in queries per second. `0.0` stops arrivals.
    ///
    /// # Panics
    ///
    /// Panics if `qps` is negative or non-finite.
    pub fn set_qps(&mut self, qps: f64) {
        assert!(qps.is_finite() && qps >= 0.0, "invalid QPS {qps}");
        let was_off = self.inner.qps == 0.0 || !self.inner.arrival_chain_live;
        self.inner.qps = qps;
        self.inner.inv_qps = if qps > 0.0 { 1.0 / qps } else { 0.0 };
        if qps > 0.0 && was_off {
            self.inner.arrival_chain_live = true;
            let delay = next_interarrival(&mut self.inner.samplers, qps, self.inner.inv_qps);
            self.engine.schedule_in(delay, arrival_event);
        }
    }

    /// Sets a VM's frequency ratio (service-speed multiplier vs B2).
    /// Takes effect for requests dispatched after the call — frequency
    /// transitions take tens of µs on real hardware \[43\], far below the
    /// 3 s control period.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is not strictly positive or `id` is invalid.
    pub fn set_freq_ratio(&mut self, id: VmId, ratio: f64) {
        assert!(ratio > 0.0 && ratio.is_finite(), "invalid ratio {ratio}");
        self.inner.vms[id].freq_ratio = ratio;
    }

    /// A VM's current frequency ratio.
    pub fn freq_ratio(&self, id: VmId) -> f64 {
        self.inner.vms[id].freq_ratio
    }

    /// Sets a VM's pcore share (oversubscription slowdown), in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the share is outside `(0, 1]`.
    pub fn set_share(&mut self, id: VmId, share: f64) {
        assert!(share > 0.0 && share <= 1.0, "invalid share {share}");
        self.inner.vms[id].share = share;
    }

    /// Runs the simulation up to `t`.
    pub fn advance_to(&mut self, t: SimTime) {
        self.engine.run_until(&mut self.inner, t);
    }

    /// Snapshots a VM's aggregate Aperf/Pperf counters at the current
    /// time. Use [`ic_telemetry::counters::CounterSample::since`] between
    /// two snapshots.
    pub fn sample(&self, id: VmId) -> CounterSample {
        self.inner.vms[id].counters.sample(self.now().as_secs_f64())
    }

    /// Busy-core utilization of a VM since an `earlier` snapshot, in
    /// `[0, 1]` (busy core-seconds over `vcores × wall`). Returns 0 for
    /// a zero-length interval.
    pub fn utilization_since(&self, id: VmId, earlier: &CounterSample) -> f64 {
        let delta = self.sample(id).since(earlier);
        let wall = delta.d_wall_seconds();
        if wall <= 0.0 {
            return 0.0;
        }
        (delta.d_busy_seconds() / (self.inner.vms[id].vcores as f64 * wall)).clamp(0.0, 1.0)
    }

    /// Takes all request completions recorded since the last call:
    /// `(completion time, sojourn latency seconds)`.
    pub fn take_completions(&mut self) -> Vec<(SimTime, f64)> {
        std::mem::take(&mut self.inner.completed)
    }

    /// Total requests completed since the start of the run.
    pub fn completed_requests(&self) -> u64 {
        self.inner.vms.iter().map(|v| v.completed).sum()
    }

    /// Requests dropped because no VM was active.
    pub fn dropped_requests(&self) -> u64 {
        self.inner.dropped
    }

    /// The number of requests queued (not yet in service) at a VM.
    pub fn queue_depth(&self, id: VmId) -> usize {
        self.inner.vms[id].queue.len()
    }

    /// The number of virtual cores a VM has.
    pub fn vcores(&self, id: VmId) -> u32 {
        self.inner.vms[id].vcores
    }

    /// The number of in-service requests at a VM.
    pub fn in_service(&self, id: VmId) -> u32 {
        self.inner.vms[id].busy
    }
}

/// Draws the next inter-arrival delay at the current load.
///
/// v1 is bit-identical to the historical
/// `-(1 - u).ln() / qps` expression (negation is exact) with the
/// historical rounding conversion. v2 multiplies its unit-mean buffered
/// gap by the cached `1/qps` (a multiply instead of a divide on the
/// critical path) and converts via [`dur_v2`].
#[inline]
fn next_interarrival(samplers: &mut Samplers, qps: f64, inv_qps: f64) -> SimDuration {
    match samplers {
        Samplers::V1 { rng, .. } => {
            SimDuration::from_secs_f64((rng.standard_exp() / qps).max(1e-9))
        }
        Samplers::V2 { gap, .. } => dur_v2((gap.next() * inv_qps).max(1e-9)),
    }
}

fn arrival_event(inner: &mut Inner, engine: &mut Engine<Inner>) {
    if inner.qps <= 0.0 {
        inner.arrival_chain_live = false;
        return;
    }
    let now = engine.now();
    let demand_s = inner.samplers.demand_s();
    match inner.route() {
        Some(vm_id) => {
            let vm = &mut inner.vms[vm_id];
            if vm.busy < vm.vcores {
                // A core is free, so the queue is empty (dispatch drains
                // it whenever a core frees up): skip the queue round-trip
                // and put the request straight into service.
                debug_assert!(vm.queue.is_empty());
                dispatch_one(inner, engine, vm_id, Arrival { at: now, demand_s });
            } else {
                vm.queue.push_back(Arrival { at: now, demand_s });
            }
        }
        None => inner.dropped += 1,
    }
    // Schedule the next arrival.
    let delay = next_interarrival(&mut inner.samplers, inner.qps, inner.inv_qps);
    engine.schedule_in(delay, arrival_event);
}

fn try_dispatch(inner: &mut Inner, engine: &mut Engine<Inner>, vm_id: VmId) {
    loop {
        let vm = &mut inner.vms[vm_id];
        if vm.busy >= vm.vcores {
            return;
        }
        let Some(req) = vm.queue.pop_front() else {
            return;
        };
        dispatch_one(inner, engine, vm_id, req);
    }
}

/// Puts `req` into service on `vm_id` (which must have a free core) and
/// schedules its completion.
fn dispatch_one(inner: &mut Inner, engine: &mut Engine<Inner>, vm_id: VmId, req: Arrival) {
    let vm = &mut inner.vms[vm_id];
    vm.busy += 1;
    let speed = vm.freq_ratio * vm.share;
    let service_s = req.demand_s / speed;
    let record = InFlight {
        vm_id,
        service_s,
        arrival_at: req.at,
        freq_hz: BASE_FREQ_HZ * vm.freq_ratio,
        stall: vm.stall_fraction,
    };
    let slot = match inner.free_slots.pop() {
        Some(s) => {
            inner.inflight[s as usize] = record;
            s
        }
        None => {
            inner.inflight.push(record);
            (inner.inflight.len() - 1) as u32
        }
    };
    // v2 converts the service delay with the truncating fast path; v1
    // keeps the historical rounding conversion (see `dur_v2`).
    let delay = match inner.samplers.version() {
        StreamVersion::V1 => SimDuration::from_secs_f64(service_s),
        StreamVersion::V2 => dur_v2(service_s),
    };
    engine.schedule_in(
        delay,
        move |inner: &mut Inner, engine: &mut Engine<Inner>| complete(inner, engine, slot),
    );
}

fn complete(inner: &mut Inner, engine: &mut Engine<Inner>, slot: u32) {
    let record = inner.inflight[slot as usize];
    inner.free_slots.push(slot);
    let now = engine.now();
    let vm = &mut inner.vms[record.vm_id];
    vm.busy -= 1;
    vm.completed += 1;
    vm.counters
        .advance(record.service_s, record.freq_hz, record.stall);
    let latency = (now - record.arrival_at).as_secs_f64();
    inner.completed.push((now, latency));
    try_dispatch(inner, engine, record.vm_id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_sim::stats::Tally;

    fn p95(completions: &[(SimTime, f64)]) -> f64 {
        let mut t: Tally = completions.iter().map(|&(_, l)| l).collect();
        t.percentile(0.95)
    }

    #[test]
    fn throughput_matches_offered_load() {
        let mut sim = ClientServerSim::new(1, 0.001, 1.0, 4, 0.1);
        sim.add_vm();
        sim.set_qps(1000.0);
        sim.advance_to(SimTime::from_secs(100));
        let done = sim.completed_requests() as f64;
        assert!((done - 100_000.0).abs() / 100_000.0 < 0.02, "done = {done}");
        assert_eq!(sim.dropped_requests(), 0);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut sim = ClientServerSim::new(7, 0.002, 1.5, 4, 0.1);
            sim.add_vm();
            sim.set_qps(800.0);
            sim.advance_to(SimTime::from_secs(50));
            (sim.completed_requests(), p95(&sim.take_completions()))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn utilization_tracks_offered_load() {
        let mut sim = ClientServerSim::new(3, 0.0028, 1.5, 4, 0.1);
        let vm = sim.add_vm();
        sim.set_qps(500.0);
        let before = sim.sample(vm);
        sim.advance_to(SimTime::from_secs(120));
        // Offered core utilization: 500 × 0.0028 / 4 = 0.35 of the VM.
        let util = sim.utilization_since(vm, &before);
        let expected = 500.0 * 0.0028 / 4.0;
        assert!(
            (util - expected).abs() / expected < 0.05,
            "util {util} vs expected {expected}"
        );
    }

    #[test]
    fn overclocking_reduces_latency() {
        let run = |ratio: f64| {
            let mut sim = ClientServerSim::new(11, 0.0028, 1.5, 4, 0.1);
            let vm = sim.add_vm();
            sim.set_freq_ratio(vm, ratio);
            sim.set_qps(1200.0);
            sim.advance_to(SimTime::from_secs(120));
            p95(&sim.take_completions())
        };
        let base = run(1.0);
        let oc = run(4.1 / 3.4);
        assert!(oc < base, "OC p95 {oc} should beat base {base}");
        assert!(oc < base * 0.92, "expect a tangible improvement");
    }

    #[test]
    fn oversubscription_share_slows_service() {
        let run = |share: f64| {
            let mut sim = ClientServerSim::new(13, 0.0028, 1.5, 4, 0.1);
            let vm = sim.add_vm();
            sim.set_share(vm, share);
            sim.set_qps(600.0);
            sim.advance_to(SimTime::from_secs(60));
            p95(&sim.take_completions())
        };
        assert!(run(0.75) > run(1.0));
    }

    #[test]
    fn adding_vms_reduces_latency_under_heavy_load() {
        let run = |vms: usize| {
            let mut sim = ClientServerSim::new(17, 0.0028, 1.5, 4, 0.1);
            for _ in 0..vms {
                sim.add_vm();
            }
            sim.set_qps(2500.0);
            sim.advance_to(SimTime::from_secs(60));
            p95(&sim.take_completions())
        };
        assert!(run(4) < run(2));
    }

    #[test]
    fn removed_vm_stops_receiving_but_drains() {
        let mut sim = ClientServerSim::new(19, 0.01, 1.0, 2, 0.1);
        let a = sim.add_vm();
        let b = sim.add_vm();
        sim.set_qps(300.0);
        sim.advance_to(SimTime::from_secs(10));
        assert!(sim.remove_vm(b));
        assert!(!sim.remove_vm(b), "second removal reports inactive");
        sim.advance_to(SimTime::from_secs(30));
        // Everything eventually lands on the surviving VM.
        assert_eq!(sim.active_vms(), vec![a]);
        sim.set_qps(0.0);
        sim.advance_to(SimTime::from_secs(40));
        assert_eq!(sim.queue_depth(b), 0);
        assert_eq!(sim.in_service(b), 0);
    }

    #[test]
    fn no_vms_drops_requests() {
        let mut sim = ClientServerSim::new(23, 0.001, 1.0, 4, 0.1);
        sim.set_qps(100.0);
        sim.advance_to(SimTime::from_secs(10));
        assert!(sim.dropped_requests() > 900);
        assert_eq!(sim.completed_requests(), 0);
    }

    #[test]
    fn qps_zero_stops_arrivals() {
        let mut sim = ClientServerSim::new(29, 0.001, 1.0, 4, 0.1);
        sim.add_vm();
        sim.set_qps(100.0);
        sim.advance_to(SimTime::from_secs(10));
        let done = sim.completed_requests();
        sim.set_qps(0.0);
        sim.advance_to(SimTime::from_secs(30));
        let after = sim.completed_requests();
        // Only in-flight work completes after arrivals stop.
        assert!(after - done < 10, "{after} vs {done}");
        // And it can restart.
        sim.set_qps(100.0);
        sim.advance_to(SimTime::from_secs(40));
        assert!(sim.completed_requests() > after + 500);
    }

    #[test]
    fn hot_path_never_boxes_events() {
        let mut sim = ClientServerSim::new(37, 0.0028, 1.5, 4, 0.1);
        for _ in 0..4 {
            sim.add_vm();
        }
        sim.set_qps(2000.0);
        sim.advance_to(SimTime::from_secs(20));
        assert!(sim.completed_requests() > 30_000);
        assert_eq!(
            sim.boxed_events(),
            0,
            "arrivals and completions must stay on the inline event path"
        );
    }

    #[test]
    fn counters_report_stall_fraction() {
        let mut sim = ClientServerSim::new(31, 0.002, 1.0, 4, 0.25);
        let vm = sim.add_vm();
        sim.set_qps(400.0);
        let before = sim.sample(vm);
        sim.advance_to(SimTime::from_secs(60));
        let delta = sim.sample(vm).since(&before);
        assert!((delta.productivity() - 0.75).abs() < 1e-9);
    }
}
