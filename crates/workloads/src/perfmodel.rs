//! The Figure 9 performance and power model: how each Table IX
//! application responds to each Table VII frequency configuration.
//!
//! Execution time decomposes over frequency domains (see
//! [`crate::apps::Bottleneck`]):
//!
//! ```text
//! T(cfg) / T(ref) = w_core·(f_core,ref/f_core) + w_llc·(f_llc,ref/f_llc)
//!                 + w_mem·(f_mem,ref/f_mem)    + w_fixed
//! ```
//!
//! Latency and completion-time metrics follow the time ratio; throughput
//! metrics follow its inverse. Server power is the tank #1 Xeon W-3175X
//! platform model, calibrated against the Figure 12 oversubscription
//! measurements (B2: 120/130 W at 12/16 active cores; OC3: 160/173 W,
//! a 29–33 % increase).

use crate::apps::AppProfile;
use crate::configs::CpuConfig;
use ic_power::units::Voltage;
use serde::{Deserialize, Serialize};

/// The relative execution-time of running `app` under `cfg`, against
/// reference configuration `reference`. Values below 1 are speedups.
pub fn time_ratio(app: &AppProfile, cfg: &CpuConfig, reference: &CpuConfig) -> f64 {
    let b = app.bottleneck();
    b.core / cfg.core_ratio_to(reference)
        + b.llc / cfg.llc_ratio_to(reference)
        + b.memory / cfg.memory_ratio_to(reference)
        + b.fixed
}

/// The normalized metric of interest (1.0 = reference). For lower-is-
/// better metrics this is the time ratio; for throughput metrics, its
/// inverse.
pub fn normalized_metric(app: &AppProfile, cfg: &CpuConfig, reference: &CpuConfig) -> f64 {
    let t = time_ratio(app, cfg, reference);
    if app.metric().lower_is_better() {
        t
    } else {
        1.0 / t
    }
}

/// The percentage improvement of the metric of interest over the
/// reference (positive = better, regardless of metric direction).
pub fn improvement_pct(app: &AppProfile, cfg: &CpuConfig, reference: &CpuConfig) -> f64 {
    (1.0 - time_ratio(app, cfg, reference)) * 100.0
}

/// The small-tank-#1 server power model.
///
/// # Example
///
/// ```
/// use ic_workloads::configs::CpuConfig;
/// use ic_workloads::perfmodel::ServerPowerModel;
///
/// let m = ServerPowerModel::tank1();
/// // Figure 12's calibration points: B2 with 12/16 active cores.
/// assert!((m.avg_power_w(&CpuConfig::b2(), 12) - 120.0).abs() < 2.0);
/// assert!((m.avg_power_w(&CpuConfig::b2(), 16) - 130.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerPowerModel {
    /// Frequency-independent platform power (storage, board, NIC), W.
    rest_w: f64,
    /// Uncore power at 2.4 GHz / 0.90 V, W. Scales with `f·V²`.
    uncore_w: f64,
    /// Memory-system power at 2.4 GHz, W. Scales with `(f/f0)²`
    /// (frequency and the accompanying DIMM voltage bump).
    mem_w: f64,
    /// Per-active-core power at 3.4 GHz / 0.90 V, W. Scales with `f·V²`.
    per_core_w: f64,
}

impl ServerPowerModel {
    /// The model calibrated to the Figure 12 measurements.
    pub fn tank1() -> Self {
        ServerPowerModel {
            rest_w: 45.0,
            uncore_w: 15.0,
            mem_w: 30.0,
            per_core_w: 2.5,
        }
    }

    /// Average server power under `cfg` with `active_cores` busy cores
    /// (inactive cores sit in low-power idle).
    ///
    /// # Panics
    ///
    /// Panics if `active_cores` exceeds the 28 cores of the W-3175X.
    pub fn avg_power_w(&self, cfg: &CpuConfig, active_cores: u32) -> f64 {
        assert!(active_cores <= 28, "tank #1 has 28 physical cores");
        let b2 = CpuConfig::b2();
        let v_ratio2 = cfg
            .core_voltage()
            .squared_ratio_to(Voltage::from_volts(0.90));
        let uncore = self.uncore_w * cfg.llc_ratio_to(&b2) * v_ratio2;
        let mem = self.mem_w * cfg.memory_ratio_to(&b2).powi(2);
        let cores = self.per_core_w * active_cores as f64 * cfg.core_ratio_to(&b2) * v_ratio2;
        self.rest_w + uncore + mem + cores
    }

    /// P99 server power: average plus the application's burst headroom
    /// (latency-sensitive applications burst harder).
    pub fn p99_power_w(&self, cfg: &CpuConfig, active_cores: u32, app: &AppProfile) -> f64 {
        let factor = if app.is_latency_sensitive() {
            1.08
        } else {
            1.03
        };
        self.avg_power_w(cfg, active_cores) * factor
    }
}

/// One bar group of Figure 9: an application's normalized metric and
/// power under a configuration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Figure9Point {
    /// Application name.
    pub app: &'static str,
    /// Configuration name.
    pub config: &'static str,
    /// Metric normalized to B2 (direction per the app's metric).
    pub normalized_metric: f64,
    /// Improvement over B2, percent.
    pub improvement_pct: f64,
    /// Average server power, W.
    pub avg_power_w: f64,
    /// P99 server power, W.
    pub p99_power_w: f64,
}

/// Computes the full Figure 9 sweep: every CPU-suite application under
/// B2 (reference) and OC1–OC3.
pub fn figure9_sweep() -> Vec<Figure9Point> {
    let reference = CpuConfig::b2();
    let power = ServerPowerModel::tank1();
    let configs = [
        CpuConfig::b2(),
        CpuConfig::oc1(),
        CpuConfig::oc2(),
        CpuConfig::oc3(),
    ];
    let mut out = Vec::new();
    for app in AppProfile::cpu_suite() {
        for cfg in &configs {
            out.push(Figure9Point {
                app: app.name(),
                config: cfg.name(),
                normalized_metric: normalized_metric(&app, cfg, &reference),
                improvement_pct: improvement_pct(&app, cfg, &reference),
                avg_power_w: power.avg_power_w(cfg, app.cores()),
                p99_power_w: power.p99_power_w(cfg, app.cores(), &app),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imp(app: &AppProfile, cfg: &CpuConfig) -> f64 {
        improvement_pct(app, cfg, &CpuConfig::b2())
    }

    #[test]
    fn all_overclocks_improve_all_apps() {
        for app in AppProfile::cpu_suite() {
            for cfg in [CpuConfig::oc1(), CpuConfig::oc2(), CpuConfig::oc3()] {
                assert!(imp(&app, &cfg) > 0.0, "{} under {}", app.name(), cfg.name());
            }
        }
    }

    #[test]
    fn best_improvements_within_paper_band() {
        // Figure 9: overclocking improves the metric 10–25 %.
        for app in AppProfile::cpu_suite() {
            let best = imp(&app, &CpuConfig::oc3());
            assert!(
                (10.0..=25.0).contains(&best),
                "{}: best improvement {best:.1}%",
                app.name()
            );
        }
    }

    #[test]
    fn core_overclock_is_largest_increment_except_terasort_diskspeed() {
        for app in AppProfile::cpu_suite() {
            let oc1_step = imp(&app, &CpuConfig::oc1());
            let llc_step = imp(&app, &CpuConfig::oc2()) - oc1_step;
            let mem_step = imp(&app, &CpuConfig::oc3()) - imp(&app, &CpuConfig::oc2());
            let core_dominates = oc1_step >= llc_step && oc1_step >= mem_step;
            match app.name() {
                "TeraSort" | "DiskSpeed" => {
                    assert!(
                        !core_dominates,
                        "{} should not be core-dominated",
                        app.name()
                    )
                }
                _ => assert!(core_dominates, "{} should be core-dominated", app.name()),
            }
        }
    }

    #[test]
    fn sql_gains_most_from_memory_overclock() {
        let sql = AppProfile::sql();
        let mem_step = imp(&sql, &CpuConfig::oc3()) - imp(&sql, &CpuConfig::oc2());
        for app in AppProfile::cpu_suite() {
            if app.name() == "SQL" || app.name() == "TeraSort" {
                continue;
            }
            let step = imp(&app, &CpuConfig::oc3()) - imp(&app, &CpuConfig::oc2());
            assert!(step < mem_step, "{} memory step {step}", app.name());
        }
    }

    #[test]
    fn bi_and_training_ignore_cache_and_memory() {
        for app in [AppProfile::bi(), AppProfile::training()] {
            let extra = imp(&app, &CpuConfig::oc3()) - imp(&app, &CpuConfig::oc1());
            assert!(extra < 2.0, "{}: non-core gain {extra:.2}%", app.name());
        }
    }

    #[test]
    fn fig12_power_calibration_points() {
        let m = ServerPowerModel::tank1();
        assert!((m.avg_power_w(&CpuConfig::b2(), 12) - 120.0).abs() < 2.0);
        assert!((m.avg_power_w(&CpuConfig::b2(), 16) - 130.0).abs() < 2.0);
        let oc12 = m.avg_power_w(&CpuConfig::oc3(), 12);
        let oc16 = m.avg_power_w(&CpuConfig::oc3(), 16);
        assert!((oc12 - 160.0).abs() < 8.0, "OC3@12 = {oc12}");
        assert!((oc16 - 173.0).abs() < 8.0, "OC3@16 = {oc16}");
    }

    #[test]
    fn oc3_power_increase_29_to_33_pct() {
        let m = ServerPowerModel::tank1();
        for cores in [12u32, 16] {
            let ratio =
                m.avg_power_w(&CpuConfig::oc3(), cores) / m.avg_power_w(&CpuConfig::b2(), cores);
            assert!(
                (1.28..=1.36).contains(&ratio),
                "{cores} cores: ratio {ratio:.3}"
            );
        }
    }

    #[test]
    fn cache_overclock_power_is_marginal() {
        // Figure 9: OC2 accelerates Pmbench/DiskSpeed "while incurring
        // only marginal power overheads" relative to OC1.
        let m = ServerPowerModel::tank1();
        let oc1 = m.avg_power_w(&CpuConfig::oc1(), 4);
        let oc2 = m.avg_power_w(&CpuConfig::oc2(), 4);
        let oc3 = m.avg_power_w(&CpuConfig::oc3(), 4);
        assert!(
            (oc2 - oc1) / oc1 < 0.05,
            "llc adds {:.1}%",
            (oc2 - oc1) / oc1 * 100.0
        );
        assert!(
            oc3 - oc2 > oc2 - oc1,
            "memory OC should dominate the power adders"
        );
    }

    #[test]
    fn throughput_metrics_invert() {
        let jbb = AppProfile::specjbb();
        let n = normalized_metric(&jbb, &CpuConfig::oc1(), &CpuConfig::b2());
        assert!(n > 1.0, "throughput should rise: {n}");
        let sql = AppProfile::sql();
        let n = normalized_metric(&sql, &CpuConfig::oc1(), &CpuConfig::b2());
        assert!(n < 1.0, "latency should fall: {n}");
    }

    #[test]
    fn figure9_sweep_shape() {
        let sweep = figure9_sweep();
        assert_eq!(sweep.len(), 9 * 4);
        // Reference points are exactly 1.0.
        for p in sweep.iter().filter(|p| p.config == "B2") {
            assert!((p.normalized_metric - 1.0).abs() < 1e-12);
            assert!(p.improvement_pct.abs() < 1e-9);
        }
        // P99 never below average.
        for p in &sweep {
            assert!(p.p99_power_w >= p.avg_power_w);
        }
    }

    #[test]
    fn identity_configuration_is_identity() {
        for app in AppProfile::catalog() {
            assert!((time_ratio(&app, &CpuConfig::b2(), &CpuConfig::b2()) - 1.0).abs() < 1e-12);
        }
    }
}
