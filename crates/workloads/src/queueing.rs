//! Analytic M/M/k and M/G/k approximations.
//!
//! The oversubscription study (Figure 12) needs latency-versus-capacity
//! curves; closed-form queueing gives them without simulation noise.
//! Erlang-C supplies the M/M/k waiting probability; the Allen–Cunneen
//! correction extends mean waiting time to general service laws; tail
//! quantiles use the standard exponential conditional-wait approximation
//! plus a lognormal service quantile.

use serde::{Deserialize, Serialize};

/// The Erlang-C probability that an arriving job waits, for `k` servers
/// at offered load `a = λ/μ` (in Erlangs).
///
/// # Panics
///
/// Panics if `k == 0`, `a < 0`, or the system is unstable (`a >= k`).
///
/// # Example
///
/// ```
/// use ic_workloads::queueing::erlang_c;
///
/// // Single server: P(wait) equals utilization.
/// assert!((erlang_c(1, 0.5) - 0.5).abs() < 1e-12);
/// ```
pub fn erlang_c(k: u32, a: f64) -> f64 {
    assert!(k > 0, "need at least one server");
    assert!(a >= 0.0 && a.is_finite(), "invalid offered load {a}");
    assert!(a < k as f64, "unstable system: a = {a} >= k = {k}");
    if a == 0.0 {
        return 0.0;
    }
    // Iteratively build the Erlang-B blocking probability, then convert.
    let mut b = 1.0; // Erlang-B with 0 servers
    for n in 1..=k {
        b = a * b / (n as f64 + a * b);
    }
    let rho = a / k as f64;
    b / (1.0 - rho + rho * b)
}

/// An M/G/k queue: Poisson arrivals at `lambda`, `k` servers, service
/// with mean `service_mean` and squared coefficient of variation `scv`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MgkQueue {
    k: u32,
    lambda: f64,
    service_mean: f64,
    scv: f64,
}

impl MgkQueue {
    /// Creates a queue description.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive/invalid or the system is
    /// unstable (`λ·S >= k`).
    pub fn new(k: u32, lambda: f64, service_mean: f64, scv: f64) -> Self {
        assert!(k > 0, "need at least one server");
        assert!(lambda > 0.0 && lambda.is_finite(), "invalid lambda");
        assert!(
            service_mean > 0.0 && service_mean.is_finite(),
            "invalid service mean"
        );
        assert!(scv >= 0.0 && scv.is_finite(), "invalid SCV");
        let a = lambda * service_mean;
        assert!(a < k as f64, "unstable: offered load {a:.2} >= servers {k}");
        MgkQueue {
            k,
            lambda,
            service_mean,
            scv,
        }
    }

    /// Offered load in Erlangs, `λ·S`.
    pub fn offered_load(&self) -> f64 {
        self.lambda * self.service_mean
    }

    /// Per-server utilization `ρ = λ·S / k`.
    pub fn utilization(&self) -> f64 {
        self.offered_load() / self.k as f64
    }

    /// The probability an arrival waits (Erlang-C on the M/M/k skeleton).
    pub fn wait_probability(&self) -> f64 {
        erlang_c(self.k, self.offered_load())
    }

    /// Mean waiting time (Allen–Cunneen approximation):
    /// `W_q ≈ C(k, a) / (kμ − λ) × (1 + SCV)/2`.
    pub fn mean_wait(&self) -> f64 {
        let mu = 1.0 / self.service_mean;
        let c = self.wait_probability();
        c / (self.k as f64 * mu - self.lambda) * (1.0 + self.scv) / 2.0
    }

    /// Mean sojourn (response) time: wait plus service.
    pub fn mean_sojourn(&self) -> f64 {
        self.mean_wait() + self.service_mean
    }

    /// Approximate `q`-quantile of the sojourn time: the lognormal
    /// service quantile plus the exponential-tail waiting quantile
    /// `max(0, ln(C/(1−q)) / (kμ(1−ρ)))`, with the waiting rate scaled
    /// by the Allen–Cunneen factor.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1)`.
    pub fn sojourn_quantile(&self, q: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&q) && q > 0.0,
            "quantile {q} outside (0, 1)"
        );
        let c = self.wait_probability();
        let mu = 1.0 / self.service_mean;
        let drain = self.k as f64 * mu * (1.0 - self.utilization()) * 2.0 / (1.0 + self.scv);
        let wait_q = if c > 1.0 - q {
            (c / (1.0 - q)).ln() / drain
        } else {
            0.0
        };
        self.service_quantile(q) + wait_q
    }

    /// The `q`-quantile of a lognormal service law with this queue's
    /// mean and SCV.
    pub fn service_quantile(&self, q: f64) -> f64 {
        let sigma2 = (1.0 + self.scv).ln();
        let sigma = sigma2.sqrt();
        let mu_ln = self.service_mean.ln() - sigma2 / 2.0;
        (mu_ln + sigma * normal_quantile(q)).exp()
    }
}

/// The standard normal quantile (inverse CDF), Acklam's rational
/// approximation (relative error < 1.2e-9 over (0, 1)).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability {p} outside (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_c_single_server_equals_rho() {
        for rho in [0.1, 0.5, 0.9] {
            assert!((erlang_c(1, rho) - rho).abs() < 1e-12);
        }
    }

    #[test]
    fn erlang_c_known_value() {
        // Classic call-centre example: k = 10, a = 8 → C ≈ 0.409.
        let c = erlang_c(10, 8.0);
        assert!((c - 0.409).abs() < 0.005, "C = {c}");
    }

    #[test]
    fn erlang_c_monotone_in_load() {
        let mut last = 0.0;
        for a in [1.0, 4.0, 8.0, 11.0] {
            let c = erlang_c(12, a);
            assert!(c > last);
            last = c;
        }
    }

    #[test]
    fn mgk_reduces_to_mm1() {
        // M/M/1: W_q = ρ/(μ−λ) with SCV = 1.
        let q = MgkQueue::new(1, 0.5, 1.0, 1.0);
        assert!((q.mean_wait() - 0.5 / 0.5).abs() < 1e-9);
        assert!((q.mean_sojourn() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scv_scales_mean_wait() {
        let exp = MgkQueue::new(4, 3.0, 1.0, 1.0);
        let det = MgkQueue::new(4, 3.0, 1.0, 0.0);
        let heavy = MgkQueue::new(4, 3.0, 1.0, 3.0);
        assert!((det.mean_wait() - exp.mean_wait() / 2.0).abs() < 1e-9);
        assert!((heavy.mean_wait() - exp.mean_wait() * 2.0).abs() < 1e-9);
    }

    #[test]
    fn more_servers_less_waiting() {
        let small = MgkQueue::new(12, 1000.0, 0.01, 1.5);
        let big = MgkQueue::new(16, 1000.0, 0.01, 1.5);
        assert!(big.mean_wait() < small.mean_wait());
        assert!(big.sojourn_quantile(0.95) < small.sojourn_quantile(0.95));
    }

    #[test]
    fn sojourn_quantile_exceeds_mean_components() {
        let q = MgkQueue::new(8, 600.0, 0.01, 1.5);
        let p95 = q.sojourn_quantile(0.95);
        assert!(p95 > q.service_mean);
        assert!(p95 >= q.service_quantile(0.95));
    }

    #[test]
    fn light_load_p95_is_service_p95() {
        let q = MgkQueue::new(16, 10.0, 0.01, 1.0);
        // Essentially no waiting at utilization 0.6 %.
        assert!((q.sojourn_quantile(0.95) - q.service_quantile(0.95)).abs() < 1e-6);
    }

    #[test]
    fn normal_quantile_symmetric_and_accurate() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.95996).abs() < 1e-4);
        assert!((normal_quantile(0.95) - 1.64485).abs() < 1e-4);
        assert!((normal_quantile(0.05) + normal_quantile(0.95)).abs() < 1e-9);
        assert!((normal_quantile(0.001) + 3.0902).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_queue_panics() {
        let _ = MgkQueue::new(4, 500.0, 0.01, 1.0);
    }
}
