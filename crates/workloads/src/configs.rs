//! The experimental CPU frequency configurations of Table VII.
//!
//! Seven configurations of small tank #1's Xeon W-3175X: two production
//! baselines (B1 without turbo, B2 with turbo — "the configuration of
//! most datacenters today"), two that overclock only the uncore/memory
//! (B3, B4), and three that overclock combinations of all components
//! (OC1–OC3). Core overclocks carry a +50 mV voltage offset.

use ic_power::units::{Frequency, Voltage};
use ic_scenario::{CpuConfigSpec, WorkloadCalibration};
use serde::Serialize;
use std::fmt;

/// One Table VII row: the frequency of each overclockable component.
///
/// # Example
///
/// ```
/// use ic_workloads::configs::CpuConfig;
///
/// let b2 = CpuConfig::b2();
/// let oc3 = CpuConfig::oc3();
/// assert!((oc3.core_ratio_to(&b2) - 4.1 / 3.4).abs() < 1e-9);
/// assert!((oc3.memory_ratio_to(&b2) - 3.0 / 2.4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct CpuConfig {
    name: &'static str,
    core: Frequency,
    voltage_offset_mv: i32,
    turbo: bool,
    llc: Frequency,
    memory: Frequency,
}

impl CpuConfig {
    /// Builds a configuration from a scenario's Table VII entry.
    pub fn from_spec(spec: &CpuConfigSpec) -> Self {
        CpuConfig {
            name: ic_scenario::intern(&spec.name),
            core: Frequency::from_ghz(spec.core_ghz),
            voltage_offset_mv: spec.voltage_offset_mv,
            turbo: spec.turbo,
            llc: Frequency::from_ghz(spec.llc_ghz),
            memory: Frequency::from_ghz(spec.memory_ghz),
        }
    }

    fn paper_config(name: &str) -> Self {
        Self::from_spec(
            WorkloadCalibration::paper()
                .cpu_config(name)
                .expect("paper catalog has the config"),
        )
    }

    /// B1: 3.1 GHz core (turbo off), 2.4 GHz LLC, 2.4 GHz memory.
    pub fn b1() -> Self {
        Self::paper_config("B1")
    }

    /// B2: 3.4 GHz all-core turbo — the production baseline the paper
    /// normalizes against.
    pub fn b2() -> Self {
        Self::paper_config("B2")
    }

    /// B3: B2 plus uncore/LLC overclocked to 2.8 GHz.
    pub fn b3() -> Self {
        Self::paper_config("B3")
    }

    /// B4: B3 plus memory overclocked to 3.0 GHz.
    pub fn b4() -> Self {
        Self::paper_config("B4")
    }

    /// OC1: core overclocked to 4.1 GHz (+50 mV), stock uncore/memory.
    pub fn oc1() -> Self {
        Self::paper_config("OC1")
    }

    /// OC2: OC1 plus 2.8 GHz uncore/LLC.
    pub fn oc2() -> Self {
        Self::paper_config("OC2")
    }

    /// OC3: OC2 plus 3.0 GHz memory — everything overclocked.
    pub fn oc3() -> Self {
        Self::paper_config("OC3")
    }

    /// The Table VII rows of a workload calibration, in row order.
    pub fn catalog_from(cal: &WorkloadCalibration) -> Vec<CpuConfig> {
        cal.cpu_configs.iter().map(CpuConfig::from_spec).collect()
    }

    /// All seven configurations in Table VII row order.
    pub fn catalog() -> Vec<CpuConfig> {
        Self::catalog_from(&WorkloadCalibration::paper())
    }

    /// Looks a configuration up by its Table VII name (case-insensitive).
    pub fn by_name(name: &str) -> Option<CpuConfig> {
        Self::catalog()
            .into_iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// The Table VII row label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Core frequency.
    pub fn core(&self) -> Frequency {
        self.core
    }

    /// Uncore/LLC frequency.
    pub fn llc(&self) -> Frequency {
        self.llc
    }

    /// System memory frequency.
    pub fn memory(&self) -> Frequency {
        self.memory
    }

    /// Whether opportunistic turbo is enabled (baselines only).
    pub fn turbo(&self) -> bool {
        self.turbo
    }

    /// The configured voltage offset in millivolts.
    pub fn voltage_offset_mv(&self) -> i32 {
        self.voltage_offset_mv
    }

    /// The core voltage: nominal 0.90 V scaled along the measured V/f
    /// slope for core overclocks, plus the configured offset.
    pub fn core_voltage(&self) -> Voltage {
        let base = Voltage::from_volts(0.90);
        let v = if self.core > Frequency::from_ghz(3.5) {
            // Interpolate toward 0.98 V at +23 % (≈ 4.18 GHz).
            let span = 3.4 * 1.23 - 3.5;
            let frac = ((self.core.ghz() - 3.5) / span).clamp(0.0, 1.0);
            Voltage::from_mv((900.0 + 80.0 * frac).round() as u32)
        } else {
            base
        };
        v.with_offset_mv(self.voltage_offset_mv)
    }

    /// `true` if any component runs beyond the B2 production baseline.
    pub fn is_overclocked(&self) -> bool {
        let b2 = Self::b2();
        self.core > b2.core || self.llc > b2.llc || self.memory > b2.memory
    }

    /// Core clock ratio relative to another configuration.
    pub fn core_ratio_to(&self, other: &CpuConfig) -> f64 {
        self.core.ratio_to(other.core)
    }

    /// LLC clock ratio relative to another configuration.
    pub fn llc_ratio_to(&self, other: &CpuConfig) -> f64 {
        self.llc.ratio_to(other.llc)
    }

    /// Memory clock ratio relative to another configuration.
    pub fn memory_ratio_to(&self, other: &CpuConfig) -> f64 {
        self.memory.ratio_to(other.memory)
    }
}

impl fmt::Display for CpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: core {}, LLC {}, mem {}{}",
            self.name,
            self.core,
            self.llc,
            self.memory,
            if self.voltage_offset_mv != 0 {
                format!(", +{} mV", self.voltage_offset_mv)
            } else {
                String::new()
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_values() {
        let rows = CpuConfig::catalog();
        let expect: [(&str, f64, i32, f64, f64); 7] = [
            ("B1", 3.1, 0, 2.4, 2.4),
            ("B2", 3.4, 0, 2.4, 2.4),
            ("B3", 3.4, 0, 2.8, 2.4),
            ("B4", 3.4, 0, 2.8, 3.0),
            ("OC1", 4.1, 50, 2.4, 2.4),
            ("OC2", 4.1, 50, 2.8, 2.4),
            ("OC3", 4.1, 50, 2.8, 3.0),
        ];
        for (row, (name, core, off, llc, mem)) in rows.iter().zip(expect) {
            assert_eq!(row.name(), name);
            assert_eq!(row.core(), Frequency::from_ghz(core));
            assert_eq!(row.voltage_offset_mv(), off);
            assert_eq!(row.llc(), Frequency::from_ghz(llc));
            assert_eq!(row.memory(), Frequency::from_ghz(mem));
        }
    }

    #[test]
    fn only_baselines_use_turbo() {
        assert!(!CpuConfig::b1().turbo());
        assert!(CpuConfig::b2().turbo());
        assert!(CpuConfig::b4().turbo());
        assert!(!CpuConfig::oc1().turbo());
    }

    #[test]
    fn overclock_detection() {
        assert!(!CpuConfig::b1().is_overclocked());
        assert!(!CpuConfig::b2().is_overclocked());
        assert!(CpuConfig::b3().is_overclocked());
        assert!(CpuConfig::oc1().is_overclocked());
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(CpuConfig::by_name("oc3"), Some(CpuConfig::oc3()));
        assert_eq!(CpuConfig::by_name("B2"), Some(CpuConfig::b2()));
        assert_eq!(CpuConfig::by_name("nope"), None);
    }

    #[test]
    fn oc_voltage_rises_with_core_clock() {
        let b2 = CpuConfig::b2().core_voltage();
        let oc1 = CpuConfig::oc1().core_voltage();
        assert_eq!(b2.volts(), 0.90);
        assert!(oc1 > b2);
        // 4.1 GHz ≈ 0.97 V on the measured curve, +50 mV offset ≈ 1.02 V.
        assert!((oc1.volts() - 1.02).abs() < 0.02, "{oc1}");
    }

    #[test]
    fn ratios_against_b2() {
        let b2 = CpuConfig::b2();
        assert!((CpuConfig::oc1().core_ratio_to(&b2) - 1.2059).abs() < 1e-3);
        assert!((CpuConfig::b3().llc_ratio_to(&b2) - 2.8 / 2.4).abs() < 1e-9);
        assert_eq!(CpuConfig::b2().core_ratio_to(&b2), 1.0);
    }
}
