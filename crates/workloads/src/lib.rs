//! Cloud workload models for the paper's evaluation (Section VI).
//!
//! The paper runs eleven applications (Table IX) on the tank prototypes
//! under seven CPU frequency configurations (Table VII) and four GPU
//! configurations (Table VIII). We do not have the tanks, so this crate
//! provides two complementary substitutes:
//!
//! * **Analytic bottleneck models** ([`apps`], [`perfmodel`], [`stream`],
//!   [`gpu`]) — each application is decomposed into core-, uncore-,
//!   memory-, and frequency-insensitive time shares calibrated to the
//!   published bars of Figures 9–11. These regenerate the
//!   high-performance-VM figures.
//! * **An executable M/G/k client–server application** ([`mgk`]) running
//!   on the `ic-sim` discrete-event engine — Poisson arrivals, general
//!   service times, `k` server VMs behind a load balancer. This is the
//!   workload the paper's auto-scaler experiments (Figures 15–16, Table
//!   XI) drive, and the auto-scaler in `ic-autoscale` controls it through
//!   the same telemetry a real deployment would use. [`queueing`]
//!   provides the matching analytic approximations.
//!
//! [`mix`] adds the two-resource (CPU time, memory bandwidth) contention
//! model behind the oversubscription scenarios of Table X / Figure 13.

pub mod apps;
pub mod configs;
pub mod gpu;
pub mod loadgen;
pub mod mgk;
pub mod mix;
pub mod perfmodel;
pub mod queueing;
pub mod slo;
pub mod stream;

pub use apps::{AppProfile, Metric};
pub use configs::CpuConfig;
pub use gpu::GpuConfig;
pub use mgk::ClientServerSim;
