//! The STREAM memory-bandwidth model (Figure 10).
//!
//! Sustainable bandwidth is a harmonic blend of the DRAM channel peak
//! (scaling with memory clock) and the core/uncore request-issue rate
//! (scaling mostly with the uncore clock):
//!
//! ```text
//! 1 / BW = α / BW_mem(f_mem)  +  (1 − α) / Issue(f_core, f_llc)
//! ```
//!
//! with `Issue ∝ f_core^0.4 · f_llc^0.6` and the memory-bound share
//! `α = 0.305` calibrated so the paper's headline deltas reproduce:
//! **B4 +17 % and OC3 +24 % over B1**, with roughly 10 % average power
//! increase across the sweep.

use crate::configs::CpuConfig;
use crate::perfmodel::ServerPowerModel;
use serde::{Deserialize, Serialize};

/// The four STREAM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamKernel {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = s·c[i]`
    Scale,
    /// `c[i] = a[i] + b[i]`
    Add,
    /// `a[i] = b[i] + s·c[i]`
    Triad,
}

impl StreamKernel {
    /// All four kernels in STREAM's reporting order.
    pub fn all() -> [StreamKernel; 4] {
        [
            StreamKernel::Copy,
            StreamKernel::Scale,
            StreamKernel::Add,
            StreamKernel::Triad,
        ]
    }

    /// The kernel's name as STREAM prints it.
    pub fn name(self) -> &'static str {
        match self {
            StreamKernel::Copy => "copy",
            StreamKernel::Scale => "scale",
            StreamKernel::Add => "add",
            StreamKernel::Triad => "triad",
        }
    }

    /// Baseline (B1) sustainable bandwidth, MB/s. Two-operand kernels
    /// sustain slightly less than the three-operand ones on Skylake
    /// (write-allocate traffic amortizes better with more streams).
    fn base_mbps(self) -> f64 {
        match self {
            StreamKernel::Copy => 90_000.0,
            StreamKernel::Scale => 88_000.0,
            StreamKernel::Add => 98_000.0,
            StreamKernel::Triad => 97_000.0,
        }
    }
}

/// The calibrated STREAM bandwidth model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamModel {
    /// Memory-bound blend share α.
    alpha: f64,
    /// Core-clock exponent of the issue rate.
    core_exp: f64,
}

impl StreamModel {
    /// The model calibrated to Figure 10 (α = 0.305, core exponent 0.4).
    pub fn calibrated() -> Self {
        StreamModel {
            alpha: 0.305,
            core_exp: 0.4,
        }
    }

    /// Sustainable bandwidth for `kernel` under `cfg`, MB/s.
    pub fn bandwidth_mbps(&self, kernel: StreamKernel, cfg: &CpuConfig) -> f64 {
        let b1 = CpuConfig::b1();
        let mem_ratio = cfg.memory_ratio_to(&b1);
        let issue_ratio = cfg.core_ratio_to(&b1).powf(self.core_exp)
            * cfg.llc_ratio_to(&b1).powf(1.0 - self.core_exp);
        let blend = self.alpha / mem_ratio + (1.0 - self.alpha) / issue_ratio;
        kernel.base_mbps() / blend
    }

    /// Bandwidth relative to the B1 baseline.
    pub fn speedup_over_b1(&self, kernel: StreamKernel, cfg: &CpuConfig) -> f64 {
        self.bandwidth_mbps(kernel, cfg) / self.bandwidth_mbps(kernel, &CpuConfig::b1())
    }
}

/// One Figure 10 data point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Figure10Point {
    /// Configuration name (B1–B4, OC1–OC3).
    pub config: &'static str,
    /// Kernel name.
    pub kernel: &'static str,
    /// Sustainable bandwidth, MB/s.
    pub bandwidth_mbps: f64,
    /// Average server power, W (STREAM drives 16 cores).
    pub avg_power_w: f64,
}

/// The full Figure 10 sweep: all seven configurations × four kernels.
pub fn figure10_sweep() -> Vec<Figure10Point> {
    let model = StreamModel::calibrated();
    let power = ServerPowerModel::tank1();
    let mut out = Vec::new();
    for cfg in CpuConfig::catalog() {
        for kernel in StreamKernel::all() {
            out.push(Figure10Point {
                config: cfg.name(),
                kernel: kernel.name(),
                bandwidth_mbps: model.bandwidth_mbps(kernel, &cfg),
                avg_power_w: power.avg_power_w(&cfg, 16),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b4_and_oc3_headline_speedups() {
        let m = StreamModel::calibrated();
        for k in StreamKernel::all() {
            let b4 = m.speedup_over_b1(k, &CpuConfig::b4());
            let oc3 = m.speedup_over_b1(k, &CpuConfig::oc3());
            assert!((b4 - 1.17).abs() < 0.02, "{}: B4 {b4:.3}", k.name());
            assert!((oc3 - 1.24).abs() < 0.02, "{}: OC3 {oc3:.3}", k.name());
        }
    }

    #[test]
    fn memory_overclock_gives_largest_single_step() {
        // "The highest performance improvement happens when the memory
        // system is overclocked."
        let m = StreamModel::calibrated();
        let k = StreamKernel::Triad;
        let b3 = m.speedup_over_b1(k, &CpuConfig::b3());
        let b4 = m.speedup_over_b1(k, &CpuConfig::b4());
        let b2 = m.speedup_over_b1(k, &CpuConfig::b2());
        assert!(b4 - b3 > b2 - 1.0, "memory step should beat the turbo step");
        assert!(b4 - b3 > b3 - b2, "memory step should beat the uncore step");
    }

    #[test]
    fn core_and_cache_also_help() {
        // "Increasing core and cache frequencies also has a positive
        // impact on the peak memory bandwidth."
        let m = StreamModel::calibrated();
        let k = StreamKernel::Copy;
        assert!(m.speedup_over_b1(k, &CpuConfig::b2()) > 1.0);
        assert!(m.speedup_over_b1(k, &CpuConfig::b3()) > m.speedup_over_b1(k, &CpuConfig::b2()));
        assert!(m.speedup_over_b1(k, &CpuConfig::oc1()) > m.speedup_over_b1(k, &CpuConfig::b2()));
    }

    #[test]
    fn sweep_power_increase_around_10_pct() {
        // "As expected, the power draw increases with the aggressiveness
        // of overclocking (10 % average power increase)."
        let sweep = figure10_sweep();
        let b1_power = sweep.iter().find(|p| p.config == "B1").unwrap().avg_power_w;
        let mean: f64 = sweep.iter().map(|p| p.avg_power_w).sum::<f64>() / sweep.len() as f64;
        let increase = mean / b1_power - 1.0;
        assert!(
            (0.05..=0.20).contains(&increase),
            "average power increase {:.1}%",
            increase * 100.0
        );
    }

    #[test]
    fn add_and_triad_sustain_more_than_copy_scale() {
        let m = StreamModel::calibrated();
        let cfg = CpuConfig::b2();
        assert!(
            m.bandwidth_mbps(StreamKernel::Add, &cfg) > m.bandwidth_mbps(StreamKernel::Copy, &cfg)
        );
        assert!(
            m.bandwidth_mbps(StreamKernel::Triad, &cfg)
                > m.bandwidth_mbps(StreamKernel::Scale, &cfg)
        );
    }

    #[test]
    fn sweep_covers_all_configs_and_kernels() {
        let sweep = figure10_sweep();
        assert_eq!(sweep.len(), 7 * 4);
        assert!(sweep
            .iter()
            .any(|p| p.config == "OC3" && p.kernel == "triad"));
    }

    #[test]
    fn bandwidth_monotone_in_memory_clock() {
        let m = StreamModel::calibrated();
        // B3 → B4 changes only the memory clock.
        for k in StreamKernel::all() {
            assert!(m.bandwidth_mbps(k, &CpuConfig::b4()) > m.bandwidth_mbps(k, &CpuConfig::b3()));
        }
    }
}
