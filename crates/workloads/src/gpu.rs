//! GPU overclocking: the Table VIII configurations and the Figure 11
//! VGG-training model.
//!
//! Small tank #2 hosts an overclockable Nvidia RTX 2080 Ti (250 W TDP).
//! Training time decomposes into a compute share (scaling with the GPU
//! core clock) and a memory share (scaling with the GDDR clock); the
//! batch-optimized VGG16B variant is almost purely compute-bound, which
//! is why the paper finds GPU-memory overclocking (OCG2/OCG3) buys it
//! nothing while raising P99 power 9.5 %.

use ic_power::units::Frequency;
use ic_scenario::{GpuConfigSpec, WorkloadCalibration};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One Table VIII row: a GPU operating configuration.
///
/// # Example
///
/// ```
/// use ic_workloads::gpu::GpuConfig;
///
/// let base = GpuConfig::base();
/// let ocg3 = GpuConfig::ocg3();
/// assert_eq!(base.power_limit_w(), 250.0);
/// assert_eq!(ocg3.power_limit_w(), 300.0);
/// assert!(ocg3.memory().ghz() > base.memory().ghz());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct GpuConfig {
    name: &'static str,
    power_limit_w_tenths: u32,
    base: Frequency,
    turbo: Frequency,
    memory: Frequency,
    voltage_offset_mv: i32,
}

impl GpuConfig {
    /// Builds a configuration from a scenario's Table VIII entry.
    pub fn from_spec(spec: &GpuConfigSpec) -> Self {
        GpuConfig {
            name: ic_scenario::intern(&spec.name),
            power_limit_w_tenths: (spec.power_limit_w * 10.0).round() as u32,
            base: Frequency::from_ghz(spec.base_ghz),
            turbo: Frequency::from_ghz(spec.turbo_ghz),
            memory: Frequency::from_ghz(spec.memory_ghz),
            voltage_offset_mv: spec.voltage_offset_mv,
        }
    }

    fn paper_config(name: &str) -> Self {
        Self::from_spec(
            WorkloadCalibration::paper()
                .gpu_config(name)
                .expect("paper catalog has the config"),
        )
    }

    /// Base: 250 W, 1.35/1.950 GHz core, 6.8 GHz memory.
    pub fn base() -> Self {
        Self::paper_config("Base")
    }

    /// OCG1: 250 W, core overclocked to 1.55/2.085 GHz.
    pub fn ocg1() -> Self {
        Self::paper_config("OCG1")
    }

    /// OCG2: 300 W, OCG1 plus memory at 8.1 GHz and +100 mV.
    pub fn ocg2() -> Self {
        Self::paper_config("OCG2")
    }

    /// OCG3: 300 W, memory pushed to 8.3 GHz.
    pub fn ocg3() -> Self {
        Self::paper_config("OCG3")
    }

    /// The Table VIII rows of a workload calibration, in row order.
    pub fn catalog_from(cal: &WorkloadCalibration) -> Vec<GpuConfig> {
        cal.gpu_configs.iter().map(GpuConfig::from_spec).collect()
    }

    /// All four configurations in Table VIII row order.
    pub fn catalog() -> Vec<GpuConfig> {
        Self::catalog_from(&WorkloadCalibration::paper())
    }

    /// The Table VIII row label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Board power limit, W.
    pub fn power_limit_w(&self) -> f64 {
        self.power_limit_w_tenths as f64 / 10.0
    }

    /// Sustained (base) core clock.
    pub fn base_clock(&self) -> Frequency {
        self.base
    }

    /// Boost (turbo) core clock.
    pub fn turbo_clock(&self) -> Frequency {
        self.turbo
    }

    /// GDDR memory clock.
    pub fn memory(&self) -> Frequency {
        self.memory
    }

    /// Voltage offset, mV.
    pub fn voltage_offset_mv(&self) -> i32 {
        self.voltage_offset_mv
    }
}

impl fmt::Display for GpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.0} W, core {}/{}, mem {}",
            self.name,
            self.power_limit_w(),
            self.base,
            self.turbo,
            self.memory
        )
    }
}

/// A VGG variant's sensitivity to GPU clocks: compute share scales with
/// the sustained core clock, memory share with the GDDR clock.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct VggModel {
    name: &'static str,
    compute_share: f64,
    memory_share: f64,
    fixed_share: f64,
}

impl VggModel {
    /// The six variants the paper trains, from small to the
    /// batch-optimized VGG16B.
    pub fn suite() -> Vec<VggModel> {
        // Larger models are more compute-dense; the batch-optimized
        // variants (B) keep the GPU's arithmetic units saturated, so
        // their memory share is minimal.
        vec![
            VggModel {
                name: "VGG11",
                compute_share: 0.72,
                memory_share: 0.18,
                fixed_share: 0.10,
            },
            VggModel {
                name: "VGG13",
                compute_share: 0.75,
                memory_share: 0.16,
                fixed_share: 0.09,
            },
            VggModel {
                name: "VGG16",
                compute_share: 0.78,
                memory_share: 0.14,
                fixed_share: 0.08,
            },
            VggModel {
                name: "VGG19",
                compute_share: 0.80,
                memory_share: 0.13,
                fixed_share: 0.07,
            },
            VggModel {
                name: "VGG11B",
                compute_share: 0.86,
                memory_share: 0.06,
                fixed_share: 0.08,
            },
            VggModel {
                name: "VGG16B",
                compute_share: 0.91,
                memory_share: 0.02,
                fixed_share: 0.07,
            },
        ]
    }

    /// Looks a variant up by name (case-insensitive).
    pub fn by_name(name: &str) -> Option<VggModel> {
        Self::suite()
            .into_iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// The variant name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Normalized training time under `cfg`, relative to [`GpuConfig::base`]
    /// (1.0 = baseline; smaller is faster). Compute scales with the
    /// sustained base clock, memory with the GDDR clock.
    pub fn normalized_time(&self, cfg: &GpuConfig) -> f64 {
        let b = GpuConfig::base();
        self.compute_share / cfg.base_clock().ratio_to(b.base_clock())
            + self.memory_share / cfg.memory().ratio_to(b.memory())
            + self.fixed_share
    }
}

/// GPU board power under a configuration: the paper measured P99 board
/// power of 193 W at Base rising to 231 W at OCG3 (+19 %), i.e. roughly
/// 77 % of the configured power limit at P99.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuPowerModel {
    p99_fraction_of_limit: f64,
    avg_fraction_of_p99: f64,
}

impl GpuPowerModel {
    /// The model calibrated to the Figure 11 measurements.
    pub fn rtx2080ti() -> Self {
        GpuPowerModel {
            p99_fraction_of_limit: 0.77,
            avg_fraction_of_p99: 0.93,
        }
    }

    /// P99 board power under `cfg`, W.
    pub fn p99_power_w(&self, cfg: &GpuConfig) -> f64 {
        cfg.power_limit_w() * self.p99_fraction_of_limit
    }

    /// Average board power under `cfg`, W.
    pub fn avg_power_w(&self, cfg: &GpuConfig) -> f64 {
        self.p99_power_w(cfg) * self.avg_fraction_of_p99
    }
}

/// One Figure 11 data point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Figure11Point {
    /// VGG variant name.
    pub model: &'static str,
    /// Configuration name.
    pub config: &'static str,
    /// Training time normalized to Base.
    pub normalized_time: f64,
    /// P99 board power, W.
    pub p99_power_w: f64,
}

/// The full Figure 11 sweep: six VGG variants × four GPU configurations.
pub fn figure11_sweep() -> Vec<Figure11Point> {
    let power = GpuPowerModel::rtx2080ti();
    let mut out = Vec::new();
    for model in VggModel::suite() {
        for cfg in GpuConfig::catalog() {
            out.push(Figure11Point {
                model: model.name(),
                config: cfg.name(),
                normalized_time: model.normalized_time(&cfg),
                p99_power_w: power.p99_power_w(&cfg),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_values() {
        let rows = GpuConfig::catalog();
        let expect: [(&str, f64, f64, f64, f64, i32); 4] = [
            ("Base", 250.0, 1.35, 1.950, 6.8, 0),
            ("OCG1", 250.0, 1.55, 2.085, 6.8, 0),
            ("OCG2", 300.0, 1.55, 2.085, 8.1, 100),
            ("OCG3", 300.0, 1.55, 2.085, 8.3, 100),
        ];
        for (row, (name, p, base, turbo, mem, off)) in rows.iter().zip(expect) {
            assert_eq!(row.name(), name);
            assert_eq!(row.power_limit_w(), p);
            assert_eq!(row.base_clock(), Frequency::from_ghz(base));
            assert_eq!(row.turbo_clock(), Frequency::from_ghz(turbo));
            assert_eq!(row.memory(), Frequency::from_ghz(mem));
            assert_eq!(row.voltage_offset_mv(), off);
        }
    }

    #[test]
    fn execution_time_up_to_15_pct_faster() {
        // "execution time decreases by up to 15 %, proportional to the
        // frequency increase" (base clock +14.8 %).
        let best: f64 = VggModel::suite()
            .iter()
            .map(|m| 1.0 - m.normalized_time(&GpuConfig::ocg3()))
            .fold(0.0, f64::max);
        assert!((0.12..=0.16).contains(&best), "best {best:.3}");
    }

    #[test]
    fn all_models_improve_under_every_overclock() {
        for m in VggModel::suite() {
            for cfg in [GpuConfig::ocg1(), GpuConfig::ocg2(), GpuConfig::ocg3()] {
                assert!(
                    m.normalized_time(&cfg) < 1.0,
                    "{} under {}",
                    m.name(),
                    cfg.name()
                );
            }
        }
    }

    #[test]
    fn vgg16b_ignores_memory_overclocking() {
        let m = VggModel::by_name("VGG16B").unwrap();
        let ocg1 = m.normalized_time(&GpuConfig::ocg1());
        let ocg2 = m.normalized_time(&GpuConfig::ocg2());
        let ocg3 = m.normalized_time(&GpuConfig::ocg3());
        // OCG2 offers only marginal improvement over OCG1...
        assert!(ocg1 - ocg2 < 0.005, "ocg2 gain {}", ocg1 - ocg2);
        // ...and OCG3 adds essentially nothing over OCG2.
        assert!(ocg2 - ocg3 < 0.001, "ocg3 gain {}", ocg2 - ocg3);
    }

    #[test]
    fn non_batch_models_do_benefit_from_memory() {
        let m = VggModel::by_name("VGG11").unwrap();
        let gain = m.normalized_time(&GpuConfig::ocg1()) - m.normalized_time(&GpuConfig::ocg2());
        assert!(gain > 0.02, "VGG11 memory gain {gain}");
    }

    #[test]
    fn p99_power_193_to_231_w() {
        let p = GpuPowerModel::rtx2080ti();
        let base = p.p99_power_w(&GpuConfig::base());
        let ocg3 = p.p99_power_w(&GpuConfig::ocg3());
        assert!((base - 193.0).abs() < 3.0, "base {base}");
        assert!((ocg3 - 231.0).abs() < 3.0, "ocg3 {ocg3}");
        assert!((ocg3 / base - 1.19).abs() < 0.02);
    }

    #[test]
    fn ocg2_to_ocg3_power_step_without_perf() {
        // The paper: +9.5 % P99 power between OCG1 and OCG3 for little
        // to no improvement on VGG16B. (OCG1 is at the 250 W limit;
        // OCG2/OCG3 raise it to 300 W.)
        let p = GpuPowerModel::rtx2080ti();
        let step = p.p99_power_w(&GpuConfig::ocg3()) / p.p99_power_w(&GpuConfig::ocg1());
        assert!(step > 1.05, "power step {step}");
    }

    #[test]
    fn sweep_shape() {
        let sweep = figure11_sweep();
        assert_eq!(sweep.len(), 6 * 4);
        for p in sweep.iter().filter(|p| p.config == "Base") {
            assert!((p.normalized_time - 1.0).abs() < 1e-12);
        }
    }
}
