//! Mixed batch + latency-sensitive oversubscription (Table X,
//! Figure 13).
//!
//! Three scenarios pack 20 vcores of mixed VMs onto 16 pcores (20 %
//! oversubscription) and compare configuration B2 against OC3, each
//! normalized to a dedicated 20-pcore B2 baseline. The contention model
//! has three effects, each tied to a physical mechanism:
//!
//! 1. **CPU time-sharing** — when aggregate core demand exceeds the
//!    (frequency-scaled) pcore supply, everything dilates by the excess
//!    `F = demand/supply`; latency-sensitive apps dilate as `F^2.5`
//!    (queueing amplifies contention at the tail) while batch apps
//!    dilate linearly. Latency-sensitive demand shrinks when clocks rise
//!    (fixed request rate, shorter busy time); batch demand is
//!    work-conserving and does not.
//! 2. **Cache/bandwidth crosstalk between co-located batch VMs** —
//!    time-multiplexing more vcores than pcores forces cache refills
//!    that frequency cannot hide. The penalty scales with the victim's
//!    uncore+memory sensitivity and the cache pressure of *other batch*
//!    VMs, and vanishes when vcores fit in pcores (so the dedicated
//!    baseline is clean). This is what keeps TeraSort from improving in
//!    Scenario 1, where a second TeraSort thrashes it.
//! 3. **Component speedups** — the same per-app frequency response as
//!    Figure 9.

use crate::apps::AppProfile;
use crate::configs::CpuConfig;
use crate::perfmodel::time_ratio;
use serde::Serialize;

/// Tail-amplification exponent for latency-sensitive apps under CPU
/// contention.
const GAMMA_LS: f64 = 2.5;
/// Cache-crosstalk coefficient between co-located batch VMs.
const CACHE_CROSSTALK: f64 = 1.4;

/// Steady-state core demand (busy pcores) of one VM of `app` at B2.
fn cpu_demand_b2(app: &AppProfile) -> f64 {
    let util = match app.name() {
        "SQL" => 0.75,
        "SPECJBB" => 0.825,
        "BI" => 0.875,
        "TeraSort" => 0.925,
        _ => 0.80,
    };
    util * app.cores() as f64
}

/// One VM entry in an oversubscription scenario.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct VmEntry {
    /// The application running in the VM.
    pub app: AppProfile,
    /// How many identical VMs of this application the scenario runs.
    pub count: u32,
}

/// A Table X oversubscription scenario.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Scenario {
    name: &'static str,
    entries: Vec<VmEntry>,
    pcores: u32,
}

impl Scenario {
    /// Scenario 1: 1×SQL, 1×BI, 1×SPECJBB, 2×TeraSort on 16 pcores.
    pub fn scenario1() -> Self {
        Scenario {
            name: "Scenario 1",
            entries: vec![
                VmEntry {
                    app: AppProfile::sql(),
                    count: 1,
                },
                VmEntry {
                    app: AppProfile::bi(),
                    count: 1,
                },
                VmEntry {
                    app: AppProfile::specjbb(),
                    count: 1,
                },
                VmEntry {
                    app: AppProfile::terasort(),
                    count: 2,
                },
            ],
            pcores: 16,
        }
    }

    /// Scenario 2: 1×SQL, 1×BI, 2×SPECJBB, 1×TeraSort on 16 pcores.
    pub fn scenario2() -> Self {
        Scenario {
            name: "Scenario 2",
            entries: vec![
                VmEntry {
                    app: AppProfile::sql(),
                    count: 1,
                },
                VmEntry {
                    app: AppProfile::bi(),
                    count: 1,
                },
                VmEntry {
                    app: AppProfile::specjbb(),
                    count: 2,
                },
                VmEntry {
                    app: AppProfile::terasort(),
                    count: 1,
                },
            ],
            pcores: 16,
        }
    }

    /// Scenario 3: 2×SQL, 1×BI, 1×SPECJBB, 1×TeraSort on 16 pcores.
    pub fn scenario3() -> Self {
        Scenario {
            name: "Scenario 3",
            entries: vec![
                VmEntry {
                    app: AppProfile::sql(),
                    count: 2,
                },
                VmEntry {
                    app: AppProfile::bi(),
                    count: 1,
                },
                VmEntry {
                    app: AppProfile::specjbb(),
                    count: 1,
                },
                VmEntry {
                    app: AppProfile::terasort(),
                    count: 1,
                },
            ],
            pcores: 16,
        }
    }

    /// All three Table X scenarios.
    pub fn table10() -> Vec<Scenario> {
        vec![Self::scenario1(), Self::scenario2(), Self::scenario3()]
    }

    /// The scenario label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The VM entries.
    pub fn entries(&self) -> &[VmEntry] {
        &self.entries
    }

    /// The physical cores assigned.
    pub fn pcores(&self) -> u32 {
        self.pcores
    }

    /// Total vcores requested by all VMs (20 in every Table X scenario).
    pub fn total_vcores(&self) -> u32 {
        self.entries.iter().map(|e| e.app.cores() * e.count).sum()
    }

    /// The oversubscription ratio `vcores/pcores`.
    pub fn oversubscription(&self) -> f64 {
        self.total_vcores() as f64 / self.pcores as f64
    }

    /// Evaluates the scenario under `cfg`: returns, per VM entry, the
    /// percentage improvement of the app's metric versus the dedicated
    /// 20-pcore B2 baseline (negative = degradation).
    pub fn evaluate(&self, cfg: &CpuConfig) -> Vec<ScenarioResult> {
        let b2 = CpuConfig::b2();
        let supply = self.pcores as f64 * cfg.core_ratio_to(&b2);
        let oversubscribed = self.total_vcores() > self.pcores;

        // Aggregate CPU demand: LS demand shrinks with per-app speedup,
        // batch demand is work-conserving.
        let mut demand = 0.0;
        for e in &self.entries {
            let d = cpu_demand_b2(&e.app) * e.count as f64;
            demand += if e.app.is_latency_sensitive() {
                d * time_ratio(&e.app, cfg, &b2)
            } else {
                d
            };
        }
        let f = (demand / supply).max(1.0);

        self.entries
            .iter()
            .map(|e| {
                let gamma = if e.app.is_latency_sensitive() {
                    GAMMA_LS
                } else {
                    1.0
                };
                let contention = f.powf(gamma);
                let crosstalk = if oversubscribed && !e.app.is_latency_sensitive() {
                    let sens = |a: &AppProfile| a.bottleneck().llc + a.bottleneck().memory;
                    // Cache pressure from the *other* batch VMs.
                    let pressure: f64 = self
                        .entries
                        .iter()
                        .flat_map(|other| (0..other.count).map(move |_| other))
                        .filter(|other| !other.app.is_latency_sensitive())
                        .map(|other| sens(&other.app) * other.app.cores() as f64)
                        .sum::<f64>()
                        - sens(&e.app) * e.app.cores() as f64; // exclude self once
                    let pressure = pressure.max(0.0) / self.pcores as f64;
                    1.0 + CACHE_CROSSTALK * sens(&e.app) * pressure
                } else {
                    1.0
                };
                let t = time_ratio(&e.app, cfg, &b2) * contention * crosstalk;
                ScenarioResult {
                    scenario: self.name,
                    app: e.app.name(),
                    count: e.count,
                    config: cfg.name(),
                    improvement_pct: (1.0 - t) * 100.0,
                }
            })
            .collect()
    }
}

/// The outcome for one application in one scenario/configuration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioResult {
    /// Scenario label.
    pub scenario: &'static str,
    /// Application name.
    pub app: &'static str,
    /// Number of VMs of this application.
    pub count: u32,
    /// Configuration label.
    pub config: &'static str,
    /// Metric improvement versus the dedicated 20-pcore B2 baseline,
    /// percent (negative = degradation).
    pub improvement_pct: f64,
}

/// The full Figure 13 sweep: all three scenarios under B2 and OC3.
pub fn figure13_sweep() -> Vec<ScenarioResult> {
    let mut out = Vec::new();
    for s in Scenario::table10() {
        out.extend(s.evaluate(&CpuConfig::b2()));
        out.extend(s.evaluate(&CpuConfig::oc3()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table10_shape() {
        for s in Scenario::table10() {
            assert_eq!(s.total_vcores(), 20, "{}", s.name());
            assert_eq!(s.pcores(), 16);
            assert!((s.oversubscription() - 1.25).abs() < 1e-12);
        }
        assert_eq!(
            Scenario::scenario1()
                .entries()
                .iter()
                .map(|e| e.count)
                .sum::<u32>(),
            5
        );
    }

    #[test]
    fn b2_oversubscription_degrades_everything() {
        for s in Scenario::table10() {
            for r in s.evaluate(&CpuConfig::b2()) {
                assert!(
                    r.improvement_pct < 0.0,
                    "{} {} should degrade: {:.1}%",
                    r.scenario,
                    r.app,
                    r.improvement_pct
                );
            }
        }
    }

    #[test]
    fn latency_sensitive_apps_suffer_most_under_b2() {
        for s in Scenario::table10() {
            let results = s.evaluate(&CpuConfig::b2());
            let worst_ls = results
                .iter()
                .filter(|r| r.app == "SQL" || r.app == "SPECJBB")
                .map(|r| r.improvement_pct)
                .fold(f64::INFINITY, f64::min);
            for r in results
                .iter()
                .filter(|r| r.app == "BI" || r.app == "TeraSort")
            {
                assert!(
                    r.improvement_pct > worst_ls,
                    "{}: batch {} ({:.1}%) should degrade less than worst LS ({:.1}%)",
                    r.scenario,
                    r.app,
                    r.improvement_pct,
                    worst_ls
                );
            }
        }
    }

    #[test]
    fn oc3_improves_all_but_terasort_scenario1() {
        for s in Scenario::table10() {
            for r in s.evaluate(&CpuConfig::oc3()) {
                if r.scenario == "Scenario 1" && r.app == "TeraSort" {
                    assert!(
                        r.improvement_pct < 6.0,
                        "TeraSort S1 should stay below 6%: {:.1}%",
                        r.improvement_pct
                    );
                    assert!(r.improvement_pct > -3.0, "but not collapse");
                } else {
                    assert!(
                        r.improvement_pct >= 6.0,
                        "{} {} should improve ≥ 6%: {:.1}%",
                        r.scenario,
                        r.app,
                        r.improvement_pct
                    );
                }
            }
        }
    }

    #[test]
    fn oc3_improvements_peak_near_17_pct() {
        let best = figure13_sweep()
            .into_iter()
            .filter(|r| r.config == "OC3")
            .map(|r| r.improvement_pct)
            .fold(0.0, f64::max);
        assert!(
            (13.0..=18.0).contains(&best),
            "best OC3 improvement {best:.1}%"
        );
    }

    #[test]
    fn sweep_covers_both_configs() {
        let sweep = figure13_sweep();
        // 3 scenarios × 4 app entries × 2 configs.
        assert_eq!(sweep.len(), 3 * 4 * 2);
        assert!(sweep.iter().any(|r| r.config == "B2"));
        assert!(sweep.iter().any(|r| r.config == "OC3"));
    }

    #[test]
    fn dedicated_allocation_has_no_crosstalk() {
        // A scenario that fits in its pcores shows pure frequency response.
        let s = Scenario {
            name: "fits",
            entries: vec![VmEntry {
                app: AppProfile::terasort(),
                count: 2,
            }],
            pcores: 16,
        };
        let r = s.evaluate(&CpuConfig::oc3());
        let expected = (1.0
            - time_ratio(&AppProfile::terasort(), &CpuConfig::oc3(), &CpuConfig::b2()))
            * 100.0;
        assert!((r[0].improvement_pct - expected).abs() < 1e-9);
    }
}
