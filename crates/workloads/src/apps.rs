//! The application suite of Table IX, with bottleneck profiles.
//!
//! Each application carries the paper's metadata (core count, origin,
//! metric of interest) plus a *bottleneck decomposition*: the shares of
//! its execution time that scale with the core clock, the uncore/LLC
//! clock, the memory clock, and a frequency-insensitive residue (I/O,
//! OS, network). The shares are calibrated so the Figure 9 overclocking
//! bars reproduce — see `perfmodel` for the resulting numbers.

use ic_scenario::{AppSpec, WorkloadCalibration};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The metric of interest for an application (Table IX's last column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// 95th-percentile latency; lower is better.
    P95Latency,
    /// 99th-percentile latency; lower is better.
    P99Latency,
    /// Wall-clock completion time in seconds; lower is better.
    Seconds,
    /// Operations per second; higher is better.
    OpsPerSec,
    /// Sustained bandwidth in MB/s; higher is better.
    MbPerSec,
}

impl Metric {
    /// Parses the scenario-file spelling of a metric (one of
    /// [`ic_scenario::METRICS`]).
    pub fn from_key(key: &str) -> Option<Metric> {
        match key {
            "p95_latency" => Some(Metric::P95Latency),
            "p99_latency" => Some(Metric::P99Latency),
            "seconds" => Some(Metric::Seconds),
            "ops_per_sec" => Some(Metric::OpsPerSec),
            "mb_per_sec" => Some(Metric::MbPerSec),
            _ => None,
        }
    }

    /// `true` when a smaller metric value is an improvement.
    pub fn lower_is_better(self) -> bool {
        matches!(
            self,
            Metric::P95Latency | Metric::P99Latency | Metric::Seconds
        )
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Metric::P95Latency => "P95 Lat",
            Metric::P99Latency => "P99 Lat",
            Metric::Seconds => "Seconds",
            Metric::OpsPerSec => "OPS/S",
            Metric::MbPerSec => "MB/S",
        };
        f.write_str(s)
    }
}

/// Where the application comes from (Table IX's "(I)"/"(P)" tags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Origin {
    /// Microsoft-internal workload.
    InHouse,
    /// Publicly available benchmark.
    Public,
}

/// How an application's execution time decomposes across frequency
/// domains. Shares must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bottleneck {
    /// Share scaling with the core clock.
    pub core: f64,
    /// Share scaling with the uncore/LLC clock.
    pub llc: f64,
    /// Share scaling with the memory clock.
    pub memory: f64,
    /// Frequency-insensitive share (I/O, network, OS).
    pub fixed: f64,
}

impl Bottleneck {
    /// Creates a decomposition.
    ///
    /// # Panics
    ///
    /// Panics if any share is negative or the shares do not sum to 1
    /// (±1e-6).
    pub fn new(core: f64, llc: f64, memory: f64, fixed: f64) -> Self {
        for s in [core, llc, memory, fixed] {
            assert!(s >= 0.0 && s.is_finite(), "negative share {s}");
        }
        let sum = core + llc + memory + fixed;
        assert!((sum - 1.0).abs() < 1e-6, "shares sum to {sum}, expected 1");
        Bottleneck {
            core,
            llc,
            memory,
            fixed,
        }
    }

    /// The stall fraction this profile implies for the Aperf/Pperf
    /// counters: the share of active cycles not scaling with the core
    /// clock (uncore + memory stalls), normalized to on-core time.
    pub fn stall_fraction(&self) -> f64 {
        let on_core = self.core + self.llc + self.memory;
        if on_core <= 0.0 {
            0.0
        } else {
            (self.llc + self.memory) / on_core
        }
    }
}

/// One Table IX application.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AppProfile {
    name: &'static str,
    cores: u32,
    origin: Origin,
    description: &'static str,
    metric: Metric,
    latency_sensitive: bool,
    bottleneck: Bottleneck,
    /// Peak memory-bandwidth demand at B2, GB/s — drives the
    /// shared-bandwidth contention model of Figure 13.
    mem_bw_gbps: f64,
}

impl AppProfile {
    /// Builds a profile from a scenario's Table IX entry.
    ///
    /// # Panics
    ///
    /// Panics if the metric key is unknown or the bottleneck shares do
    /// not sum to 1; a spec from a validated [`ic_scenario::Scenario`]
    /// never does.
    pub fn from_spec(spec: &AppSpec) -> Self {
        let metric = Metric::from_key(&spec.metric)
            .unwrap_or_else(|| panic!("unknown metric key {:?}", spec.metric));
        AppProfile {
            name: ic_scenario::intern(&spec.name),
            cores: spec.cores,
            origin: if spec.in_house {
                Origin::InHouse
            } else {
                Origin::Public
            },
            description: ic_scenario::intern(&spec.description),
            metric,
            latency_sensitive: spec.latency_sensitive,
            bottleneck: Bottleneck::new(
                spec.core_share,
                spec.llc_share,
                spec.memory_share,
                spec.fixed_share,
            ),
            mem_bw_gbps: spec.mem_bw_gbps,
        }
    }

    fn paper_app(name: &str) -> Self {
        Self::from_spec(
            WorkloadCalibration::paper()
                .app(name)
                .expect("paper catalog has the app"),
        )
    }

    /// BenchCraft standard OLTP — memory-bound SQL, P95 latency.
    pub fn sql() -> Self {
        Self::paper_app("SQL")
    }

    /// TensorFlow CPU model training — compute-bound with an effective
    /// prefetcher, so cache/memory overclocks barely help.
    pub fn training() -> Self {
        Self::paper_app("Training")
    }

    /// Distributed key-value store, P99 latency.
    pub fn key_value() -> Self {
        Self::paper_app("Key-Value")
    }

    /// Business intelligence — only core overclocking helps; anything
    /// else burns power for nothing (the paper's cautionary example).
    pub fn bi() -> Self {
        Self::paper_app("BI")
    }

    /// The M/G/k queueing application driving the auto-scaler study.
    pub fn client_server() -> Self {
        Self::paper_app("Client-Server")
    }

    /// Pmbench paging microbenchmark — LLC/paging path dominates.
    pub fn pmbench() -> Self {
        Self::paper_app("Pmbench")
    }

    /// Microsoft DiskSpd I/O benchmark — uncore-sensitive, core-light.
    pub fn diskspeed() -> Self {
        Self::paper_app("DiskSpeed")
    }

    /// SPECjbb 2000 — Java middleware throughput.
    pub fn specjbb() -> Self {
        Self::paper_app("SPECJBB")
    }

    /// Hadoop TeraSort — shuffle-heavy; cache and memory clocks matter
    /// more than the core clock.
    pub fn terasort() -> Self {
        Self::paper_app("TeraSort")
    }

    /// VGG CNN training on the GPU — see `gpu` for its dedicated model.
    pub fn vgg() -> Self {
        Self::paper_app("VGG")
    }

    /// STREAM memory bandwidth — see `stream` for its dedicated model.
    pub fn stream() -> Self {
        Self::paper_app("STREAM")
    }

    /// The Table IX suite of a workload calibration, in row order.
    pub fn catalog_from(cal: &WorkloadCalibration) -> Vec<AppProfile> {
        cal.apps.iter().map(AppProfile::from_spec).collect()
    }

    /// The full Table IX suite in row order.
    pub fn catalog() -> Vec<AppProfile> {
        Self::catalog_from(&WorkloadCalibration::paper())
    }

    /// The nine CPU applications (everything but VGG and STREAM), i.e.
    /// the Figure 9 suite.
    pub fn cpu_suite() -> Vec<AppProfile> {
        Self::catalog()
            .into_iter()
            .filter(|a| a.name != "VGG" && a.name != "STREAM")
            .collect()
    }

    /// Looks an application up by name (case-insensitive).
    pub fn by_name(name: &str) -> Option<AppProfile> {
        Self::catalog()
            .into_iter()
            .find(|a| a.name.eq_ignore_ascii_case(name))
    }

    /// The application name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The number of cores the application needs (Table IX).
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// In-house or public.
    pub fn origin(&self) -> Origin {
        self.origin
    }

    /// Table IX's description.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// The metric of interest.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The bottleneck decomposition.
    pub fn bottleneck(&self) -> Bottleneck {
        self.bottleneck
    }

    /// Peak memory-bandwidth demand at B2, GB/s.
    pub fn mem_bw_gbps(&self) -> f64 {
        self.mem_bw_gbps
    }

    /// `true` for latency-sensitive applications. Follows the paper's
    /// classification: the latency-metric apps plus SPECJBB, which
    /// Table X groups with SQL as latency-sensitive despite its
    /// throughput metric (interactive Java middleware).
    pub fn is_latency_sensitive(&self) -> bool {
        self.latency_sensitive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table9_inventory() {
        let apps = AppProfile::catalog();
        assert_eq!(apps.len(), 11);
        assert_eq!(
            apps.iter()
                .filter(|a| a.origin() == Origin::InHouse)
                .count(),
            5
        );
        assert_eq!(
            apps.iter().filter(|a| a.origin() == Origin::Public).count(),
            6
        );
    }

    #[test]
    fn table9_core_counts() {
        for (name, cores) in [
            ("SQL", 4),
            ("Training", 4),
            ("Key-Value", 8),
            ("BI", 4),
            ("Client-Server", 4),
            ("Pmbench", 2),
            ("DiskSpeed", 2),
            ("SPECJBB", 4),
            ("TeraSort", 4),
            ("VGG", 16),
            ("STREAM", 16),
        ] {
            assert_eq!(AppProfile::by_name(name).unwrap().cores(), cores, "{name}");
        }
    }

    #[test]
    fn metrics_match_table9() {
        assert_eq!(AppProfile::sql().metric(), Metric::P95Latency);
        assert_eq!(AppProfile::key_value().metric(), Metric::P99Latency);
        assert_eq!(AppProfile::diskspeed().metric(), Metric::OpsPerSec);
        assert_eq!(AppProfile::stream().metric(), Metric::MbPerSec);
        assert_eq!(AppProfile::terasort().metric(), Metric::Seconds);
    }

    #[test]
    fn all_bottlenecks_sum_to_one() {
        for app in AppProfile::catalog() {
            let b = app.bottleneck();
            assert!(
                (b.core + b.llc + b.memory + b.fixed - 1.0).abs() < 1e-9,
                "{}",
                app.name()
            );
        }
    }

    #[test]
    fn latency_sensitivity_classification() {
        assert!(AppProfile::sql().is_latency_sensitive());
        assert!(AppProfile::key_value().is_latency_sensitive());
        assert!(!AppProfile::terasort().is_latency_sensitive());
        assert!(!AppProfile::bi().is_latency_sensitive());
    }

    #[test]
    fn sql_is_the_most_memory_bound_cloud_app() {
        let sql_mem = AppProfile::sql().bottleneck().memory;
        for app in AppProfile::cpu_suite() {
            if app.name() != "SQL" && app.name() != "TeraSort" {
                assert!(app.bottleneck().memory < sql_mem, "{}", app.name());
            }
        }
    }

    #[test]
    fn stall_fraction_consistent_with_decomposition() {
        let b = Bottleneck::new(0.5, 0.2, 0.2, 0.1);
        assert!((b.stall_fraction() - 0.4 / 0.9).abs() < 1e-12);
        // Purely fixed workload has no on-core stalls by convention.
        assert_eq!(Bottleneck::new(0.0, 0.0, 0.0, 1.0).stall_fraction(), 0.0);
    }

    #[test]
    fn cpu_suite_excludes_gpu_and_stream() {
        let suite = AppProfile::cpu_suite();
        assert_eq!(suite.len(), 9);
        assert!(suite
            .iter()
            .all(|a| a.name() != "VGG" && a.name() != "STREAM"));
    }

    #[test]
    fn metric_direction() {
        assert!(Metric::P95Latency.lower_is_better());
        assert!(Metric::Seconds.lower_is_better());
        assert!(!Metric::OpsPerSec.lower_is_better());
        assert!(!Metric::MbPerSec.lower_is_better());
    }

    #[test]
    #[should_panic(expected = "shares sum to")]
    fn invalid_bottleneck_panics() {
        let _ = Bottleneck::new(0.5, 0.5, 0.5, 0.5);
    }
}
