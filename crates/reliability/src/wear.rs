//! Wear-out credit accounting.
//!
//! The paper's lifetime model assumes worst-case utilization, so
//! "moderately-utilized servers will accumulate lifetime credit. Such
//! servers can be overclocked beyond the 23 % frequency boost for added
//! performance, but the extent and duration of this additional
//! overclocking has to be balanced against the impact on lifetime"
//! (Section IV). [`WearTracker`] is the wear-out counter the paper says
//! it is pursuing with component manufacturers: it integrates consumed
//! lifetime fraction across operating epochs and answers "can I afford
//! this much overclocking for this long?"

use crate::lifetime::{CompositeLifetimeModel, OperatingConditions};
use serde::{Deserialize, Serialize};

/// Integrates consumed lifetime across operating epochs.
///
/// Wear is linear damage accumulation (Miner's rule): running for `t`
/// years at conditions with projected lifetime `L` consumes `t / L` of
/// the part's life.
///
/// # Example
///
/// ```
/// use ic_reliability::lifetime::{CompositeLifetimeModel, OperatingConditions};
/// use ic_reliability::wear::WearTracker;
///
/// let model = CompositeLifetimeModel::fitted_5nm();
/// let mut wear = WearTracker::new(5.0); // 5-year service target
/// // One year at the HFE-7000 nominal point consumes very little life.
/// let nominal = OperatingConditions::new(0.90, 51.0, 35.0);
/// wear.accrue(&model, &nominal, 1.0);
/// assert!(wear.consumed_fraction() < 0.1);
/// assert!(wear.credit_years(1.0) > 0.7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WearTracker {
    service_target_years: f64,
    consumed_fraction: f64,
    elapsed_years: f64,
}

impl WearTracker {
    /// Creates a tracker for a part with the given service-life target
    /// (the paper decommissions servers after ~5 years).
    ///
    /// # Panics
    ///
    /// Panics if `service_target_years` is not positive.
    pub fn new(service_target_years: f64) -> Self {
        assert!(
            service_target_years > 0.0 && service_target_years.is_finite(),
            "invalid service target {service_target_years}"
        );
        WearTracker {
            service_target_years,
            consumed_fraction: 0.0,
            elapsed_years: 0.0,
        }
    }

    /// Records `duration_years` of operation at `cond` with worst-case
    /// utilization.
    ///
    /// # Panics
    ///
    /// Panics if `duration_years` is negative or non-finite.
    pub fn accrue(
        &mut self,
        model: &CompositeLifetimeModel,
        cond: &OperatingConditions,
        duration_years: f64,
    ) {
        self.accrue_with_utilization(model, cond, duration_years, 1.0);
    }

    /// Records operation at fractional utilization: stress scales with
    /// the share of time the part spends at the peak operating point
    /// versus idle (where wear is negligible). `utilization` is clamped
    /// to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `duration_years` is negative or non-finite.
    pub fn accrue_with_utilization(
        &mut self,
        model: &CompositeLifetimeModel,
        cond: &OperatingConditions,
        duration_years: f64,
        utilization: f64,
    ) {
        assert!(
            duration_years.is_finite() && duration_years >= 0.0,
            "invalid duration {duration_years}"
        );
        let u = utilization.clamp(0.0, 1.0);
        self.consumed_fraction += duration_years * u / model.lifetime_years(cond);
        self.elapsed_years += duration_years;
    }

    /// The fraction of the part's life consumed so far (may exceed 1 if
    /// the part is run past exhaustion).
    pub fn consumed_fraction(&self) -> f64 {
        self.consumed_fraction
    }

    /// Calendar years of operation recorded.
    pub fn elapsed_years(&self) -> f64 {
        self.elapsed_years
    }

    /// The service-life target.
    pub fn service_target_years(&self) -> f64 {
        self.service_target_years
    }

    /// Lifetime credit in *budget years*: how far the part is ahead of
    /// its nominal wear schedule after `elapsed` years. A part on
    /// schedule consumes `elapsed / target` of its life; consuming less
    /// banks credit that can be spent on overclocking.
    pub fn credit_years(&self, elapsed_years: f64) -> f64 {
        (elapsed_years / self.service_target_years - self.consumed_fraction)
            * self.service_target_years
    }

    /// Whether running `duration_years` at `cond` would still let the
    /// part reach its service target, assuming the rest of its life runs
    /// at `rest_cond`.
    pub fn can_afford(
        &self,
        model: &CompositeLifetimeModel,
        cond: &OperatingConditions,
        duration_years: f64,
        rest_cond: &OperatingConditions,
    ) -> bool {
        let spent = self.consumed_fraction + duration_years / model.lifetime_years(cond);
        let remaining_time =
            (self.service_target_years - self.elapsed_years - duration_years).max(0.0);
        let rest = remaining_time / model.lifetime_years(rest_cond);
        spent + rest <= 1.0
    }

    /// The remaining years at `cond` before the part's life is fully
    /// consumed.
    pub fn remaining_years_at(
        &self,
        model: &CompositeLifetimeModel,
        cond: &OperatingConditions,
    ) -> f64 {
        ((1.0 - self.consumed_fraction) * model.lifetime_years(cond)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CompositeLifetimeModel {
        CompositeLifetimeModel::fitted_5nm()
    }
    fn hfe_nominal() -> OperatingConditions {
        OperatingConditions::new(0.90, 51.0, 35.0)
    }
    fn hfe_oc() -> OperatingConditions {
        OperatingConditions::new(0.98, 60.0, 35.0)
    }
    fn air_oc() -> OperatingConditions {
        OperatingConditions::new(0.98, 101.0, 20.0)
    }

    #[test]
    fn continuous_hfe_overclocking_exactly_spends_the_5_year_budget() {
        // Table V: HFE-7000 overclocked lifetime ≈ the 5-year target, so
        // running overclocked for the whole service life is affordable.
        let m = model();
        let mut wear = WearTracker::new(5.0);
        wear.accrue(&m, &hfe_oc(), 5.0);
        assert!((wear.consumed_fraction() - 1.0).abs() < 0.15);
    }

    #[test]
    fn air_overclocking_burns_life_quickly() {
        let m = model();
        let mut wear = WearTracker::new(5.0);
        wear.accrue(&m, &air_oc(), 0.5);
        assert!(
            wear.consumed_fraction() > 0.5,
            "{}",
            wear.consumed_fraction()
        );
        assert!(!wear.can_afford(&m, &air_oc(), 1.0, &hfe_nominal()));
    }

    #[test]
    fn moderate_utilization_banks_credit() {
        let m = model();
        let mut wear = WearTracker::new(5.0);
        // Two years at 40 % utilization, nominal conditions.
        wear.accrue_with_utilization(&m, &hfe_nominal(), 2.0, 0.4);
        let credit = wear.credit_years(2.0);
        assert!(credit > 1.5, "credit = {credit}");
        // The credit affords a stretch of overclocking.
        assert!(wear.can_afford(&m, &hfe_oc(), 2.0, &hfe_nominal()));
    }

    #[test]
    fn remaining_years_scales_with_conditions() {
        let m = model();
        let wear = WearTracker::new(5.0);
        let nominal = wear.remaining_years_at(&m, &hfe_nominal());
        let oc = wear.remaining_years_at(&m, &hfe_oc());
        assert!(nominal > oc);
        assert!(oc > 4.0 && oc < 6.0);
    }

    #[test]
    fn consumed_fraction_accumulates_across_epochs() {
        let m = model();
        let mut wear = WearTracker::new(5.0);
        wear.accrue(&m, &hfe_nominal(), 1.0);
        let after_one = wear.consumed_fraction();
        wear.accrue(&m, &hfe_oc(), 1.0);
        assert!(wear.consumed_fraction() > after_one);
        assert_eq!(wear.elapsed_years(), 2.0);
    }

    #[test]
    fn zero_duration_is_a_noop() {
        let m = model();
        let mut wear = WearTracker::new(5.0);
        wear.accrue(&m, &air_oc(), 0.0);
        assert_eq!(wear.consumed_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid service target")]
    fn zero_target_panics() {
        let _ = WearTracker::new(0.0);
    }
}
