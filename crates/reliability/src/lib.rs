//! Component lifetime and computational-stability models for Section IV
//! of "Cost-Efficient Overclocking in Immersion-Cooled Datacenters"
//! (ISCA 2021).
//!
//! The paper evaluates overclocking's reliability cost with a proprietary
//! **5 nm composite processor lifetime model** obtained from a large
//! fabrication company. The model combines three wear-out processes
//! (Table IV) — gate-oxide breakdown, electromigration, and thermal
//! cycling — with exponential dependence on voltage and temperature, and
//! is exposed in the paper only through the six projected-lifetime rows
//! of Table V. This crate implements a composite model with the same
//! mechanism structure, numerically fitted so all six Table V rows
//! reproduce:
//!
//! | Cooling | OC | Voltage | Tj max | ΔTj | Paper | This model |
//! |---|---|---|---|---|---|---|
//! | Air | no | 0.90 V | 85 °C | 20–85 | 5 years | 5.0 |
//! | Air | yes | 0.98 V | 101 °C | 20–101 | < 1 year | 0.7 |
//! | FC-3284 | no | 0.90 V | 66 °C | 50–65 | > 10 years | 13.8 |
//! | FC-3284 | yes | 0.98 V | 74 °C | 50–74 | ≈ 4 years | 4.0 |
//! | HFE-7000 | no | 0.90 V | 51 °C | 35–51 | > 10 years | 18.1 |
//! | HFE-7000 | yes | 0.98 V | 60 °C | 35–60 | 5 years | 5.0 |
//!
//! Modules:
//!
//! * [`mechanisms`] — the three failure mechanisms and their parameter
//!   dependencies (Table IV),
//! * [`lifetime`] — the composite model and the Table V conditions,
//! * [`wear`] — wear-out credit accounting for trading lifetime against
//!   extra overclocking,
//! * [`stability`] — the correctable-error / computational-stability
//!   model and monitor (Takeaway 3),
//! * [`hazard`] — hazard integration turning the rate models into
//!   event times for discrete-event fault injection (`ic-chaos`).
//!
//! # Example
//!
//! ```
//! use ic_reliability::lifetime::{CompositeLifetimeModel, OperatingConditions};
//!
//! let model = CompositeLifetimeModel::fitted_5nm();
//! let air_nominal = OperatingConditions::new(0.90, 85.0, 20.0);
//! let years = model.lifetime_years(&air_nominal);
//! assert!((years - 5.0).abs() < 0.3);
//! ```

pub mod fitting;
pub mod hazard;
pub mod lifetime;
pub mod mechanisms;
pub mod stability;
pub mod wear;

pub use hazard::HazardIntegrator;
pub use lifetime::{CompositeLifetimeModel, OperatingConditions};
pub use stability::StabilityModel;
pub use wear::WearTracker;
