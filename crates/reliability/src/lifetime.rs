//! The composite lifetime model and the Table V projections.
//!
//! Mechanisms fail in series, so failure rates add:
//! `1/L = Σ 1/L_i`. The fitted model reproduces every Table V row —
//! see the crate-level documentation for the full comparison.

pub use crate::mechanisms::OperatingConditions;
use crate::mechanisms::{Electromigration, FailureMechanism, GateOxideBreakdown, ThermalCycling};
use ic_scenario::ReliabilityCalibration;
use serde::{Deserialize, Serialize};

/// A composite (series-system) lifetime model.
///
/// # Example
///
/// ```
/// use ic_reliability::lifetime::{CompositeLifetimeModel, OperatingConditions};
///
/// let model = CompositeLifetimeModel::fitted_5nm();
/// // Overclocking in air destroys lifetime; in HFE-7000 it matches the
/// // air-cooled baseline (Table V).
/// let air_oc = model.lifetime_years(&OperatingConditions::new(0.98, 101.0, 20.0));
/// let hfe_oc = model.lifetime_years(&OperatingConditions::new(0.98, 60.0, 35.0));
/// assert!(air_oc < 1.0);
/// assert!((hfe_oc - 5.0).abs() < 1.0);
/// ```
#[derive(Debug)]
pub struct CompositeLifetimeModel {
    mechanisms: Vec<Box<dyn FailureMechanism>>,
}

/// One mechanism's contribution to the total failure rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateContribution {
    /// The mechanism name (Table IV row).
    pub mechanism: &'static str,
    /// Failure rate, 1/years.
    pub rate_per_year: f64,
    /// Share of the total rate, in `[0, 1]`.
    pub share: f64,
}

impl CompositeLifetimeModel {
    /// Builds the composite from a scenario's fit coefficients: gate-
    /// oxide breakdown + electromigration + thermal cycling.
    pub fn from_calibration(cal: &ReliabilityCalibration) -> Self {
        CompositeLifetimeModel {
            mechanisms: vec![
                Box::new(GateOxideBreakdown::from_spec(&cal.gate_oxide)),
                Box::new(Electromigration::from_spec(&cal.electromigration)),
                Box::new(ThermalCycling::from_spec(&cal.thermal_cycling)),
            ],
        }
    }

    /// The model fitted to the fab's 5 nm composite model as exposed by
    /// Table V: gate-oxide breakdown + electromigration + thermal
    /// cycling.
    pub fn fitted_5nm() -> Self {
        Self::from_calibration(&ReliabilityCalibration::paper())
    }

    /// Builds a composite from arbitrary mechanisms (primarily for
    /// testing and sensitivity studies; the fitted constructor is the
    /// calibrated model).
    ///
    /// # Panics
    ///
    /// Panics if `mechanisms` is empty.
    pub fn from_mechanisms(mechanisms: Vec<Box<dyn FailureMechanism>>) -> Self {
        assert!(!mechanisms.is_empty(), "need at least one mechanism");
        CompositeLifetimeModel { mechanisms }
    }

    /// Total failure rate at `cond`, 1/years.
    pub fn failure_rate_per_year(&self, cond: &OperatingConditions) -> f64 {
        self.mechanisms.iter().map(|m| m.rate_per_year(cond)).sum()
    }

    /// Projected lifetime at `cond`, years, assuming worst-case
    /// (continuous peak) utilization as the paper's model does.
    pub fn lifetime_years(&self, cond: &OperatingConditions) -> f64 {
        1.0 / self.failure_rate_per_year(cond)
    }

    /// Per-mechanism rate decomposition, in the order the mechanisms were
    /// registered.
    pub fn breakdown(&self, cond: &OperatingConditions) -> Vec<RateContribution> {
        let total = self.failure_rate_per_year(cond);
        self.mechanisms
            .iter()
            .map(|m| {
                let rate = m.rate_per_year(cond);
                RateContribution {
                    mechanism: m.name(),
                    rate_per_year: rate,
                    share: if total > 0.0 { rate / total } else { 0.0 },
                }
            })
            .collect()
    }

    /// Finds the highest peak junction temperature (°C, within
    /// `[tj_min, 149]`) at which the projected lifetime still reaches
    /// `target_years`, by bisection. Returns `None` if even `tj_min`
    /// cannot meet the target. This inverts the model the way the paper
    /// uses it: "we use the model to calculate the temperature, power,
    /// and voltage at which electronics maintain the same predicted
    /// lifetime".
    pub fn max_tj_for_lifetime(
        &self,
        voltage_v: f64,
        tj_min_c: f64,
        target_years: f64,
    ) -> Option<f64> {
        assert!(target_years > 0.0, "target lifetime must be positive");
        let life_at =
            |tj: f64| self.lifetime_years(&OperatingConditions::new(voltage_v, tj, tj_min_c));
        if life_at(tj_min_c) < target_years {
            return None;
        }
        let (mut lo, mut hi) = (tj_min_c, 149.0);
        if life_at(hi) >= target_years {
            return Some(hi);
        }
        for _ in 0..80 {
            let mid = (lo + hi) / 2.0;
            if life_at(mid) >= target_years {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }
}

/// One row of Table V: a named (cooling, overclocking) configuration and
/// its operating conditions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Cooling label ("Air cooling", "FC-3284", "HFE-7000").
    pub cooling: &'static str,
    /// Whether the row is overclocked.
    pub overclocked: bool,
    /// The operating conditions of the row.
    pub conditions: OperatingConditions,
    /// The paper's reported lifetime, years (10.0 encodes "> 10 years",
    /// 1.0 encodes "< 1 year").
    pub paper_years: f64,
}

/// The lifetime fit points of a reliability calibration, in table order.
pub fn table5_rows_from(cal: &ReliabilityCalibration) -> Vec<Table5Row> {
    cal.table5
        .iter()
        .map(|p| Table5Row {
            cooling: ic_scenario::intern(&p.cooling),
            overclocked: p.overclocked,
            conditions: OperatingConditions::new(p.voltage_v, p.tj_max_c, p.tj_min_c),
            paper_years: p.paper_years,
        })
        .collect()
}

/// The six Table V configurations with the paper's reported lifetimes.
pub fn table5_rows() -> Vec<Table5Row> {
    table5_rows_from(&ReliabilityCalibration::paper())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_all_rows_reproduce() {
        let model = CompositeLifetimeModel::fitted_5nm();
        for row in table5_rows() {
            let years = model.lifetime_years(&row.conditions);
            match (row.cooling, row.overclocked) {
                ("Air cooling", false) => assert!((years - 5.0).abs() < 0.3, "{years}"),
                ("Air cooling", true) => assert!(years < 1.0, "{years}"),
                ("FC-3284", false) => assert!(years > 10.0, "{years}"),
                ("FC-3284", true) => assert!((years - 4.0).abs() < 0.5, "{years}"),
                ("HFE-7000", false) => assert!(years > 10.0, "{years}"),
                ("HFE-7000", true) => assert!((years - 5.0).abs() < 0.5, "{years}"),
                other => panic!("unexpected row {other:?}"),
            }
        }
    }

    #[test]
    fn hfe_overclocked_matches_air_baseline() {
        // The paper's punchline: overclocking in HFE-7000 preserves the
        // 5-year air-cooled nominal lifetime.
        let model = CompositeLifetimeModel::fitted_5nm();
        let air_nominal = model.lifetime_years(&OperatingConditions::new(0.90, 85.0, 20.0));
        let hfe_oc = model.lifetime_years(&OperatingConditions::new(0.98, 60.0, 35.0));
        assert!((air_nominal - hfe_oc).abs() / air_nominal < 0.1);
    }

    #[test]
    fn lifetime_monotone_in_temperature() {
        let model = CompositeLifetimeModel::fitted_5nm();
        let mut last = f64::INFINITY;
        for tj in [50.0, 60.0, 70.0, 80.0, 90.0, 100.0] {
            let l = model.lifetime_years(&OperatingConditions::new(0.9, tj, 35.0));
            assert!(l < last, "lifetime should fall as Tj rises");
            last = l;
        }
    }

    #[test]
    fn lifetime_monotone_in_voltage() {
        let model = CompositeLifetimeModel::fitted_5nm();
        let mut last = f64::INFINITY;
        for v in [0.85, 0.90, 0.95, 1.0, 1.05] {
            let l = model.lifetime_years(&OperatingConditions::new(v, 70.0, 50.0));
            assert!(l < last, "lifetime should fall as V rises");
            last = l;
        }
    }

    #[test]
    fn breakdown_shares_sum_to_one() {
        let model = CompositeLifetimeModel::fitted_5nm();
        let b = model.breakdown(&OperatingConditions::new(0.98, 101.0, 20.0));
        assert_eq!(b.len(), 3);
        let total: f64 = b.iter().map(|c| c.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // At the air-overclocked point, thermal cycling dominates.
        let tc = b.iter().find(|c| c.mechanism == "Thermal cycling").unwrap();
        assert!(tc.share > 0.4, "tc share {}", tc.share);
    }

    #[test]
    fn cycling_negligible_in_immersion() {
        let model = CompositeLifetimeModel::fitted_5nm();
        let b = model.breakdown(&OperatingConditions::new(0.98, 74.0, 50.0));
        let tc = b.iter().find(|c| c.mechanism == "Thermal cycling").unwrap();
        assert!(tc.share < 0.01, "tc share {}", tc.share);
    }

    #[test]
    fn max_tj_inversion_is_consistent() {
        let model = CompositeLifetimeModel::fitted_5nm();
        let tj = model.max_tj_for_lifetime(0.98, 35.0, 5.0).unwrap();
        // Table V: 0.98 V with HFE-7000 swing keeps 5 years up to ~60 °C.
        assert!((tj - 60.0).abs() < 3.0, "tj = {tj}");
        let at = model.lifetime_years(&OperatingConditions::new(0.98, tj, 35.0));
        assert!((at - 5.0).abs() < 0.05);
    }

    #[test]
    fn max_tj_none_when_voltage_alone_kills_target() {
        let model = CompositeLifetimeModel::fitted_5nm();
        // At 1.4 V even a cold junction cannot reach 5 years.
        assert_eq!(model.max_tj_for_lifetime(1.4, 35.0, 5.0), None);
    }

    #[test]
    fn table5_rows_inventory() {
        let rows = table5_rows();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows.iter().filter(|r| r.overclocked).count(), 3);
    }
}
