//! Computational stability under overclocking (Section IV, Takeaway 3).
//!
//! Excessive overclocking induces bit flips through aggressive circuit
//! timing and voltage droops. The paper's six-month characterization:
//! zero correctable errors in small tank #1, 56 CPU cache correctable
//! errors in small tank #2 under *very aggressive* overclocking, no
//! silent errors, and ungraceful crashes only when voltage/frequency was
//! pushed excessively. Frequencies up to 23 % above all-core turbo were
//! fully stable. [`StabilityModel`] encodes that envelope;
//! [`StabilityMonitor`] implements the recommended mitigation of watching
//! the *rate of change* of correctable-error counters.

use serde::{Deserialize, Serialize};

/// The stability envelope of an overclockable part.
///
/// Overclock ratios are relative to all-core turbo (1.0 = turbo,
/// 1.23 = the paper's validated stable ceiling).
///
/// # Example
///
/// ```
/// use ic_reliability::stability::StabilityModel;
///
/// let m = StabilityModel::paper_characterization();
/// assert!(m.is_stable(1.23));
/// assert!(!m.is_stable(1.40));
/// // At the stable ceiling, expected correctable errors stay tiny.
/// assert!(m.expected_correctable_errors(1.23, 6.0) < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StabilityModel {
    stable_ceiling_ratio: f64,
    crash_ceiling_ratio: f64,
    /// Correctable errors per month at the stable ceiling.
    errors_per_month_at_ceiling: f64,
    /// e-folding of error rate per 1 % of overclock beyond the ceiling.
    error_growth_per_pct: f64,
}

impl StabilityModel {
    /// The envelope measured on the paper's two small tanks: stable to
    /// +23 %; beyond roughly +35 % the server crashes ungracefully.
    /// The error-rate scale is set so that six months of "very
    /// aggressive" overclocking (~+30 %) yields on the order of the 56
    /// correctable errors logged in small tank #2.
    pub fn paper_characterization() -> Self {
        StabilityModel {
            stable_ceiling_ratio: 1.23,
            crash_ceiling_ratio: 1.35,
            errors_per_month_at_ceiling: 0.05,
            error_growth_per_pct: 0.75,
        }
    }

    /// Builds a custom envelope.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= stable_ceiling < crash_ceiling` and rates are
    /// non-negative.
    pub fn new(
        stable_ceiling_ratio: f64,
        crash_ceiling_ratio: f64,
        errors_per_month_at_ceiling: f64,
        error_growth_per_pct: f64,
    ) -> Self {
        assert!(
            (1.0..crash_ceiling_ratio).contains(&stable_ceiling_ratio),
            "require 1 <= stable ceiling < crash ceiling"
        );
        assert!(errors_per_month_at_ceiling >= 0.0 && error_growth_per_pct >= 0.0);
        StabilityModel {
            stable_ceiling_ratio,
            crash_ceiling_ratio,
            errors_per_month_at_ceiling,
            error_growth_per_pct,
        }
    }

    /// The validated stable overclock ceiling (1.23 in the paper).
    pub fn stable_ceiling_ratio(&self) -> f64 {
        self.stable_ceiling_ratio
    }

    /// The ratio beyond which ungraceful crashes are expected.
    pub fn crash_ceiling_ratio(&self) -> f64 {
        self.crash_ceiling_ratio
    }

    /// `true` if the given overclock ratio is inside the validated
    /// stable envelope.
    pub fn is_stable(&self, oc_ratio: f64) -> bool {
        oc_ratio <= self.stable_ceiling_ratio
    }

    /// `true` if the ratio risks an ungraceful crash.
    pub fn crash_risk(&self, oc_ratio: f64) -> bool {
        oc_ratio > self.crash_ceiling_ratio
    }

    /// Expected correctable-error rate, errors/month, at an overclock
    /// ratio. Within the stable envelope the rate is essentially the
    /// background particle-strike rate; beyond it the rate grows
    /// exponentially with the excess.
    ///
    /// # Panics
    ///
    /// Panics if `oc_ratio < 1.0`.
    pub fn correctable_error_rate_per_month(&self, oc_ratio: f64) -> f64 {
        assert!(oc_ratio >= 1.0, "overclock ratio below 1: {oc_ratio}");
        let excess_pct = ((oc_ratio - self.stable_ceiling_ratio) * 100.0).max(0.0);
        self.errors_per_month_at_ceiling * (self.error_growth_per_pct * excess_pct).exp()
    }

    /// Expected correctable errors over `months` at a fixed ratio.
    pub fn expected_correctable_errors(&self, oc_ratio: f64, months: f64) -> f64 {
        assert!(months >= 0.0, "negative duration");
        self.correctable_error_rate_per_month(oc_ratio) * months
    }

    /// The highest ratio whose expected error rate stays at or below
    /// `max_errors_per_month` — the "maximum overclocking frequency to
    /// avoid computational instability" the paper is defining with
    /// manufacturers.
    pub fn max_ratio_for_error_budget(&self, max_errors_per_month: f64) -> f64 {
        assert!(max_errors_per_month > 0.0, "need a positive budget");
        if max_errors_per_month >= self.errors_per_month_at_ceiling {
            let headroom = if self.error_growth_per_pct > 0.0 {
                (max_errors_per_month / self.errors_per_month_at_ceiling).ln()
                    / self.error_growth_per_pct
                    / 100.0
            } else {
                f64::INFINITY
            };
            (self.stable_ceiling_ratio + headroom).min(self.crash_ceiling_ratio)
        } else {
            self.stable_ceiling_ratio
        }
    }
}

/// Watches a correctable-error counter and raises an alarm when its rate
/// of change exceeds a threshold — the paper's proposed safety mechanism
/// for balancing overclocking against stability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilityMonitor {
    threshold_per_month: f64,
    last_count: u64,
    last_time_months: f64,
    alarms: u32,
}

impl StabilityMonitor {
    /// Creates a monitor that alarms when the observed error rate
    /// exceeds `threshold_per_month`.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not positive.
    pub fn new(threshold_per_month: f64) -> Self {
        assert!(threshold_per_month > 0.0, "invalid threshold");
        StabilityMonitor {
            threshold_per_month,
            last_count: 0,
            last_time_months: 0.0,
            alarms: 0,
        }
    }

    /// Feeds a cumulative error-counter sample at `time_months`. Returns
    /// `true` if the rate since the previous sample exceeds the
    /// threshold (and the caller should back off the overclock).
    ///
    /// # Panics
    ///
    /// Panics if the counter or clock went backwards.
    pub fn observe(&mut self, count: u64, time_months: f64) -> bool {
        assert!(count >= self.last_count, "error counter went backwards");
        assert!(time_months >= self.last_time_months, "clock went backwards");
        let dt = time_months - self.last_time_months;
        let de = (count - self.last_count) as f64;
        self.last_count = count;
        self.last_time_months = time_months;
        if dt <= 0.0 {
            return false;
        }
        let rate = de / dt;
        if rate > self.threshold_per_month {
            self.alarms += 1;
            true
        } else {
            false
        }
    }

    /// How many times the monitor has alarmed.
    pub fn alarms(&self) -> u32 {
        self.alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_envelope_23_pct_stable() {
        let m = StabilityModel::paper_characterization();
        assert!(m.is_stable(1.0));
        assert!(m.is_stable(1.23));
        assert!(!m.is_stable(1.24));
        assert!(!m.crash_risk(1.30));
        assert!(m.crash_risk(1.40));
    }

    #[test]
    fn six_months_aggressive_oc_yields_tens_of_errors() {
        // Small tank #2 logged 56 correctable cache errors over 6 months
        // of very aggressive overclocking (~+30 %).
        let m = StabilityModel::paper_characterization();
        let errors = m.expected_correctable_errors(1.30, 6.0);
        assert!(
            (10.0..200.0).contains(&errors),
            "expected tens of errors, got {errors}"
        );
    }

    #[test]
    fn six_months_at_stable_ceiling_is_clean() {
        // Small tank #1 logged zero errors: within the envelope the
        // expected count stays below one.
        let m = StabilityModel::paper_characterization();
        assert!(m.expected_correctable_errors(1.23, 6.0) < 1.0);
    }

    #[test]
    fn error_rate_monotone_in_ratio() {
        let m = StabilityModel::paper_characterization();
        let mut last = 0.0;
        for r in [1.0, 1.1, 1.23, 1.28, 1.33] {
            let rate = m.correctable_error_rate_per_month(r);
            assert!(rate >= last);
            last = rate;
        }
    }

    #[test]
    fn max_ratio_for_budget_inverts_rate() {
        let m = StabilityModel::paper_characterization();
        let r = m.max_ratio_for_error_budget(1.0);
        assert!(r > 1.23 && r <= 1.35);
        let rate = m.correctable_error_rate_per_month(r);
        assert!(rate <= 1.0 + 1e-9);
        // A tiny budget pins the ratio to the stable ceiling.
        assert_eq!(m.max_ratio_for_error_budget(1e-6), 1.23);
    }

    #[test]
    fn monitor_alarms_on_rate_spike() {
        let mut mon = StabilityMonitor::new(10.0);
        assert!(!mon.observe(1, 1.0)); // 1 error/month
        assert!(mon.observe(31, 2.0)); // 30 errors/month
        assert!(!mon.observe(32, 3.0));
        assert_eq!(mon.alarms(), 1);
    }

    #[test]
    fn monitor_handles_same_timestamp() {
        let mut mon = StabilityMonitor::new(10.0);
        assert!(!mon.observe(5, 1.0));
        // Identical timestamp: no interval, so no rate and no alarm.
        assert!(!mon.observe(5, 1.0));
    }

    #[test]
    #[should_panic(expected = "error counter went backwards")]
    fn monitor_rejects_decreasing_counter() {
        let mut mon = StabilityMonitor::new(1.0);
        mon.observe(10, 1.0);
        mon.observe(5, 2.0);
    }
}
