//! Fitting composite lifetime models to observed data.
//!
//! The paper's fab partner "validated the model through accelerated
//! testing ... as a function of workload, voltage, current, temperature,
//! and thermal stress". This module provides that workflow for the
//! open reproduction: given observed `(conditions, lifetime)` points —
//! from accelerated tests or from a published table like Table V — fit
//! the pre-factors of the three mechanisms by coordinate descent on
//! log-lifetime squared error, keeping the physically-grounded
//! activation energies and exponents fixed.

use crate::lifetime::{CompositeLifetimeModel, OperatingConditions};
use crate::mechanisms::{Electromigration, GateOxideBreakdown, ThermalCycling};
use serde::{Deserialize, Serialize};

/// One observation: a part ran at `conditions` and lasted
/// `lifetime_years`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeObservation {
    /// The operating point.
    pub conditions: OperatingConditions,
    /// The observed (or projected) lifetime, years.
    pub lifetime_years: f64,
}

/// The three mechanism pre-factors being fitted (log-space).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedPrefactors {
    /// Gate-oxide breakdown pre-factor, 1/years.
    pub tddb_a: f64,
    /// Electromigration pre-factor, 1/years.
    pub em_a: f64,
    /// Thermal-cycling pre-factor, 1/years.
    pub tc_b: f64,
    /// Final root-mean-square error of log-lifetime.
    pub rms_log_error: f64,
}

impl FittedPrefactors {
    /// Builds the composite model with these pre-factors (shape
    /// parameters from the shipped fit).
    pub fn into_model(self) -> CompositeLifetimeModel {
        let reference = GateOxideBreakdown::fitted();
        let em_ref = Electromigration::fitted();
        let tc_ref = ThermalCycling::fitted();
        CompositeLifetimeModel::from_mechanisms(vec![
            Box::new(GateOxideBreakdown {
                a: self.tddb_a,
                gamma: reference.gamma,
                ea_ev: reference.ea_ev,
            }),
            Box::new(Electromigration {
                a: self.em_a,
                ea_ev: em_ref.ea_ev,
            }),
            Box::new(ThermalCycling {
                b: self.tc_b,
                q: tc_ref.q,
            }),
        ])
    }
}

/// Fits the three pre-factors to observations by coordinate descent in
/// log-space. Shape parameters (γ, activation energies, the
/// Coffin–Manson exponent) stay at their physically-fitted values.
///
/// # Panics
///
/// Panics if `observations` is empty or any observed lifetime is not
/// positive.
pub fn fit_prefactors(observations: &[LifetimeObservation]) -> FittedPrefactors {
    assert!(!observations.is_empty(), "need observations to fit");
    assert!(
        observations.iter().all(|o| o.lifetime_years > 0.0),
        "lifetimes must be positive"
    );

    let tddb = GateOxideBreakdown::fitted();
    let em = Electromigration::fitted();
    let tc = ThermalCycling::fitted();

    // Parameters in natural-log space, started from the shipped fit.
    let mut log_params = [tddb.a.ln(), em.a.ln(), tc.b.ln()];

    let loss = |p: &[f64; 3]| -> f64 {
        let model = CompositeLifetimeModel::from_mechanisms(vec![
            Box::new(GateOxideBreakdown {
                a: p[0].exp(),
                gamma: tddb.gamma,
                ea_ev: tddb.ea_ev,
            }),
            Box::new(Electromigration {
                a: p[1].exp(),
                ea_ev: em.ea_ev,
            }),
            Box::new(ThermalCycling {
                b: p[2].exp(),
                q: tc.q,
            }),
        ]);
        observations
            .iter()
            .map(|o| {
                let predicted = model.lifetime_years(&o.conditions);
                (predicted.ln() - o.lifetime_years.ln()).powi(2)
            })
            .sum::<f64>()
            / observations.len() as f64
    };

    // Coordinate descent with shrinking step.
    let mut step = 1.0;
    let mut current = loss(&log_params);
    for _ in 0..200 {
        let mut improved = false;
        for i in 0..3 {
            for dir in [1.0, -1.0] {
                let mut trial = log_params;
                trial[i] += dir * step;
                let l = loss(&trial);
                if l < current {
                    log_params = trial;
                    current = l;
                    improved = true;
                }
            }
        }
        if !improved {
            step *= 0.5;
            if step < 1e-6 {
                break;
            }
        }
    }

    FittedPrefactors {
        tddb_a: log_params[0].exp(),
        em_a: log_params[1].exp(),
        tc_b: log_params[2].exp(),
        rms_log_error: current.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::table5_rows;

    fn table5_observations() -> Vec<LifetimeObservation> {
        // Use the shipped model's own predictions as "observations" —
        // the fit must recover the pre-factors.
        let model = CompositeLifetimeModel::fitted_5nm();
        table5_rows()
            .into_iter()
            .map(|r| LifetimeObservation {
                conditions: r.conditions,
                lifetime_years: model.lifetime_years(&r.conditions),
            })
            .collect()
    }

    #[test]
    fn refitting_own_predictions_is_a_fixed_point() {
        let fit = fit_prefactors(&table5_observations());
        assert!(fit.rms_log_error < 1e-3, "rms {}", fit.rms_log_error);
        let shipped = GateOxideBreakdown::fitted();
        assert!(
            (fit.tddb_a.ln() - shipped.a.ln()).abs() < 0.1,
            "tddb drifted: {} vs {}",
            fit.tddb_a,
            shipped.a
        );
    }

    #[test]
    fn fit_recovers_from_perturbed_start_against_noisy_data() {
        // Multiply the "observed" lifetimes by ±10 % noise: the fit
        // should still land close in log space.
        let mut obs = table5_observations();
        for (i, o) in obs.iter_mut().enumerate() {
            o.lifetime_years *= if i % 2 == 0 { 1.1 } else { 0.9 };
        }
        let fit = fit_prefactors(&obs);
        assert!(fit.rms_log_error < 0.15, "rms {}", fit.rms_log_error);
        let model = fit.into_model();
        // Table V shape is preserved.
        let air_oc = model.lifetime_years(&OperatingConditions::new(0.98, 101.0, 20.0));
        let hfe_oc = model.lifetime_years(&OperatingConditions::new(0.98, 60.0, 35.0));
        assert!(air_oc < 1.5);
        assert!((hfe_oc - 5.0).abs() < 1.5);
    }

    #[test]
    fn fitted_model_predicts_observations() {
        let obs = table5_observations();
        let model = fit_prefactors(&obs).into_model();
        for o in &obs {
            let p = model.lifetime_years(&o.conditions);
            assert!(
                (p.ln() - o.lifetime_years.ln()).abs() < 0.05,
                "{p} vs {}",
                o.lifetime_years
            );
        }
    }

    #[test]
    #[should_panic(expected = "need observations")]
    fn empty_observations_panic() {
        let _ = fit_prefactors(&[]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_lifetime_panics() {
        let _ = fit_prefactors(&[LifetimeObservation {
            conditions: OperatingConditions::new(0.9, 80.0, 20.0),
            lifetime_years: 0.0,
        }]);
    }
}
