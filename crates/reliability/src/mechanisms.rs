//! The three wear-out mechanisms of the paper's Table IV.
//!
//! | Failure mode | T | ΔT | V |
//! |---|---|---|---|
//! | Gate-oxide breakdown | ✓ | ✗ | ✓ |
//! | Electromigration | ✓ | ✗ | ✗ |
//! | Thermal cycling | ✗ | ✓ | ✗ |
//!
//! Each mechanism contributes a failure *rate* (1/years); the composite
//! model in [`crate::lifetime`] sums rates (series system). Parameter
//! values are fitted to Table V — see the crate-level table.

use ic_scenario::{
    ElectromigrationSpec, GateOxideSpec, ReliabilityCalibration, ThermalCyclingSpec,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Boltzmann constant in eV/K.
pub const KB_EV_PER_K: f64 = 8.617e-5;

/// The operating point a mechanism is evaluated at.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingConditions {
    voltage_v: f64,
    tj_max_c: f64,
    tj_min_c: f64,
}

impl OperatingConditions {
    /// Creates an operating point: rail voltage, peak junction
    /// temperature, and the minimum junction temperature the part cycles
    /// down to (ambient for air, fluid boiling point for 2PIC).
    ///
    /// # Panics
    ///
    /// Panics if the voltage is outside (0, 2] V, temperatures are
    /// outside (−50, 150) °C, or `tj_min_c > tj_max_c`.
    pub fn new(voltage_v: f64, tj_max_c: f64, tj_min_c: f64) -> Self {
        assert!(
            voltage_v > 0.0 && voltage_v <= 2.0,
            "implausible core voltage {voltage_v} V"
        );
        for t in [tj_max_c, tj_min_c] {
            assert!(
                t.is_finite() && (-50.0..150.0).contains(&t),
                "implausible temperature {t} °C"
            );
        }
        assert!(tj_min_c <= tj_max_c, "tj_min above tj_max");
        OperatingConditions {
            voltage_v,
            tj_max_c,
            tj_min_c,
        }
    }

    /// The rail voltage in volts.
    pub fn voltage_v(&self) -> f64 {
        self.voltage_v
    }

    /// Peak junction temperature, °C.
    pub fn tj_max_c(&self) -> f64 {
        self.tj_max_c
    }

    /// Minimum junction temperature, °C.
    pub fn tj_min_c(&self) -> f64 {
        self.tj_min_c
    }

    /// Peak junction temperature in Kelvin.
    pub fn tj_max_k(&self) -> f64 {
        self.tj_max_c + 273.15
    }

    /// The thermal-cycling swing ΔT_j, °C (Table V's "DTj").
    pub fn delta_tj_c(&self) -> f64 {
        self.tj_max_c - self.tj_min_c
    }
}

/// A wear-out process contributing a failure rate at a given operating
/// point.
///
/// This trait is sealed in spirit: the composite model is fitted as a
/// whole, so mixing in foreign mechanisms invalidates the calibration.
/// It is left open so tests can inject synthetic mechanisms.
pub trait FailureMechanism: fmt::Debug {
    /// The mechanism's name as it appears in Table IV.
    fn name(&self) -> &'static str;

    /// Failure rate contribution, in 1/years, at the given conditions.
    fn rate_per_year(&self, cond: &OperatingConditions) -> f64;

    /// Whether the rate depends on absolute junction temperature
    /// (Table IV's "T" column).
    fn depends_on_temperature(&self) -> bool;

    /// Whether the rate depends on the temperature swing ("ΔT").
    fn depends_on_delta_t(&self) -> bool;

    /// Whether the rate depends on voltage ("V").
    fn depends_on_voltage(&self) -> bool;
}

/// Time-dependent gate-oxide breakdown (TDDB): a low-impedance
/// source-to-drain path forms through the gate dielectric. Rate grows
/// exponentially in voltage (E-model) with a weak, non-Arrhenius
/// temperature dependence at these thin oxides (DiMaria & Stathis \[19\]).
///
/// `rate = A · exp(γ·V) · exp(−Ea / kT)`
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateOxideBreakdown {
    /// Pre-factor, 1/years.
    pub a: f64,
    /// Voltage acceleration, 1/V.
    pub gamma: f64,
    /// Activation energy, eV.
    pub ea_ev: f64,
}

impl GateOxideBreakdown {
    /// Builds the mechanism from a scenario's fit coefficients.
    pub fn from_spec(spec: &GateOxideSpec) -> Self {
        GateOxideBreakdown {
            a: spec.ln_a.exp(),
            gamma: spec.gamma_per_v,
            ea_ev: spec.ea_ev,
        }
    }

    /// The fitted 5 nm-composite parameters.
    pub fn fitted() -> Self {
        Self::from_spec(&ReliabilityCalibration::paper().gate_oxide)
    }
}

impl FailureMechanism for GateOxideBreakdown {
    fn name(&self) -> &'static str {
        "Gate oxide breakdown"
    }
    fn rate_per_year(&self, cond: &OperatingConditions) -> f64 {
        self.a
            * (self.gamma * cond.voltage_v()).exp()
            * (-self.ea_ev / (KB_EV_PER_K * cond.tj_max_k())).exp()
    }
    fn depends_on_temperature(&self) -> bool {
        true
    }
    fn depends_on_delta_t(&self) -> bool {
        false
    }
    fn depends_on_voltage(&self) -> bool {
        true
    }
}

/// Electromigration: conductor material diffuses under current stress,
/// compromising interconnect structure. Black's-equation form with a
/// high activation energy, so the rate is negligible below ~70 °C but
/// grows steeply toward the air-cooled overclocked operating point.
///
/// `rate = A · exp(−Ea / kT)`
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Electromigration {
    /// Pre-factor, 1/years.
    pub a: f64,
    /// Activation energy, eV.
    pub ea_ev: f64,
}

impl Electromigration {
    /// Builds the mechanism from a scenario's fit coefficients.
    pub fn from_spec(spec: &ElectromigrationSpec) -> Self {
        Electromigration {
            a: spec.ln_a.exp(),
            ea_ev: spec.ea_ev,
        }
    }

    /// The fitted 5 nm-composite parameters.
    pub fn fitted() -> Self {
        Self::from_spec(&ReliabilityCalibration::paper().electromigration)
    }
}

impl FailureMechanism for Electromigration {
    fn name(&self) -> &'static str {
        "Electro-migration"
    }
    fn rate_per_year(&self, cond: &OperatingConditions) -> f64 {
        self.a * (-self.ea_ev / (KB_EV_PER_K * cond.tj_max_k())).exp()
    }
    fn depends_on_temperature(&self) -> bool {
        true
    }
    fn depends_on_delta_t(&self) -> bool {
        false
    }
    fn depends_on_voltage(&self) -> bool {
        false
    }
}

/// Thermal cycling: expansion/contraction micro-cracks driven by the
/// junction-temperature swing (Coffin–Manson). The fitted exponent is
/// high (brittle low-k dielectric fracture regime), which is what makes
/// the air-cooled swing (20–101 °C when overclocked) so damaging while
/// immersion's narrow swing (50–74 °C) contributes almost nothing —
/// the paper's core reliability argument for 2PIC.
///
/// `rate = B · ΔT^q`
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalCycling {
    /// Pre-factor, 1/years.
    pub b: f64,
    /// Coffin–Manson exponent.
    pub q: f64,
}

impl ThermalCycling {
    /// Builds the mechanism from a scenario's fit coefficients.
    pub fn from_spec(spec: &ThermalCyclingSpec) -> Self {
        ThermalCycling {
            b: spec.ln_b.exp(),
            q: spec.q,
        }
    }

    /// The fitted 5 nm-composite parameters.
    pub fn fitted() -> Self {
        Self::from_spec(&ReliabilityCalibration::paper().thermal_cycling)
    }
}

impl FailureMechanism for ThermalCycling {
    fn name(&self) -> &'static str {
        "Thermal cycling"
    }
    fn rate_per_year(&self, cond: &OperatingConditions) -> f64 {
        let dt = cond.delta_tj_c();
        if dt <= 0.0 {
            0.0
        } else {
            self.b * dt.powf(self.q)
        }
    }
    fn depends_on_temperature(&self) -> bool {
        false
    }
    fn depends_on_delta_t(&self) -> bool {
        true
    }
    fn depends_on_voltage(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot() -> OperatingConditions {
        OperatingConditions::new(0.98, 101.0, 20.0)
    }
    fn cool() -> OperatingConditions {
        OperatingConditions::new(0.90, 66.0, 50.0)
    }

    #[test]
    fn table4_dependency_matrix() {
        let tddb = GateOxideBreakdown::fitted();
        let em = Electromigration::fitted();
        let tc = ThermalCycling::fitted();
        assert!(tddb.depends_on_temperature() && tddb.depends_on_voltage());
        assert!(!tddb.depends_on_delta_t());
        assert!(em.depends_on_temperature() && !em.depends_on_voltage());
        assert!(!em.depends_on_delta_t());
        assert!(tc.depends_on_delta_t() && !tc.depends_on_temperature());
        assert!(!tc.depends_on_voltage());
    }

    #[test]
    fn tddb_accelerates_with_voltage_and_temperature() {
        let m = GateOxideBreakdown::fitted();
        let base = m.rate_per_year(&OperatingConditions::new(0.90, 70.0, 50.0));
        let hot_v = m.rate_per_year(&OperatingConditions::new(0.98, 70.0, 50.0));
        let hot_t = m.rate_per_year(&OperatingConditions::new(0.90, 90.0, 50.0));
        assert!(hot_v > base * 2.0, "0.08 V should accelerate >2x");
        assert!(hot_t > base, "higher T accelerates TDDB");
    }

    #[test]
    fn em_negligible_when_cool_dominant_when_hot() {
        let m = Electromigration::fitted();
        let r_cool = m.rate_per_year(&cool());
        let r_hot = m.rate_per_year(&hot());
        assert!(r_cool < 0.01, "EM at 66 °C should be negligible: {r_cool}");
        assert!(r_hot > 0.1, "EM at 101 °C should matter: {r_hot}");
    }

    #[test]
    fn thermal_cycling_driven_by_swing_only() {
        let m = ThermalCycling::fitted();
        // Same ΔT, different absolute temperature → same rate.
        let a = m.rate_per_year(&OperatingConditions::new(0.9, 70.0, 40.0));
        let b = m.rate_per_year(&OperatingConditions::new(0.9, 110.0, 80.0));
        assert!((a - b).abs() < 1e-15);
        // Wider swing → dramatically higher rate.
        let wide = m.rate_per_year(&OperatingConditions::new(0.9, 101.0, 20.0));
        assert!(wide / a > 100.0);
        // Zero swing → zero rate.
        assert_eq!(
            m.rate_per_year(&OperatingConditions::new(0.9, 70.0, 70.0)),
            0.0
        );
    }

    #[test]
    fn conditions_accessors() {
        let c = OperatingConditions::new(0.98, 74.0, 50.0);
        assert_eq!(c.delta_tj_c(), 24.0);
        assert!((c.tj_max_k() - 347.15).abs() < 1e-9);
        assert_eq!(c.voltage_v(), 0.98);
        assert_eq!(c.tj_min_c(), 50.0);
    }

    #[test]
    #[should_panic(expected = "tj_min above tj_max")]
    fn inverted_swing_panics() {
        let _ = OperatingConditions::new(0.9, 50.0, 60.0);
    }

    #[test]
    #[should_panic(expected = "implausible core voltage")]
    fn absurd_voltage_panics() {
        let _ = OperatingConditions::new(5.0, 50.0, 20.0);
    }
}
