//! Hazard integration for event-driven failure sampling.
//!
//! The lifetime model ([`CompositeLifetimeModel`]) answers "what is the
//! instantaneous failure rate at these operating conditions?" — a
//! *hazard*, in 1/years. A discrete-event simulator needs the other
//! direction: *when* does this server fail, given that its conditions
//! (and therefore its hazard) change every time a governor retunes V/f
//! or a power cap bites?
//!
//! [`HazardIntegrator`] implements the standard inversion: draw a
//! threshold `T ~ Exp(1)` once (the caller owns the randomness — in the
//! simulator that is a per-server [`SimRng`] stream, which is what makes
//! the whole fault process pure in `(seed, server)`), then integrate the
//! piecewise-constant hazard over simulated time and fire when the
//! cumulative hazard crosses `T`. For a constant hazard this reduces to
//! an ordinary exponential time-to-failure; for a server whose governor
//! moves it between B2 and OC3 operating points it gives exactly the
//! non-homogeneous first-passage time, with no per-tick rejection
//! sampling and no rate upper bound required.
//!
//! The same machinery drives correctable-error bursts: the stability
//! model's error rate (errors/month) is a hazard too, just with a much
//! smaller threshold scale.
//!
//! [`SimRng`]: https://docs.rs/ic-sim
//! [`CompositeLifetimeModel`]: crate::lifetime::CompositeLifetimeModel

use crate::lifetime::{CompositeLifetimeModel, OperatingConditions};

/// Seconds per (Julian) year, the conversion used throughout the
/// reproduction when annualized rates meet simulated seconds.
pub const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

/// Seconds per month (1/12 year), for the stability model's
/// errors-per-month rates.
pub const SECONDS_PER_MONTH: f64 = SECONDS_PER_YEAR / 12.0;

/// Converts an annualized rate (1/years) to a per-second rate.
pub fn per_year_to_per_second(rate_per_year: f64) -> f64 {
    rate_per_year / SECONDS_PER_YEAR
}

/// Converts a monthly rate (1/months) to a per-second rate.
pub fn per_month_to_per_second(rate_per_month: f64) -> f64 {
    rate_per_month / SECONDS_PER_MONTH
}

/// The composite model's failure rate at `cond`, per second of
/// worst-case-utilization operation.
pub fn failure_rate_per_second(model: &CompositeLifetimeModel, cond: &OperatingConditions) -> f64 {
    per_year_to_per_second(model.failure_rate_per_year(cond))
}

/// Integrates a piecewise-constant hazard toward an `Exp(1)` threshold.
///
/// # Example
///
/// ```
/// use ic_reliability::hazard::HazardIntegrator;
///
/// // Threshold 1.0 is the *mean* of Exp(1): with a constant hazard of
/// // 0.01/s the first event lands exactly at t = 100 s.
/// let mut h = HazardIntegrator::new(1.0);
/// assert!(!h.accrue(0.01, 99.0));
/// assert!(h.accrue(0.01, 1.0));
/// assert!(h.crossed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HazardIntegrator {
    cumulative: f64,
    threshold: f64,
}

impl HazardIntegrator {
    /// An integrator armed with `threshold` (an `Exp(1)` draw for exact
    /// inversion sampling; any positive value for deterministic tests).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not finite and positive.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "hazard threshold must be finite and positive, got {threshold}"
        );
        HazardIntegrator {
            cumulative: 0.0,
            threshold,
        }
    }

    /// Accrues `rate_per_s × dt_s` of hazard and reports whether the
    /// threshold is crossed *after* this accrual. Negative rates and
    /// durations are rejected; once crossed, the integrator stays
    /// crossed until [`HazardIntegrator::rearm`].
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_s` or `dt_s` is negative or non-finite.
    pub fn accrue(&mut self, rate_per_s: f64, dt_s: f64) -> bool {
        assert!(
            rate_per_s.is_finite() && rate_per_s >= 0.0,
            "invalid hazard rate {rate_per_s}"
        );
        assert!(dt_s.is_finite() && dt_s >= 0.0, "invalid duration {dt_s}");
        self.cumulative += rate_per_s * dt_s;
        self.crossed()
    }

    /// Whether the cumulative hazard has reached the threshold.
    pub fn crossed(&self) -> bool {
        self.cumulative >= self.threshold
    }

    /// Re-arms after a repair: the part is replaced, so the cumulative
    /// hazard resets to zero and a fresh threshold (the next `Exp(1)`
    /// draw from the owning stream) takes over.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not finite and positive.
    pub fn rearm(&mut self, threshold: f64) {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "hazard threshold must be finite and positive, got {threshold}"
        );
        self.cumulative = 0.0;
        self.threshold = threshold;
    }

    /// Cumulative hazard accrued since the last (re)arm.
    pub fn cumulative(&self) -> f64 {
        self.cumulative
    }

    /// The armed threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The remaining time to the event if the hazard stays at
    /// `rate_per_s` — `None` when the rate is zero and the threshold is
    /// not yet crossed (the event never fires). Crossed integrators
    /// report zero.
    pub fn eta_s(&self, rate_per_s: f64) -> Option<f64> {
        if self.crossed() {
            return Some(0.0);
        }
        if rate_per_s <= 0.0 {
            return None;
        }
        Some((self.threshold - self.cumulative) / rate_per_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_hazard_reduces_to_exponential() {
        // Threshold T with constant rate r crosses exactly at t = T/r.
        let mut h = HazardIntegrator::new(2.0);
        assert!(!h.accrue(0.5, 3.999));
        assert!(h.accrue(0.5, 0.001));
    }

    #[test]
    fn piecewise_rates_accumulate() {
        let mut h = HazardIntegrator::new(1.0);
        assert!(!h.accrue(0.1, 4.0)); // 0.4
        assert!(!h.accrue(0.0, 100.0)); // parked: no wear
        assert!(h.accrue(0.3, 2.0)); // 1.0: crossed
        assert!(h.crossed());
        assert_eq!(h.eta_s(0.3), Some(0.0));
    }

    #[test]
    fn rearm_resets_for_the_next_draw() {
        let mut h = HazardIntegrator::new(1.0);
        assert!(h.accrue(1.0, 1.5));
        h.rearm(0.5);
        assert!(!h.crossed());
        assert_eq!(h.cumulative(), 0.0);
        assert_eq!(h.threshold(), 0.5);
        assert!(h.accrue(1.0, 0.5));
    }

    #[test]
    fn shared_threshold_couples_monotonically() {
        // Common random numbers: with the same Exp(1) draw, the fleet
        // with the pointwise-higher hazard can only fail earlier. This
        // is the argument for OC3 failing strictly more than B2.
        let draw = 0.7;
        let mut b2 = HazardIntegrator::new(draw);
        let mut oc3 = HazardIntegrator::new(draw);
        let mut t_b2 = None;
        let mut t_oc3 = None;
        for step in 0..1000 {
            if t_b2.is_none() && b2.accrue(1e-3, 1.0) {
                t_b2 = Some(step);
            }
            if t_oc3.is_none() && oc3.accrue(3e-3, 1.0) {
                t_oc3 = Some(step);
            }
        }
        assert!(t_oc3.unwrap() < t_b2.unwrap());
    }

    #[test]
    fn eta_projects_the_crossing() {
        let mut h = HazardIntegrator::new(1.0);
        h.accrue(0.01, 50.0); // cumulative 0.5
        let eta = h.eta_s(0.01).unwrap();
        assert!((eta - 50.0).abs() < 1e-9);
        assert_eq!(h.eta_s(0.0), None);
    }

    #[test]
    fn unit_conversions_are_consistent() {
        let annual = 0.2; // 1/years → 5-year mean lifetime
        let per_s = per_year_to_per_second(annual);
        assert!((per_s * SECONDS_PER_YEAR - annual).abs() < 1e-15);
        let monthly = per_month_to_per_second(1.0);
        assert!((monthly * SECONDS_PER_MONTH - 1.0).abs() < 1e-15);
        // A rate of 1/month is 12/year.
        assert!((monthly / per_year_to_per_second(12.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn model_rate_bridges_to_seconds() {
        let model = CompositeLifetimeModel::fitted_5nm();
        let cond = OperatingConditions::new(0.98, 60.0, 35.0);
        let per_s = failure_rate_per_second(&model, &cond);
        let per_y = model.failure_rate_per_year(&cond);
        assert!((per_s * SECONDS_PER_YEAR - per_y).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_threshold_panics() {
        let _ = HazardIntegrator::new(0.0);
    }
}
