//! The flight recorder: deterministic hierarchical span profiling.
//!
//! Where [`trace`](crate::trace) records *point* events, this module
//! records *extents*: spans keyed by the simulation clock plus a
//! recorder-local sequence number — never wall clock — so two same-seed
//! runs export byte-identical traces, for any `IC_PAR_WORKERS` setting
//! (parallel sweeps record into per-task recorders that are
//! [`absorb`](FlightRecorder::absorb)ed in submission order).
//!
//! Three kinds of record coexist:
//!
//! * **Stack spans** — opened and closed LIFO (usually via the
//!   [`SpanGuard`] RAII API). Each closed span's *self time* is its
//!   duration minus its stack children's durations; per-`(target, name)`
//!   self-time feeds a constant-memory [`LogHistogram`] for the
//!   [`summary`](FlightRecorder::summary) table.
//! * **Phase spans** — per-event-kind engine activity. Drivers feed
//!   [`phase_event`](FlightRecorder::phase_event) one call per executed
//!   event (see `EngineSpans`) and
//!   [`flush_phases`](FlightRecorder::flush_phases) at window
//!   boundaries; each `(target, kind)` gets its own display track, so a
//!   window of interleaved `arrival`/`complete` events coalesces into
//!   one span per kind instead of thousands of micro-spans.
//! * **Instants** — zero-duration marks (scale decisions, cache misses,
//!   placements).
//!
//! Completed records live in a bounded ring (oldest dropped first);
//! per-kind statistics are exact over the whole run regardless of
//! eviction. Exporters: Chrome Trace Event JSON (loadable in Perfetto
//! or `chrome://tracing`), JSONL, and a human self-time summary table.

use crate::json::{write_escaped, write_fields, Value};
use crate::trace::TraceLevel;
use ic_sim::hist::LogHistogram;
use ic_sim::time::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io;
use std::rc::Rc;

/// First bin edge for self-time histograms: 1 µs of simulation time.
const SELF_TIME_FIRST_EDGE: f64 = 1e-6;
/// Geometric growth per bin.
const SELF_TIME_GROWTH: f64 = 2.0;
/// 48 bins: 1 µs … ~3.3 days of simulation time.
const SELF_TIME_BINS: usize = 48;

/// How a completed record is rendered and accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A stack span (opened/closed LIFO); self time subtracts stack
    /// children.
    Span,
    /// A coalesced per-event-kind engine phase on its own track; runs in
    /// parallel with stack spans and is not subtracted from them.
    Phase,
    /// A zero-duration mark.
    Instant,
}

impl SpanKind {
    /// The lowercase name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Span => "span",
            SpanKind::Phase => "phase",
            SpanKind::Instant => "instant",
        }
    }
}

/// One completed record.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// The subsystem that produced the span (e.g. `"runner"`, `"engine"`).
    pub target: &'static str,
    /// The span kind within the target (e.g. `"step"`, `"arrival"`).
    pub name: &'static str,
    /// Severity, filterable via [`FlightRecorder::set_min_level`].
    pub level: TraceLevel,
    /// Record kind (stack span, phase, instant).
    pub kind: SpanKind,
    /// Simulation time the span opened.
    pub start: SimTime,
    /// Simulation time the span closed (equals `start` for instants).
    pub end: SimTime,
    /// Stack depth at open time (0 for top-level and phase records).
    pub depth: u32,
    /// Recorder-assigned sequence number, renumbered on
    /// [`absorb`](FlightRecorder::absorb) so the merged stream is
    /// totally ordered.
    pub seq: u64,
    /// Display track (Chrome `tid`); see
    /// [`FlightRecorder::track_names`].
    pub track: u32,
    /// Structured payload, in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Span {
    /// Span duration in seconds of simulation time.
    pub fn duration_s(&self) -> f64 {
        (self.end - self.start).as_secs_f64()
    }
}

/// A still-open stack span.
#[derive(Debug, Clone, PartialEq)]
struct OpenSpan {
    target: &'static str,
    name: &'static str,
    level: TraceLevel,
    start: SimTime,
    seq: u64,
    token: u64,
    fields: Vec<(&'static str, Value)>,
    /// Seconds of already-closed stack children, subtracted from this
    /// span's self time at close.
    child_s: f64,
}

/// A pending per-event-kind phase, coalescing every
/// [`phase_event`](FlightRecorder::phase_event) since the last flush.
#[derive(Debug, Clone, PartialEq)]
struct PendingPhase {
    start: SimTime,
    last: SimTime,
    count: u64,
}

/// Exact per-`(target, name)` accounting, immune to ring eviction.
#[derive(Debug, Clone, PartialEq)]
struct KindStat {
    count: u64,
    total_s: f64,
    self_s: f64,
    hist: LogHistogram,
}

impl KindStat {
    fn new() -> Self {
        KindStat {
            count: 0,
            total_s: 0.0,
            self_s: 0.0,
            hist: LogHistogram::new(SELF_TIME_FIRST_EDGE, SELF_TIME_GROWTH, SELF_TIME_BINS),
        }
    }

    fn record(&mut self, total_s: f64, self_s: f64) {
        self.count += 1;
        self.total_s += total_s;
        self.self_s += self_s;
        self.hist.record(self_s);
    }

    fn merge(&mut self, other: &KindStat) {
        self.count += other.count;
        self.total_s += other.total_s;
        self.self_s += other.self_s;
        self.hist.merge(&other.hist);
    }
}

/// A claim ticket for one open stack span, consumed by
/// [`FlightRecorder::close`]/[`close_at`](FlightRecorder::close_at).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanToken(u64);

/// The bounded, deterministic span recorder.
///
/// Single-threaded like the simulator; parallel sweeps give each task
/// its own recorder and merge them in submission order with
/// [`absorb`](Self::absorb). The recorder's clock
/// ([`now`](Self::now)/[`set_now`](Self::set_now)) is *simulation* time,
/// advanced monotonically by the driver; wall clock never enters.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    spans: VecDeque<Span>,
    capacity: usize,
    open: Vec<OpenSpan>,
    phases: BTreeMap<(&'static str, &'static str), PendingPhase>,
    stats: BTreeMap<(&'static str, &'static str), KindStat>,
    /// Track id → display name; index 0 is the recorder's own track.
    tracks: Vec<String>,
    /// Track ids already allocated to `(target, kind)` phase lanes.
    phase_tracks: BTreeMap<(&'static str, &'static str), u32>,
    next_seq: u64,
    next_token: u64,
    dropped: u64,
    now: SimTime,
    max_end: SimTime,
    min_level: TraceLevel,
}

impl FlightRecorder {
    /// Creates a recorder keeping at most `capacity` completed records
    /// (the oldest are dropped first once full).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight capacity must be positive");
        FlightRecorder {
            spans: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            open: Vec::new(),
            phases: BTreeMap::new(),
            stats: BTreeMap::new(),
            tracks: vec!["main".to_string()],
            phase_tracks: BTreeMap::new(),
            next_seq: 0,
            next_token: 0,
            dropped: 0,
            now: SimTime::ZERO,
            max_end: SimTime::ZERO,
            min_level: TraceLevel::Debug,
        }
    }

    /// Like [`new`](Self::new), but the minimum level comes from the
    /// `IC_OBS_LEVEL` environment variable (`error`/`warn`/`info`/
    /// `debug`; unset or unparseable keeps `debug`, i.e. record
    /// everything).
    pub fn from_env(capacity: usize) -> Self {
        let mut rec = Self::new(capacity);
        if let Some(level) = TraceLevel::from_env() {
            rec.set_min_level(level);
        }
        rec
    }

    /// Suppresses records below `level`. Suppressed records consume no
    /// sequence numbers, so a filtered run is still deterministic.
    pub fn set_min_level(&mut self, level: TraceLevel) {
        self.min_level = level;
    }

    /// `true` if a record at `level` would be kept.
    pub fn enabled(&self, level: TraceLevel) -> bool {
        level >= self.min_level
    }

    /// The recorder's current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the recorder clock (monotonic: earlier times are
    /// ignored).
    pub fn set_now(&mut self, now: SimTime) {
        self.now = self.now.max(now);
    }

    /// The latest end time of any record so far — the natural close time
    /// for a run-level wrapper span.
    pub fn max_end(&self) -> SimTime {
        self.max_end
    }

    /// Renames the recorder's own display track (track 0).
    pub fn set_track_name(&mut self, name: &str) {
        self.tracks[0] = name.to_string();
    }

    /// Track id → display name, in allocation order.
    pub fn track_names(&self) -> &[String] {
        &self.tracks
    }

    fn push(&mut self, span: Span) {
        self.max_end = self.max_end.max(span.end);
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
    }

    fn stat(&mut self, target: &'static str, name: &'static str) -> &mut KindStat {
        self.stats
            .entry((target, name))
            .or_insert_with(KindStat::new)
    }

    /// Opens a stack span at the recorder's current time. Returns `None`
    /// when suppressed by the level filter (children then attach to the
    /// nearest recorded ancestor).
    pub fn open(
        &mut self,
        target: &'static str,
        name: &'static str,
        level: TraceLevel,
        fields: Vec<(&'static str, Value)>,
    ) -> Option<SpanToken> {
        self.open_at(self.now, target, name, level, fields)
    }

    /// Opens a stack span at an explicit start time (also advances the
    /// recorder clock to it).
    pub fn open_at(
        &mut self,
        start: SimTime,
        target: &'static str,
        name: &'static str,
        level: TraceLevel,
        fields: Vec<(&'static str, Value)>,
    ) -> Option<SpanToken> {
        self.set_now(start);
        if !self.enabled(level) {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let token = self.next_token;
        self.next_token += 1;
        self.open.push(OpenSpan {
            target,
            name,
            level,
            start,
            seq,
            token,
            fields,
            child_s: 0.0,
        });
        Some(SpanToken(token))
    }

    /// Appends a field to the innermost open span matching `token`
    /// (results computed after open, recorded before close).
    pub fn add_field(&mut self, token: SpanToken, key: &'static str, value: Value) {
        if let Some(open) = self.open.iter_mut().rev().find(|o| o.token == token.0) {
            open.fields.push((key, value));
        }
    }

    /// Closes the top-of-stack span at the recorder's current time.
    pub fn close(&mut self, token: SpanToken) {
        self.close_at(token, self.now);
    }

    /// Closes the top-of-stack span at `end` (also advances the clock).
    ///
    /// # Panics
    ///
    /// Panics if `token` is not the innermost open span — stack spans
    /// are strictly LIFO.
    pub fn close_at(&mut self, token: SpanToken, end: SimTime) {
        self.set_now(end);
        let open = self.open.pop().expect("close without an open span");
        assert_eq!(
            open.token, token.0,
            "span close out of order: stack spans are LIFO"
        );
        let end = end.max(open.start);
        let total_s = (end - open.start).as_secs_f64();
        let self_s = (total_s - open.child_s).max(0.0);
        if let Some(parent) = self.open.last_mut() {
            parent.child_s += total_s;
        }
        self.stat(open.target, open.name).record(total_s, self_s);
        self.push(Span {
            target: open.target,
            name: open.name,
            level: open.level,
            kind: SpanKind::Span,
            start: open.start,
            end,
            depth: self.open.len() as u32,
            seq: open.seq,
            track: 0,
            fields: open.fields,
        });
    }

    /// Records a complete stack-level span in one call (a window that
    /// was measured externally, e.g. one decision period). It counts as
    /// a child of the innermost open span.
    pub fn record_complete(
        &mut self,
        start: SimTime,
        end: SimTime,
        target: &'static str,
        name: &'static str,
        level: TraceLevel,
        fields: Vec<(&'static str, Value)>,
    ) {
        self.set_now(end.max(start));
        if !self.enabled(level) {
            return;
        }
        let end = end.max(start);
        let total_s = (end - start).as_secs_f64();
        if let Some(parent) = self.open.last_mut() {
            parent.child_s += total_s;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stat(target, name).record(total_s, total_s);
        let depth = self.open.len() as u32;
        self.push(Span {
            target,
            name,
            level,
            kind: SpanKind::Span,
            start,
            end,
            depth,
            seq,
            track: 0,
            fields,
        });
    }

    /// Records a zero-duration mark at the recorder's current time.
    pub fn instant(
        &mut self,
        target: &'static str,
        name: &'static str,
        level: TraceLevel,
        fields: Vec<(&'static str, Value)>,
    ) {
        self.instant_at(self.now, target, name, level, fields);
    }

    /// Records a zero-duration mark at `at` (also advances the clock).
    pub fn instant_at(
        &mut self,
        at: SimTime,
        target: &'static str,
        name: &'static str,
        level: TraceLevel,
        fields: Vec<(&'static str, Value)>,
    ) {
        self.set_now(at);
        if !self.enabled(level) {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stat(target, name).record(0.0, 0.0);
        let depth = self.open.len() as u32;
        self.push(Span {
            target,
            name,
            level,
            kind: SpanKind::Instant,
            start: at,
            end: at,
            depth,
            seq,
            track: 0,
            fields,
        });
    }

    /// Accumulates one executed engine event into the pending
    /// `(target, kind)` phase. Call [`flush_phases`](Self::flush_phases)
    /// at window boundaries to turn the accumulation into spans.
    pub fn phase_event(&mut self, target: &'static str, kind: &'static str, at: SimTime) {
        self.set_now(at);
        let phase = self
            .phases
            .entry((target, kind))
            .or_insert_with(|| PendingPhase {
                start: at,
                last: at,
                count: 0,
            });
        phase.last = phase.last.max(at);
        phase.count += 1;
    }

    /// Flushes every pending phase as one span per `(target, kind)` on
    /// that kind's own display track, in deterministic key order. Phase
    /// spans are recorded at `Debug` level.
    pub fn flush_phases(&mut self) {
        if self.phases.is_empty() {
            return;
        }
        let phases = std::mem::take(&mut self.phases);
        if !self.enabled(TraceLevel::Debug) {
            return;
        }
        for ((target, kind), phase) in phases {
            let track = match self.phase_tracks.get(&(target, kind)) {
                Some(&t) => t,
                None => {
                    let t = self.tracks.len() as u32;
                    self.tracks.push(format!("{target}:{kind}"));
                    self.phase_tracks.insert((target, kind), t);
                    t
                }
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            let total_s = (phase.last - phase.start).as_secs_f64();
            self.stat(target, kind).record(total_s, total_s);
            self.push(Span {
                target,
                name: kind,
                level: TraceLevel::Debug,
                kind: SpanKind::Phase,
                start: phase.start,
                end: phase.last,
                depth: 0,
                seq,
                track,
                fields: vec![("events", Value::U64(phase.count))],
            });
        }
    }

    /// Merges a finished child recorder (a parallel sweep task) into
    /// this one, renumbering its sequence numbers into this recorder's
    /// stream and remapping its tracks to fresh ids (the child's own
    /// track is renamed to `name`). Callers merge children **in
    /// submission order**, which is what makes the combined trace
    /// byte-identical for any worker count.
    ///
    /// # Panics
    ///
    /// Panics if the child still has open spans.
    pub fn absorb(&mut self, mut child: FlightRecorder, name: &str) {
        assert!(
            child.open.is_empty(),
            "absorb requires every child span closed"
        );
        child.flush_phases();
        let base = self.tracks.len() as u32;
        self.tracks.push(name.to_string());
        for track_name in child.tracks.iter().skip(1) {
            self.tracks.push(format!("{name}/{track_name}"));
        }
        for mut span in child.spans {
            span.seq = self.next_seq;
            self.next_seq += 1;
            span.track += base;
            self.max_end = self.max_end.max(span.end);
            if self.spans.len() == self.capacity {
                self.spans.pop_front();
                self.dropped += 1;
            }
            self.spans.push_back(span);
        }
        self.dropped += child.dropped;
        for (key, stat) in &child.stats {
            self.stats
                .entry(*key)
                .or_insert_with(KindStat::new)
                .merge(stat);
        }
        self.now = self.now.max(child.now);
    }

    /// The retained records, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Records evicted by the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total records ever kept (retained + dropped).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Exact record counts by `(target, name)`, unaffected by ring
    /// eviction.
    pub fn counts_by_kind(&self) -> BTreeMap<(&'static str, &'static str), u64> {
        self.stats
            .iter()
            .map(|(&key, stat)| (key, stat.count))
            .collect()
    }

    /// The whole recorder as Chrome Trace Event JSON — an object with a
    /// `traceEvents` array of `M` (track metadata), `X` (complete span),
    /// and `i` (instant) events, loadable in Perfetto or
    /// `chrome://tracing`. Timestamps are simulation microseconds.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(256 + 160 * self.spans.len());
        out.push_str("{\"traceEvents\":[");
        out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,");
        out.push_str("\"args\":{\"name\":\"immersion-cloud\"}}");
        for (tid, name) in self.tracks.iter().enumerate() {
            out.push_str(",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":");
            out.push_str(&tid.to_string());
            out.push_str(",\"args\":{\"name\":");
            write_escaped(name, &mut out);
            out.push_str("}}");
        }
        for span in &self.spans {
            out.push_str(",\n{\"name\":");
            write_escaped(span.name, &mut out);
            out.push_str(",\"cat\":");
            write_escaped(span.target, &mut out);
            if span.kind == SpanKind::Instant {
                out.push_str(",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
                write_us(span.start, &mut out);
            } else {
                out.push_str(",\"ph\":\"X\",\"ts\":");
                write_us(span.start, &mut out);
                out.push_str(",\"dur\":");
                write_us_delta(span.start, span.end, &mut out);
            }
            out.push_str(",\"pid\":0,\"tid\":");
            out.push_str(&span.track.to_string());
            out.push_str(",\"args\":{\"seq\":");
            out.push_str(&span.seq.to_string());
            out.push_str(",\"level\":\"");
            out.push_str(span.level.name());
            out.push('"');
            if !span.fields.is_empty() {
                out.push(',');
                write_fields(
                    &span
                        .fields
                        .iter()
                        .map(|(k, v)| (*k, v.clone()))
                        .collect::<Vec<_>>(),
                    &mut out,
                );
            }
            out.push_str("}}");
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// The whole recorder as JSONL: one header object naming the tracks,
    /// then one object per record in ring order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + 160 * self.spans.len());
        out.push_str("{\"schema\":\"ic-obs/flight/v1\",\"tracks\":[");
        for (i, name) in self.tracks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(name, &mut out);
        }
        out.push_str("],\"dropped\":");
        out.push_str(&self.dropped.to_string());
        out.push_str("}\n");
        for span in &self.spans {
            out.push_str("{\"start_ns\":");
            out.push_str(&span.start.as_nanos().to_string());
            out.push_str(",\"end_ns\":");
            out.push_str(&span.end.as_nanos().to_string());
            out.push_str(",\"seq\":");
            out.push_str(&span.seq.to_string());
            out.push_str(",\"track\":");
            out.push_str(&span.track.to_string());
            out.push_str(",\"depth\":");
            out.push_str(&span.depth.to_string());
            out.push_str(",\"target\":");
            write_escaped(span.target, &mut out);
            out.push_str(",\"name\":");
            write_escaped(span.name, &mut out);
            out.push_str(",\"level\":\"");
            out.push_str(span.level.name());
            out.push_str("\",\"ph\":\"");
            out.push_str(span.kind.name());
            out.push_str("\",\"fields\":{");
            write_fields(
                &span
                    .fields
                    .iter()
                    .map(|(k, v)| (*k, v.clone()))
                    .collect::<Vec<_>>(),
                &mut out,
            );
            out.push_str("}}\n");
        }
        out
    }

    /// Streams [`to_chrome_trace`](Self::to_chrome_trace) or
    /// [`to_jsonl`](Self::to_jsonl) into `w` depending on `chrome`.
    pub fn write_trace<W: io::Write>(&self, w: &mut W, chrome: bool) -> io::Result<()> {
        let text = if chrome {
            self.to_chrome_trace()
        } else {
            self.to_jsonl()
        };
        w.write_all(text.as_bytes())
    }

    /// The human summary: per-`(target, name)` record counts and
    /// simulation-time totals, self time (span duration minus stack
    /// children), and p50/p95 self time from the per-kind
    /// [`LogHistogram`] — sorted by self time, largest first. All
    /// figures are exact over the run, regardless of ring eviction.
    pub fn summary(&self) -> String {
        let mut rows: Vec<(&(&'static str, &'static str), &KindStat)> = self.stats.iter().collect();
        rows.sort_by(|a, b| {
            b.1.self_s
                .partial_cmp(&a.1.self_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(b.0))
        });
        let mut out = String::from("== flight recorder: self-time by span kind ==\n");
        out.push_str(&format!(
            "{:<12} {:<20} {:>8} {:>12} {:>12} {:>6} {:>11} {:>11}\n",
            "target", "name", "count", "total_s", "self_s", "self%", "p50_self_s", "p95_self_s"
        ));
        let grand: f64 = rows.iter().map(|(_, s)| s.self_s).sum();
        for ((target, name), stat) in rows {
            let pct = if grand > 0.0 {
                stat.self_s / grand * 100.0
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<12} {:<20} {:>8} {:>12.3} {:>12.3} {:>5.1}% {:>11.6} {:>11.6}\n",
                target,
                name,
                stat.count,
                stat.total_s,
                stat.self_s,
                pct,
                stat.hist.quantile(0.50),
                stat.hist.quantile(0.95),
            ));
        }
        out.push_str(&format!(
            "records: {} kept, {} dropped; tracks: {}\n",
            self.spans.len(),
            self.dropped,
            self.tracks.len()
        ));
        out
    }
}

/// Appends a simulation time as Chrome-trace microseconds (integer µs
/// with an exact 3-digit fraction when the time is off the µs grid).
fn write_us(t: SimTime, out: &mut String) {
    write_us_parts(t.as_nanos(), out);
}

/// Appends `end - start` as Chrome-trace microseconds.
fn write_us_delta(start: SimTime, end: SimTime, out: &mut String) {
    write_us_parts((end - start).as_nanos(), out);
}

fn write_us_parts(ns: u64, out: &mut String) {
    let us = ns / 1000;
    let frac = ns % 1000;
    out.push_str(&us.to_string());
    if frac != 0 {
        out.push('.');
        out.push_str(&format!("{frac:03}"));
    }
}

/// A shareable recorder handle, mirroring
/// [`TraceHandle`](crate::trace::TraceHandle): the driver keeps one
/// clone, instrumented components keep others.
pub type FlightHandle = Rc<RefCell<FlightRecorder>>;

/// Creates a [`FlightHandle`] with the given ring capacity.
pub fn shared_flight(capacity: usize) -> FlightHandle {
    Rc::new(RefCell::new(FlightRecorder::new(capacity)))
}

/// Creates a [`FlightHandle`] whose level filter comes from
/// `IC_OBS_LEVEL` (see [`FlightRecorder::from_env`]).
pub fn shared_flight_from_env(capacity: usize) -> FlightHandle {
    Rc::new(RefCell::new(FlightRecorder::from_env(capacity)))
}

/// An RAII guard over one stack span: open on construction, closed on
/// drop at the recorder's then-current simulation time, or explicitly
/// via [`close_at`](Self::close_at) with a known end time.
///
/// # Example
///
/// ```
/// use ic_obs::flight::{shared_flight, SpanGuard};
/// use ic_obs::trace::TraceLevel;
/// use ic_sim::time::SimTime;
///
/// let flight = shared_flight(1024);
/// {
///     let span = SpanGuard::enter(&flight, "demo", "work", TraceLevel::Info, vec![]);
///     flight.borrow_mut().set_now(SimTime::from_secs(5));
///     span.close_at(SimTime::from_secs(5));
/// }
/// assert_eq!(flight.borrow().len(), 1);
/// ```
#[derive(Debug)]
pub struct SpanGuard {
    flight: FlightHandle,
    token: Option<SpanToken>,
}

impl SpanGuard {
    /// Opens a span at the recorder's current time.
    pub fn enter(
        flight: &FlightHandle,
        target: &'static str,
        name: &'static str,
        level: TraceLevel,
        fields: Vec<(&'static str, Value)>,
    ) -> Self {
        let token = flight.borrow_mut().open(target, name, level, fields);
        SpanGuard {
            flight: flight.clone(),
            token,
        }
    }

    /// Opens a span at an explicit start time.
    pub fn enter_at(
        flight: &FlightHandle,
        start: SimTime,
        target: &'static str,
        name: &'static str,
        level: TraceLevel,
        fields: Vec<(&'static str, Value)>,
    ) -> Self {
        let token = flight
            .borrow_mut()
            .open_at(start, target, name, level, fields);
        SpanGuard {
            flight: flight.clone(),
            token,
        }
    }

    /// Appends a field to the span (a result computed mid-span).
    pub fn add_field(&self, key: &'static str, value: Value) {
        if let Some(token) = self.token {
            self.flight.borrow_mut().add_field(token, key, value);
        }
    }

    /// Closes the span at an explicit end time.
    pub fn close_at(mut self, end: SimTime) {
        if let Some(token) = self.token.take() {
            self.flight.borrow_mut().close_at(token, end);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.flight.borrow_mut().close(token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn nested_spans_record_depth_and_self_time() {
        let mut rec = FlightRecorder::new(64);
        let outer = rec
            .open_at(t(0), "a", "outer", TraceLevel::Info, vec![])
            .unwrap();
        let inner = rec
            .open_at(t(2), "a", "inner", TraceLevel::Info, vec![])
            .unwrap();
        rec.close_at(inner, t(5));
        rec.close_at(outer, t(10));
        let spans: Vec<_> = rec.spans().collect();
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].name, spans[0].depth), ("inner", 1));
        assert_eq!((spans[1].name, spans[1].depth), ("outer", 0));
        let stats = rec.counts_by_kind();
        assert_eq!(stats[&("a", "outer")], 1);
        // Outer self time = 10 - (inner 3s) = 7s.
        assert!(rec.summary().contains("outer"));
        let outer_stat = &rec.stats[&("a", "outer")];
        assert_eq!(outer_stat.total_s, 10.0);
        assert_eq!(outer_stat.self_s, 7.0);
    }

    #[test]
    #[should_panic(expected = "LIFO")]
    fn out_of_order_close_panics() {
        let mut rec = FlightRecorder::new(8);
        let a = rec.open("x", "a", TraceLevel::Info, vec![]).unwrap();
        let _b = rec.open("x", "b", TraceLevel::Info, vec![]).unwrap();
        rec.close(a);
    }

    #[test]
    fn ring_drops_oldest_but_stats_stay_exact() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..10u64 {
            rec.instant_at(t(i), "m", "tick", TraceLevel::Info, vec![]);
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 7);
        assert_eq!(rec.counts_by_kind()[&("m", "tick")], 10);
    }

    #[test]
    fn level_filter_suppresses_without_seq() {
        let mut rec = FlightRecorder::new(8);
        rec.set_min_level(TraceLevel::Info);
        assert!(rec.open("x", "noisy", TraceLevel::Debug, vec![]).is_none());
        rec.instant("x", "quiet", TraceLevel::Debug, vec![]);
        let tok = rec.open("x", "kept", TraceLevel::Info, vec![]).unwrap();
        rec.close(tok);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.spans().next().unwrap().seq, 0);
    }

    #[test]
    fn phases_coalesce_per_kind_on_own_tracks() {
        let mut rec = FlightRecorder::new(64);
        for i in 0..5u64 {
            rec.phase_event("engine", "arrival", t(i));
            rec.phase_event("engine", "complete", t(i));
        }
        rec.flush_phases();
        let spans: Vec<Span> = rec.spans().cloned().collect();
        assert_eq!(spans.len(), 2, "one span per kind");
        assert_eq!(spans[0].name, "arrival");
        assert_eq!(spans[0].fields, vec![("events", Value::U64(5))]);
        assert_ne!(spans[0].track, spans[1].track);
        assert_eq!(rec.track_names()[spans[0].track as usize], "engine:arrival");
        // A second window reuses the same tracks.
        rec.phase_event("engine", "arrival", t(9));
        rec.flush_phases();
        assert_eq!(rec.spans().last().unwrap().track, spans[0].track);
        assert_eq!(rec.track_names().len(), 3);
    }

    #[test]
    fn absorb_renumbers_and_remaps_tracks() {
        let mut main = FlightRecorder::new(64);
        main.instant_at(t(1), "m", "mark", TraceLevel::Info, vec![]);
        let mut child = FlightRecorder::new(64);
        let tok = child
            .open_at(t(0), "c", "run", TraceLevel::Info, vec![])
            .unwrap();
        child.phase_event("engine", "arrival", t(3));
        child.flush_phases();
        child.close_at(tok, t(4));
        main.absorb(child, "task0");
        let seqs: Vec<u64> = main.spans().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(
            main.track_names(),
            &["main", "task0", "task0/engine:arrival"]
        );
        assert_eq!(main.max_end(), t(4));
        assert_eq!(main.counts_by_kind()[&("engine", "arrival")], 1);
    }

    #[test]
    fn absorb_order_determines_bytes_not_worker_schedule() {
        let make_child = |secs: u64| {
            let mut c = FlightRecorder::new(16);
            let tok = c
                .open_at(t(0), "c", "run", TraceLevel::Info, vec![])
                .unwrap();
            c.close_at(tok, t(secs));
            c
        };
        let mut a = FlightRecorder::new(64);
        a.absorb(make_child(1), "x");
        a.absorb(make_child(2), "y");
        let mut b = FlightRecorder::new(64);
        b.absorb(make_child(1), "x");
        b.absorb(make_child(2), "y");
        assert_eq!(a.to_chrome_trace(), b.to_chrome_trace());
        assert_eq!(a.to_jsonl(), b.to_jsonl());
    }

    #[test]
    fn chrome_trace_shape() {
        let mut rec = FlightRecorder::new(16);
        let tok = rec
            .open_at(
                t(1),
                "runner",
                "step",
                TraceLevel::Info,
                vec![("q", Value::U64(3))],
            )
            .unwrap();
        rec.close_at(tok, t(2));
        rec.instant_at(t(2), "asc", "scale_out", TraceLevel::Warn, vec![]);
        let out = rec.to_chrome_trace();
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.contains("\"ph\":\"M\""));
        assert!(out.contains(
            "{\"name\":\"step\",\"cat\":\"runner\",\"ph\":\"X\",\"ts\":1000000,\"dur\":1000000,\
             \"pid\":0,\"tid\":0,\"args\":{\"seq\":0,\"level\":\"info\",\"q\":3}}"
        ));
        assert!(out.contains("\"ph\":\"i\",\"s\":\"t\",\"ts\":2000000"));
        assert!(out.ends_with("],\"displayTimeUnit\":\"ms\"}\n"));
    }

    #[test]
    fn sub_microsecond_times_keep_an_exact_fraction() {
        let mut out = String::new();
        write_us_parts(1_234_567, &mut out);
        assert_eq!(out, "1234.567");
        out.clear();
        write_us_parts(2_000, &mut out);
        assert_eq!(out, "2");
    }

    #[test]
    fn jsonl_has_header_and_schema() {
        let mut rec = FlightRecorder::new(16);
        rec.instant_at(
            t(1),
            "m",
            "mark",
            TraceLevel::Info,
            vec![("k", Value::str("v"))],
        );
        let out = rec.to_jsonl();
        let mut lines = out.lines();
        assert!(lines
            .next()
            .unwrap()
            .contains("\"schema\":\"ic-obs/flight/v1\""));
        let line = lines.next().unwrap();
        assert!(line.contains("\"start_ns\":1000000000"));
        assert!(line.contains("\"ph\":\"instant\""));
        assert!(line.contains("\"fields\":{\"k\":\"v\"}"));
    }

    #[test]
    fn span_guard_closes_on_drop_at_recorder_now() {
        let flight = shared_flight(16);
        {
            let _g = SpanGuard::enter(&flight, "g", "scope", TraceLevel::Info, vec![]);
            flight.borrow_mut().set_now(t(7));
        }
        let rec = flight.borrow();
        let span = rec.spans().next().unwrap();
        assert_eq!((span.start, span.end), (SimTime::ZERO, t(7)));
    }

    #[test]
    fn span_guard_add_field_lands_in_span() {
        let flight = shared_flight(16);
        let g = SpanGuard::enter(&flight, "g", "scope", TraceLevel::Info, vec![]);
        g.add_field("result", Value::U64(42));
        g.close_at(t(1));
        let rec = flight.borrow();
        assert_eq!(
            rec.spans().next().unwrap().fields,
            vec![("result", Value::U64(42))]
        );
    }

    #[test]
    fn record_complete_counts_toward_parent_children() {
        let mut rec = FlightRecorder::new(16);
        let run = rec
            .open_at(t(0), "r", "run", TraceLevel::Info, vec![])
            .unwrap();
        rec.record_complete(t(0), t(3), "r", "step", TraceLevel::Debug, vec![]);
        rec.record_complete(t(3), t(6), "r", "step", TraceLevel::Debug, vec![]);
        rec.close_at(run, t(6));
        let run_stat = &rec.stats[&("r", "run")];
        assert_eq!(run_stat.self_s, 0.0);
        assert_eq!(rec.stats[&("r", "step")].total_s, 6.0);
    }

    #[test]
    fn summary_orders_by_self_time() {
        let mut rec = FlightRecorder::new(16);
        rec.record_complete(t(0), t(1), "a", "small", TraceLevel::Info, vec![]);
        rec.record_complete(t(0), t(9), "a", "big", TraceLevel::Info, vec![]);
        let summary = rec.summary();
        let big = summary.find("big").unwrap();
        let small = summary.find("small").unwrap();
        assert!(big < small, "{summary}");
        assert!(summary.contains("records: 2 kept"));
    }
}
