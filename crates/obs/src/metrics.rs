//! A registry of named counters, gauges, and histograms.
//!
//! Names follow the `subsystem_metric{label}` convention: a plain name
//! like `"engine_queue_depth"` or a labeled one like
//! `"engine_events_total{arrival}"` — the label is just part of the key,
//! so components can shard a metric by event kind or policy without any
//! extra machinery. All maps are `BTreeMap` so snapshots iterate in a
//! deterministic order regardless of insertion history.

use crate::json::{write_escaped, write_f64};
use ic_sim::hist::LogHistogram;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// A collection of named metrics with deterministic iteration order.
///
/// # Example
///
/// ```
/// use ic_obs::metrics::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.counter_add("asc_decisions_total{scale_out}", 1);
/// m.gauge_set("asc_active_vms", 3.0);
/// m.register_histogram("asc_step_util", 1e-3, 2.0, 20);
/// m.histogram_record("asc_step_util", 0.61);
/// assert_eq!(m.counter("asc_decisions_total{scale_out}"), 1);
/// assert!(m.to_json().contains("\"asc_active_vms\":3"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// The counter's current value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// The gauge's last value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Registers a histogram with the given geometry (first bin edge,
    /// geometric growth factor, bin count). Re-registering an existing
    /// name keeps the original histogram and its samples.
    pub fn register_histogram(&mut self, name: &str, first_edge: f64, growth: f64, bins: usize) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| LogHistogram::new(first_edge, growth, bins));
    }

    /// Records one sample into the histogram `name`, registering it
    /// with a general-purpose geometry (1 µs first edge, 2× growth,
    /// 48 bins — covers 1 µs to ~3 days) if it does not exist.
    pub fn histogram_record(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| LogHistogram::new(1e-6, 2.0, 48))
            .record(value);
    }

    /// The histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Shorthand for `histogram(name).quantile(q)`; 0 when the
    /// histogram is missing or empty.
    pub fn quantile(&self, name: &str, q: f64) -> f64 {
        self.histograms.get(name).map_or(0.0, |h| h.quantile(q))
    }

    /// Counters whose names start with `prefix`, in name order.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// Folds another registry into this one: counters add, gauges take
    /// the other's value (it is "newer"), histograms merge.
    ///
    /// # Panics
    ///
    /// Panics if a shared histogram name has different bin geometry.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            self.counter_add(name, *v);
        }
        for (name, v) in &other.gauges {
            self.gauge_set(name, *v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// A deterministic JSON snapshot:
    /// `{"counters":{…},"gauges":{…},"histograms":{name:{"count":…,
    /// "mean":…,"p50":…,"p95":…,"p99":…,"max":…}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(name, &mut out);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(name, &mut out);
            out.push(':');
            write_f64(*v, &mut out);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(name, &mut out);
            let _ = write!(out, ":{{\"count\":{}", h.count());
            for (key, v) in [
                ("mean", h.mean()),
                ("p50", h.quantile(0.50)),
                ("p95", h.quantile(0.95)),
                ("p99", h.quantile(0.99)),
                ("max", h.max()),
            ] {
                let _ = write!(out, ",\"{key}\":");
                write_f64(v, &mut out);
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// A human-readable snapshot, one metric per line, in name order.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} = {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge   {name} = {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "hist    {name} = count {} mean {:.6} p50 {:.6} p95 {:.6} max {:.6}",
                h.count(),
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.max()
            );
        }
        out
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// A shareable registry handle for single-threaded simulations.
pub type MetricsHandle = Rc<RefCell<MetricsRegistry>>;

/// Creates an empty [`MetricsHandle`].
pub fn shared_registry() -> MetricsHandle {
    Rc::new(RefCell::new(MetricsRegistry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.counter_add("x", 2);
        m.counter_add("x", 3);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("depth", 4.0);
        m.gauge_set("depth", 7.0);
        assert_eq!(m.gauge("depth"), Some(7.0));
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn histogram_auto_registers() {
        let mut m = MetricsRegistry::new();
        m.histogram_record("lat", 0.5);
        m.histogram_record("lat", 1.5);
        assert_eq!(m.histogram("lat").unwrap().count(), 2);
        assert!(m.quantile("lat", 1.0) >= 1.5 * 0.9);
        assert_eq!(m.quantile("missing", 0.5), 0.0);
    }

    #[test]
    fn register_keeps_existing_samples() {
        let mut m = MetricsRegistry::new();
        m.register_histogram("h", 1.0, 2.0, 8);
        m.histogram_record("h", 3.0);
        m.register_histogram("h", 0.5, 3.0, 4); // no-op
        assert_eq!(m.histogram("h").unwrap().count(), 1);
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter_add("n", 1);
        b.counter_add("n", 2);
        a.register_histogram("h", 1.0, 2.0, 8);
        b.register_histogram("h", 1.0, 2.0, 8);
        a.histogram_record("h", 2.0);
        b.histogram_record("h", 4.0);
        b.gauge_set("g", 9.0);
        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.gauge("g"), Some(9.0));
    }

    #[test]
    fn prefix_scan_is_ordered() {
        let mut m = MetricsRegistry::new();
        m.counter_add("ev_total{b}", 1);
        m.counter_add("ev_total{a}", 2);
        m.counter_add("other", 3);
        let got: Vec<_> = m.counters_with_prefix("ev_total{").collect();
        assert_eq!(got, vec![("ev_total{a}", 2), ("ev_total{b}", 1)]);
    }

    #[test]
    fn json_snapshot_is_deterministic() {
        let mut m = MetricsRegistry::new();
        m.counter_add("b", 1);
        m.counter_add("a", 2);
        m.gauge_set("g", 1.5);
        let json = m.to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"a\":2,\"b\":1},\"gauges\":{\"g\":1.5},\"histograms\":{}}"
        );
    }

    #[test]
    fn empty_registry_renders() {
        let m = MetricsRegistry::new();
        assert!(m.is_empty());
        assert_eq!(
            m.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
        assert_eq!(m.render_text(), "");
    }
}
