//! Adapters between the engine's observer hook and the metrics
//! registry.
//!
//! [`EngineMetrics`] implements [`ic_sim::observe::EngineObserver`] over
//! a shared [`MetricsHandle`], so the driver keeps a clone of the handle
//! and reads the numbers after (or during) the run:
//!
//! * `engine_events_total{kind}` — counter, one per executed event
//! * `engine_queue_depth` — gauge, pending events after the last handler
//! * `engine_queue_depth_max` — gauge, high-water mark
//! * `engine_event_seconds{kind}` — histogram of wall-clock handler time
//!
//! Wall-clock timings are host noise and stay out of trace output; they
//! exist so a profile of "which event kind dominates runtime" falls out
//! of any instrumented run. The core engine never reads the host clock —
//! this observer stamps its own [`Instant`] in `on_event_start` and
//! measures the elapsed time when the post-event record arrives.

use crate::flight::FlightHandle;
use crate::metrics::MetricsHandle;
use ic_sim::observe::{EngineObserver, EventRecord};
use std::time::Instant;

/// First bin edge for handler-time histograms: 100 ns.
const EVENT_SECONDS_FIRST_EDGE: f64 = 1e-7;
/// Geometric growth per bin.
const EVENT_SECONDS_GROWTH: f64 = 2.0;
/// 36 bins: 100 ns … ~6.9 s, plenty for a single event handler.
const EVENT_SECONDS_BINS: usize = 36;

/// An [`EngineObserver`] that feeds a shared [`MetricsHandle`].
///
/// # Example
///
/// ```
/// use ic_obs::engine_obs::EngineMetrics;
/// use ic_obs::metrics::shared_registry;
/// use ic_sim::engine::Engine;
/// use ic_sim::time::SimTime;
///
/// let metrics = shared_registry();
/// let mut engine: Engine<u32> = Engine::new();
/// engine.set_observer(Box::new(EngineMetrics::new(metrics.clone())));
/// engine.schedule_labeled(SimTime::from_secs(1), "arrival", |c, _| *c += 1);
/// let mut count = 0;
/// engine.run(&mut count);
/// assert_eq!(metrics.borrow().counter("engine_events_total{arrival}"), 1);
/// ```
pub struct EngineMetrics {
    metrics: MetricsHandle,
    max_depth: usize,
    started: Option<Instant>,
}

impl EngineMetrics {
    /// Creates an observer writing into `metrics`.
    pub fn new(metrics: MetricsHandle) -> Self {
        EngineMetrics {
            metrics,
            max_depth: 0,
            started: None,
        }
    }
}

impl EngineObserver for EngineMetrics {
    fn on_event_start(&mut self) {
        self.started = Some(Instant::now());
    }

    fn on_event(&mut self, record: &EventRecord) {
        let wall_seconds = self
            .started
            .take()
            .map(|s| s.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        self.max_depth = self.max_depth.max(record.queue_depth);
        let mut m = self.metrics.borrow_mut();
        m.counter_add(&format!("engine_events_total{{{}}}", record.kind), 1);
        m.gauge_set("engine_queue_depth", record.queue_depth as f64);
        m.gauge_set("engine_queue_depth_max", self.max_depth as f64);
        let hist_name = format!("engine_event_seconds{{{}}}", record.kind);
        m.register_histogram(
            &hist_name,
            EVENT_SECONDS_FIRST_EDGE,
            EVENT_SECONDS_GROWTH,
            EVENT_SECONDS_BINS,
        );
        m.histogram_record(&hist_name, wall_seconds);
    }
}

/// An [`EngineObserver`] that feeds the flight recorder's per-event-kind
/// phase accumulator: one [`FlightRecorder::phase_event`] call per
/// executed event, stamped with the *simulation* clock (never wall
/// clock, so traces stay byte-reproducible). The driver holding the same
/// [`FlightHandle`] calls `flush_phases` at window boundaries to turn
/// the accumulation into one coalesced span per event kind.
///
/// [`FlightRecorder::phase_event`]: crate::flight::FlightRecorder::phase_event
pub struct EngineSpans {
    flight: FlightHandle,
    /// The phase target label, e.g. `"engine"`.
    target: &'static str,
}

impl EngineSpans {
    /// Creates an observer accumulating phases under `target` (use
    /// `"engine"` unless several engines share one recorder).
    pub fn new(flight: FlightHandle, target: &'static str) -> Self {
        EngineSpans { flight, target }
    }
}

impl EngineObserver for EngineSpans {
    fn on_event(&mut self, record: &EventRecord) {
        self.flight
            .borrow_mut()
            .phase_event(self.target, record.kind, record.at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::shared_flight;
    use crate::metrics::shared_registry;
    use ic_sim::engine::Engine;
    use ic_sim::time::{SimDuration, SimTime};

    #[test]
    fn engine_run_populates_registry() {
        let metrics = shared_registry();
        let mut engine: Engine<u32> = Engine::new();
        engine.set_observer(Box::new(EngineMetrics::new(metrics.clone())));
        engine.schedule_labeled(SimTime::from_secs(1), "arrival", |c, e| {
            *c += 1;
            e.schedule_in_labeled(SimDuration::from_secs(1), "departure", |c, _| *c += 1);
        });
        engine.schedule_labeled(SimTime::from_secs(5), "arrival", |c, _| *c += 1);
        let mut count = 0;
        engine.run(&mut count);
        assert_eq!(count, 3);

        let m = metrics.borrow();
        assert_eq!(m.counter("engine_events_total{arrival}"), 2);
        assert_eq!(m.counter("engine_events_total{departure}"), 1);
        assert_eq!(m.gauge("engine_queue_depth"), Some(0.0));
        assert_eq!(m.gauge("engine_queue_depth_max"), Some(2.0));
        let h = m.histogram("engine_event_seconds{arrival}").unwrap();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn per_kind_totals_sum_to_events_processed() {
        let metrics = shared_registry();
        let mut engine: Engine<()> = Engine::new();
        engine.set_observer(Box::new(EngineMetrics::new(metrics.clone())));
        for i in 0..10 {
            let kind = if i % 2 == 0 { "even" } else { "odd" };
            engine.schedule_labeled(SimTime::from_secs(i), kind, |_, _| {});
        }
        engine.run(&mut ());
        let m = metrics.borrow();
        let total: u64 = m
            .counters_with_prefix("engine_events_total{")
            .map(|(_, v)| v)
            .sum();
        assert_eq!(total, engine.events_processed());
    }

    #[test]
    fn engine_spans_accumulate_phases_by_kind() {
        let flight = shared_flight(1024);
        let mut engine: Engine<u32> = Engine::new();
        engine.set_observer(Box::new(EngineSpans::new(flight.clone(), "engine")));
        engine.schedule_labeled(SimTime::from_secs(1), "arrival", |c, e| {
            *c += 1;
            e.schedule_in_labeled(SimDuration::from_secs(1), "departure", |c, _| *c += 1);
        });
        engine.schedule_labeled(SimTime::from_secs(5), "arrival", |c, _| *c += 1);
        let mut count = 0;
        engine.run(&mut count);
        flight.borrow_mut().flush_phases();

        let rec = flight.borrow();
        let counts = rec.counts_by_kind();
        assert_eq!(counts[&("engine", "arrival")], 1, "one coalesced span");
        assert_eq!(counts[&("engine", "departure")], 1);
        let arrival = rec
            .spans()
            .find(|s| s.name == "arrival")
            .expect("arrival phase span");
        assert_eq!(arrival.start, SimTime::from_secs(1));
        assert_eq!(arrival.end, SimTime::from_secs(5));
        assert_eq!(arrival.fields, vec![("events", crate::json::Value::U64(2))]);
    }
}
