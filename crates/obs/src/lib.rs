//! `ic-obs`: structured tracing and metrics for the simulation stack.
//!
//! The paper's control plane (Fig. 14) runs entirely on telemetry —
//! Aperf/Pperf counters feeding Equation 1 — yet a reproduction is only
//! trustworthy if its *own* decisions are observable: which constraint
//! bound a governor grant, which Equation-1 inputs triggered a scale-up,
//! when a VM was created and where it landed. This crate is that layer:
//!
//! * [`metrics`] — a [`metrics::MetricsRegistry`] of labeled counters,
//!   gauges, and constant-memory log-bin histograms (reusing
//!   [`ic_sim::hist::LogHistogram`]), with deterministic iteration order
//!   and a JSON snapshot.
//! * [`trace`] — a [`trace::TraceRecorder`] ring buffer of structured
//!   [`trace::TraceEvent`]s keyed by simulation time plus a recorder
//!   sequence number (never wall clock — two same-seed runs produce
//!   byte-identical output), with JSONL and CSV sinks.
//! * [`flight`] — the flight recorder: deterministic *hierarchical*
//!   spans ([`flight::FlightRecorder`] + the [`flight::SpanGuard`] RAII
//!   API) with per-event-kind engine phases, submission-order merging of
//!   parallel sweep tasks, and three exporters — Chrome Trace Event JSON
//!   (loadable in Perfetto / `chrome://tracing`), JSONL, and a human
//!   self-time summary table backed by [`ic_sim::hist::LogHistogram`].
//! * [`sinks`] — the [`sinks::ObsSinks`] bundle: one value carrying
//!   the optional trace/metrics/flight handles that every instrumented
//!   component used to thread individually, with a single
//!   [`sinks::ObsSinks::instant`] emit that mirrors flight-then-trace.
//! * [`engine_obs`] — adapters implementing
//!   [`ic_sim::observe::EngineObserver`] so the discrete-event engine
//!   feeds the registry ([`engine_obs::EngineMetrics`]) or the flight
//!   recorder ([`engine_obs::EngineSpans`]) without `ic-sim` depending
//!   on this crate.
//!
//! Everything is single-threaded (like the simulator) and heap-bounded;
//! the only dependency besides `ic-sim` is the serde facade.
//!
//! # Environment: `IC_OBS_LEVEL`
//!
//! The `IC_OBS_LEVEL` environment variable ([`trace::LEVEL_ENV`]) sets
//! the minimum recorded severity — `error`, `warn`, `info`, or `debug`
//! (case-insensitive) — for every recorder built through a `from_env`
//! constructor: [`trace::TraceRecorder::from_env`],
//! [`flight::FlightRecorder::from_env`], and
//! [`flight::shared_flight_from_env`]. Unset or unparseable values keep
//! each recorder's default (`debug`: record everything). Hot loops can
//! therefore emit debug-level events unconditionally; a production run
//! sets `IC_OBS_LEVEL=info` and pays neither memory nor serialization
//! cost for them — suppressed events consume no sequence numbers, so a
//! filtered run is still byte-deterministic.
//!
//! # Example
//!
//! ```
//! use ic_obs::trace::{TraceLevel, TraceRecorder};
//! use ic_obs::json::Value;
//! use ic_sim::time::SimTime;
//!
//! let mut rec = TraceRecorder::new(1024);
//! rec.emit(
//!     SimTime::from_secs(3),
//!     "asc",
//!     TraceLevel::Info,
//!     "scale_out",
//!     vec![("active_vms", Value::U64(2)), ("util", Value::F64(0.61))],
//! );
//! let jsonl = rec.to_jsonl();
//! assert!(jsonl.contains("\"kind\":\"scale_out\""));
//! assert!(jsonl.contains("\"t_ns\":3000000000"));
//! ```

pub mod engine_obs;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod sinks;
pub mod trace;

pub use engine_obs::{EngineMetrics, EngineSpans};
pub use flight::{
    shared_flight, shared_flight_from_env, FlightHandle, FlightRecorder, Span, SpanGuard, SpanKind,
    SpanToken,
};
pub use json::Value;
pub use metrics::{shared_registry, MetricsHandle, MetricsRegistry};
pub use sinks::ObsSinks;
pub use trace::{shared_recorder, TraceEvent, TraceHandle, TraceLevel, TraceRecorder};
