//! Minimal, deterministic JSON encoding.
//!
//! The hermetic build has no `serde_json`, and the observability layer
//! needs byte-stable output anyway (the determinism tests compare whole
//! JSONL files). This module hand-rolls the small subset we need: a
//! [`Value`] for trace fields plus string escaping and float formatting
//! with fixed rules (shortest round-trip via `Display`; non-finite
//! floats become `null`).

use std::fmt::Write as _;

/// A structured field value attached to trace events and metric
/// snapshots.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (emitted without a decimal point).
    I64(i64),
    /// Unsigned integer (emitted without a decimal point).
    U64(u64),
    /// Floating-point number; NaN and infinities encode as `null`.
    F64(f64),
    /// String (escaped per RFC 8259).
    Str(String),
}

impl Value {
    /// Convenience constructor for string fields.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Appends this value's JSON encoding to `out`.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => write_f64(*v, out),
            Value::Str(s) => write_escaped(s, out),
        }
    }

    /// This value as a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

/// Appends `v` as a JSON number. Rust's `Display` for `f64` is the
/// shortest exact round-trip representation, which is deterministic
/// across platforms; non-finite values have no JSON encoding and become
/// `null`.
pub fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends `s` as a quoted, escaped JSON string.
///
/// Escaping rules: the two mandatory characters (`"` and `\`), the
/// common control shorthands (`\n`, `\r`, `\t`), `\uXXXX` for the
/// remaining C0 controls **and** DEL (`\u{7f}`) — raw DEL is legal JSON
/// but trips naive line-oriented consumers — and everything else,
/// including astral-plane characters, verbatim as UTF-8.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || c == '\u{7f}' => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a `"key":value` pair list (no braces) for the given fields.
pub fn write_fields(fields: &[(&str, Value)], out: &mut String) {
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(key, out);
        out.push(':');
        value.write_json(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_encode() {
        assert_eq!(Value::Null.to_json(), "null");
        assert_eq!(Value::Bool(true).to_json(), "true");
        assert_eq!(Value::I64(-3).to_json(), "-3");
        assert_eq!(
            Value::U64(18_446_744_073_709_551_615).to_json(),
            "18446744073709551615"
        );
        assert_eq!(Value::F64(1.5).to_json(), "1.5");
        assert_eq!(Value::F64(1.0).to_json(), "1");
        assert_eq!(Value::F64(f64::NAN).to_json(), "null");
        assert_eq!(Value::F64(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Value::str("a\"b\\c\n").to_json(), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(Value::str("\u{1}").to_json(), "\"\\u0001\"");
        assert_eq!(Value::str("héllo").to_json(), "\"héllo\"");
    }

    #[test]
    fn every_c0_control_and_del_escape_as_u_sequences() {
        for cp in (0u32..0x20).chain([0x7f]) {
            let c = char::from_u32(cp).unwrap();
            let enc = Value::str(c.to_string()).to_json();
            assert!(
                !enc.chars().any(|c| c.is_control()),
                "raw control {cp:#04x} leaked into {enc:?}"
            );
            match c {
                '\n' => assert_eq!(enc, "\"\\n\""),
                '\r' => assert_eq!(enc, "\"\\r\""),
                '\t' => assert_eq!(enc, "\"\\t\""),
                _ => assert_eq!(enc, format!("\"\\u{cp:04x}\"")),
            }
        }
    }

    #[test]
    fn astral_plane_and_bmp_unicode_pass_through_raw() {
        // Raw (unescaped) non-ASCII is valid JSON; the encoder never
        // uses surrogate-pair escapes, keeping output bytes == input
        // bytes for printable text.
        for s in ["🦀", "𝒳", "\u{10FFFF}", "中文", "\u{80}", "\u{9f}"] {
            assert_eq!(Value::str(s).to_json(), format!("\"{s}\""));
        }
    }

    #[test]
    fn floats_round_trip() {
        for v in [0.1, 1e-9, 123456.789, 2.2250738585072014e-308] {
            let enc = Value::F64(v).to_json();
            let back: f64 = enc.parse().unwrap();
            assert_eq!(back, v, "{enc}");
        }
    }

    #[test]
    fn field_lists_join() {
        let mut out = String::new();
        write_fields(&[("a", Value::U64(1)), ("b", Value::str("x"))], &mut out);
        assert_eq!(out, "\"a\":1,\"b\":\"x\"");
    }
}
