//! The observability sink bundle.
//!
//! Every instrumented component used to carry the same three optional
//! handles — `Option<TraceHandle>`, `Option<MetricsHandle>`,
//! `Option<FlightHandle>` — plus a private `emit` that mirrored each
//! event onto the flight timeline and the trace stream. [`ObsSinks`]
//! is that triplet as one value: build it once, clone it into every
//! component (handles are cheap `Rc` clones), and emit through
//! [`ObsSinks::instant`].
//!
//! The mirroring order is part of the contract: flight first, then
//! trace, exactly as the per-component `emit` helpers did — so
//! converting a component to `ObsSinks` changes no recorded byte.

use crate::flight::FlightHandle;
use crate::json::Value;
use crate::metrics::MetricsHandle;
use crate::trace::{TraceHandle, TraceLevel};
use ic_sim::time::SimTime;

/// A bundle of optional observability sinks: trace stream, metrics
/// registry, flight recorder.
#[derive(Clone, Default)]
pub struct ObsSinks {
    trace: Option<TraceHandle>,
    metrics: Option<MetricsHandle>,
    flight: Option<FlightHandle>,
}

/// Sinks compare by *identity* (two bundles are equal when they point
/// at the same recorders), so components that derive `PartialEq` can
/// carry an `ObsSinks` without comparing recorder contents.
impl PartialEq for ObsSinks {
    fn eq(&self, other: &Self) -> bool {
        fn same<T>(a: &Option<std::rc::Rc<T>>, b: &Option<std::rc::Rc<T>>) -> bool {
            match (a, b) {
                (None, None) => true,
                (Some(a), Some(b)) => std::rc::Rc::ptr_eq(a, b),
                _ => false,
            }
        }
        same(&self.trace, &other.trace)
            && same(&self.metrics, &other.metrics)
            && same(&self.flight, &other.flight)
    }
}

impl std::fmt::Debug for ObsSinks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsSinks")
            .field("trace", &self.trace.is_some())
            .field("metrics", &self.metrics.is_some())
            .field("flight", &self.flight.is_some())
            .finish()
    }
}

impl ObsSinks {
    /// An empty bundle: nothing attached, every emit is a no-op.
    pub fn none() -> Self {
        ObsSinks::default()
    }

    /// Adds a trace recorder (builder style).
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Adds a metrics registry (builder style).
    pub fn with_metrics(mut self, metrics: MetricsHandle) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Adds a flight recorder (builder style).
    pub fn with_flight(mut self, flight: FlightHandle) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Attaches (or replaces) the trace recorder.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Attaches (or replaces) the metrics registry.
    pub fn set_metrics(&mut self, metrics: MetricsHandle) {
        self.metrics = Some(metrics);
    }

    /// Attaches (or replaces) the flight recorder.
    pub fn set_flight(&mut self, flight: FlightHandle) {
        self.flight = Some(flight);
    }

    /// The trace recorder, if attached.
    pub fn trace(&self) -> Option<&TraceHandle> {
        self.trace.as_ref()
    }

    /// The metrics registry, if attached.
    pub fn metrics(&self) -> Option<&MetricsHandle> {
        self.metrics.as_ref()
    }

    /// The flight recorder, if attached.
    pub fn flight(&self) -> Option<&FlightHandle> {
        self.flight.as_ref()
    }

    /// `true` when no sink is attached (emits cost nothing).
    pub fn is_quiet(&self) -> bool {
        self.trace.is_none() && self.metrics.is_none() && self.flight.is_none()
    }

    /// Emits one structured event at simulation time `at`: mirrored as
    /// an instant on the flight timeline (if attached), then onto the
    /// trace stream (if attached) — the order every component's private
    /// `emit` used, preserved so migrated call sites stay
    /// byte-identical.
    pub fn instant(
        &self,
        at: SimTime,
        target: &'static str,
        level: TraceLevel,
        kind: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) {
        if let Some(flight) = &self.flight {
            flight
                .borrow_mut()
                .instant_at(at, target, kind, level, fields.clone());
        }
        if let Some(trace) = &self.trace {
            trace.borrow_mut().emit(at, target, level, kind, fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::shared_flight;
    use crate::metrics::shared_registry;
    use crate::trace::shared_recorder;

    #[test]
    fn quiet_bundle_swallows_events() {
        let sinks = ObsSinks::none();
        assert!(sinks.is_quiet());
        sinks.instant(
            SimTime::from_secs(1),
            "t",
            TraceLevel::Info,
            "k",
            vec![("x", Value::U64(1))],
        );
    }

    #[test]
    fn instant_mirrors_to_flight_and_trace() {
        let trace = shared_recorder(16);
        let flight = shared_flight(16);
        let sinks = ObsSinks::none()
            .with_trace(trace.clone())
            .with_flight(flight.clone());
        assert!(!sinks.is_quiet());
        sinks.instant(
            SimTime::from_secs(2),
            "ctrl",
            TraceLevel::Info,
            "tick",
            vec![("n", Value::U64(3))],
        );
        assert_eq!(trace.borrow().counts_by_kind()[&("ctrl", "tick")], 1);
        assert_eq!(flight.borrow().counts_by_kind()[&("ctrl", "tick")], 1);
    }

    #[test]
    fn setters_and_accessors_round_trip() {
        let mut sinks = ObsSinks::none();
        sinks.set_trace(shared_recorder(8));
        sinks.set_metrics(shared_registry());
        sinks.set_flight(shared_flight(8));
        assert!(sinks.trace().is_some());
        assert!(sinks.metrics().is_some());
        assert!(sinks.flight().is_some());
    }
}
