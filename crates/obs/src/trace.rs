//! Structured trace events with deterministic ordering and bounded
//! memory.
//!
//! Every event is keyed by the *simulation* clock plus a recorder-local
//! sequence number — never wall clock — so two same-seed runs emit
//! byte-identical traces (asserted by `tests/trace_determinism.rs`).
//! The recorder is a ring buffer: when full it drops the **oldest**
//! events and counts them, so a long run keeps the most recent window
//! without unbounded growth.

use crate::json::{write_escaped, write_fields, Value};
use ic_sim::time::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io;
use std::rc::Rc;

/// Event severity. `Debug` is for per-step records (high volume);
/// `Info` for state transitions; `Warn` for anomalies (rejections,
/// failovers, budget violations); `Error` for invariant breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// High-volume per-step records.
    Debug,
    /// State transitions and decisions.
    Info,
    /// Anomalies: rejections, failures, budget violations.
    Warn,
    /// Invariant violations — a run that emits one is suspect.
    Error,
}

/// The environment variable read by [`TraceLevel::from_env`],
/// [`TraceRecorder::from_env`], and the flight recorder's
/// `from_env` constructors: set to `error`, `warn`, `info`, or `debug`
/// to choose the minimum recorded level.
pub const LEVEL_ENV: &str = "IC_OBS_LEVEL";

impl TraceLevel {
    /// The lowercase name used in serialized output.
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Debug => "debug",
            TraceLevel::Info => "info",
            TraceLevel::Warn => "warn",
            TraceLevel::Error => "error",
        }
    }

    /// Parses a level name (case-insensitive): `error`, `warn`, `info`,
    /// or `debug`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "debug" => Some(TraceLevel::Debug),
            "info" => Some(TraceLevel::Info),
            "warn" | "warning" => Some(TraceLevel::Warn),
            "error" => Some(TraceLevel::Error),
            _ => None,
        }
    }

    /// The level named by the `IC_OBS_LEVEL` environment variable, or
    /// `None` when the variable is unset or unparseable (callers keep
    /// their default).
    pub fn from_env() -> Option<Self> {
        std::env::var(LEVEL_ENV).ok().and_then(|s| Self::parse(&s))
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub sim_time: SimTime,
    /// Recorder-assigned sequence number (total order within a run).
    pub seq: u64,
    /// The subsystem that emitted the event (e.g. `"asc"`, `"governor"`).
    pub target: &'static str,
    /// Severity.
    pub level: TraceLevel,
    /// Event kind within the target (e.g. `"scale_out"`).
    pub kind: &'static str,
    /// Structured payload, in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

impl TraceEvent {
    /// This event as one JSON object (no trailing newline).
    ///
    /// Schema: `{"t_ns":…,"seq":…,"target":…,"level":…,"kind":…,
    /// "fields":{…}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96 + 24 * self.fields.len());
        out.push_str("{\"t_ns\":");
        out.push_str(&self.sim_time.as_nanos().to_string());
        out.push_str(",\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"target\":");
        write_escaped(self.target, &mut out);
        out.push_str(",\"level\":\"");
        out.push_str(self.level.name());
        out.push_str("\",\"kind\":");
        write_escaped(self.kind, &mut out);
        out.push_str(",\"fields\":{");
        write_fields(
            &self
                .fields
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect::<Vec<_>>(),
            &mut out,
        );
        out.push_str("}}");
        out
    }

    /// This event as one CSV row matching [`TraceRecorder::CSV_HEADER`];
    /// the fields column is the JSON payload, quoted.
    pub fn to_csv_row(&self) -> String {
        let mut fields_json = String::from("{");
        write_fields(
            &self
                .fields
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect::<Vec<_>>(),
            &mut fields_json,
        );
        fields_json.push('}');
        format!(
            "{},{},{},{},{},\"{}\"",
            self.sim_time.as_nanos(),
            self.seq,
            self.target,
            self.level.name(),
            self.kind,
            fields_json.replace('"', "\"\"")
        )
    }
}

/// A bounded recorder of [`TraceEvent`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecorder {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    min_level: TraceLevel,
}

impl TraceRecorder {
    /// CSV column header matching [`TraceEvent::to_csv_row`].
    pub const CSV_HEADER: &'static str = "t_ns,seq,target,level,kind,fields";

    /// Creates a recorder keeping at most `capacity` events (the oldest
    /// are dropped first once full).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceRecorder {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            next_seq: 0,
            dropped: 0,
            min_level: TraceLevel::Debug,
        }
    }

    /// Like [`new`](Self::new), but the minimum level comes from the
    /// `IC_OBS_LEVEL` environment variable (`error`/`warn`/`info`/
    /// `debug`); unset or unparseable keeps the `Debug` default, so
    /// existing callers see no behavior change.
    pub fn from_env(capacity: usize) -> Self {
        let mut rec = Self::new(capacity);
        if let Some(level) = TraceLevel::from_env() {
            rec.set_min_level(level);
        }
        rec
    }

    /// Suppresses events below `level` (they consume no sequence
    /// numbers, so a run filtered to `Info` is still deterministic).
    pub fn set_min_level(&mut self, level: TraceLevel) {
        self.min_level = level;
    }

    /// `true` if an event at `level` would be recorded.
    pub fn enabled(&self, level: TraceLevel) -> bool {
        level >= self.min_level
    }

    /// Records an event and returns its sequence number; returns `None`
    /// when the event is below the level filter.
    pub fn emit(
        &mut self,
        sim_time: SimTime,
        target: &'static str,
        level: TraceLevel,
        kind: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) -> Option<u64> {
        if !self.enabled(level) {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            sim_time,
            seq,
            target,
            level,
            kind,
            fields,
        });
        Some(seq)
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (retained + dropped).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Clears retained events (sequence numbers keep increasing, so a
    /// cleared recorder still yields a globally ordered stream).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Retained-event counts by `(target, kind)`, deterministically
    /// ordered.
    pub fn counts_by_kind(&self) -> BTreeMap<(&'static str, &'static str), u64> {
        let mut counts = BTreeMap::new();
        for e in &self.events {
            *counts.entry((e.target, e.kind)).or_insert(0) += 1;
        }
        counts
    }

    /// All retained events as JSONL (one object per line, trailing
    /// newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// All retained events as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for e in &self.events {
            out.push_str(&e.to_csv_row());
            out.push('\n');
        }
        out
    }

    /// Streams the retained events as JSONL into `w`.
    pub fn write_jsonl<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        for e in &self.events {
            writeln!(w, "{}", e.to_json())?;
        }
        Ok(())
    }
}

/// A shareable recorder handle for single-threaded simulations: the
/// driver keeps one clone, instrumented components keep others.
pub type TraceHandle = Rc<RefCell<TraceRecorder>>;

/// Creates a [`TraceHandle`] with the given ring capacity.
pub fn shared_recorder(capacity: usize) -> TraceHandle {
    Rc::new(RefCell::new(TraceRecorder::new(capacity)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rec: &mut TraceRecorder, secs: u64, kind: &'static str) -> Option<u64> {
        rec.emit(
            SimTime::from_secs(secs),
            "test",
            TraceLevel::Info,
            kind,
            vec![("x", Value::U64(secs))],
        )
    }

    #[test]
    fn emits_with_increasing_seq() {
        let mut rec = TraceRecorder::new(8);
        assert_eq!(ev(&mut rec, 1, "a"), Some(0));
        assert_eq!(ev(&mut rec, 2, "b"), Some(1));
        let events: Vec<_> = rec.events().collect();
        assert_eq!(events.len(), 2);
        assert!(events[0].seq < events[1].seq);
    }

    #[test]
    fn ring_drops_oldest() {
        let mut rec = TraceRecorder::new(3);
        for i in 0..5 {
            ev(&mut rec, i, "tick");
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        assert_eq!(rec.total_recorded(), 5);
        let first = rec.events().next().unwrap();
        assert_eq!(first.seq, 2); // 0 and 1 were evicted
    }

    #[test]
    fn level_filter_suppresses_without_seq() {
        let mut rec = TraceRecorder::new(8);
        rec.set_min_level(TraceLevel::Info);
        assert_eq!(
            rec.emit(SimTime::ZERO, "t", TraceLevel::Debug, "noisy", vec![]),
            None
        );
        assert_eq!(ev(&mut rec, 1, "a"), Some(0));
        assert!(!rec.enabled(TraceLevel::Debug));
        assert!(rec.enabled(TraceLevel::Warn));
    }

    #[test]
    fn jsonl_schema() {
        let mut rec = TraceRecorder::new(8);
        rec.emit(
            SimTime::from_millis(1500),
            "asc",
            TraceLevel::Warn,
            "reject",
            vec![("vm", Value::U64(7)), ("why", Value::str("capacity"))],
        );
        let line = rec.to_jsonl();
        assert_eq!(
            line,
            "{\"t_ns\":1500000000,\"seq\":0,\"target\":\"asc\",\"level\":\"warn\",\
             \"kind\":\"reject\",\"fields\":{\"vm\":7,\"why\":\"capacity\"}}\n"
        );
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut rec = TraceRecorder::new(8);
        ev(&mut rec, 2, "a");
        let csv = rec.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(TraceRecorder::CSV_HEADER));
        let row = lines.next().unwrap();
        assert!(row.starts_with("2000000000,0,test,info,a,"));
        assert!(row.contains("\"\"x\"\""), "quotes doubled: {row}");
    }

    #[test]
    fn counts_by_kind_orders_deterministically() {
        let mut rec = TraceRecorder::new(16);
        ev(&mut rec, 1, "b");
        ev(&mut rec, 2, "a");
        ev(&mut rec, 3, "a");
        let counts = rec.counts_by_kind();
        let keys: Vec<_> = counts.keys().collect();
        assert_eq!(keys, vec![&("test", "a"), &("test", "b")]);
        assert_eq!(counts[&("test", "a")], 2);
    }

    #[test]
    fn level_parse_and_order() {
        assert_eq!(TraceLevel::parse("DEBUG"), Some(TraceLevel::Debug));
        assert_eq!(TraceLevel::parse(" info "), Some(TraceLevel::Info));
        assert_eq!(TraceLevel::parse("warning"), Some(TraceLevel::Warn));
        assert_eq!(TraceLevel::parse("error"), Some(TraceLevel::Error));
        assert_eq!(TraceLevel::parse("loud"), None);
        assert!(TraceLevel::Error > TraceLevel::Warn);
        assert!(TraceLevel::Warn > TraceLevel::Info);
        assert!(TraceLevel::Info > TraceLevel::Debug);
        assert_eq!(TraceLevel::Error.name(), "error");
    }

    #[test]
    fn error_level_filter_keeps_only_errors() {
        let mut rec = TraceRecorder::new(8);
        rec.set_min_level(TraceLevel::Error);
        assert_eq!(
            rec.emit(SimTime::ZERO, "t", TraceLevel::Warn, "odd", vec![]),
            None
        );
        assert_eq!(
            rec.emit(SimTime::ZERO, "t", TraceLevel::Error, "bad", vec![]),
            Some(0)
        );
    }

    #[test]
    fn write_jsonl_matches_to_jsonl() {
        let mut rec = TraceRecorder::new(4);
        ev(&mut rec, 1, "a");
        let mut buf = Vec::new();
        rec.write_jsonl(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), rec.to_jsonl());
    }
}
