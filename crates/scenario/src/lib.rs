//! # ic-scenario — the calibration surface as data
//!
//! Every constant the models are calibrated against — the Table II
//! fluids, the Table III platform fits (R_th, measured power, observed
//! T_j), the tank prototypes, the V/f anchor points and leakage deltas
//! of Section 4, the Table V lifetime fit points, and the Table
//! VII/VIII/IX workload catalogs — lives here as one plain-data
//! [`Scenario`] value. [`Scenario::paper`] reproduces the paper's
//! calibration exactly; the preset constructors in `ic-thermal`,
//! `ic-power`, `ic-reliability`, and `ic-workloads` are thin wrappers
//! over it. A scenario serializes to JSON ([`Scenario::to_json`]) and
//! back ([`Scenario::from_json`]), so experiments can run against an
//! edited calibration without recompiling.
//!
//! The vendored `serde` is a hermetic stub, so the JSON codec is
//! hand-rolled in [`json`]; floats use shortest round-trip formatting,
//! which makes `paper() → JSON → from_json` reproduce every field
//! bit-for-bit.

use ic_sim::StreamVersion;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use std::sync::{Mutex, OnceLock};

pub mod json;

use json::Json;

/// An error producing or consuming a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The input was not valid JSON.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The JSON was valid but did not match the scenario schema.
    Schema {
        /// Dotted path to the offending field.
        path: String,
        /// What went wrong.
        message: String,
    },
    /// The scenario decoded but fails semantic validation.
    Invalid {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse { offset, message } => {
                write!(f, "scenario JSON parse error at byte {offset}: {message}")
            }
            ScenarioError::Schema { path, message } => {
                write!(f, "scenario schema error at {path}: {message}")
            }
            ScenarioError::Invalid { message } => write!(f, "invalid scenario: {message}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Interns a string, returning a `&'static str` with the same content.
///
/// The model crates keep `&'static str` names (they predate scenarios
/// and are cheap to copy); scenario-driven constructors intern their
/// owned strings through this deduplicating pool, so repeated catalog
/// construction does not leak memory beyond one copy per distinct name.
pub fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    let mut set = pool.lock().expect("intern pool poisoned");
    if let Some(&hit) = set.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

// ---------------------------------------------------------------------
// The scenario tree
// ---------------------------------------------------------------------

/// A complete calibration scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable scenario name.
    pub name: String,
    /// Sampler stream version experiments built from this scenario use
    /// (see [`StreamVersion`]). `v1` replays every historical record
    /// byte-for-byte; `v2` selects the buffered ziggurat fast path with
    /// a different (still seed-deterministic) value sequence. Scenario
    /// JSON written before this field existed decodes as `v1`.
    pub rng_stream: StreamVersion,
    /// Fluids, platform fits, and tank prototypes (`ic-thermal`).
    pub thermal: ThermalCalibration,
    /// V/f anchors and the leakage model (`ic-power`).
    pub power: PowerCalibration,
    /// Failure-mechanism fits and Table V points (`ic-reliability`).
    pub reliability: ReliabilityCalibration,
    /// Application and configuration catalogs (`ic-workloads`).
    pub workloads: WorkloadCalibration,
    /// Optional fault-injection configuration (`ic-chaos`). Scenario
    /// JSON written before fault injection existed decodes as `None`,
    /// and `None` is omitted on encode, so fault-free scenarios
    /// round-trip byte-identically to their historical form.
    pub faults: Option<FaultConfig>,
}

/// Thermal calibration: Table II fluids, Table III platform fits, and
/// the three tank prototypes of Section 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalCalibration {
    /// Dielectric fluids (Table II).
    pub fluids: Vec<FluidSpec>,
    /// Calibrated platforms (Table III rows, in table order).
    pub platforms: Vec<PlatformSpec>,
    /// Tank prototypes.
    pub tanks: Vec<TankSpec>,
}

/// One Table II dielectric fluid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FluidSpec {
    /// Marketing name, e.g. `"3M FC-3284"`.
    pub name: String,
    /// Boiling point at one atmosphere, °C.
    pub boiling_point_c: f64,
    /// Relative dielectric constant.
    pub dielectric_constant: f64,
    /// Latent heat of vaporization, J/g.
    pub latent_heat_j_per_g: f64,
    /// Useful life, years.
    pub useful_life_years: f64,
    /// Whether the fluid has high global-warming potential.
    pub high_gwp: bool,
}

/// How a platform is cooled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoolingSpec {
    /// Forced air: reference temperature is `inlet_c + case_rise_c`.
    Air {
        /// Server inlet temperature, °C.
        inlet_c: f64,
        /// Case-to-inlet temperature rise, °C.
        case_rise_c: f64,
    },
    /// Two-phase immersion: reference is the fluid's boiling point plus
    /// superheat.
    TwoPhase {
        /// Name of a fluid in [`ThermalCalibration::fluids`].
        fluid: String,
        /// Bath superheat above the boiling point, °C.
        superheat_c: f64,
    },
}

/// One calibrated Table III platform: a SKU under a cooling setup with
/// its fitted junction-to-reference thermal resistance and the measured
/// operating point the fit anchors to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Row label, e.g. `"Skylake 8168 / Air"`.
    pub label: String,
    /// SKU name, resolvable via `CpuSku::by_name`.
    pub sku: String,
    /// Cooling setup.
    pub cooling: CoolingSpec,
    /// Junction-to-reference thermal resistance, °C/W.
    pub r_th_c_per_w: f64,
    /// Measured package power at the calibration point, W.
    pub measured_power_w: f64,
    /// Observed junction temperature at that power, °C.
    pub observed_tj_c: f64,
}

/// One tank prototype.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TankSpec {
    /// Prototype name.
    pub name: String,
    /// Name of a fluid in [`ThermalCalibration::fluids`].
    pub fluid: String,
    /// Number of server slots.
    pub server_slots: u32,
    /// Condenser heat-rejection capacity, W.
    pub condenser_capacity_w: f64,
    /// Whether the tank is sealed (vapor recovery).
    pub sealed: bool,
}

/// Power calibration: the measured Skylake V/f anchor points and the
/// leakage model of Section 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerCalibration {
    /// V/f anchor points.
    pub vf: VfAnchors,
    /// Leakage-power model coefficients.
    pub leakage: LeakageSpec,
}

/// The two measured V/f anchor points: nominal, and the overclocked
/// point at `nominal × oc_frequency_ratio`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VfAnchors {
    /// Nominal (all-core turbo) frequency, GHz.
    pub nominal_ghz: f64,
    /// Supply voltage at the nominal point, V.
    pub nominal_v: f64,
    /// Overclock frequency as a ratio of nominal (the paper's +23 %).
    pub oc_frequency_ratio: f64,
    /// Supply voltage at the overclocked point, V.
    pub oc_v: f64,
}

/// Leakage-power coefficients: `P_leak = k · V² · exp(β · T_j)`.
///
/// `k_w` is pre-fitted (for the paper, from the measured 11 W saving
/// between 92 °C and 68 °C at 0.90 V) so the model is fully determined
/// by the two numbers stored here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeakageSpec {
    /// Temperature sensitivity β, 1/°C.
    pub beta_per_c: f64,
    /// Scale coefficient k, W/V².
    pub k_w_per_v2: f64,
}

/// Reliability calibration: the three failure-mechanism fits and the
/// Table V operating points they were fitted against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityCalibration {
    /// Gate-oxide breakdown fit.
    pub gate_oxide: GateOxideSpec,
    /// Electromigration fit.
    pub electromigration: ElectromigrationSpec,
    /// Thermal-cycling fit.
    pub thermal_cycling: ThermalCyclingSpec,
    /// Table V rows: cooling setup, operating conditions, paper
    /// lifetime.
    pub table5: Vec<LifetimePointSpec>,
}

/// Gate-oxide breakdown: `rate = exp(ln_a) · exp(γV) · exp(−Ea/kT)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateOxideSpec {
    /// Natural log of the pre-exponential constant.
    pub ln_a: f64,
    /// Voltage acceleration γ, 1/V.
    pub gamma_per_v: f64,
    /// Activation energy, eV.
    pub ea_ev: f64,
}

/// Electromigration: `rate = exp(ln_a) · exp(−Ea/kT)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElectromigrationSpec {
    /// Natural log of the pre-exponential constant.
    pub ln_a: f64,
    /// Activation energy, eV.
    pub ea_ev: f64,
}

/// Thermal cycling: `rate = exp(ln_b) · ΔT_j^q`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalCyclingSpec {
    /// Natural log of the Coffin–Manson coefficient.
    pub ln_b: f64,
    /// Coffin–Manson exponent.
    pub q: f64,
}

/// One Table V operating point with the paper's projected lifetime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimePointSpec {
    /// Cooling label, e.g. `"Air cooling"` or `"FC-3284"`.
    pub cooling: String,
    /// Whether the point is overclocked.
    pub overclocked: bool,
    /// Supply voltage, V.
    pub voltage_v: f64,
    /// Maximum junction temperature, °C.
    pub tj_max_c: f64,
    /// Minimum (idle) junction temperature, °C.
    pub tj_min_c: f64,
    /// The paper's projected lifetime, years.
    pub paper_years: f64,
}

/// Workload calibration: the Table IX applications and the Table
/// VII/VIII CPU and GPU configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadCalibration {
    /// Applications (Table IX, in table order).
    pub apps: Vec<AppSpec>,
    /// CPU configurations (Table VII, in table order).
    pub cpu_configs: Vec<CpuConfigSpec>,
    /// GPU configurations (Table VIII, in table order).
    pub gpu_configs: Vec<GpuConfigSpec>,
}

/// Valid values for [`AppSpec::metric`].
pub const METRICS: [&str; 5] = [
    "p95_latency",
    "p99_latency",
    "seconds",
    "ops_per_sec",
    "mb_per_sec",
];

/// One Table IX application profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Application name.
    pub name: String,
    /// Cores used.
    pub cores: u32,
    /// `true` for in-house workloads, `false` for public benchmarks.
    pub in_house: bool,
    /// One-line description.
    pub description: String,
    /// Reported metric; one of [`METRICS`].
    pub metric: String,
    /// Whether the application is latency-sensitive.
    pub latency_sensitive: bool,
    /// Fraction of time bound on the core clock.
    pub core_share: f64,
    /// Fraction bound on the uncore/LLC clock.
    pub llc_share: f64,
    /// Fraction bound on the memory clock.
    pub memory_share: f64,
    /// Clock-insensitive fraction.
    pub fixed_share: f64,
    /// Sustained memory bandwidth, GB/s.
    pub mem_bw_gbps: f64,
}

/// One Table VII CPU configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuConfigSpec {
    /// Row label, e.g. `"OC3"`.
    pub name: String,
    /// Core frequency, GHz.
    pub core_ghz: f64,
    /// Voltage offset, mV.
    pub voltage_offset_mv: i32,
    /// Whether opportunistic turbo is enabled.
    pub turbo: bool,
    /// Uncore/LLC frequency, GHz.
    pub llc_ghz: f64,
    /// Memory frequency, GHz.
    pub memory_ghz: f64,
}

/// One Table VIII GPU configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfigSpec {
    /// Row label, e.g. `"OCG2"`.
    pub name: String,
    /// Board power limit, W.
    pub power_limit_w: f64,
    /// Sustained (base) core clock, GHz.
    pub base_ghz: f64,
    /// Boost (turbo) core clock, GHz.
    pub turbo_ghz: f64,
    /// GDDR memory clock, GHz.
    pub memory_ghz: f64,
    /// Voltage offset, mV.
    pub voltage_offset_mv: i32,
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

/// Deterministic fault-injection configuration, consumed by the
/// `ic-chaos` crate and carried on `FleetConfig` into composed worlds.
///
/// Hardware faults (server failures, correctable-error bursts) are
/// drawn from ic-reliability's wear models along each server's actual
/// operating-point history; the `*_scale` knobs accelerate the
/// multi-year physical rates onto simulated-minute horizons without
/// distorting their relative (V, T_j) sensitivity. Control-plane
/// faults (stale telemetry, sensor dropout, stalled controllers) fire
/// at fixed scheduled windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Chaos RNG seed. Per-server draw streams are counter-split from
    /// this seed, disjoint from the workload streams, so fault timing
    /// is pure in `(seed, server)` and independent of fleet size.
    pub seed: u64,
    /// Multiplier on the wear-model failure rate (accelerated aging; 0
    /// disables wear failures).
    pub hazard_scale: f64,
    /// Multiplier on the correctable-error burst intensity (0 disables
    /// error bursts).
    pub error_scale: f64,
    /// Shortest repair time, seconds. Each failure draws its repair
    /// delay uniformly from `[repair_min_s, repair_max_s]`.
    pub repair_min_s: f64,
    /// Longest repair time, seconds.
    pub repair_max_s: f64,
    /// Stale-telemetry windows: every controller sees a snapshot frozen
    /// at the window's start until the window ends.
    pub stale_telemetry: Vec<FaultWindow>,
    /// Sensor dropouts: the VM's telemetry row is hidden inside the
    /// window.
    pub sensor_dropouts: Vec<SensorDropout>,
    /// Stalled controllers, by controller name: the named controller
    /// makes no decisions inside the window.
    pub stalled_controllers: Vec<StalledWindow>,
}

/// A half-open `[from_s, until_s)` fault window, seconds of sim time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// Window start, seconds.
    pub from_s: f64,
    /// Window end, seconds.
    pub until_s: f64,
}

/// One VM telemetry sensor going dark for a window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorDropout {
    /// The VM whose row is hidden.
    pub vm: u64,
    /// The dropout window.
    pub window: FaultWindow,
}

/// One controller stalled (making no decisions) for a window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StalledWindow {
    /// The stalled controller's `Controller::name`.
    pub controller: String,
    /// The stall window.
    pub window: FaultWindow,
}

impl FaultConfig {
    /// A configuration that injects nothing: zero hazard and error
    /// scales, no control-plane fault windows. Useful as a builder
    /// starting point.
    pub fn disabled() -> FaultConfig {
        FaultConfig {
            seed: 0,
            hazard_scale: 0.0,
            error_scale: 0.0,
            repair_min_s: 60.0,
            repair_max_s: 120.0,
            stale_telemetry: Vec::new(),
            sensor_dropouts: Vec::new(),
            stalled_controllers: Vec::new(),
        }
    }

    /// Validates scales, repair window, and fault windows.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let fail = |message: String| Err(ScenarioError::Invalid { message });
        if !self.hazard_scale.is_finite() || self.hazard_scale < 0.0 {
            return fail(format!(
                "faults.hazard_scale must be finite and >= 0, got {}",
                self.hazard_scale
            ));
        }
        if !self.error_scale.is_finite() || self.error_scale < 0.0 {
            return fail(format!(
                "faults.error_scale must be finite and >= 0, got {}",
                self.error_scale
            ));
        }
        if !(self.repair_min_s.is_finite() && self.repair_max_s.is_finite())
            || self.repair_min_s < 0.0
            || self.repair_min_s > self.repair_max_s
        {
            return fail(format!(
                "faults repair window must satisfy 0 <= repair_min_s <= repair_max_s, got [{}, {}]",
                self.repair_min_s, self.repair_max_s
            ));
        }
        let windows = self
            .stale_telemetry
            .iter()
            .chain(self.sensor_dropouts.iter().map(|d| &d.window))
            .chain(self.stalled_controllers.iter().map(|sc| &sc.window));
        for w in windows {
            if !(w.from_s.is_finite() && w.until_s.is_finite()) || w.from_s > w.until_s {
                return fail(format!(
                    "fault window [{}, {}) must have from_s <= until_s",
                    w.from_s, w.until_s
                ));
            }
        }
        Ok(())
    }

    fn to_tree(&self) -> Json {
        obj(vec![
            ("seed", num(self.seed as f64)),
            ("hazard_scale", num(self.hazard_scale)),
            ("error_scale", num(self.error_scale)),
            ("repair_min_s", num(self.repair_min_s)),
            ("repair_max_s", num(self.repair_max_s)),
            (
                "stale_telemetry",
                Json::Arr(self.stale_telemetry.iter().map(|w| w.to_tree()).collect()),
            ),
            (
                "sensor_dropouts",
                Json::Arr(self.sensor_dropouts.iter().map(|d| d.to_tree()).collect()),
            ),
            (
                "stalled_controllers",
                Json::Arr(
                    self.stalled_controllers
                        .iter()
                        .map(StalledWindow::to_tree)
                        .collect(),
                ),
            ),
        ])
    }

    fn from_tree(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        Ok(FaultConfig {
            seed: u64_field(v, "seed", path)?,
            hazard_scale: f64_field(v, "hazard_scale", path)?,
            error_scale: f64_field(v, "error_scale", path)?,
            repair_min_s: f64_field(v, "repair_min_s", path)?,
            repair_max_s: f64_field(v, "repair_max_s", path)?,
            stale_telemetry: decode_vec(v, "stale_telemetry", path, FaultWindow::from_tree)?,
            sensor_dropouts: decode_vec(v, "sensor_dropouts", path, SensorDropout::from_tree)?,
            stalled_controllers: decode_vec(
                v,
                "stalled_controllers",
                path,
                StalledWindow::from_tree,
            )?,
        })
    }
}

impl FaultWindow {
    fn to_tree(self) -> Json {
        obj(vec![
            ("from_s", num(self.from_s)),
            ("until_s", num(self.until_s)),
        ])
    }

    fn from_tree(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        Ok(FaultWindow {
            from_s: f64_field(v, "from_s", path)?,
            until_s: f64_field(v, "until_s", path)?,
        })
    }
}

impl SensorDropout {
    fn to_tree(self) -> Json {
        obj(vec![
            ("vm", num(self.vm as f64)),
            ("window", self.window.to_tree()),
        ])
    }

    fn from_tree(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        Ok(SensorDropout {
            vm: u64_field(v, "vm", path)?,
            window: FaultWindow::from_tree(field(v, "window", path)?, &format!("{path}.window"))?,
        })
    }
}

impl StalledWindow {
    fn to_tree(&self) -> Json {
        obj(vec![
            ("controller", s(&self.controller)),
            ("window", self.window.to_tree()),
        ])
    }

    fn from_tree(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        Ok(StalledWindow {
            controller: str_field(v, "controller", path)?,
            window: FaultWindow::from_tree(field(v, "window", path)?, &format!("{path}.window"))?,
        })
    }
}

// ---------------------------------------------------------------------
// Paper presets
// ---------------------------------------------------------------------

impl Scenario {
    /// The paper's calibration, exactly as hardcoded in the seed models.
    pub fn paper() -> Scenario {
        Scenario {
            name: "paper".to_string(),
            // The paper's records predate stream versioning: pinned v1.
            rng_stream: StreamVersion::V1,
            thermal: ThermalCalibration::paper(),
            power: PowerCalibration::paper(),
            reliability: ReliabilityCalibration::paper(),
            workloads: WorkloadCalibration::paper(),
            faults: None,
        }
    }
}

impl ThermalCalibration {
    /// The paper's fluids, Table III platform fits, and tanks.
    pub fn paper() -> ThermalCalibration {
        let fc = "3M FC-3284".to_string();
        ThermalCalibration {
            fluids: vec![
                FluidSpec {
                    name: fc.clone(),
                    boiling_point_c: 50.0,
                    dielectric_constant: 1.86,
                    latent_heat_j_per_g: 105.0,
                    useful_life_years: 30.0,
                    high_gwp: true,
                },
                FluidSpec {
                    name: "3M HFE-7000".to_string(),
                    boiling_point_c: 34.0,
                    dielectric_constant: 7.4,
                    latent_heat_j_per_g: 142.0,
                    useful_life_years: 30.0,
                    high_gwp: true,
                },
            ],
            platforms: vec![
                PlatformSpec {
                    label: "Skylake 8168 / Air".to_string(),
                    sku: "Skylake 8168".to_string(),
                    cooling: CoolingSpec::Air {
                        inlet_c: 35.0,
                        case_rise_c: 12.0,
                    },
                    r_th_c_per_w: 0.22,
                    measured_power_w: 204.4,
                    observed_tj_c: 92.0,
                },
                PlatformSpec {
                    label: "Skylake 8168 / 2PIC FC-3284".to_string(),
                    sku: "Skylake 8168".to_string(),
                    cooling: CoolingSpec::TwoPhase {
                        fluid: fc.clone(),
                        superheat_c: 0.4,
                    },
                    r_th_c_per_w: 0.12,
                    measured_power_w: 204.5,
                    observed_tj_c: 75.0,
                },
                PlatformSpec {
                    label: "Skylake 8180 / Air".to_string(),
                    sku: "Skylake 8180".to_string(),
                    cooling: CoolingSpec::Air {
                        inlet_c: 35.0,
                        case_rise_c: 12.1,
                    },
                    r_th_c_per_w: 0.21,
                    measured_power_w: 204.5,
                    observed_tj_c: 90.0,
                },
                PlatformSpec {
                    label: "Skylake 8180 / 2PIC FC-3284".to_string(),
                    sku: "Skylake 8180".to_string(),
                    cooling: CoolingSpec::TwoPhase {
                        fluid: fc.clone(),
                        superheat_c: 1.6,
                    },
                    r_th_c_per_w: 0.08,
                    measured_power_w: 204.4,
                    observed_tj_c: 68.0,
                },
            ],
            tanks: vec![
                TankSpec {
                    name: "small tank #1 (Xeon W-3175X)".to_string(),
                    fluid: "3M HFE-7000".to_string(),
                    server_slots: 2,
                    condenser_capacity_w: 4000.0,
                    sealed: true,
                },
                TankSpec {
                    name: "small tank #2 (i9-9900K + RTX 2080 Ti)".to_string(),
                    fluid: fc.clone(),
                    server_slots: 2,
                    condenser_capacity_w: 4000.0,
                    sealed: true,
                },
                TankSpec {
                    name: "large tank (36 Open Compute blades)".to_string(),
                    fluid: fc,
                    server_slots: 36,
                    condenser_capacity_w: 36.0 * 900.0,
                    sealed: true,
                },
            ],
        }
    }

    /// Looks a fluid up by name.
    pub fn fluid(&self, name: &str) -> Option<&FluidSpec> {
        self.fluids.iter().find(|f| f.name == name)
    }
}

impl PowerCalibration {
    /// The paper's V/f anchors and leakage fit.
    pub fn paper() -> PowerCalibration {
        let beta = 0.022;
        PowerCalibration {
            vf: VfAnchors {
                nominal_ghz: 3.4,
                nominal_v: 0.90,
                oc_frequency_ratio: 1.23,
                oc_v: 0.98,
            },
            leakage: LeakageSpec {
                beta_per_c: beta,
                // Fitted so leakage at 0.90 V drops by the measured
                // 11 W between 92 °C (air) and 68 °C (immersion).
                k_w_per_v2: 11.0 / (0.81 * ((beta * 92.0_f64).exp() - (beta * 68.0_f64).exp())),
            },
        }
    }
}

impl ReliabilityCalibration {
    /// The paper's mechanism fits and Table V points.
    pub fn paper() -> ReliabilityCalibration {
        let row = |cooling: &str, overclocked, voltage_v, tj_max_c, tj_min_c, paper_years| {
            LifetimePointSpec {
                cooling: cooling.to_string(),
                overclocked,
                voltage_v,
                tj_max_c,
                tj_min_c,
                paper_years,
            }
        };
        ReliabilityCalibration {
            gate_oxide: GateOxideSpec {
                ln_a: -10.517_42,
                gamma_per_v: 14.320_047,
                ea_ev: 0.147_369,
            },
            electromigration: ElectromigrationSpec {
                ln_a: 37.473_263,
                ea_ev: 1.263_354,
            },
            thermal_cycling: ThermalCyclingSpec {
                ln_b: -48.455_511,
                q: 11.0,
            },
            table5: vec![
                row("Air cooling", false, 0.90, 85.0, 20.0, 5.0),
                row("Air cooling", true, 0.98, 101.0, 20.0, 1.0),
                row("FC-3284", false, 0.90, 66.0, 50.0, 10.0),
                row("FC-3284", true, 0.98, 74.0, 50.0, 4.0),
                row("HFE-7000", false, 0.90, 51.0, 35.0, 10.0),
                row("HFE-7000", true, 0.98, 60.0, 35.0, 5.0),
            ],
        }
    }
}

impl WorkloadCalibration {
    /// The paper's Table VII/VIII/IX catalogs.
    pub fn paper() -> WorkloadCalibration {
        #[allow(clippy::too_many_arguments)]
        fn app(
            name: &str,
            cores: u32,
            in_house: bool,
            description: &str,
            metric: &str,
            latency_sensitive: bool,
            shares: (f64, f64, f64, f64),
            mem_bw_gbps: f64,
        ) -> AppSpec {
            AppSpec {
                name: name.to_string(),
                cores,
                in_house,
                description: description.to_string(),
                metric: metric.to_string(),
                latency_sensitive,
                core_share: shares.0,
                llc_share: shares.1,
                memory_share: shares.2,
                fixed_share: shares.3,
                mem_bw_gbps,
            }
        }
        fn cpu(
            name: &str,
            core_ghz: f64,
            voltage_offset_mv: i32,
            turbo: bool,
            llc_ghz: f64,
            memory_ghz: f64,
        ) -> CpuConfigSpec {
            CpuConfigSpec {
                name: name.to_string(),
                core_ghz,
                voltage_offset_mv,
                turbo,
                llc_ghz,
                memory_ghz,
            }
        }
        fn gpu(
            name: &str,
            power_limit_w: f64,
            base_ghz: f64,
            turbo_ghz: f64,
            memory_ghz: f64,
            voltage_offset_mv: i32,
        ) -> GpuConfigSpec {
            GpuConfigSpec {
                name: name.to_string(),
                power_limit_w,
                base_ghz,
                turbo_ghz,
                memory_ghz,
                voltage_offset_mv,
            }
        }
        WorkloadCalibration {
            apps: vec![
                app(
                    "SQL",
                    4,
                    true,
                    "BenchCraft standard OLTP",
                    "p95_latency",
                    true,
                    (0.60, 0.08, 0.28, 0.04),
                    24.0,
                ),
                app(
                    "Training",
                    4,
                    true,
                    "TensorFlow model CPU training",
                    "seconds",
                    false,
                    (0.85, 0.05, 0.02, 0.08),
                    12.0,
                ),
                app(
                    "Key-Value",
                    8,
                    true,
                    "Distributed key-value store",
                    "p99_latency",
                    true,
                    (0.65, 0.15, 0.10, 0.10),
                    14.0,
                ),
                app(
                    "BI",
                    4,
                    true,
                    "Business intelligence",
                    "seconds",
                    false,
                    (0.75, 0.01, 0.01, 0.23),
                    6.0,
                ),
                app(
                    "Client-Server",
                    4,
                    true,
                    "M/G/k queue application",
                    "p95_latency",
                    true,
                    (0.80, 0.05, 0.05, 0.10),
                    6.0,
                ),
                app(
                    "Pmbench",
                    2,
                    false,
                    "Paging performance",
                    "seconds",
                    false,
                    (0.38, 0.42, 0.10, 0.10),
                    10.0,
                ),
                app(
                    "DiskSpeed",
                    2,
                    false,
                    "Microsoft's Disk IO bench",
                    "ops_per_sec",
                    false,
                    (0.25, 0.45, 0.20, 0.10),
                    8.0,
                ),
                app(
                    "SPECJBB",
                    4,
                    false,
                    "SpecJbb 2000",
                    "ops_per_sec",
                    true,
                    (0.70, 0.12, 0.08, 0.10),
                    10.0,
                ),
                app(
                    "TeraSort",
                    4,
                    false,
                    "Hadoop TeraSort",
                    "seconds",
                    false,
                    (0.30, 0.25, 0.30, 0.15),
                    28.0,
                ),
                app(
                    "VGG",
                    16,
                    false,
                    "CNN model GPU training",
                    "seconds",
                    false,
                    (0.20, 0.05, 0.05, 0.70),
                    4.0,
                ),
                app(
                    "STREAM",
                    16,
                    false,
                    "Memory bandwidth",
                    "mb_per_sec",
                    false,
                    (0.05, 0.25, 0.65, 0.05),
                    90.0,
                ),
            ],
            cpu_configs: vec![
                cpu("B1", 3.1, 0, false, 2.4, 2.4),
                cpu("B2", 3.4, 0, true, 2.4, 2.4),
                cpu("B3", 3.4, 0, true, 2.8, 2.4),
                cpu("B4", 3.4, 0, true, 2.8, 3.0),
                cpu("OC1", 4.1, 50, false, 2.4, 2.4),
                cpu("OC2", 4.1, 50, false, 2.8, 2.4),
                cpu("OC3", 4.1, 50, false, 2.8, 3.0),
            ],
            gpu_configs: vec![
                gpu("Base", 250.0, 1.35, 1.950, 6.8, 0),
                gpu("OCG1", 250.0, 1.55, 2.085, 6.8, 0),
                gpu("OCG2", 300.0, 1.55, 2.085, 8.1, 100),
                gpu("OCG3", 300.0, 1.55, 2.085, 8.3, 100),
            ],
        }
    }

    /// Looks an application up by name.
    pub fn app(&self, name: &str) -> Option<&AppSpec> {
        self.apps.iter().find(|a| a.name == name)
    }

    /// Looks a CPU configuration up by name (case-insensitive).
    pub fn cpu_config(&self, name: &str) -> Option<&CpuConfigSpec> {
        self.cpu_configs
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Looks a GPU configuration up by name (case-insensitive).
    pub fn gpu_config(&self, name: &str) -> Option<&GpuConfigSpec> {
        self.gpu_configs
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

impl Scenario {
    /// Checks every semantic constraint the model constructors assert,
    /// so a validated scenario never panics downstream.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let fail = |message: String| Err(ScenarioError::Invalid { message });
        if self.name.is_empty() {
            return fail("scenario name must not be empty".into());
        }
        if let Some(faults) = &self.faults {
            faults.validate()?;
        }
        let t = &self.thermal;
        if t.fluids.is_empty() {
            return fail("thermal.fluids must not be empty".into());
        }
        for f in &t.fluids {
            if f.name.is_empty() {
                return fail("fluid name must not be empty".into());
            }
            if !(f.boiling_point_c.is_finite()
                && f.boiling_point_c > 0.0
                && f.boiling_point_c <= 100.0)
            {
                return fail(format!(
                    "fluid {}: implausible boiling point {} °C",
                    f.name, f.boiling_point_c
                ));
            }
            if !(f.latent_heat_j_per_g.is_finite() && f.latent_heat_j_per_g > 0.0) {
                return fail(format!("fluid {}: latent heat must be positive", f.name));
            }
            if !(f.useful_life_years.is_finite() && f.useful_life_years > 0.0) {
                return fail(format!("fluid {}: useful life must be positive", f.name));
            }
            if !(f.dielectric_constant.is_finite() && f.dielectric_constant > 0.0) {
                return fail(format!(
                    "fluid {}: dielectric constant must be positive",
                    f.name
                ));
            }
        }
        for p in &t.platforms {
            if p.sku.is_empty() {
                return fail(format!("platform {}: sku must not be empty", p.label));
            }
            if !(p.r_th_c_per_w.is_finite() && p.r_th_c_per_w > 0.0) {
                return fail(format!("platform {}: R_th must be positive", p.label));
            }
            if !(p.measured_power_w.is_finite() && p.measured_power_w >= 0.0) {
                return fail(format!(
                    "platform {}: measured power must be non-negative",
                    p.label
                ));
            }
            if !p.observed_tj_c.is_finite() {
                return fail(format!("platform {}: observed T_j must be finite", p.label));
            }
            match &p.cooling {
                CoolingSpec::Air {
                    inlet_c,
                    case_rise_c,
                } => {
                    if !(inlet_c.is_finite() && case_rise_c.is_finite()) {
                        return fail(format!(
                            "platform {}: air cooling temperatures must be finite",
                            p.label
                        ));
                    }
                }
                CoolingSpec::TwoPhase { fluid, superheat_c } => {
                    if t.fluid(fluid).is_none() {
                        return fail(format!("platform {}: unknown fluid '{fluid}'", p.label));
                    }
                    if !(superheat_c.is_finite() && *superheat_c >= 0.0) {
                        return fail(format!(
                            "platform {}: superheat must be non-negative",
                            p.label
                        ));
                    }
                }
            }
        }
        for tank in &t.tanks {
            if t.fluid(&tank.fluid).is_none() {
                return fail(format!(
                    "tank {}: unknown fluid '{}'",
                    tank.name, tank.fluid
                ));
            }
            if tank.server_slots == 0 {
                return fail(format!("tank {}: must have at least one slot", tank.name));
            }
            if !(tank.condenser_capacity_w.is_finite() && tank.condenser_capacity_w > 0.0) {
                return fail(format!(
                    "tank {}: condenser capacity must be positive",
                    tank.name
                ));
            }
        }
        let vf = &self.power.vf;
        if !(vf.nominal_ghz.is_finite() && vf.nominal_ghz > 0.0 && vf.nominal_ghz <= 100.0) {
            return fail(format!(
                "implausible nominal frequency {} GHz",
                vf.nominal_ghz
            ));
        }
        if !(vf.oc_frequency_ratio.is_finite() && vf.oc_frequency_ratio > 1.0) {
            return fail(format!(
                "oc_frequency_ratio {} must exceed 1",
                vf.oc_frequency_ratio
            ));
        }
        if !(vf.nominal_v.is_finite()
            && vf.oc_v.is_finite()
            && vf.nominal_v > 0.0
            && vf.oc_v >= vf.nominal_v
            && vf.oc_v <= 2.0)
        {
            return fail(format!(
                "V/f anchor voltages ({} V, {} V) must satisfy 0 < nominal <= oc <= 2",
                vf.nominal_v, vf.oc_v
            ));
        }
        let leak = &self.power.leakage;
        if !(leak.beta_per_c.is_finite() && leak.beta_per_c > 0.0) {
            return fail(format!("leakage beta {} must be positive", leak.beta_per_c));
        }
        if !(leak.k_w_per_v2.is_finite() && leak.k_w_per_v2 > 0.0) {
            return fail(format!("leakage k {} must be positive", leak.k_w_per_v2));
        }
        let r = &self.reliability;
        for x in [
            r.gate_oxide.ln_a,
            r.gate_oxide.gamma_per_v,
            r.gate_oxide.ea_ev,
            r.electromigration.ln_a,
            r.electromigration.ea_ev,
            r.thermal_cycling.ln_b,
            r.thermal_cycling.q,
        ] {
            if !x.is_finite() {
                return fail("failure-mechanism coefficients must be finite".into());
            }
        }
        if r.table5.is_empty() {
            return fail("reliability.table5 must not be empty".into());
        }
        for point in &r.table5 {
            if !(point.voltage_v.is_finite() && point.voltage_v > 0.0 && point.voltage_v <= 2.0) {
                return fail(format!(
                    "table5 {}: implausible voltage {} V",
                    point.cooling, point.voltage_v
                ));
            }
            let plausible = |x: f64| x.is_finite() && (-50.0..150.0).contains(&x);
            if !(plausible(point.tj_max_c)
                && plausible(point.tj_min_c)
                && point.tj_min_c <= point.tj_max_c)
            {
                return fail(format!(
                    "table5 {}: implausible junction temperatures [{}, {}] °C",
                    point.cooling, point.tj_min_c, point.tj_max_c
                ));
            }
            if !(point.paper_years.is_finite() && point.paper_years > 0.0) {
                return fail(format!(
                    "table5 {}: paper lifetime must be positive",
                    point.cooling
                ));
            }
        }
        let w = &self.workloads;
        if w.apps.is_empty() || w.cpu_configs.is_empty() || w.gpu_configs.is_empty() {
            return fail("workload catalogs must not be empty".into());
        }
        for a in &w.apps {
            if a.cores == 0 {
                return fail(format!("app {}: must use at least one core", a.name));
            }
            if !METRICS.contains(&a.metric.as_str()) {
                return fail(format!(
                    "app {}: unknown metric '{}' (expected one of {METRICS:?})",
                    a.name, a.metric
                ));
            }
            let shares = [a.core_share, a.llc_share, a.memory_share, a.fixed_share];
            if shares.iter().any(|s| !s.is_finite() || *s < 0.0) {
                return fail(format!("app {}: bottleneck shares must be >= 0", a.name));
            }
            let sum: f64 = shares.iter().sum();
            if (sum - 1.0).abs() > 1e-6 {
                return fail(format!(
                    "app {}: bottleneck shares sum to {sum}, expected 1",
                    a.name
                ));
            }
            if !(a.mem_bw_gbps.is_finite() && a.mem_bw_gbps >= 0.0) {
                return fail(format!("app {}: memory bandwidth must be >= 0", a.name));
            }
        }
        for c in &w.cpu_configs {
            for (what, ghz) in [
                ("core", c.core_ghz),
                ("llc", c.llc_ghz),
                ("memory", c.memory_ghz),
            ] {
                if !(ghz.is_finite() && ghz > 0.0 && ghz <= 100.0) {
                    return fail(format!(
                        "cpu config {}: implausible {what} frequency {ghz} GHz",
                        c.name
                    ));
                }
            }
        }
        for g in &w.gpu_configs {
            if !(g.power_limit_w.is_finite() && g.power_limit_w > 0.0) {
                return fail(format!(
                    "gpu config {}: power limit must be positive",
                    g.name
                ));
            }
            for (what, ghz) in [
                ("base", g.base_ghz),
                ("turbo", g.turbo_ghz),
                ("memory", g.memory_ghz),
            ] {
                if !(ghz.is_finite() && ghz > 0.0 && ghz <= 100.0) {
                    return fail(format!(
                        "gpu config {}: implausible {what} frequency {ghz} GHz",
                        g.name
                    ));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(text: &str) -> Json {
    Json::Str(text.to_string())
}

fn num(x: f64) -> Json {
    Json::Num(x)
}

impl Scenario {
    /// Serializes to pretty-printed JSON (the format [`Scenario::from_json`]
    /// reads).
    pub fn to_json(&self) -> String {
        json::to_pretty(&self.to_tree())
    }

    /// Parses and validates a scenario from JSON text.
    pub fn from_json(text: &str) -> Result<Scenario, ScenarioError> {
        let tree = json::parse(text).map_err(|e| ScenarioError::Parse {
            offset: e.offset,
            message: e.message,
        })?;
        let scenario = Scenario::from_tree(&tree, "scenario")?;
        scenario.validate()?;
        Ok(scenario)
    }

    fn to_tree(&self) -> Json {
        let mut fields = vec![
            ("name", s(&self.name)),
            ("rng_stream", s(self.rng_stream.name())),
            ("thermal", self.thermal.to_tree()),
            ("power", self.power.to_tree()),
            ("reliability", self.reliability.to_tree()),
            ("workloads", self.workloads.to_tree()),
        ];
        // Omitted when absent so fault-free scenarios keep their
        // historical byte-exact encoding.
        if let Some(faults) = &self.faults {
            fields.push(("faults", faults.to_tree()));
        }
        obj(fields)
    }

    fn from_tree(v: &Json, path: &str) -> Result<Scenario, ScenarioError> {
        // Absent in every scenario file written before stream versioning
        // existed; those must keep decoding (as the v1 they were).
        let rng_stream = match v.get("rng_stream") {
            None => StreamVersion::V1,
            Some(Json::Str(text)) => StreamVersion::parse(text).ok_or_else(|| {
                schema(
                    path,
                    format!("unknown rng_stream '{text}' (expected 'v1' or 'v2')"),
                )
            })?,
            Some(_) => return Err(schema(path, "field 'rng_stream' must be a string")),
        };
        // Absent in every scenario file written before fault injection
        // existed; those decode as fault-free.
        let faults = match v.get("faults") {
            None => None,
            Some(tree) => Some(FaultConfig::from_tree(tree, &format!("{path}.faults"))?),
        };
        Ok(Scenario {
            name: str_field(v, "name", path)?,
            rng_stream,
            faults,
            thermal: ThermalCalibration::from_tree(
                field(v, "thermal", path)?,
                &format!("{path}.thermal"),
            )?,
            power: PowerCalibration::from_tree(field(v, "power", path)?, &format!("{path}.power"))?,
            reliability: ReliabilityCalibration::from_tree(
                field(v, "reliability", path)?,
                &format!("{path}.reliability"),
            )?,
            workloads: WorkloadCalibration::from_tree(
                field(v, "workloads", path)?,
                &format!("{path}.workloads"),
            )?,
        })
    }
}

impl ThermalCalibration {
    fn to_tree(&self) -> Json {
        obj(vec![
            (
                "fluids",
                Json::Arr(self.fluids.iter().map(FluidSpec::to_tree).collect()),
            ),
            (
                "platforms",
                Json::Arr(self.platforms.iter().map(PlatformSpec::to_tree).collect()),
            ),
            (
                "tanks",
                Json::Arr(self.tanks.iter().map(TankSpec::to_tree).collect()),
            ),
        ])
    }

    fn from_tree(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        Ok(ThermalCalibration {
            fluids: decode_vec(v, "fluids", path, FluidSpec::from_tree)?,
            platforms: decode_vec(v, "platforms", path, PlatformSpec::from_tree)?,
            tanks: decode_vec(v, "tanks", path, TankSpec::from_tree)?,
        })
    }
}

impl FluidSpec {
    fn to_tree(&self) -> Json {
        obj(vec![
            ("name", s(&self.name)),
            ("boiling_point_c", num(self.boiling_point_c)),
            ("dielectric_constant", num(self.dielectric_constant)),
            ("latent_heat_j_per_g", num(self.latent_heat_j_per_g)),
            ("useful_life_years", num(self.useful_life_years)),
            ("high_gwp", Json::Bool(self.high_gwp)),
        ])
    }

    fn from_tree(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        Ok(FluidSpec {
            name: str_field(v, "name", path)?,
            boiling_point_c: f64_field(v, "boiling_point_c", path)?,
            dielectric_constant: f64_field(v, "dielectric_constant", path)?,
            latent_heat_j_per_g: f64_field(v, "latent_heat_j_per_g", path)?,
            useful_life_years: f64_field(v, "useful_life_years", path)?,
            high_gwp: bool_field(v, "high_gwp", path)?,
        })
    }
}

impl CoolingSpec {
    fn to_tree(&self) -> Json {
        match self {
            CoolingSpec::Air {
                inlet_c,
                case_rise_c,
            } => obj(vec![
                ("type", s("air")),
                ("inlet_c", num(*inlet_c)),
                ("case_rise_c", num(*case_rise_c)),
            ]),
            CoolingSpec::TwoPhase { fluid, superheat_c } => obj(vec![
                ("type", s("two_phase")),
                ("fluid", s(fluid)),
                ("superheat_c", num(*superheat_c)),
            ]),
        }
    }

    fn from_tree(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        let kind = str_field(v, "type", path)?;
        match kind.as_str() {
            "air" => Ok(CoolingSpec::Air {
                inlet_c: f64_field(v, "inlet_c", path)?,
                case_rise_c: f64_field(v, "case_rise_c", path)?,
            }),
            "two_phase" => Ok(CoolingSpec::TwoPhase {
                fluid: str_field(v, "fluid", path)?,
                superheat_c: f64_field(v, "superheat_c", path)?,
            }),
            other => Err(schema(
                path,
                format!("unknown cooling type '{other}' (expected 'air' or 'two_phase')"),
            )),
        }
    }
}

impl PlatformSpec {
    fn to_tree(&self) -> Json {
        obj(vec![
            ("label", s(&self.label)),
            ("sku", s(&self.sku)),
            ("cooling", self.cooling.to_tree()),
            ("r_th_c_per_w", num(self.r_th_c_per_w)),
            ("measured_power_w", num(self.measured_power_w)),
            ("observed_tj_c", num(self.observed_tj_c)),
        ])
    }

    fn from_tree(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        Ok(PlatformSpec {
            label: str_field(v, "label", path)?,
            sku: str_field(v, "sku", path)?,
            cooling: CoolingSpec::from_tree(
                field(v, "cooling", path)?,
                &format!("{path}.cooling"),
            )?,
            r_th_c_per_w: f64_field(v, "r_th_c_per_w", path)?,
            measured_power_w: f64_field(v, "measured_power_w", path)?,
            observed_tj_c: f64_field(v, "observed_tj_c", path)?,
        })
    }
}

impl TankSpec {
    fn to_tree(&self) -> Json {
        obj(vec![
            ("name", s(&self.name)),
            ("fluid", s(&self.fluid)),
            ("server_slots", num(self.server_slots as f64)),
            ("condenser_capacity_w", num(self.condenser_capacity_w)),
            ("sealed", Json::Bool(self.sealed)),
        ])
    }

    fn from_tree(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        Ok(TankSpec {
            name: str_field(v, "name", path)?,
            fluid: str_field(v, "fluid", path)?,
            server_slots: u32_field(v, "server_slots", path)?,
            condenser_capacity_w: f64_field(v, "condenser_capacity_w", path)?,
            sealed: bool_field(v, "sealed", path)?,
        })
    }
}

impl PowerCalibration {
    fn to_tree(&self) -> Json {
        obj(vec![
            (
                "vf",
                obj(vec![
                    ("nominal_ghz", num(self.vf.nominal_ghz)),
                    ("nominal_v", num(self.vf.nominal_v)),
                    ("oc_frequency_ratio", num(self.vf.oc_frequency_ratio)),
                    ("oc_v", num(self.vf.oc_v)),
                ]),
            ),
            (
                "leakage",
                obj(vec![
                    ("beta_per_c", num(self.leakage.beta_per_c)),
                    ("k_w_per_v2", num(self.leakage.k_w_per_v2)),
                ]),
            ),
        ])
    }

    fn from_tree(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        let vf = field(v, "vf", path)?;
        let vf_path = format!("{path}.vf");
        let leakage = field(v, "leakage", path)?;
        let leak_path = format!("{path}.leakage");
        Ok(PowerCalibration {
            vf: VfAnchors {
                nominal_ghz: f64_field(vf, "nominal_ghz", &vf_path)?,
                nominal_v: f64_field(vf, "nominal_v", &vf_path)?,
                oc_frequency_ratio: f64_field(vf, "oc_frequency_ratio", &vf_path)?,
                oc_v: f64_field(vf, "oc_v", &vf_path)?,
            },
            leakage: LeakageSpec {
                beta_per_c: f64_field(leakage, "beta_per_c", &leak_path)?,
                k_w_per_v2: f64_field(leakage, "k_w_per_v2", &leak_path)?,
            },
        })
    }
}

impl ReliabilityCalibration {
    fn to_tree(&self) -> Json {
        obj(vec![
            (
                "gate_oxide",
                obj(vec![
                    ("ln_a", num(self.gate_oxide.ln_a)),
                    ("gamma_per_v", num(self.gate_oxide.gamma_per_v)),
                    ("ea_ev", num(self.gate_oxide.ea_ev)),
                ]),
            ),
            (
                "electromigration",
                obj(vec![
                    ("ln_a", num(self.electromigration.ln_a)),
                    ("ea_ev", num(self.electromigration.ea_ev)),
                ]),
            ),
            (
                "thermal_cycling",
                obj(vec![
                    ("ln_b", num(self.thermal_cycling.ln_b)),
                    ("q", num(self.thermal_cycling.q)),
                ]),
            ),
            (
                "table5",
                Json::Arr(self.table5.iter().map(LifetimePointSpec::to_tree).collect()),
            ),
        ])
    }

    fn from_tree(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        let go = field(v, "gate_oxide", path)?;
        let go_path = format!("{path}.gate_oxide");
        let em = field(v, "electromigration", path)?;
        let em_path = format!("{path}.electromigration");
        let tc = field(v, "thermal_cycling", path)?;
        let tc_path = format!("{path}.thermal_cycling");
        Ok(ReliabilityCalibration {
            gate_oxide: GateOxideSpec {
                ln_a: f64_field(go, "ln_a", &go_path)?,
                gamma_per_v: f64_field(go, "gamma_per_v", &go_path)?,
                ea_ev: f64_field(go, "ea_ev", &go_path)?,
            },
            electromigration: ElectromigrationSpec {
                ln_a: f64_field(em, "ln_a", &em_path)?,
                ea_ev: f64_field(em, "ea_ev", &em_path)?,
            },
            thermal_cycling: ThermalCyclingSpec {
                ln_b: f64_field(tc, "ln_b", &tc_path)?,
                q: f64_field(tc, "q", &tc_path)?,
            },
            table5: decode_vec(v, "table5", path, LifetimePointSpec::from_tree)?,
        })
    }
}

impl LifetimePointSpec {
    fn to_tree(&self) -> Json {
        obj(vec![
            ("cooling", s(&self.cooling)),
            ("overclocked", Json::Bool(self.overclocked)),
            ("voltage_v", num(self.voltage_v)),
            ("tj_max_c", num(self.tj_max_c)),
            ("tj_min_c", num(self.tj_min_c)),
            ("paper_years", num(self.paper_years)),
        ])
    }

    fn from_tree(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        Ok(LifetimePointSpec {
            cooling: str_field(v, "cooling", path)?,
            overclocked: bool_field(v, "overclocked", path)?,
            voltage_v: f64_field(v, "voltage_v", path)?,
            tj_max_c: f64_field(v, "tj_max_c", path)?,
            tj_min_c: f64_field(v, "tj_min_c", path)?,
            paper_years: f64_field(v, "paper_years", path)?,
        })
    }
}

impl WorkloadCalibration {
    fn to_tree(&self) -> Json {
        obj(vec![
            (
                "apps",
                Json::Arr(self.apps.iter().map(AppSpec::to_tree).collect()),
            ),
            (
                "cpu_configs",
                Json::Arr(
                    self.cpu_configs
                        .iter()
                        .map(CpuConfigSpec::to_tree)
                        .collect(),
                ),
            ),
            (
                "gpu_configs",
                Json::Arr(
                    self.gpu_configs
                        .iter()
                        .map(GpuConfigSpec::to_tree)
                        .collect(),
                ),
            ),
        ])
    }

    fn from_tree(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        Ok(WorkloadCalibration {
            apps: decode_vec(v, "apps", path, AppSpec::from_tree)?,
            cpu_configs: decode_vec(v, "cpu_configs", path, CpuConfigSpec::from_tree)?,
            gpu_configs: decode_vec(v, "gpu_configs", path, GpuConfigSpec::from_tree)?,
        })
    }
}

impl AppSpec {
    fn to_tree(&self) -> Json {
        obj(vec![
            ("name", s(&self.name)),
            ("cores", num(self.cores as f64)),
            ("in_house", Json::Bool(self.in_house)),
            ("description", s(&self.description)),
            ("metric", s(&self.metric)),
            ("latency_sensitive", Json::Bool(self.latency_sensitive)),
            ("core_share", num(self.core_share)),
            ("llc_share", num(self.llc_share)),
            ("memory_share", num(self.memory_share)),
            ("fixed_share", num(self.fixed_share)),
            ("mem_bw_gbps", num(self.mem_bw_gbps)),
        ])
    }

    fn from_tree(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        Ok(AppSpec {
            name: str_field(v, "name", path)?,
            cores: u32_field(v, "cores", path)?,
            in_house: bool_field(v, "in_house", path)?,
            description: str_field(v, "description", path)?,
            metric: str_field(v, "metric", path)?,
            latency_sensitive: bool_field(v, "latency_sensitive", path)?,
            core_share: f64_field(v, "core_share", path)?,
            llc_share: f64_field(v, "llc_share", path)?,
            memory_share: f64_field(v, "memory_share", path)?,
            fixed_share: f64_field(v, "fixed_share", path)?,
            mem_bw_gbps: f64_field(v, "mem_bw_gbps", path)?,
        })
    }
}

impl CpuConfigSpec {
    fn to_tree(&self) -> Json {
        obj(vec![
            ("name", s(&self.name)),
            ("core_ghz", num(self.core_ghz)),
            ("voltage_offset_mv", num(self.voltage_offset_mv as f64)),
            ("turbo", Json::Bool(self.turbo)),
            ("llc_ghz", num(self.llc_ghz)),
            ("memory_ghz", num(self.memory_ghz)),
        ])
    }

    fn from_tree(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        Ok(CpuConfigSpec {
            name: str_field(v, "name", path)?,
            core_ghz: f64_field(v, "core_ghz", path)?,
            voltage_offset_mv: i32_field(v, "voltage_offset_mv", path)?,
            turbo: bool_field(v, "turbo", path)?,
            llc_ghz: f64_field(v, "llc_ghz", path)?,
            memory_ghz: f64_field(v, "memory_ghz", path)?,
        })
    }
}

impl GpuConfigSpec {
    fn to_tree(&self) -> Json {
        obj(vec![
            ("name", s(&self.name)),
            ("power_limit_w", num(self.power_limit_w)),
            ("base_ghz", num(self.base_ghz)),
            ("turbo_ghz", num(self.turbo_ghz)),
            ("memory_ghz", num(self.memory_ghz)),
            ("voltage_offset_mv", num(self.voltage_offset_mv as f64)),
        ])
    }

    fn from_tree(v: &Json, path: &str) -> Result<Self, ScenarioError> {
        Ok(GpuConfigSpec {
            name: str_field(v, "name", path)?,
            power_limit_w: f64_field(v, "power_limit_w", path)?,
            base_ghz: f64_field(v, "base_ghz", path)?,
            turbo_ghz: f64_field(v, "turbo_ghz", path)?,
            memory_ghz: f64_field(v, "memory_ghz", path)?,
            voltage_offset_mv: i32_field(v, "voltage_offset_mv", path)?,
        })
    }
}

// ---------------------------------------------------------------------
// Decode helpers
// ---------------------------------------------------------------------

fn schema(path: &str, message: impl Into<String>) -> ScenarioError {
    ScenarioError::Schema {
        path: path.to_string(),
        message: message.into(),
    }
}

fn field<'a>(v: &'a Json, key: &str, path: &str) -> Result<&'a Json, ScenarioError> {
    match v {
        Json::Obj(_) => v
            .get(key)
            .ok_or_else(|| schema(path, format!("missing field '{key}'"))),
        _ => Err(schema(path, "expected an object")),
    }
}

fn f64_field(v: &Json, key: &str, path: &str) -> Result<f64, ScenarioError> {
    match field(v, key, path)? {
        Json::Num(x) => Ok(*x),
        _ => Err(schema(path, format!("field '{key}' must be a number"))),
    }
}

fn u64_field(v: &Json, key: &str, path: &str) -> Result<u64, ScenarioError> {
    let x = f64_field(v, key, path)?;
    // 2^53: the largest range where f64-backed JSON numbers stay exact.
    if x.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&x) {
        Ok(x as u64)
    } else {
        Err(schema(
            path,
            format!("field '{key}' must be a non-negative integer"),
        ))
    }
}

fn u32_field(v: &Json, key: &str, path: &str) -> Result<u32, ScenarioError> {
    let x = f64_field(v, key, path)?;
    if x.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&x) {
        Ok(x as u32)
    } else {
        Err(schema(
            path,
            format!("field '{key}' must be a non-negative integer"),
        ))
    }
}

fn i32_field(v: &Json, key: &str, path: &str) -> Result<i32, ScenarioError> {
    let x = f64_field(v, key, path)?;
    if x.fract() == 0.0 && (i32::MIN as f64..=i32::MAX as f64).contains(&x) {
        Ok(x as i32)
    } else {
        Err(schema(path, format!("field '{key}' must be an integer")))
    }
}

fn bool_field(v: &Json, key: &str, path: &str) -> Result<bool, ScenarioError> {
    match field(v, key, path)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(schema(path, format!("field '{key}' must be a boolean"))),
    }
}

fn str_field(v: &Json, key: &str, path: &str) -> Result<String, ScenarioError> {
    match field(v, key, path)? {
        Json::Str(text) => Ok(text.clone()),
        _ => Err(schema(path, format!("field '{key}' must be a string"))),
    }
}

fn decode_vec<T>(
    v: &Json,
    key: &str,
    path: &str,
    decode: fn(&Json, &str) -> Result<T, ScenarioError>,
) -> Result<Vec<T>, ScenarioError> {
    match field(v, key, path)? {
        Json::Arr(items) => items
            .iter()
            .enumerate()
            .map(|(i, item)| decode(item, &format!("{path}.{key}[{i}]")))
            .collect(),
        _ => Err(schema(path, format!("field '{key}' must be an array"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_validates() {
        Scenario::paper().validate().expect("paper() must be valid");
    }

    #[test]
    fn paper_round_trips_bit_for_bit() {
        let paper = Scenario::paper();
        let text = paper.to_json();
        let back = Scenario::from_json(&text).expect("round trip");
        assert_eq!(back, paper);
    }

    #[test]
    fn rng_stream_round_trips_and_defaults_to_v1() {
        // The paper scenario is pinned to the v1 stream.
        let paper = Scenario::paper();
        assert_eq!(paper.rng_stream, StreamVersion::V1);
        assert!(paper.to_json().contains("\"rng_stream\": \"v1\""));

        // v2 survives the round trip.
        let mut fast = paper.clone();
        fast.rng_stream = StreamVersion::V2;
        let back = Scenario::from_json(&fast.to_json()).expect("v2 round trip");
        assert_eq!(back.rng_stream, StreamVersion::V2);

        // Pre-versioning scenario JSON (no field at all) decodes as v1.
        let mut legacy = paper.to_json();
        legacy = legacy.replace("  \"rng_stream\": \"v1\",\n", "");
        assert!(!legacy.contains("rng_stream"));
        let back = Scenario::from_json(&legacy).expect("legacy decode");
        assert_eq!(back.rng_stream, StreamVersion::V1);

        // Unknown versions are rejected, not silently coerced.
        let bad = paper.to_json().replace("\"v1\"", "\"v3\"");
        let err = Scenario::from_json(&bad).unwrap_err();
        assert!(err.to_string().contains("rng_stream"), "{err}");
    }

    #[test]
    fn catalog_shapes_match_the_paper() {
        let p = Scenario::paper();
        assert_eq!(p.thermal.fluids.len(), 2);
        assert_eq!(p.thermal.platforms.len(), 4);
        assert_eq!(p.thermal.tanks.len(), 3);
        assert_eq!(p.reliability.table5.len(), 6);
        assert_eq!(p.workloads.apps.len(), 11);
        assert_eq!(p.workloads.cpu_configs.len(), 7);
        assert_eq!(p.workloads.gpu_configs.len(), 4);
    }

    #[test]
    fn lookups_find_presets() {
        let p = Scenario::paper();
        assert!(p.thermal.fluid("3M FC-3284").is_some());
        assert!(p.workloads.app("SQL").is_some());
        assert!(p.workloads.cpu_config("oc3").is_some());
        assert!(p.workloads.gpu_config("OCG2").is_some());
        assert!(p.thermal.fluid("water").is_none());
    }

    #[test]
    fn unknown_fluid_reference_is_rejected() {
        let mut p = Scenario::paper();
        p.thermal.tanks[0].fluid = "unobtainium".to_string();
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("unobtainium"), "{err}");
    }

    #[test]
    fn bad_bottleneck_shares_are_rejected() {
        let mut p = Scenario::paper();
        p.workloads.apps[0].core_share += 0.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn unknown_metric_is_rejected() {
        let mut p = Scenario::paper();
        p.workloads.apps[0].metric = "furlongs".to_string();
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("furlongs"), "{err}");
    }

    #[test]
    fn schema_errors_name_the_path() {
        let text = Scenario::paper()
            .to_json()
            .replace("\"nominal_ghz\"", "\"nominal_gzh\"");
        let err = Scenario::from_json(&text).unwrap_err();
        assert!(err.to_string().contains("scenario.power.vf"), "{err}");
    }

    #[test]
    fn parse_errors_report_offsets() {
        let err = Scenario::from_json("{not json").unwrap_err();
        assert!(matches!(err, ScenarioError::Parse { .. }), "{err:?}");
    }

    #[test]
    fn fault_config_round_trips_and_legacy_decodes_as_none() {
        // Absent on paper(); encoded JSON omits the key entirely.
        let paper = Scenario::paper();
        assert!(paper.faults.is_none());
        assert!(!paper.to_json().contains("\"faults\""));

        // A populated config survives the round trip field-for-field.
        let mut chaotic = paper.clone();
        chaotic.faults = Some(FaultConfig {
            seed: 9001,
            hazard_scale: 2.5e5,
            error_scale: 40.0,
            repair_min_s: 30.0,
            repair_max_s: 90.0,
            stale_telemetry: vec![FaultWindow {
                from_s: 100.0,
                until_s: 160.0,
            }],
            sensor_dropouts: vec![SensorDropout {
                vm: 3,
                window: FaultWindow {
                    from_s: 10.0,
                    until_s: 20.0,
                },
            }],
            stalled_controllers: vec![StalledWindow {
                controller: "governor".to_string(),
                window: FaultWindow {
                    from_s: 200.0,
                    until_s: 260.0,
                },
            }],
        });
        chaotic.validate().expect("fault config is valid");
        let back = Scenario::from_json(&chaotic.to_json()).expect("round trip");
        assert_eq!(back, chaotic);

        // Pre-fault scenario JSON (no key) decodes as None.
        let back = Scenario::from_json(&paper.to_json()).expect("legacy decode");
        assert!(back.faults.is_none());
    }

    #[test]
    fn fault_config_validation_rejects_bad_shapes() {
        let mut p = Scenario::paper();
        let mut faults = FaultConfig::disabled();
        faults.hazard_scale = -1.0;
        p.faults = Some(faults.clone());
        assert!(p.validate().is_err(), "negative hazard scale");

        faults.hazard_scale = 0.0;
        faults.repair_min_s = 100.0;
        faults.repair_max_s = 50.0;
        p.faults = Some(faults.clone());
        assert!(p.validate().is_err(), "inverted repair bounds");

        faults.repair_min_s = 10.0;
        faults.repair_max_s = 50.0;
        faults.stale_telemetry = vec![FaultWindow {
            from_s: 9.0,
            until_s: 3.0,
        }];
        p.faults = Some(faults.clone());
        assert!(p.validate().is_err(), "inverted window");

        faults.stale_telemetry.clear();
        p.faults = Some(faults);
        p.validate().expect("disabled-shape config is valid");
    }

    #[test]
    fn interning_dedups_and_preserves_content() {
        let a = intern("Skylake 8168");
        let b = intern(&String::from("Skylake 8168"));
        assert_eq!(a, "Skylake 8168");
        assert!(std::ptr::eq(a, b));
    }
}
