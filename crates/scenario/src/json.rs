//! A small self-contained JSON tree, parser, and writer.
//!
//! The workspace vendors a hermetic `serde` stub (no `serde_json`), so
//! scenario files are read and written by hand. The writer follows the
//! same conventions as the observability layer's encoder: numbers use
//! Rust's shortest round-trip `Display` for `f64`, and strings escape
//! `"`/`\`/`\n`/`\r`/`\t` plus all other control characters as
//! `\u00XX` (RFC 8259). Anything the writer emits, the parser reads
//! back to an identical tree.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers included).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number run");
        text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
            offset: start,
            message: format!("invalid number '{text}'"),
        })
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("lone low surrogate"))?
                            };
                            out.push(ch);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Reads four hex digits (the `XXXX` of `\uXXXX`), advancing past
    /// them.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let unit = u32::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }
}

/// Serializes a tree with two-space indentation (scenario files are
/// meant to be edited by hand).
pub fn to_pretty(value: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, value, 0);
    out.push('\n');
    out
}

fn write_value(out: &mut String, value: &Json, indent: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => write_f64(out, *n),
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            newline(out, indent);
            out.push(']');
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent + 1);
                write_escaped(out, key);
                out.push_str(": ");
                write_value(out, item, indent + 1);
            }
            newline(out, indent);
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes an `f64` as a JSON number: shortest round-trip decimal;
/// non-finite values become `null` (JSON has no NaN/Inf).
pub fn write_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

/// Writes a string with RFC 8259 escaping.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_containers() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Str("d".into())));
        match v.get("a").unwrap() {
            Json::Arr(items) => assert_eq!(items.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn escapes_round_trip() {
        let original = Json::Str("line\nquote\"tab\tbyte\u{0001}π".into());
        let text = to_pretty(&original);
        assert_eq!(parse(text.trim()).unwrap(), original);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("\u{1F600}".into()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn shortest_roundtrip_floats_survive() {
        for x in [0.1, 1.0 / 3.0, 14.320_047, (-10.517_42f64).exp()] {
            let mut s = String::new();
            write_f64(&mut s, x);
            assert_eq!(s.parse::<f64>().unwrap(), x, "{s}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "\"\u{0001}\"", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
    }
}
