//! The discrete-event simulation engine.
//!
//! [`Engine<S>`] holds a deterministic two-tier calendar queue (see
//! [`crate::calendar`]) of timestamped events over a user-supplied state
//! type `S`. Handlers are `FnOnce(&mut S, &mut Engine<S>)` closures stored
//! *inline* in the queue node when their captures fit in
//! [`crate::event::INLINE_EVENT_WORDS`] machine words — the common path
//! (reschedule ticks, arrivals, control steps) touches the heap zero
//! times per event; larger captures fall back to a recycled heap cell.
//! Ties at the same instant are broken by insertion order, which keeps
//! runs deterministic — a requirement for the paper's policy comparisons,
//! where the baseline and the overclocking auto-scalers must see
//! identical arrival sequences.

use crate::calendar::{CalendarQueue, Entry};
use crate::event::{BoxPool, EventCell};
use crate::observe::{EngineObserver, EventRecord};
use crate::time::{SimDuration, SimTime};
use std::alloc::Layout;
use std::fmt;

/// The label given to events scheduled without an explicit kind.
pub const UNLABELED_EVENT: &str = "event";

/// A deterministic discrete-event simulator over state `S`.
///
/// # Example
///
/// ```
/// use ic_sim::engine::Engine;
/// use ic_sim::time::{SimDuration, SimTime};
///
/// // A self-rescheduling heartbeat that stops after 3 beats.
/// struct State { beats: u32 }
/// fn beat(s: &mut State, engine: &mut Engine<State>) {
///     s.beats += 1;
///     if s.beats < 3 {
///         engine.schedule_in(SimDuration::from_secs(1), beat);
///     }
/// }
///
/// let mut engine = Engine::new();
/// engine.schedule(SimTime::ZERO, beat);
/// let mut state = State { beats: 0 };
/// engine.run(&mut state);
/// assert_eq!(state.beats, 3);
/// assert_eq!(engine.now(), SimTime::from_secs(2));
/// ```
pub struct Engine<S: 'static> {
    now: SimTime,
    queue: CalendarQueue<S>,
    seq: u64,
    processed: u64,
    boxed_scheduled: u64,
    pool: BoxPool,
    observer: Option<Box<dyn EngineObserver>>,
}

impl<S: 'static> Engine<S> {
    /// Creates an engine with the clock at [`SimTime::ZERO`] and no pending
    /// events.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: CalendarQueue::new(),
            seq: 0,
            processed: 0,
            boxed_scheduled: 0,
            pool: BoxPool::new(),
            observer: None,
        }
    }

    /// Attaches an observer that receives one
    /// [`EventRecord`](crate::observe::EventRecord) per executed event.
    /// Replaces any previous observer. Observation never changes
    /// simulation behavior — only with an observer attached does the
    /// engine pay for wall-clock timing.
    pub fn set_observer(&mut self, observer: Box<dyn EngineObserver>) {
        self.observer = Some(observer);
    }

    /// Detaches and returns the current observer, if any.
    pub fn take_observer(&mut self) -> Option<Box<dyn EngineObserver>> {
        self.observer.take()
    }

    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// The number of events waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// How many scheduled events took the boxed (heap) fallback because
    /// their captures exceeded [`crate::event::INLINE_EVENT_WORDS`]
    /// machine words. Zero means every event so far rode the
    /// allocation-free inline path — the property the workload crates'
    /// hot paths are tested against.
    pub fn boxed_events_scheduled(&self) -> u64 {
        self.boxed_scheduled
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock: the past is
    /// immutable in a discrete-event simulation.
    pub fn schedule<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce(&mut S, &mut Engine<S>) + 'static,
    {
        self.schedule_labeled(at, UNLABELED_EVENT, event);
    }

    /// Schedules `event` at absolute time `at` under a `kind` label that
    /// observers see in per-event records (e.g. `"arrival"`,
    /// `"control_step"`).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule_labeled<F>(&mut self, at: SimTime, kind: &'static str, event: F)
    where
        F: FnOnce(&mut S, &mut Engine<S>) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule at {at} before current time {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let (cell, boxed) = EventCell::new(event, &mut self.pool);
        self.boxed_scheduled += boxed as u64;
        self.queue.push(Entry {
            at,
            seq,
            kind,
            cell,
        });
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, event: F)
    where
        F: FnOnce(&mut S, &mut Engine<S>) + 'static,
    {
        self.schedule(self.now + delay, event);
    }

    /// Schedules `event` to fire `delay` after the current instant, under
    /// a `kind` label that observers see in per-event records.
    pub fn schedule_in_labeled<F>(&mut self, delay: SimDuration, kind: &'static str, event: F)
    where
        F: FnOnce(&mut S, &mut Engine<S>) + 'static,
    {
        self.schedule_labeled(self.now + delay, kind, event);
    }

    /// Runs events until the queue is empty. Returns the number of events
    /// executed by this call.
    pub fn run(&mut self, state: &mut S) -> u64 {
        self.run_until(state, SimTime::MAX)
    }

    /// Runs events with timestamps `<= deadline`, advancing the clock to
    /// each event's timestamp and finally to `deadline` (if later than the
    /// last event). Returns the number of events executed by this call.
    ///
    /// The deadline check and the dequeue are a single queue operation
    /// per event ([`CalendarQueue::pop_at_most`]) — there is no separate
    /// peek-then-pop.
    pub fn run_until(&mut self, state: &mut S, deadline: SimTime) -> u64 {
        let mut executed = 0;
        while let Some(ev) = self.queue.pop_at_most(deadline) {
            debug_assert!(ev.at >= self.now, "event queue went backwards");
            self.now = ev.at;
            let kind = ev.kind;
            let observed = self.notify_event_start();
            ev.cell.invoke(state, self);
            self.processed += 1;
            executed += 1;
            self.notify_observer(kind, observed);
        }
        if deadline != SimTime::MAX && deadline > self.now {
            self.now = deadline;
        }
        executed
    }

    /// Executes exactly one event, if any is pending. Returns the timestamp
    /// of the executed event.
    pub fn step(&mut self, state: &mut S) -> Option<SimTime> {
        let ev = self.queue.pop_at_most(SimTime::MAX)?;
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        let kind = ev.kind;
        let observed = self.notify_event_start();
        ev.cell.invoke(state, self);
        self.processed += 1;
        self.notify_observer(kind, observed);
        Some(self.now)
    }

    /// Announces an imminent handler to the observer, if attached.
    /// Returns whether one was — the post-event record is only delivered
    /// when the observer saw the start too.
    fn notify_event_start(&mut self) -> bool {
        match self.observer.as_mut() {
            Some(observer) => {
                observer.on_event_start();
                true
            }
            None => false,
        }
    }

    /// Delivers one post-event record to the observer, if attached.
    /// `observed` is `true` exactly when an observer was attached before
    /// the handler ran; a handler that detaches the observer mid-flight
    /// simply loses that one record.
    fn notify_observer(&mut self, kind: &'static str, observed: bool) {
        if !observed {
            return;
        }
        if let Some(observer) = self.observer.as_mut() {
            observer.on_event(&EventRecord {
                at: self.now,
                kind,
                queue_depth: self.queue.len(),
            });
        }
    }

    /// The timestamp of the next pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Discards all pending events without running them.
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Returns a retired boxed-event cell to the free-list (called from
    /// the boxed invoke shim just before the handler runs).
    pub(crate) fn recycle_event_box(&mut self, ptr: *mut u8, layout: Layout) {
        self.pool.recycle(ptr, layout);
    }

    /// Number of pooled boxed-event cells (test observability).
    #[cfg(test)]
    pub(crate) fn debug_pooled_event_boxes(&self) -> usize {
        self.pool.pooled()
    }
}

impl<S: 'static> Default for Engine<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: 'static> fmt::Debug for Engine<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_time_order() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        engine.schedule(SimTime::from_secs(3), |log, _| log.push(3));
        engine.schedule(SimTime::from_secs(1), |log, _| log.push(1));
        engine.schedule(SimTime::from_secs(2), |log, _| log.push(2));
        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(engine.events_processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        for i in 0..5 {
            engine.schedule(SimTime::from_secs(1), move |log: &mut Vec<u32>, _| {
                log.push(i)
            });
        }
        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handlers_can_reschedule() {
        let mut engine: Engine<u32> = Engine::new();
        fn tick(count: &mut u32, engine: &mut Engine<u32>) {
            *count += 1;
            if *count < 4 {
                engine.schedule_in(SimDuration::from_secs(2), tick);
            }
        }
        engine.schedule(SimTime::ZERO, tick);
        let mut count = 0;
        engine.run(&mut count);
        assert_eq!(count, 4);
        assert_eq!(engine.now(), SimTime::from_secs(6));
    }

    #[test]
    fn run_until_respects_deadline_and_advances_clock() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule(SimTime::from_secs(1), |c, _| *c += 1);
        engine.schedule(SimTime::from_secs(10), |c, _| *c += 1);
        let mut count = 0;
        let n = engine.run_until(&mut count, SimTime::from_secs(5));
        assert_eq!(n, 1);
        assert_eq!(count, 1);
        assert_eq!(engine.now(), SimTime::from_secs(5));
        assert_eq!(engine.pending(), 1);
        engine.run(&mut count);
        assert_eq!(count, 2);
    }

    #[test]
    fn step_executes_single_event() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule(SimTime::from_secs(2), |c, _| *c += 10);
        let mut count = 0;
        assert_eq!(engine.step(&mut count), Some(SimTime::from_secs(2)));
        assert_eq!(count, 10);
        assert_eq!(engine.step(&mut count), None);
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule(SimTime::from_secs(5), |_, _| {});
        let mut s = 0;
        engine.run(&mut s);
        engine.schedule(SimTime::from_secs(1), |_, _| {});
    }

    #[test]
    fn clear_discards_pending() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule(SimTime::from_secs(1), |c, _| *c += 1);
        engine.clear();
        let mut count = 0;
        engine.run(&mut count);
        assert_eq!(count, 0);
    }

    #[test]
    fn observer_sees_labeled_events() {
        use crate::observe::{EngineObserver, EventRecord};
        use std::cell::RefCell;
        use std::rc::Rc;

        struct KindLog(Rc<RefCell<Vec<(&'static str, usize)>>>);
        impl EngineObserver for KindLog {
            fn on_event(&mut self, r: &EventRecord) {
                self.0.borrow_mut().push((r.kind, r.queue_depth));
            }
        }

        let log = Rc::new(RefCell::new(Vec::new()));
        let mut engine: Engine<u32> = Engine::new();
        engine.set_observer(Box::new(KindLog(Rc::clone(&log))));
        engine.schedule_labeled(SimTime::from_secs(1), "arrival", |c, e| {
            *c += 1;
            e.schedule_in_labeled(SimDuration::from_secs(1), "departure", |c, _| *c += 1);
        });
        engine.schedule(SimTime::from_secs(3), |c, _| *c += 1);
        let mut count = 0;
        engine.run(&mut count);
        // After "arrival" runs it has scheduled "departure", so depth is 2
        // (departure + the unlabeled event); depths then drain to 0.
        assert_eq!(
            *log.borrow(),
            vec![("arrival", 2), ("departure", 1), (UNLABELED_EVENT, 0)]
        );
    }

    #[test]
    fn observer_does_not_change_execution() {
        fn build() -> Engine<Vec<u32>> {
            let mut engine: Engine<Vec<u32>> = Engine::new();
            engine.schedule(SimTime::from_secs(2), |log, _| log.push(2));
            engine.schedule(SimTime::from_secs(1), |log, _| log.push(1));
            engine
        }
        let mut plain = build();
        let mut observed = build();
        observed.set_observer(Box::new(crate::observe::CountingObserver::default()));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        plain.run(&mut a);
        observed.run(&mut b);
        assert_eq!(a, b);
        assert_eq!(plain.now(), observed.now());
    }

    #[test]
    fn next_event_time_peeks() {
        let mut engine: Engine<()> = Engine::new();
        assert_eq!(engine.next_event_time(), None);
        engine.schedule(SimTime::from_secs(7), |_, _| {});
        assert_eq!(engine.next_event_time(), Some(SimTime::from_secs(7)));
    }

    #[test]
    fn small_captures_never_box() {
        let mut engine: Engine<u64> = Engine::new();
        let a = 1u64;
        let b = 2u64;
        let c = 3u64;
        for i in 0..100u64 {
            engine.schedule(SimTime::from_nanos(i), move |s, _| *s += a + b + c);
        }
        let mut state = 0;
        engine.run(&mut state);
        assert_eq!(state, 600);
        assert_eq!(engine.boxed_events_scheduled(), 0);
    }

    #[test]
    fn large_captures_box_and_still_run() {
        let mut engine: Engine<u64> = Engine::new();
        let payload = [2u64; 6];
        engine.schedule(SimTime::ZERO, move |s, _| *s += payload.iter().sum::<u64>());
        let mut state = 0;
        engine.run(&mut state);
        assert_eq!(state, 12);
        assert_eq!(engine.boxed_events_scheduled(), 1);
    }

    #[test]
    fn dropped_engine_releases_unrun_closures() {
        use std::cell::Cell;
        use std::rc::Rc;
        let alive = Rc::new(Cell::new(0u32));
        struct Guard(Rc<Cell<u32>>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.set(self.0.get() + 1);
            }
        }
        {
            let mut engine: Engine<u32> = Engine::new();
            let g1 = Guard(Rc::clone(&alive));
            let g2 = Guard(Rc::clone(&alive));
            let pad = [0u64; 8];
            engine.schedule(SimTime::from_secs(1), move |_, _| drop(g1));
            engine.schedule(SimTime::from_secs(2), move |_, _| {
                drop(g2);
                let _ = pad;
            });
        }
        assert_eq!(alive.get(), 2, "engine drop released both closures");
    }
}
