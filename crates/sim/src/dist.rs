//! Probability distributions for workload modelling.
//!
//! The paper's auto-scaling evaluation drives an **M/G/k** client–server
//! application: Markovian (Poisson) arrivals and a *General* service-time
//! distribution (Section VI-D). This module implements the distributions
//! needed to express both sides — exponential inter-arrivals and a family
//! of general service-time laws (lognormal, Pareto, Erlang, empirical) —
//! without pulling external crates, so sampling behaviour is fully
//! deterministic and documented.
//!
//! All distributions report their analytic [`mean`](Dist::mean) and
//! [squared coefficient of variation](Dist::scv), which the M/G/k latency
//! approximations in `ic-workloads` consume.
//!
//! Two sampling front-ends share one set of transform helpers: the
//! [`Dist`] trait (dynamic dispatch, convenient for composition) and the
//! [`DistKind`] enum (static dispatch, for hot loops). Both produce
//! bit-identical values for the same generator state, under either
//! [stream version](crate::rng::StreamVersion); [`DrawBuffer`] layers
//! batched refills on top of `DistKind` without changing the per-stream
//! value sequence.

use crate::rng::{SimRng, StreamVersion};
use std::fmt;

// ---------------------------------------------------------------------------
// Shared transform helpers.
//
// Every sampling front-end (the `Dist` impls, `DistKind::sample`, and
// `DrawBuffer` refills) funnels through these functions, which is what
// makes the trait and enum paths bit-identical by construction. Each
// helper consumes the generator exactly as the original inline
// expression did on v1 streams, so the restructuring is invisible to
// every pre-versioning record (IEEE-754 negation and sign propagation
// through multiplication are exact).
// ---------------------------------------------------------------------------

#[inline]
fn sample_exponential(mean: f64, rng: &mut SimRng) -> f64 {
    // v1: bit-identical to the historical `-mean * (1 - u).ln()`.
    mean * rng.standard_exp()
}

#[inline]
fn sample_lognormal(mu: f64, sigma: f64, rng: &mut SimRng) -> f64 {
    let z = rng.standard_normal();
    match rng.version() {
        // v1: libm `exp`, exactly as the pre-versioning code.
        StreamVersion::V1 => (mu + sigma * z).exp(),
        // v2: the in-crate polynomial `exp` — bit-identical across
        // platforms and call-free, so the bulk refill pass vectorizes.
        StreamVersion::V2 => crate::zig::fast_exp(mu + sigma * z),
    }
}

#[inline]
fn sample_pareto(scale: f64, inv_shape: f64, rng: &mut SimRng) -> f64 {
    self::pareto_from_uniform(scale, inv_shape, rng.uniform())
}

#[inline]
fn pareto_from_uniform(scale: f64, inv_shape: f64, u: f64) -> f64 {
    scale / (1.0 - u).powf(inv_shape)
}

#[inline]
fn sample_erlang(k: u32, stage_mean: f64, rng: &mut SimRng) -> f64 {
    match rng.version() {
        // v1: k independent log draws, summed in stage order — the
        // historical fold, preserved bit-for-bit.
        StreamVersion::V1 => (0..k).map(|_| stage_mean * rng.standard_exp()).sum(),
        // v2: a sum of k exponentials is the log of a product of k
        // uniforms — one `ln` total instead of k.
        StreamVersion::V2 => {
            let mut prod = 1.0;
            for _ in 0..k {
                prod *= 1.0 - rng.uniform();
            }
            -stage_mean * prod.ln()
        }
    }
}

/// A sampleable, positive-valued probability distribution.
///
/// Implementors must return finite, non-negative samples.
pub trait Dist: fmt::Debug {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The analytic mean of the distribution.
    fn mean(&self) -> f64;

    /// The squared coefficient of variation, `Var / Mean²`. Returns 0 for
    /// deterministic distributions and 1 for the exponential.
    fn scv(&self) -> f64;
}

/// A distribution that always returns the same value.
///
/// # Example
///
/// ```
/// use ic_sim::dist::{Dist, Deterministic};
/// use ic_sim::rng::SimRng;
///
/// let d = Deterministic::new(2.5);
/// assert_eq!(d.sample(&mut SimRng::seed_from_u64(0)), 2.5);
/// assert_eq!(d.scv(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates a point mass at `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or non-finite.
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite() && value >= 0.0, "invalid value {value}");
        Deterministic { value }
    }
}

impl Dist for Deterministic {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.value
    }
    fn mean(&self) -> f64 {
        self.value
    }
    fn scv(&self) -> f64 {
        0.0
    }
}

/// The exponential distribution, parameterized by its mean (`1/λ`).
///
/// Models Poisson arrival processes: the "M" in the paper's M/G/k
/// client-server application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean {mean}");
        Exponential { mean }
    }

    /// Creates an exponential distribution with the given rate `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn with_rate(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "invalid rate {rate}");
        Exponential { mean: 1.0 / rate }
    }
}

impl Dist for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF on (0, 1] (v1) or the ziggurat (v2).
        sample_exponential(self.mean, rng)
    }
    fn mean(&self) -> f64 {
        self.mean
    }
    fn scv(&self) -> f64 {
        1.0
    }
}

/// The lognormal distribution, the workspace's default "General" service
/// law: heavier-tailed than exponential, as observed for request service
/// times in interactive cloud services.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal from the *underlying normal* parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Creates a lognormal with the given *distribution* mean and squared
    /// coefficient of variation.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `scv < 0`.
    pub fn with_mean_scv(mean: f64, scv: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean {mean}");
        assert!(scv.is_finite() && scv >= 0.0, "invalid scv {scv}");
        let sigma2 = (1.0 + scv).ln();
        LogNormal {
            mu: mean.ln() - sigma2 / 2.0,
            sigma: sigma2.sqrt(),
        }
    }
}

impl Dist for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        sample_lognormal(self.mu, self.sigma, rng)
    }
    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
    fn scv(&self) -> f64 {
        (self.sigma * self.sigma).exp() - 1.0
    }
}

/// The Pareto (power-law) distribution with scale `x_m` and shape `α`,
/// for modelling heavy-tailed batch job sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0` or `shape <= 2` (we require a finite variance
    /// so that [`Dist::scv`] is well-defined).
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "invalid scale {scale}");
        assert!(
            shape.is_finite() && shape > 2.0,
            "shape must exceed 2 for finite variance, got {shape}"
        );
        Pareto { scale, shape }
    }
}

impl Dist for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        sample_pareto(self.scale, 1.0 / self.shape, rng)
    }
    fn mean(&self) -> f64 {
        self.shape * self.scale / (self.shape - 1.0)
    }
    fn scv(&self) -> f64 {
        // Var = α x² / ((α-1)² (α-2)); SCV = Var / mean² = 1 / (α(α-2)).
        1.0 / (self.shape * (self.shape - 2.0))
    }
}

/// The Erlang-k distribution (sum of `k` exponentials), for service laws
/// *less* variable than exponential.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erlang {
    k: u32,
    stage_mean: f64,
}

impl Erlang {
    /// Creates an Erlang-`k` distribution with overall mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `mean <= 0`.
    pub fn new(k: u32, mean: f64) -> Self {
        assert!(k > 0, "Erlang requires k >= 1");
        assert!(mean.is_finite() && mean > 0.0, "invalid mean {mean}");
        Erlang {
            k,
            stage_mean: mean / k as f64,
        }
    }
}

impl Dist for Erlang {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        sample_erlang(self.k, self.stage_mean, rng)
    }
    fn mean(&self) -> f64 {
        self.stage_mean * self.k as f64
    }
    fn scv(&self) -> f64 {
        1.0 / self.k as f64
    }
}

/// An empirical distribution that samples uniformly from observed values,
/// for replaying measured traces.
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    values: Vec<f64>,
    mean: f64,
    scv: f64,
}

impl Empirical {
    /// Creates an empirical distribution from observations.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains negative/non-finite entries.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "empirical distribution needs data");
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "observations must be finite and non-negative"
        );
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let scv = if mean > 0.0 { var / (mean * mean) } else { 0.0 };
        Empirical { values, mean, scv }
    }

    /// The number of underlying observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if there are no observations (never true for a constructed
    /// value; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl Dist for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.values[rng.index(self.values.len())]
    }
    fn mean(&self) -> f64 {
        self.mean
    }
    fn scv(&self) -> f64 {
        self.scv
    }
}

/// A devirtualized distribution: every law the [`Dist`] trait covers, as
/// one enum with an inlineable [`sample`](DistKind::sample).
///
/// Hot loops that draw millions of variates per second (the M/G/k
/// arrival/service path) pay for `dyn Dist`'s pointer-chasing call on
/// every event; matching on a `DistKind` instead compiles to a direct
/// branch the predictor resolves for free. The enum also caches derived
/// constants the trait structs recompute per draw (the Pareto `1/α`;
/// the lognormal's `(mu, sigma)` are carried verbatim so the cached and
/// trait paths stay bit-identical).
///
/// `DistKind` implements [`Dist`] itself, so it can still be boxed where
/// composition wants dynamic dispatch — sampling through either front
/// end produces the same bits for the same generator state (a property
/// the test suite pins for every variant under both stream versions).
#[derive(Debug, Clone, PartialEq)]
pub enum DistKind {
    /// Point mass at a value.
    Deterministic {
        /// The value every sample returns.
        value: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// The distribution mean (`1/λ`).
        mean: f64,
    },
    /// Lognormal with underlying-normal parameters.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Pareto with cached reciprocal shape.
    Pareto {
        /// Scale (`x_m`).
        scale: f64,
        /// Shape (`α`).
        shape: f64,
        /// Cached `1/α`, so the per-draw `powf` exponent costs no divide.
        inv_shape: f64,
    },
    /// Erlang-`k` as stage count and per-stage mean.
    Erlang {
        /// Number of exponential stages.
        k: u32,
        /// Mean of each stage (`mean / k`).
        stage_mean: f64,
    },
    /// Uniform draw over observed values.
    Empirical(Empirical),
}

impl DistKind {
    /// Draws one sample. Bit-identical to the corresponding [`Dist`]
    /// impl for the same generator state, under either stream version.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match self {
            DistKind::Deterministic { value } => *value,
            DistKind::Exponential { mean } => sample_exponential(*mean, rng),
            DistKind::LogNormal { mu, sigma } => sample_lognormal(*mu, *sigma, rng),
            DistKind::Pareto {
                scale, inv_shape, ..
            } => sample_pareto(*scale, *inv_shape, rng),
            DistKind::Erlang { k, stage_mean } => sample_erlang(*k, *stage_mean, rng),
            DistKind::Empirical(e) => e.values[rng.index(e.values.len())],
        }
    }

    /// The analytic mean (see [`Dist::mean`]).
    pub fn mean(&self) -> f64 {
        match self {
            DistKind::Deterministic { value } => *value,
            DistKind::Exponential { mean } => *mean,
            DistKind::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            DistKind::Pareto { scale, shape, .. } => shape * scale / (shape - 1.0),
            DistKind::Erlang { k, stage_mean } => stage_mean * *k as f64,
            DistKind::Empirical(e) => e.mean,
        }
    }

    /// The squared coefficient of variation (see [`Dist::scv`]).
    pub fn scv(&self) -> f64 {
        match self {
            DistKind::Deterministic { .. } => 0.0,
            DistKind::Exponential { .. } => 1.0,
            DistKind::LogNormal { sigma, .. } => (sigma * sigma).exp() - 1.0,
            DistKind::Pareto { shape, .. } => 1.0 / (shape * (shape - 2.0)),
            DistKind::Erlang { k, .. } => 1.0 / *k as f64,
            DistKind::Empirical(e) => e.scv,
        }
    }
}

impl Dist for DistKind {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        DistKind::sample(self, rng)
    }
    fn mean(&self) -> f64 {
        DistKind::mean(self)
    }
    fn scv(&self) -> f64 {
        DistKind::scv(self)
    }
}

impl From<Deterministic> for DistKind {
    fn from(d: Deterministic) -> Self {
        DistKind::Deterministic { value: d.value }
    }
}

impl From<Exponential> for DistKind {
    fn from(d: Exponential) -> Self {
        DistKind::Exponential { mean: d.mean }
    }
}

impl From<LogNormal> for DistKind {
    fn from(d: LogNormal) -> Self {
        DistKind::LogNormal {
            mu: d.mu,
            sigma: d.sigma,
        }
    }
}

impl From<Pareto> for DistKind {
    fn from(d: Pareto) -> Self {
        DistKind::Pareto {
            scale: d.scale,
            shape: d.shape,
            inv_shape: 1.0 / d.shape,
        }
    }
}

impl From<Erlang> for DistKind {
    fn from(d: Erlang) -> Self {
        DistKind::Erlang {
            k: d.k,
            stage_mean: d.stage_mean,
        }
    }
}

impl From<Empirical> for DistKind {
    fn from(d: Empirical) -> Self {
        DistKind::Empirical(d)
    }
}

/// Number of samples a [`DrawBuffer`] materializes per refill.
///
/// Large enough to amortize the RNG state round-trip and let the
/// compiler vectorize the transform passes; small enough (8 KiB) to
/// stay resident in L1.
pub const DRAW_BUFFER_LEN: usize = 1024;

/// A reusable per-stream batch of pre-drawn samples.
///
/// `DrawBuffer` owns a dedicated generator and fills
/// [`DRAW_BUFFER_LEN`] variates in one tight loop, which consumers then
/// take one at a time via [`next`](DrawBuffer::next). Because the
/// generator is exclusive to the buffer, the delivered value sequence
/// is exactly what repeated [`DistKind::sample`] calls on that
/// generator would produce — batching changes *when* the transforms
/// run, never *what* they return (pinned by test). The win is
/// mechanical: one buffer refill loads the RNG state once for 1024
/// draws, and split transform passes (z-fill, then `exp`) vectorize
/// where the one-at-a-time path cannot.
///
/// The backing storage is allocated once at construction and reused for
/// every refill — steady-state sampling is allocation-free, matching
/// the DES hot path's discipline.
#[derive(Debug, Clone)]
pub struct DrawBuffer {
    dist: DistKind,
    rng: SimRng,
    buf: Vec<f64>,
    pos: usize,
}

impl DrawBuffer {
    /// Creates a buffer drawing from `dist` with the dedicated
    /// generator `rng`. No samples are drawn until first use.
    pub fn new(dist: DistKind, rng: SimRng) -> Self {
        DrawBuffer {
            dist,
            rng,
            buf: Vec::with_capacity(DRAW_BUFFER_LEN),
            pos: 0,
        }
    }

    /// The next sample in the stream. Deliberately not an `Iterator`:
    /// the stream is infinite and the hot path wants a bare `f64`, not
    /// an `Option` to unwrap per draw.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> f64 {
        if self.pos == self.buf.len() {
            self.refill();
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    #[cold]
    fn refill(&mut self) {
        // First refill sizes the buffer; afterwards every slot is
        // overwritten in place — no clear/zero-fill churn per batch.
        if self.buf.len() != DRAW_BUFFER_LEN {
            self.buf.resize(DRAW_BUFFER_LEN, 0.0);
        }
        self.pos = 0;
        match &self.dist {
            // Lognormal: two passes. The z-fill is sequential in the
            // generator; the exp transform is a pure map the compiler
            // can vectorize. Same arithmetic per element as the scalar
            // path, so the values are identical.
            DistKind::LogNormal { mu, sigma } => {
                let (mu, sigma) = (*mu, *sigma);
                for slot in self.buf.iter_mut() {
                    *slot = self.rng.standard_normal();
                }
                match self.rng.version() {
                    StreamVersion::V1 => {
                        for slot in self.buf.iter_mut() {
                            *slot = (mu + sigma * *slot).exp();
                        }
                    }
                    StreamVersion::V2 => {
                        for slot in self.buf.iter_mut() {
                            *slot = crate::zig::fast_exp(mu + sigma * *slot);
                        }
                    }
                }
            }
            // Exponential: one tight pass over the ziggurat (or the v1
            // log path) — the mean scale is exact sign-free arithmetic.
            DistKind::Exponential { mean } => {
                let mean = *mean;
                for slot in self.buf.iter_mut() {
                    *slot = mean * self.rng.standard_exp();
                }
            }
            dist => {
                for slot in self.buf.iter_mut() {
                    *slot = dist.sample(&mut self.rng);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_moments(dist: &dyn Dist, n: usize, tol: f64) {
        let mut rng = SimRng::seed_from_u64(1234);
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!(
            (mean - dist.mean()).abs() / dist.mean().max(1e-12) < tol,
            "sample mean {mean} vs analytic {}",
            dist.mean()
        );
        assert!(samples.iter().all(|s| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn deterministic_moments() {
        let d = Deterministic::new(4.0);
        check_moments(&d, 10, 1e-12);
        assert_eq!(d.scv(), 0.0);
    }

    #[test]
    fn exponential_moments() {
        let d = Exponential::with_mean(2.0);
        check_moments(&d, 50_000, 0.03);
        assert_eq!(d.scv(), 1.0);
        assert!((Exponential::with_rate(0.5).mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lognormal_matches_requested_moments() {
        let d = LogNormal::with_mean_scv(3.0, 0.5);
        assert!((d.mean() - 3.0).abs() < 1e-9);
        assert!((d.scv() - 0.5).abs() < 1e-9);
        check_moments(&d, 100_000, 0.03);
    }

    #[test]
    fn pareto_moments() {
        let d = Pareto::new(1.0, 3.0);
        assert!((d.mean() - 1.5).abs() < 1e-12);
        assert!((d.scv() - 1.0 / 3.0).abs() < 1e-12);
        check_moments(&d, 200_000, 0.05);
    }

    #[test]
    fn erlang_moments() {
        let d = Erlang::new(4, 2.0);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        assert_eq!(d.scv(), 0.25);
        check_moments(&d, 50_000, 0.03);
    }

    #[test]
    fn empirical_reproduces_data_statistics() {
        let d = Empirical::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.mean(), 2.5);
        assert_eq!(d.len(), 4);
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            let s = d.sample(&mut rng);
            assert!([1.0, 2.0, 3.0, 4.0].contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "needs data")]
    fn empty_empirical_panics() {
        let _ = Empirical::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "shape must exceed 2")]
    fn pareto_low_shape_panics() {
        let _ = Pareto::new(1.0, 1.5);
    }

    #[test]
    fn trait_objects_compose() {
        let dists: Vec<Box<dyn Dist>> = vec![
            Box::new(Deterministic::new(1.0)),
            Box::new(Exponential::with_mean(1.0)),
            Box::new(LogNormal::with_mean_scv(1.0, 2.0)),
        ];
        let mut rng = SimRng::seed_from_u64(0);
        for d in &dists {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }
}
