//! Probability distributions for workload modelling.
//!
//! The paper's auto-scaling evaluation drives an **M/G/k** client–server
//! application: Markovian (Poisson) arrivals and a *General* service-time
//! distribution (Section VI-D). This module implements the distributions
//! needed to express both sides — exponential inter-arrivals and a family
//! of general service-time laws (lognormal, Pareto, Erlang, empirical) —
//! without pulling external crates, so sampling behaviour is fully
//! deterministic and documented.
//!
//! All distributions report their analytic [`mean`](Dist::mean) and
//! [squared coefficient of variation](Dist::scv), which the M/G/k latency
//! approximations in `ic-workloads` consume.

use crate::rng::SimRng;
use std::fmt;

/// A sampleable, positive-valued probability distribution.
///
/// Implementors must return finite, non-negative samples.
pub trait Dist: fmt::Debug {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The analytic mean of the distribution.
    fn mean(&self) -> f64;

    /// The squared coefficient of variation, `Var / Mean²`. Returns 0 for
    /// deterministic distributions and 1 for the exponential.
    fn scv(&self) -> f64;
}

/// A distribution that always returns the same value.
///
/// # Example
///
/// ```
/// use ic_sim::dist::{Dist, Deterministic};
/// use ic_sim::rng::SimRng;
///
/// let d = Deterministic::new(2.5);
/// assert_eq!(d.sample(&mut SimRng::seed_from_u64(0)), 2.5);
/// assert_eq!(d.scv(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates a point mass at `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or non-finite.
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite() && value >= 0.0, "invalid value {value}");
        Deterministic { value }
    }
}

impl Dist for Deterministic {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.value
    }
    fn mean(&self) -> f64 {
        self.value
    }
    fn scv(&self) -> f64 {
        0.0
    }
}

/// The exponential distribution, parameterized by its mean (`1/λ`).
///
/// Models Poisson arrival processes: the "M" in the paper's M/G/k
/// client-server application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean {mean}");
        Exponential { mean }
    }

    /// Creates an exponential distribution with the given rate `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn with_rate(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "invalid rate {rate}");
        Exponential { mean: 1.0 / rate }
    }
}

impl Dist for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF on (0, 1] to avoid ln(0).
        -self.mean * (1.0 - rng.uniform()).ln()
    }
    fn mean(&self) -> f64 {
        self.mean
    }
    fn scv(&self) -> f64 {
        1.0
    }
}

/// The lognormal distribution, the workspace's default "General" service
/// law: heavier-tailed than exponential, as observed for request service
/// times in interactive cloud services.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal from the *underlying normal* parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Creates a lognormal with the given *distribution* mean and squared
    /// coefficient of variation.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `scv < 0`.
    pub fn with_mean_scv(mean: f64, scv: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean {mean}");
        assert!(scv.is_finite() && scv >= 0.0, "invalid scv {scv}");
        let sigma2 = (1.0 + scv).ln();
        LogNormal {
            mu: mean.ln() - sigma2 / 2.0,
            sigma: sigma2.sqrt(),
        }
    }
}

impl Dist for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
    fn scv(&self) -> f64 {
        (self.sigma * self.sigma).exp() - 1.0
    }
}

/// The Pareto (power-law) distribution with scale `x_m` and shape `α`,
/// for modelling heavy-tailed batch job sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0` or `shape <= 2` (we require a finite variance
    /// so that [`Dist::scv`] is well-defined).
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "invalid scale {scale}");
        assert!(
            shape.is_finite() && shape > 2.0,
            "shape must exceed 2 for finite variance, got {shape}"
        );
        Pareto { scale, shape }
    }
}

impl Dist for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.scale / (1.0 - rng.uniform()).powf(1.0 / self.shape)
    }
    fn mean(&self) -> f64 {
        self.shape * self.scale / (self.shape - 1.0)
    }
    fn scv(&self) -> f64 {
        // Var = α x² / ((α-1)² (α-2)); SCV = Var / mean² = 1 / (α(α-2)).
        1.0 / (self.shape * (self.shape - 2.0))
    }
}

/// The Erlang-k distribution (sum of `k` exponentials), for service laws
/// *less* variable than exponential.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erlang {
    k: u32,
    stage_mean: f64,
}

impl Erlang {
    /// Creates an Erlang-`k` distribution with overall mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `mean <= 0`.
    pub fn new(k: u32, mean: f64) -> Self {
        assert!(k > 0, "Erlang requires k >= 1");
        assert!(mean.is_finite() && mean > 0.0, "invalid mean {mean}");
        Erlang {
            k,
            stage_mean: mean / k as f64,
        }
    }
}

impl Dist for Erlang {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (0..self.k)
            .map(|_| -self.stage_mean * (1.0 - rng.uniform()).ln())
            .sum()
    }
    fn mean(&self) -> f64 {
        self.stage_mean * self.k as f64
    }
    fn scv(&self) -> f64 {
        1.0 / self.k as f64
    }
}

/// An empirical distribution that samples uniformly from observed values,
/// for replaying measured traces.
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    values: Vec<f64>,
    mean: f64,
    scv: f64,
}

impl Empirical {
    /// Creates an empirical distribution from observations.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains negative/non-finite entries.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "empirical distribution needs data");
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "observations must be finite and non-negative"
        );
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let scv = if mean > 0.0 { var / (mean * mean) } else { 0.0 };
        Empirical { values, mean, scv }
    }

    /// The number of underlying observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if there are no observations (never true for a constructed
    /// value; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl Dist for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.values[rng.index(self.values.len())]
    }
    fn mean(&self) -> f64 {
        self.mean
    }
    fn scv(&self) -> f64 {
        self.scv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_moments(dist: &dyn Dist, n: usize, tol: f64) {
        let mut rng = SimRng::seed_from_u64(1234);
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!(
            (mean - dist.mean()).abs() / dist.mean().max(1e-12) < tol,
            "sample mean {mean} vs analytic {}",
            dist.mean()
        );
        assert!(samples.iter().all(|s| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn deterministic_moments() {
        let d = Deterministic::new(4.0);
        check_moments(&d, 10, 1e-12);
        assert_eq!(d.scv(), 0.0);
    }

    #[test]
    fn exponential_moments() {
        let d = Exponential::with_mean(2.0);
        check_moments(&d, 50_000, 0.03);
        assert_eq!(d.scv(), 1.0);
        assert!((Exponential::with_rate(0.5).mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lognormal_matches_requested_moments() {
        let d = LogNormal::with_mean_scv(3.0, 0.5);
        assert!((d.mean() - 3.0).abs() < 1e-9);
        assert!((d.scv() - 0.5).abs() < 1e-9);
        check_moments(&d, 100_000, 0.03);
    }

    #[test]
    fn pareto_moments() {
        let d = Pareto::new(1.0, 3.0);
        assert!((d.mean() - 1.5).abs() < 1e-12);
        assert!((d.scv() - 1.0 / 3.0).abs() < 1e-12);
        check_moments(&d, 200_000, 0.05);
    }

    #[test]
    fn erlang_moments() {
        let d = Erlang::new(4, 2.0);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        assert_eq!(d.scv(), 0.25);
        check_moments(&d, 50_000, 0.03);
    }

    #[test]
    fn empirical_reproduces_data_statistics() {
        let d = Empirical::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.mean(), 2.5);
        assert_eq!(d.len(), 4);
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            let s = d.sample(&mut rng);
            assert!([1.0, 2.0, 3.0, 4.0].contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "needs data")]
    fn empty_empirical_panics() {
        let _ = Empirical::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "shape must exceed 2")]
    fn pareto_low_shape_panics() {
        let _ = Pareto::new(1.0, 1.5);
    }

    #[test]
    fn trait_objects_compose() {
        let dists: Vec<Box<dyn Dist>> = vec![
            Box::new(Deterministic::new(1.0)),
            Box::new(Exponential::with_mean(1.0)),
            Box::new(LogNormal::with_mean_scv(1.0, 2.0)),
        ];
        let mut rng = SimRng::seed_from_u64(0);
        for d in &dists {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }
}
