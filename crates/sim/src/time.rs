//! Simulation time.
//!
//! Simulated time is kept in integer nanoseconds so that event ordering is
//! total and exactly reproducible across runs and platforms — the paper's
//! auto-scaler experiments (Figures 15 and 16) depend on deterministic
//! replays to compare the baseline, OC-E, and OC-A policies on identical
//! arrival sequences.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
///
/// # Example
///
/// ```
/// use ic_sim::time::{SimDuration, SimTime};
///
/// let t = SimTime::from_secs(3) + SimDuration::from_millis(500);
/// assert_eq!(t.as_secs_f64(), 3.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span between two [`SimTime`] instants, in nanoseconds.
///
/// # Example
///
/// ```
/// use ic_sim::time::SimDuration;
///
/// let d = SimDuration::from_secs(60) * 3;
/// assert_eq!(d.as_secs_f64(), 180.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

const NANOS_PER_SEC: u64 = 1_000_000_000;
const NANOS_PER_MILLI: u64 = 1_000_000;
const NANOS_PER_MICRO: u64 = 1_000;

impl SimTime {
    /// The start of the simulation, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `secs` seconds after the start of the run.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates an instant `millis` milliseconds after the start of the run.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Creates an instant from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `secs` whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration of `millis` whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration of `micros` whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// `true` if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "time must be finite and non-negative, got {secs}"
    );
    let nanos = secs * NANOS_PER_SEC as f64;
    assert!(nanos <= u64::MAX as f64, "time overflow: {secs} s");
    nanos.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_micros(250).as_nanos(), 250_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_secs_f64(), 0.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!(t - SimTime::from_secs(3), SimDuration::from_secs(7));
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn ordering_is_total() {
        let mut times = vec![
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        times.sort();
        assert_eq!(
            times,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(3)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_panics() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }
}
