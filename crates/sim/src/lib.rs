//! Discrete-event simulation kernel and numeric toolbox for the
//! `immersion-cloud` workspace.
//!
//! The paper this workspace reproduces ("Cost-Efficient Overclocking in
//! Immersion-Cooled Datacenters", ISCA 2021) evaluates its control-plane
//! systems — oversubscribed VM packing and an overclocking-enhanced
//! auto-scaler — on physical 2PIC tank prototypes. This crate provides the
//! simulation substrate that replaces that hardware: a deterministic
//! discrete-event engine ([`engine::Engine`]), seeded random-number
//! generation ([`rng::SimRng`]), probability distributions implemented
//! in-crate ([`dist`]), and streaming statistics ([`stats`]) used to report
//! the P95/P99 metrics the paper's evaluation is built on.
//!
//! # Example
//!
//! ```
//! use ic_sim::engine::Engine;
//! use ic_sim::time::SimTime;
//!
//! // Count events fired up to and including t = 5 s.
//! let mut engine: Engine<u32> = Engine::new();
//! for i in 0..10 {
//!     engine.schedule(SimTime::from_secs(i), |count, _ctx| *count += 1);
//! }
//! let mut count = 0;
//! engine.run_until(&mut count, SimTime::from_secs(5));
//! assert_eq!(count, 6); // t = 0..=5 inclusive
//! ```

mod calendar;
pub mod dist;
pub mod engine;
pub mod event;
pub mod hist;
pub mod observe;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;
pub(crate) mod zig;

pub use engine::Engine;
pub use rng::{SimRng, StreamVersion};
pub use time::{SimDuration, SimTime};
