//! Logarithmic-bin latency histograms.
//!
//! [`Tally`](crate::stats::Tally) keeps every sample for exact
//! percentiles; [`LogHistogram`] trades exactness for constant memory —
//! the right tool for long auto-scaler runs and for rendering latency
//! distributions in experiment output. Bins are geometric (each bin is
//! `growth`× wider than the last), matching how latency spreads over
//! orders of magnitude.

use serde::{Deserialize, Serialize};

/// A constant-memory histogram with geometric bin edges.
///
/// # Example
///
/// ```
/// use ic_sim::hist::LogHistogram;
///
/// let mut h = LogHistogram::new(1e-4, 2.0, 24); // 0.1 ms … ~1700 s
/// for i in 1..=1000u32 {
///     h.record(i as f64 * 1e-3);
/// }
/// let p95 = h.quantile(0.95);
/// assert!((0.9..=1.3).contains(&p95), "p95 {p95}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    first_edge: f64,
    growth: f64,
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
    sum: f64,
    max_seen: f64,
}

impl LogHistogram {
    /// Creates a histogram whose first bin ends at `first_edge` and
    /// whose bins each grow by `growth`×; values beyond the last bin
    /// land in it.
    ///
    /// # Panics
    ///
    /// Panics if `first_edge <= 0`, `growth <= 1`, or `bins == 0`.
    pub fn new(first_edge: f64, growth: f64, bins: usize) -> Self {
        assert!(
            first_edge > 0.0 && first_edge.is_finite(),
            "invalid first edge"
        );
        assert!(growth > 1.0 && growth.is_finite(), "growth must exceed 1");
        assert!(bins > 0, "need at least one bin");
        LogHistogram {
            first_edge,
            growth,
            counts: vec![0; bins],
            underflow: 0,
            total: 0,
            sum: 0.0,
            max_seen: 0.0,
        }
    }

    /// Records one non-negative sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or non-finite.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite() && value >= 0.0, "invalid sample {value}");
        self.total += 1;
        self.sum += value;
        self.max_seen = self.max_seen.max(value);
        if value < self.first_edge {
            self.underflow += 1;
            return;
        }
        let idx = ((value / self.first_edge).ln() / self.growth.ln()).floor() as usize + 1;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// The number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The arithmetic mean (exact, not binned), or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// The maximum sample (exact), or 0 if empty.
    pub fn max(&self) -> f64 {
        self.max_seen
    }

    /// The upper edge of bin `i`.
    fn edge(&self, i: usize) -> f64 {
        self.first_edge * self.growth.powi(i as i32)
    }

    /// An approximate `q`-quantile: the upper edge of the bin where the
    /// cumulative count crosses `q` (so the estimate is biased at most
    /// one bin upward). Returns 0 if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.total == 0 {
            return 0.0;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= rank {
            return self.first_edge;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The last bin also absorbs overflow, whose edge would
                // understate the tail: report the exact maximum there.
                return if i == self.counts.len() - 1 {
                    self.max_seen
                } else {
                    self.edge(i).min(self.max_seen)
                };
            }
        }
        self.max_seen
    }

    /// Non-empty bins as `(upper_edge, count)` pairs, for rendering.
    pub fn bins(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        if self.underflow > 0 {
            out.push((self.first_edge, self.underflow));
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                out.push((self.edge(i), c));
            }
        }
        out
    }

    /// Merges another histogram with identical bin geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert!(
            self.first_edge == other.first_edge
                && self.growth == other.growth
                && self.counts.len() == other.counts.len(),
            "histogram geometries differ"
        );
        self.underflow += other.underflow;
        self.total += other.total;
        self.sum += other.sum;
        self.max_seen = self.max_seen.max(other.max_seen);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_within_one_bin_of_truth() {
        let mut h = LogHistogram::new(1e-3, 1.5, 40);
        let values: Vec<f64> = (1..=10_000).map(|i| i as f64 * 1e-3).collect();
        for &v in &values {
            h.record(v);
        }
        let exact_p95 = 9.5; // 9500th of 10000
        let est = h.quantile(0.95);
        assert!(
            est >= exact_p95 && est <= exact_p95 * 1.5,
            "estimate {est} vs exact {exact_p95}"
        );
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = LogHistogram::new(0.1, 2.0, 10);
        for v in [0.05, 1.0, 2.0, 3.0] {
            h.record(v);
        }
        assert!((h.mean() - 1.5125).abs() < 1e-12);
        assert_eq!(h.max(), 3.0);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn underflow_counts_toward_quantiles() {
        let mut h = LogHistogram::new(1.0, 2.0, 8);
        for _ in 0..99 {
            h.record(0.5);
        }
        h.record(100.0);
        assert_eq!(h.quantile(0.5), 1.0); // underflow bin edge
        assert!(h.quantile(1.0) >= 100.0 * 0.9);
    }

    #[test]
    fn overflow_lands_in_last_bin() {
        let mut h = LogHistogram::new(1.0, 2.0, 4);
        h.record(1e9);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LogHistogram::new(1.0, 2.0, 8);
        let mut b = LogHistogram::new(1.0, 2.0, 8);
        for i in 1..=50 {
            a.record(i as f64);
            b.record((i + 50) as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.max(), 100.0);
    }

    #[test]
    fn empty_histogram_defaults() {
        let h = LogHistogram::new(1.0, 2.0, 4);
        assert_eq!(h.quantile(0.95), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.bins().is_empty());
    }

    #[test]
    #[should_panic(expected = "geometries differ")]
    fn mismatched_merge_panics() {
        let mut a = LogHistogram::new(1.0, 2.0, 8);
        let b = LogHistogram::new(1.0, 3.0, 8);
        a.merge(&b);
    }
}
