//! Streaming statistics used to report the paper's evaluation metrics.
//!
//! The evaluation section reports tail latencies (P95 for SQL and the
//! client-server app, P99 for the key-value store), average and P99 power
//! draws, and time-averaged CPU utilization. [`Tally`] collects samples and
//! answers percentile queries; [`Welford`] maintains running mean/variance;
//! [`TimeWeighted`] computes time-weighted averages of step signals such as
//! utilization and power; [`SlidingWindow`] provides the 30-second and
//! 3-minute trailing averages the auto-scaler's control loop uses.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A sample collector with exact percentile queries.
///
/// Stores all samples; suitable for simulation-scale data (millions of
/// points). Percentiles use the nearest-rank method on the sorted data.
///
/// Queries never re-sort from scratch: the tally keeps a sorted prefix
/// (`samples[..sorted_len]`) and an unsorted tail of recent records. A
/// query merges a small tail into the prefix in O(n) through a reusable
/// scratch buffer, and answers a large unsorted residue with quickselect
/// (`select_nth_unstable`), promoting to a full sort only when repeated
/// selections would cost more than sorting once. Monotone-ascending
/// record streams (cumulative counters, sim-time series) keep the prefix
/// sorted for free.
///
/// # Example
///
/// ```
/// use ic_sim::stats::Tally;
///
/// let mut t = Tally::new();
/// for i in 1..=100 {
///     t.record(i as f64);
/// }
/// assert_eq!(t.percentile(0.95), 95.0);
/// assert_eq!(t.mean(), 50.5);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Tally {
    samples: Vec<f64>,
    /// `samples[..sorted_len]` is sorted ascending; everything after is
    /// the unsorted tail recorded since the last merge.
    sorted_len: usize,
    sum: f64,
    /// Quickselect queries answered since the last merge; after a few,
    /// one full sort is cheaper than more O(n) selections.
    selects_since_merge: u32,
    /// Reusable merge buffer (kept empty between queries).
    scratch: Vec<f64>,
}

/// How many quickselect answers are tolerated before promoting the whole
/// sample set to fully sorted.
const TALLY_SELECT_PROMOTE: u32 = 3;

impl Tally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Tally::default()
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "cannot tally non-finite value {value}");
        // An in-order append extends the sorted prefix instead of
        // starting a tail.
        if self.sorted_len == self.samples.len()
            && self
                .samples
                .last()
                .is_none_or(|last| last.total_cmp(&value) != std::cmp::Ordering::Greater)
        {
            self.sorted_len += 1;
        }
        self.samples.push(value);
        self.sum += value;
    }

    /// The number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum / self.samples.len() as f64
        }
    }

    /// The maximum sample, or 0 if empty.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::MIN, f64::max)
            .max(0.0)
    }

    /// The `q`-quantile (e.g. `0.95` for P95) by nearest rank.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`, or if the tally is empty — a
    /// percentile of nothing is a logic error, not a zero.
    pub fn percentile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        assert!(
            !self.samples.is_empty(),
            "percentile query on an empty Tally — record at least one sample first"
        );
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).max(1) - 1;
        let rank = rank.min(n - 1);
        let tail = n - self.sorted_len;
        if tail == 0 {
            return self.samples[rank];
        }
        if tail <= n / 8 + 16 || self.selects_since_merge >= TALLY_SELECT_PROMOTE {
            self.merge_tail();
            self.samples[rank]
        } else {
            self.selects_since_merge += 1;
            let (_, v, _) = self.samples.select_nth_unstable_by(rank, f64::total_cmp);
            let v = *v;
            // Selection partitions the whole buffer; the prefix order is
            // gone.
            self.sorted_len = 0;
            v
        }
    }

    /// Sorts the unsorted tail and merges it into the sorted prefix
    /// through the scratch buffer; afterwards the whole sample set is
    /// sorted.
    fn merge_tail(&mut self) {
        let n = self.samples.len();
        self.samples[self.sorted_len..].sort_unstable_by(f64::total_cmp);
        if self.sorted_len > 0 && self.sorted_len < n {
            self.scratch.clear();
            self.scratch.reserve(n);
            let (a, b) = self.samples.split_at(self.sorted_len);
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                if b[j].total_cmp(&a[i]) == std::cmp::Ordering::Less {
                    self.scratch.push(b[j]);
                    j += 1;
                } else {
                    self.scratch.push(a[i]);
                    i += 1;
                }
            }
            self.scratch.extend_from_slice(&a[i..]);
            self.scratch.extend_from_slice(&b[j..]);
            std::mem::swap(&mut self.samples, &mut self.scratch);
            self.scratch.clear();
        }
        self.sorted_len = n;
        self.selects_since_merge = 0;
    }

    /// Immutable view of the raw samples (unsorted order is unspecified).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Removes all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sum = 0.0;
        self.sorted_len = 0;
        self.selects_since_merge = 0;
    }
}

impl Extend<f64> for Tally {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for Tally {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut t = Tally::new();
        t.extend(iter);
        t
    }
}

/// Numerically stable running mean and variance (Welford's algorithm).
///
/// # Example
///
/// ```
/// use ic_sim::stats::Welford;
///
/// let mut w = Welford::new();
/// for v in [2.0, 4.0, 6.0] {
///     w.record(v);
/// }
/// assert_eq!(w.mean(), 4.0);
/// assert_eq!(w.population_variance(), 8.0 / 3.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "cannot record non-finite value {value}");
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// The number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// The population variance (dividing by `n`), or 0 if empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// The population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// The minimum sample, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// The maximum sample, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. server power
/// or CPU utilization over a simulation run.
///
/// # Example
///
/// ```
/// use ic_sim::stats::TimeWeighted;
/// use ic_sim::time::SimTime;
///
/// let mut tw = TimeWeighted::new(SimTime::ZERO, 100.0);
/// tw.set(SimTime::from_secs(10), 200.0); // 100 W for 10 s
/// assert_eq!(tw.average(SimTime::from_secs(20)), 150.0); // then 200 W for 10 s
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Starts tracking a signal whose value is `initial` at `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_time: start,
            last_value: initial,
            weighted_sum: 0.0,
            start,
        }
    }

    /// Updates the signal to `value` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous update.
    pub fn set(&mut self, at: SimTime, value: f64) {
        assert!(at >= self.last_time, "updates must be in time order");
        self.weighted_sum += self.last_value * (at - self.last_time).as_secs_f64();
        self.last_time = at;
        self.last_value = value;
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// The time-weighted average over `[start, until]`.
    ///
    /// # Panics
    ///
    /// Panics if `until` precedes the last update.
    pub fn average(&self, until: SimTime) -> f64 {
        assert!(until >= self.last_time, "cannot average into the past");
        let total = (until - self.start).as_secs_f64();
        if total == 0.0 {
            return self.last_value;
        }
        let sum = self.weighted_sum + self.last_value * (until - self.last_time).as_secs_f64();
        sum / total
    }
}

/// A trailing time-window average of timestamped samples — the primitive
/// behind the auto-scaler's "average CPU utilization over the last 30 s /
/// 3 min" signals (paper Section VI-D).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SlidingWindow {
    window: SimDuration,
    samples: std::collections::VecDeque<(SimTime, f64)>,
}

impl SlidingWindow {
    /// Creates a window of the given length.
    pub fn new(window: SimDuration) -> Self {
        SlidingWindow {
            window,
            samples: std::collections::VecDeque::new(),
        }
    }

    /// Records a sample at `at`, evicting samples older than the window.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the newest recorded sample.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.samples.back() {
            assert!(at >= last, "samples must arrive in time order");
        }
        self.samples.push_back((at, value));
        // Evict strictly-older samples, keeping those inside [at - window, at].
        while let Some(&(t, _)) = self.samples.front() {
            if (at - t) > self.window {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// The unweighted mean of the samples currently in the window, or
    /// `None` if the window is empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// The most recent sample value, if any.
    pub fn latest(&self) -> Option<f64> {
        self.samples.back().map(|&(_, v)| v)
    }

    /// The number of samples in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The least-squares linear trend of the windowed samples, in value
    /// units per second, or `None` with fewer than two samples (or zero
    /// time spread). Used for forecast-based (predictive) control.
    pub fn linear_trend_per_sec(&self) -> Option<f64> {
        if self.samples.len() < 2 {
            return None;
        }
        let n = self.samples.len() as f64;
        let t0 = self.samples.front().expect("non-empty").0;
        // Two passes, no intermediate buffer: recomputing x from the
        // timestamps is cheaper than allocating per query on the
        // auto-scaler's control path.
        let mut sum_x = 0.0;
        let mut sum_y = 0.0;
        for &(t, v) in &self.samples {
            sum_x += (t - t0).as_secs_f64();
            sum_y += v;
        }
        let mean_x = sum_x / n;
        let mean_y = sum_y / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for &(t, y) in &self.samples {
            let x = (t - t0).as_secs_f64();
            sxx += (x - mean_x).powi(2);
            sxy += (x - mean_x) * (y - mean_y);
        }
        if sxx == 0.0 {
            None
        } else {
            Some(sxy / sxx)
        }
    }

    /// Extrapolates the windowed mean `horizon_s` seconds ahead along
    /// the linear trend; falls back to the plain mean when no trend can
    /// be estimated.
    pub fn forecast(&self, horizon_s: f64) -> Option<f64> {
        let mean = self.mean()?;
        match self.linear_trend_per_sec() {
            Some(slope) => Some(mean + slope * horizon_s),
            None => Some(mean),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_percentiles_nearest_rank() {
        let mut t: Tally = (1..=10).map(|i| i as f64).collect();
        assert_eq!(t.percentile(0.0), 1.0);
        assert_eq!(t.percentile(0.5), 5.0);
        assert_eq!(t.percentile(0.95), 10.0);
        assert_eq!(t.percentile(1.0), 10.0);
        assert_eq!(t.len(), 10);
        assert_eq!(t.max(), 10.0);
    }

    #[test]
    fn tally_empty_behaviour() {
        let t = Tally::new();
        assert!(t.is_empty());
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty Tally")]
    fn tally_percentile_on_empty_panics() {
        Tally::new().percentile(0.95);
    }

    #[test]
    fn tally_interleaved_record_and_query() {
        let mut t = Tally::new();
        t.record(5.0);
        assert_eq!(t.percentile(0.5), 5.0);
        t.record(1.0);
        assert_eq!(t.percentile(0.0), 1.0);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn tally_rejects_nan() {
        Tally::new().record(f64::NAN);
    }

    /// Property test: under random interleavings of records and queries,
    /// every percentile answer (whether served by the sorted prefix, a
    /// tail merge, or quickselect) equals the nearest-rank value of a
    /// freshly sorted copy of the same samples.
    #[test]
    fn tally_percentiles_match_sorted_reference() {
        use crate::rng::SimRng;
        for seed in 0..20u64 {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut t = Tally::new();
            let mut reference: Vec<f64> = Vec::new();
            for _ in 0..200 {
                let burst = 1 + rng.next_u64() % 24;
                for _ in 0..burst {
                    // Mix of random, duplicate, and monotone values so
                    // both the sorted-append and unsorted-tail paths run.
                    let v = match rng.next_u64() % 4 {
                        0 => (rng.next_u64() % 1000) as f64,
                        1 => 500.0,
                        _ => reference.len() as f64,
                    };
                    t.record(v);
                    reference.push(v);
                }
                let q = (rng.next_u64() % 101) as f64 / 100.0;
                let got = t.percentile(q);
                let mut sorted = reference.clone();
                sorted.sort_by(f64::total_cmp);
                let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
                let want = sorted[rank.min(sorted.len() - 1)];
                assert_eq!(got, want, "seed {seed} q {q} n {}", sorted.len());
                assert_eq!(t.len(), reference.len());
            }
        }
    }

    #[test]
    fn welford_matches_two_pass() {
        let data = [3.0, 7.0, 7.0, 19.0];
        let mut w = Welford::new();
        for &v in &data {
            w.record(v);
        }
        assert_eq!(w.mean(), 9.0);
        let var = data.iter().map(|v| (v - 9.0f64).powi(2)).sum::<f64>() / 4.0;
        assert!((w.population_variance() - var).abs() < 1e-12);
        assert_eq!(w.min(), 3.0);
        assert_eq!(w.max(), 19.0);
        assert_eq!(w.count(), 4);
    }

    #[test]
    fn welford_empty_defaults() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.std_dev(), 0.0);
        assert_eq!(w.min(), 0.0);
        assert_eq!(w.max(), 0.0);
    }

    #[test]
    fn time_weighted_average_steps() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 10.0);
        tw.set(SimTime::from_secs(5), 20.0);
        tw.set(SimTime::from_secs(15), 0.0);
        // 10*5 + 20*10 + 0*5 = 250 over 20 s
        assert!((tw.average(SimTime::from_secs(20)) - 12.5).abs() < 1e-12);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn time_weighted_zero_span_returns_current() {
        let tw = TimeWeighted::new(SimTime::from_secs(3), 42.0);
        assert_eq!(tw.average(SimTime::from_secs(3)), 42.0);
    }

    #[test]
    fn sliding_window_evicts_old_samples() {
        let mut w = SlidingWindow::new(SimDuration::from_secs(10));
        w.record(SimTime::from_secs(0), 100.0);
        w.record(SimTime::from_secs(5), 50.0);
        assert_eq!(w.mean(), Some(75.0));
        w.record(SimTime::from_secs(12), 20.0);
        // t=0 sample is now outside [2, 12].
        assert_eq!(w.len(), 2);
        assert_eq!(w.mean(), Some(35.0));
        assert_eq!(w.latest(), Some(20.0));
    }

    #[test]
    fn linear_trend_recovers_a_ramp() {
        let mut w = SlidingWindow::new(SimDuration::from_secs(100));
        for i in 0..10 {
            w.record(SimTime::from_secs(i), 2.0 * i as f64 + 5.0);
        }
        let slope = w.linear_trend_per_sec().unwrap();
        assert!((slope - 2.0).abs() < 1e-9);
        // Forecast 10 s ahead: mean (14.0) + 2×10.
        assert!((w.forecast(10.0).unwrap() - 34.0).abs() < 1e-9);
    }

    #[test]
    fn linear_trend_flat_signal_is_zero() {
        let mut w = SlidingWindow::new(SimDuration::from_secs(100));
        for i in 0..5 {
            w.record(SimTime::from_secs(i), 7.0);
        }
        assert!(w.linear_trend_per_sec().unwrap().abs() < 1e-12);
        assert_eq!(w.forecast(60.0), Some(7.0));
    }

    #[test]
    fn linear_trend_needs_two_samples() {
        let mut w = SlidingWindow::new(SimDuration::from_secs(100));
        assert_eq!(w.linear_trend_per_sec(), None);
        assert_eq!(w.forecast(5.0), None);
        w.record(SimTime::ZERO, 1.0);
        assert_eq!(w.linear_trend_per_sec(), None);
        // Falls back to the mean with one sample.
        assert_eq!(w.forecast(5.0), Some(1.0));
        // Coincident timestamps have zero spread: no trend.
        w.record(SimTime::ZERO, 3.0);
        assert_eq!(w.linear_trend_per_sec(), None);
    }

    #[test]
    fn sliding_window_empty() {
        let w = SlidingWindow::new(SimDuration::from_secs(30));
        assert!(w.is_empty());
        assert_eq!(w.mean(), None);
        assert_eq!(w.latest(), None);
    }
}
