//! Deterministic random-number generation for simulations.
//!
//! [`SimRng`] is a self-contained xoshiro256++ generator (seeded through
//! SplitMix64, the reference seeding procedure) and exposes the handful
//! of primitives the workspace needs. Every experiment binary takes an
//! explicit seed so that the paper's figures regenerate bit-identically;
//! `fork` derives independent child streams (one per VM, per client, …)
//! from a parent without the streams overlapping. Keeping the generator
//! in-tree removes the only external runtime dependency the simulator
//! had and pins the stream contents to this repository: a seed means the
//! same numbers on every toolchain, forever.

/// SplitMix64: 64-bit mixer used to expand a single seed word into the
/// xoshiro state (per the xoshiro reference material).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The sampler stream version a [`SimRng`] produces.
///
/// The *raw* stream (`next_u64`, `uniform`, …) is identical under both
/// versions — what changes is how the variate transforms consume it:
///
/// * [`V1`](StreamVersion::V1) — the original transforms (Box–Muller
///   normal, single-log exponential). Every record the experiment
///   registry shipped before stream versioning exists was produced by
///   this version, and it stays byte-identical forever.
/// * [`V2`](StreamVersion::V2) — the ziggurat fast path (see
///   [`crate::zig`]): ~3 ns per standard normal/exponential draw
///   instead of ~28 ns, at the cost of a different (still
///   seed-deterministic) value sequence.
///
/// The version travels with the generator: [`SimRng::fork`] children
/// inherit it, and [`SimRng::stream_versioned`] counter-splits carry it
/// into parallel tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StreamVersion {
    /// Original transforms; byte-compatible with all pre-versioning records.
    #[default]
    V1,
    /// Ziggurat fast path; a distinct deterministic value sequence.
    V2,
}

impl StreamVersion {
    /// The canonical lowercase name (`"v1"` / `"v2"`), as used in
    /// scenario JSON.
    pub fn name(self) -> &'static str {
        match self {
            StreamVersion::V1 => "v1",
            StreamVersion::V2 => "v2",
        }
    }

    /// Parses the canonical name; `None` for anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "v1" => Some(StreamVersion::V1),
            "v2" => Some(StreamVersion::V2),
            _ => None,
        }
    }
}

/// A seeded, forkable random-number generator (xoshiro256++).
///
/// # Example
///
/// ```
/// use ic_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from_u64(42);
/// let mut b = SimRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    forks: u64,
    version: StreamVersion,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed, producing the v1 stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng::seed_versioned(seed, StreamVersion::V1)
    }

    /// Creates a generator from a 64-bit seed with an explicit stream
    /// version. The raw `u64` stream is identical for both versions;
    /// only the variate transforms differ.
    pub fn seed_versioned(seed: u64, version: StreamVersion) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            forks: 0,
            version,
        }
    }

    /// The stream version this generator samples with.
    pub fn version(&self) -> StreamVersion {
        self.version
    }

    /// Derives an independent child generator. Each call yields a distinct
    /// stream; the parent's own stream is unaffected apart from the fork
    /// counter, so fork order (not interleaved draws) determines child
    /// streams. Children inherit the parent's stream version.
    pub fn fork(&mut self) -> SimRng {
        self.forks += 1;
        // Mix the fork index into a fresh seed drawn from the parent stream.
        let seed = self.next_u64() ^ self.forks.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_versioned(seed, self.version)
    }

    /// The `index`-th counter-split stream of `seed`: a pure function of
    /// `(seed, index)`, so any task in a fixed decomposition can derive
    /// its own generator without a sequential dependency on its siblings.
    /// Unlike [`fork`](Self::fork), no parent state is consumed — stream
    /// 7 is the same whether streams 0–6 were ever materialized, which is
    /// what makes scatter-gather output independent of worker count.
    /// Produces the v1 stream; see [`stream_versioned`](Self::stream_versioned).
    pub fn stream(seed: u64, index: u64) -> SimRng {
        SimRng::stream_versioned(seed, index, StreamVersion::V1)
    }

    /// [`stream`](Self::stream) with an explicit stream version: the raw
    /// `u64` stream of `(seed, index)` is the same under every version
    /// (and every worker count), so pinning a record to v1 or v2 is
    /// purely a choice of variate transform.
    pub fn stream_versioned(seed: u64, index: u64, version: StreamVersion) -> SimRng {
        // Domain-separate the root seed from plain `seed_from_u64(seed)`
        // use, then fold the counter in through a second SplitMix pass so
        // adjacent indices land in unrelated states.
        let mut sm = seed;
        let root = splitmix64(&mut sm);
        let mut sm = root ^ index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_versioned(splitmix64(&mut sm), version)
    }

    /// The next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample from `[0, 1)`: the top 53 bits of the stream,
    /// scaled — exactly representable, never 1.0.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or either bound is non-finite.
    #[inline]
    pub fn uniform_range(&mut self, low: f64, high: f64) -> f64 {
        assert!(
            low < high && low.is_finite() && high.is_finite(),
            "invalid uniform range [{low}, {high})"
        );
        low + (high - low) * self.uniform()
    }

    /// A uniform integer from `[0, n)` (Lemire's multiply-shift; the
    /// residual bias is below `n / 2^64`, immaterial for simulation).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// A Bernoulli trial that succeeds with probability `p` (clamped to
    /// `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// A standard normal sample: Box–Muller on v1 streams, the ziggurat
    /// fast path (see [`crate::zig`]) on v2 streams.
    #[inline]
    pub fn standard_normal(&mut self) -> f64 {
        match self.version {
            StreamVersion::V1 => {
                // Draw u1 from (0, 1] to keep ln(u1) finite.
                let u1 = 1.0 - self.uniform();
                let u2 = self.uniform();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            }
            StreamVersion::V2 => crate::zig::standard_normal(self),
        }
    }

    /// A standard exponential sample (mean 1): the single-log inverse
    /// CDF on v1 streams, the ziggurat fast path on v2 streams.
    ///
    /// On v1 this consumes exactly the uniforms the original inline
    /// `-(1 - u).ln()` expressions consumed, and IEEE-754 negation is
    /// exact, so `mean * standard_exp()` is bit-for-bit the historical
    /// `-mean * (1 - u).ln()`.
    #[inline]
    pub fn standard_exp(&mut self) -> f64 {
        match self.version {
            StreamVersion::V1 => -(1.0 - self.uniform()).ln(),
            StreamVersion::V2 => crate::zig::standard_exp(self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stream_is_pinned() {
        // The exact stream is part of the reproducibility contract: a
        // change here silently re-rolls every seeded experiment.
        let mut sm = 0u64;
        let expanded: Vec<u64> = (0..2).map(|_| splitmix64(&mut sm)).collect();
        assert_eq!(expanded[0], 0xE220_A839_7B1D_CDAF);
        assert_eq!(expanded[1], 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should not coincide");
    }

    #[test]
    fn forks_are_independent_and_reproducible() {
        let mut parent1 = SimRng::seed_from_u64(9);
        let mut parent2 = SimRng::seed_from_u64(9);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        for _ in 0..10 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        let mut d1 = parent1.fork();
        assert_ne!(c1.next_u64(), d1.next_u64());
    }

    #[test]
    fn streams_are_pure_functions_of_seed_and_index() {
        // Same (seed, index) → same stream, regardless of what other
        // streams were derived before, in any order.
        let forward: Vec<Vec<u64>> = (0..8)
            .map(|i| {
                let mut r = SimRng::stream(42, i);
                (0..16).map(|_| r.next_u64()).collect()
            })
            .collect();
        let backward: Vec<Vec<u64>> = (0..8)
            .rev()
            .map(|i| {
                let mut r = SimRng::stream(42, i);
                (0..16).map(|_| r.next_u64()).collect()
            })
            .collect();
        for (i, draws) in forward.iter().enumerate() {
            assert_eq!(draws, &backward[7 - i], "stream {i} depends on order");
        }
    }

    #[test]
    fn streams_are_pairwise_disjoint() {
        // The first 512 draws of 16 sibling streams never collide — the
        // counter-split must not alias streams onto each other.
        use std::collections::HashSet;
        let mut seen: HashSet<u64> = HashSet::new();
        let mut total = 0usize;
        for index in 0..16 {
            let mut r = SimRng::stream(1234, index);
            for _ in 0..512 {
                seen.insert(r.next_u64());
                total += 1;
            }
        }
        assert_eq!(seen.len(), total, "sibling streams shared a draw");
    }

    #[test]
    fn streams_differ_across_seeds_and_from_plain_seeding() {
        let mut a = SimRng::stream(5, 0);
        let mut b = SimRng::stream(6, 0);
        let mut plain = SimRng::seed_from_u64(5);
        let coincide_ab = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(coincide_ab < 2, "seeds 5 and 6 produce overlapping streams");
        let mut a = SimRng::stream(5, 0);
        let coincide_plain = (0..64).filter(|_| a.next_u64() == plain.next_u64()).count();
        assert!(coincide_plain < 2, "stream 0 aliases plain seeding");
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = rng.uniform_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn index_covers_range() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.index(4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(6);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-3.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::seed_from_u64(8);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    #[should_panic(expected = "invalid uniform range")]
    fn bad_uniform_range_panics() {
        let mut rng = SimRng::seed_from_u64(0);
        let _ = rng.uniform_range(5.0, 2.0);
    }
}
