//! Time-series recording for figure regeneration.
//!
//! The paper's Figures 15 and 16 are utilization/frequency traces over
//! time. [`TimeSeries`] records `(time, value)` points during a simulation
//! run, supports fixed-interval resampling for plotting, and renders to
//! CSV so the experiment binaries can emit the exact series each figure
//! plots.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// An append-only series of timestamped values.
///
/// # Example
///
/// ```
/// use ic_sim::series::TimeSeries;
/// use ic_sim::time::SimTime;
///
/// let mut s = TimeSeries::new("util_pct");
/// s.push(SimTime::ZERO, 10.0);
/// s.push(SimTime::from_secs(30), 55.0);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.value_at(SimTime::from_secs(40)), Some(55.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a label used in CSV headers.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last recorded point or `value` is not
    /// finite.
    pub fn push(&mut self, at: SimTime, value: f64) {
        assert!(value.is_finite(), "cannot record non-finite value {value}");
        if let Some(&(last, _)) = self.points.last() {
            assert!(at >= last, "points must be recorded in time order");
        }
        self.points.push((at, value));
    }

    /// The number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The recorded points in time order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The last value at or before `at` (sample-and-hold semantics), or
    /// `None` if `at` precedes the first point.
    pub fn value_at(&self, at: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|&(t, _)| t.cmp(&at)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Resamples the series on a fixed grid from the first point to `end`
    /// with sample-and-hold interpolation. Returns `(time, value)` pairs.
    pub fn resample(&self, step: SimDuration, end: SimTime) -> Vec<(SimTime, f64)> {
        assert!(!step.is_zero(), "resample step must be positive");
        let Some(&(start, _)) = self.points.first() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut t = start;
        while t <= end {
            if let Some(v) = self.value_at(t) {
                out.push((t, v));
            }
            t += step;
        }
        out
    }

    /// The time-weighted mean of the series over its recorded span,
    /// treating the signal as piecewise constant. Returns `None` for series
    /// with fewer than two points.
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let mut sum = 0.0;
        for pair in self.points.windows(2) {
            let (t0, v0) = pair[0];
            let (t1, _) = pair[1];
            sum += v0 * (t1 - t0).as_secs_f64();
        }
        let span = (self.points.last().unwrap().0 - self.points[0].0).as_secs_f64();
        Some(sum / span)
    }

    /// The maximum recorded value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Renders the series as a two-column CSV (`time_s,<name>`).
    pub fn to_csv(&self) -> String {
        let mut out = format!("time_s,{}\n", self.name);
        for &(t, v) in &self.points {
            out.push_str(&format!("{:.3},{:.6}\n", t.as_secs_f64(), v));
        }
        out
    }
}

/// Renders several series that share a time grid as a multi-column CSV.
/// Values are sample-and-hold interpolated onto the union of all
/// timestamps.
///
/// # Panics
///
/// Panics if `series` is empty.
pub fn merge_csv(series: &[&TimeSeries]) -> String {
    assert!(!series.is_empty(), "need at least one series");
    let mut grid: Vec<SimTime> = series
        .iter()
        .flat_map(|s| s.points().iter().map(|&(t, _)| t))
        .collect();
    grid.sort();
    grid.dedup();

    let mut out = String::from("time_s");
    for s in series {
        out.push(',');
        out.push_str(s.name());
    }
    out.push('\n');
    for t in grid {
        out.push_str(&format!("{:.3}", t.as_secs_f64()));
        for s in series {
            match s.value_at(t) {
                Some(v) => out.push_str(&format!(",{v:.6}")),
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> TimeSeries {
        let mut s = TimeSeries::new("x");
        s.push(SimTime::from_secs(0), 1.0);
        s.push(SimTime::from_secs(10), 2.0);
        s.push(SimTime::from_secs(20), 4.0);
        s
    }

    #[test]
    fn value_at_sample_and_hold() {
        let s = sample_series();
        assert_eq!(s.value_at(SimTime::from_secs(0)), Some(1.0));
        assert_eq!(s.value_at(SimTime::from_secs(5)), Some(1.0));
        assert_eq!(s.value_at(SimTime::from_secs(10)), Some(2.0));
        assert_eq!(s.value_at(SimTime::from_secs(99)), Some(4.0));
        let empty = TimeSeries::new("e");
        assert_eq!(empty.value_at(SimTime::ZERO), None);
    }

    #[test]
    fn resample_grid() {
        let s = sample_series();
        let grid = s.resample(SimDuration::from_secs(10), SimTime::from_secs(30));
        assert_eq!(
            grid,
            vec![
                (SimTime::from_secs(0), 1.0),
                (SimTime::from_secs(10), 2.0),
                (SimTime::from_secs(20), 4.0),
                (SimTime::from_secs(30), 4.0),
            ]
        );
    }

    #[test]
    fn time_weighted_mean_piecewise() {
        let s = sample_series();
        // 1.0 for 10 s + 2.0 for 10 s over 20 s = 1.5
        assert_eq!(s.time_weighted_mean(), Some(1.5));
        assert_eq!(TimeSeries::new("e").time_weighted_mean(), None);
    }

    #[test]
    fn csv_output() {
        let s = sample_series();
        let csv = s.to_csv();
        assert!(csv.starts_with("time_s,x\n"));
        assert!(csv.contains("10.000,2.000000"));
    }

    #[test]
    fn merged_csv_uses_union_grid() {
        let a = sample_series();
        let mut b = TimeSeries::new("y");
        b.push(SimTime::from_secs(5), 9.0);
        let csv = merge_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,x,y");
        // t=0 exists only in `a`; `b` has no value yet.
        assert!(lines[1].starts_with("0.000,1.000000,"));
        assert!(lines[2].starts_with("5.000,1.000000,9.000000"));
    }

    #[test]
    fn max_value() {
        assert_eq!(sample_series().max(), Some(4.0));
        assert_eq!(TimeSeries::new("e").max(), None);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let mut s = sample_series();
        s.push(SimTime::from_secs(1), 0.0);
    }
}
