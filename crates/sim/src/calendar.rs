//! A deterministic two-tier calendar/ladder event queue.
//!
//! Replaces the engine's `BinaryHeap`: instead of an O(log n) sift on
//! every push and pop, events are appended to time-bucketed FIFO lanes in
//! O(1) and each bucket is sorted once — by `(at, seq)`, the exact total
//! order the heap used — when the clock reaches it. Because `(at, seq)`
//! is unique per event, the pop sequence is *identical* to the heap's
//! (time order, ties broken by insertion order), so every experiment's
//! output is byte-for-byte unchanged; the differential tests in this
//! module prove it against the retired heap implementation.
//!
//! Structure:
//!
//! * **Near tier** (`current`): a sorted `VecDeque` holding every pending
//!   event with `at < current_end`. Pops are `pop_front`; same-instant
//!   follow-ups scheduled from inside handlers binary-insert near the
//!   front or back in O(1)–O(log n).
//! * **Calendar tier** (`buckets`): fixed-width time buckets covering
//!   `[epoch_start, horizon)`. Pushes append in O(1) (append order *is*
//!   seq order); a bucket is sorted and swapped into `current` when the
//!   clock reaches it, reusing both buffers so the steady state allocates
//!   nothing.
//! * **Far tier** (`overflow`): everything at or beyond the horizon,
//!   unsorted. When the epoch is exhausted the overflow is re-anchored
//!   into a fresh epoch whose bucket count and width adapt to the pending
//!   population (classic calendar-queue resizing), or — for small
//!   residues — sorted straight into `current`, which keeps tiny queues
//!   (heartbeats, drained M/G/k runs) on a plain sorted-array fast path.

use crate::event::EventCell;
use crate::time::SimTime;
use std::collections::VecDeque;

/// Queues of at most this many events skip the calendar entirely and run
/// as one sorted array.
const DIRECT_MAX: usize = 64;
/// Minimum prefix kept in `current` when a direct-mode queue spills into
/// the far tier.
const SPILL_KEEP: usize = 16;
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 8192;

/// One scheduled event: its firing time, global insertion sequence (the
/// tie-breaker), observer label, and the stored handler.
pub(crate) struct Entry<S: 'static> {
    pub at: SimTime,
    pub seq: u64,
    pub kind: &'static str,
    pub cell: EventCell<S>,
}

impl<S> Entry<S> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }

    /// The `(at, seq)` key packed into one `u128` (`at` in the high
    /// word), so lexicographic order becomes a single integer compare.
    #[inline]
    fn packed_key(&self) -> u128 {
        ((self.at.as_nanos() as u128) << 64) | self.seq as u128
    }
}

/// Near-tier lane kept sorted *descending* by packed `(at, seq)` key, so
/// the minimum is the last element and a pop is a plain `Vec::pop`. A
/// push binary-searches its rank (log₂ of a few tens of pending events)
/// and memmoves the tail — a few hundred bytes at simulation queue
/// depths, which a single `memmove` covers in a handful of cycles. That
/// beats both a heap (data-dependent sift branches mispredict) and an
/// unsorted lane (O(n) minimum scan on every pop), and pops hand the
/// entry out by value with zero bookkeeping.
struct StagingLane<S: 'static> {
    entries: Vec<Entry<S>>,
}

impl<S: 'static> StagingLane<S> {
    fn new() -> Self {
        StagingLane {
            entries: Vec::new(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Smallest pending key, i.e. the lane's next pop.
    #[inline]
    fn min_key(&self) -> Option<u128> {
        self.entries.last().map(|e| e.packed_key())
    }

    fn push(&mut self, entry: Entry<S>) {
        let key = entry.packed_key();
        // Keys are unique (`seq` is a global counter), so the insertion
        // point that preserves the descending order is *the* rank.
        let idx = self.entries.partition_point(|e| e.packed_key() > key);
        self.entries.insert(idx, entry);
    }

    #[inline]
    fn pop_min(&mut self) -> Option<Entry<S>> {
        self.entries.pop()
    }

    /// Empties the lane into `out` (descending order; callers re-sort).
    fn drain_into(&mut self, out: &mut VecDeque<Entry<S>>) {
        out.extend(self.entries.drain(..));
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

pub(crate) struct CalendarQueue<S: 'static> {
    /// Near tier, sorted ascending by `(at, seq)`; covers `[0, current_end)`.
    current: VecDeque<Entry<S>>,
    /// Near-tier lane for *pushed* events below `current_end`; see
    /// [`StagingLane`]. Pops are O(1); pushes binary-insert into the
    /// descending-sorted lane.
    staging: StagingLane<S>,
    /// Exclusive upper bound of `current`'s range. `SimTime::MAX` in
    /// direct mode.
    current_end: SimTime,
    /// Calendar tier for the active epoch; `buckets[i]` covers
    /// `[epoch_start + i·width, epoch_start + (i+1)·width)`.
    buckets: Vec<Vec<Entry<S>>>,
    /// Start of the active epoch (`buckets[0]`'s lower bound).
    epoch_start: SimTime,
    /// First bucket not yet drained; `== buckets.len()` when no epoch is
    /// active.
    next_bucket: usize,
    /// Bucket width as a power of two (`1 << shift` nanoseconds), so
    /// indexing is a subtract and a shift instead of a division.
    shift: u32,
    /// Exclusive end of the epoch; events at or beyond it live in
    /// `overflow`.
    horizon: SimTime,
    /// Far tier: unsorted events at or beyond `horizon`.
    overflow: Vec<Entry<S>>,
    /// Scratch per-bucket counts used to pre-size buckets during
    /// re-anchoring (one exact `reserve` per bucket instead of repeated
    /// doubling).
    counts: Vec<u32>,
    /// Don't retry a failed direct-mode spill until the queue outgrows
    /// this length (a spill needs a strict time increase to split on).
    spill_retry_len: usize,
    len: usize,
}

impl<S: 'static> CalendarQueue<S> {
    pub(crate) fn new() -> Self {
        CalendarQueue {
            current: VecDeque::new(),
            staging: StagingLane::new(),
            current_end: SimTime::MAX,
            buckets: Vec::new(),
            epoch_start: SimTime::ZERO,
            next_bucket: 0,
            shift: 0,
            horizon: SimTime::MAX,
            overflow: Vec::new(),
            counts: Vec::new(),
            spill_retry_len: 0,
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// `true` while an epoch still has undrained buckets.
    #[inline]
    fn epoch_active(&self) -> bool {
        self.next_bucket < self.buckets.len()
    }

    pub(crate) fn push(&mut self, entry: Entry<S>) {
        self.len += 1;
        if entry.at < self.current_end {
            self.staging.push(entry);
            let near = self.current.len() + self.staging.len();
            if !self.epoch_active() && near > DIRECT_MAX && near > self.spill_retry_len {
                self.spill_current();
            }
        } else if entry.at < self.horizon {
            let idx = ((entry.at.as_nanos() - self.epoch_start.as_nanos()) >> self.shift) as usize;
            // Saturated horizons can map a tail event past the ring;
            // those belong to the far tier.
            if idx < self.buckets.len() {
                self.buckets[idx].push(entry);
            } else {
                self.overflow.push(entry);
            }
        } else {
            self.overflow.push(entry);
        }
    }

    /// Folds the staging lane into `current`, restoring the all-sorted
    /// near-tier invariant the spill/re-anchor paths rely on. Rare by
    /// construction (spills and epoch handoffs only), so the full
    /// re-sort is fine.
    fn flush_staging(&mut self) {
        if self.staging.is_empty() {
            return;
        }
        self.staging.drain_into(&mut self.current);
        self.current
            .make_contiguous()
            .sort_unstable_by_key(|e| e.key());
    }

    /// Moves the far tail of an oversized direct-mode `current` into the
    /// overflow tier, keeping a small near prefix. The split must fall on
    /// a strict time increase so the `(at, seq)` order across the two
    /// tiers stays exact; an all-ties queue stays put until it grows a
    /// splittable tail.
    fn spill_current(&mut self) {
        self.flush_staging();
        let len = self.current.len();
        let mut k = SPILL_KEEP;
        while k < len && self.current[k].at == self.current[k - 1].at {
            k += 1;
        }
        if k >= len {
            self.spill_retry_len = len * 2;
            return;
        }
        let boundary = self.current[k].at;
        self.overflow.extend(self.current.drain(k..));
        self.current_end = boundary;
        self.horizon = boundary;
        self.spill_retry_len = 0;
    }

    /// Ensures `current` holds the globally-next event (or that the queue
    /// is empty): drains the next calendar bucket, re-anchoring the
    /// overflow into a fresh epoch when the active one is exhausted.
    fn advance(&mut self) {
        while self.current.is_empty() {
            if self.epoch_active() {
                while self.next_bucket < self.buckets.len()
                    && self.buckets[self.next_bucket].is_empty()
                {
                    self.next_bucket += 1;
                }
                if self.next_bucket < self.buckets.len() {
                    let k = self.next_bucket;
                    let mut bucket = std::mem::take(&mut self.buckets[k]);
                    bucket.sort_unstable_by_key(|e| e.key());
                    self.current.extend(bucket.drain(..));
                    // Hand the (empty) buffer back so the slot keeps its
                    // capacity for the next epoch.
                    self.buckets[k] = bucket;
                    self.next_bucket = k + 1;
                    self.current_end =
                        self.epoch_start
                            .saturating_add(crate::time::SimDuration::from_nanos(
                                (1u64 << self.shift).saturating_mul(k as u64 + 1),
                            ));
                    return;
                }
            }
            if self.overflow.is_empty() {
                // Queue fully drained: return to direct mode so the next
                // pushes take the sorted-array fast path.
                self.current_end = SimTime::MAX;
                self.horizon = SimTime::MAX;
                return;
            }
            self.reanchor();
        }
    }

    /// Rebuilds the epoch from the overflow tier: small residues sort
    /// straight into `current` (direct mode); larger populations get a
    /// fresh calendar whose bucket count and width adapt to the pending
    /// event density.
    fn reanchor(&mut self) {
        if self.overflow.len() <= DIRECT_MAX {
            self.overflow.sort_unstable_by_key(|e| e.key());
            self.current.extend(self.overflow.drain(..));
            self.current_end = SimTime::MAX;
            self.horizon = SimTime::MAX;
            self.spill_retry_len = 0;
            return;
        }
        let mut min = u64::MAX;
        let mut max = 0u64;
        for e in &self.overflow {
            let ns = e.at.as_nanos();
            min = min.min(ns);
            max = max.max(ns);
        }
        let nbuckets = self
            .overflow
            .len()
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        // Round the natural width up to a power of two so bucket
        // indexing is a shift; the epoch just covers a little more time.
        let raw_width = ((max - min) / nbuckets as u64) + 1;
        let shift = if raw_width >= (1u64 << 62) {
            62
        } else {
            raw_width.next_power_of_two().trailing_zeros()
        };
        self.epoch_start = SimTime::from_nanos(min);
        self.shift = shift;
        self.horizon = self
            .epoch_start
            .saturating_add(crate::time::SimDuration::from_nanos(
                (1u64 << shift).saturating_mul(nbuckets as u64),
            ));
        self.current_end = self.epoch_start;
        if self.buckets.len() < nbuckets {
            self.buckets.resize_with(nbuckets, Vec::new);
        } else {
            self.buckets.truncate(nbuckets);
        }
        self.next_bucket = 0;
        let mut pending = std::mem::take(&mut self.overflow);
        // Counting pass: size every bucket exactly once up front; the
        // capacities persist across epochs, so redistribution reaches a
        // zero-allocation steady state instead of ~log₂(len) doubling
        // reallocations per bucket per epoch.
        self.counts.clear();
        self.counts.resize(nbuckets, 0);
        for e in &pending {
            let idx = ((e.at.as_nanos() - min) >> shift) as usize;
            if e.at < self.horizon && idx < nbuckets {
                self.counts[idx] += 1;
            }
        }
        for (bucket, &n) in self.buckets.iter_mut().zip(&self.counts) {
            bucket.reserve(n as usize);
        }
        for e in pending.drain(..) {
            let idx = ((e.at.as_nanos() - min) >> shift) as usize;
            if e.at < self.horizon && idx < nbuckets {
                self.buckets[idx].push(e);
            } else {
                self.overflow.push(e);
            }
        }
        // `pending` is empty but warm; keep the larger buffer as the
        // overflow store so redistribution stays allocation-free.
        if pending.capacity() > self.overflow.capacity() {
            std::mem::swap(&mut pending, &mut self.overflow);
            self.overflow.append(&mut pending);
        }
    }

    /// Pops the next event if its timestamp is `<= deadline` — the single
    /// queue operation `run_until` pays per event.
    ///
    /// The near-tier minimum is the smaller of the sorted lane's front
    /// and the staging heap's root; both lanes hold only events below
    /// `current_end`, so that minimum is global.
    pub(crate) fn pop_at_most(&mut self, deadline: SimTime) -> Option<Entry<S>> {
        if self.current.is_empty() && self.staging.is_empty() {
            self.advance();
        }
        if let Some(best) = self.staging.min_key() {
            let take_staged = match self.current.front() {
                None => true,
                Some(front) => best < front.packed_key(),
            };
            if take_staged {
                if SimTime::from_nanos((best >> 64) as u64) > deadline {
                    return None;
                }
                self.len -= 1;
                return self.staging.pop_min();
            }
        }
        if self.current.front()?.at > deadline {
            return None;
        }
        self.len -= 1;
        self.current.pop_front()
    }

    /// Timestamp of the next pending event without disturbing the queue.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        let near = match (
            self.current.front().map(|e| e.at),
            self.staging
                .min_key()
                .map(|k| SimTime::from_nanos((k >> 64) as u64)),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if near.is_some() {
            return near;
        }
        // Buckets are time-ordered, so the first non-empty one holds the
        // minimum among buckets; the overflow tier is strictly later.
        for k in self.next_bucket..self.buckets.len() {
            if !self.buckets[k].is_empty() {
                return self.buckets[k].iter().map(|e| e.at).min();
            }
        }
        self.overflow.iter().map(|e| e.at).min()
    }

    /// Discards every pending event (dropping their handlers unrun) and
    /// returns to direct mode.
    pub(crate) fn clear(&mut self) {
        self.current.clear();
        self.staging.clear();
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.overflow.clear();
        self.next_bucket = self.buckets.len();
        self.current_end = SimTime::MAX;
        self.horizon = SimTime::MAX;
        self.spill_retry_len = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BoxPool;
    use crate::rng::SimRng;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// The retired `BinaryHeap` queue, kept as the differential-testing
    /// reference: pops in `(at, seq)` order exactly as the seed engine
    /// did.
    struct HeapRef {
        heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    }

    impl HeapRef {
        fn new() -> Self {
            HeapRef {
                heap: BinaryHeap::new(),
            }
        }
        fn push(&mut self, at: SimTime, seq: u64) {
            self.heap.push(Reverse((at, seq)));
        }
        fn pop_at_most(&mut self, deadline: SimTime) -> Option<(SimTime, u64)> {
            let &Reverse((at, _)) = self.heap.peek()?;
            if at > deadline {
                return None;
            }
            self.heap.pop().map(|Reverse(k)| k)
        }
    }

    fn entry(at_ns: u64, seq: u64, pool: &mut BoxPool) -> Entry<()> {
        Entry {
            at: SimTime::from_nanos(at_ns),
            seq,
            kind: "test",
            cell: EventCell::new(|_: &mut (), _| {}, pool).0,
        }
    }

    /// Random push/pop interleavings (including heavy ties and deadline
    /// pops) must produce the identical `(at, seq)` sequence on both the
    /// calendar queue and the heap reference.
    #[test]
    fn differential_random_interleavings_match_heap() {
        for seed in 0..150u64 {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut pool = BoxPool::new();
            let mut cal: CalendarQueue<()> = CalendarQueue::new();
            let mut heap = HeapRef::new();
            let mut seq = 0u64;
            let mut clock = 0u64;
            // Time spreads from nanoseconds to hours exercise direct
            // mode, spilling, and multi-epoch re-anchoring.
            let spread = 1u64 << (4 + (seed % 40));
            let ops = 200 + (seed % 3) * 400;
            for _ in 0..ops {
                let burst = 1 + (rng.next_u64() % 8);
                for _ in 0..burst {
                    // 25% exact ties with the current clock.
                    let at = if rng.next_u64().is_multiple_of(4) {
                        clock
                    } else {
                        clock + rng.next_u64() % spread
                    };
                    cal.push(entry(at, seq, &mut pool));
                    heap.push(SimTime::from_nanos(at), seq);
                    seq += 1;
                }
                let deadline = if rng.next_u64().is_multiple_of(5) {
                    SimTime::MAX
                } else {
                    SimTime::from_nanos(clock + rng.next_u64() % spread)
                };
                let pops = 1 + (rng.next_u64() % 12);
                for _ in 0..pops {
                    let want = heap.pop_at_most(deadline);
                    let got = cal.pop_at_most(deadline).map(|e| (e.at, e.seq));
                    assert_eq!(got, want, "seed {seed}");
                    match want {
                        Some((at, _)) => clock = clock.max(at.as_nanos()),
                        None => break,
                    }
                }
            }
            // Drain both completely.
            loop {
                let want = heap.pop_at_most(SimTime::MAX);
                let got = cal.pop_at_most(SimTime::MAX).map(|e| (e.at, e.seq));
                assert_eq!(got, want, "seed {seed} drain");
                if want.is_none() {
                    break;
                }
            }
            assert_eq!(cal.len(), 0);
        }
    }

    /// A large bulk load (the microbenchmark shape) drains in exact
    /// order through epoch re-anchoring.
    #[test]
    fn bulk_load_drains_in_order() {
        let mut pool = BoxPool::new();
        let mut cal: CalendarQueue<()> = CalendarQueue::new();
        for i in 0..50_000u64 {
            cal.push(entry(i * 13 % 1_000_000, i, &mut pool));
        }
        let mut last = (SimTime::ZERO, 0u64);
        let mut count = 0;
        let mut first = true;
        while let Some(e) = cal.pop_at_most(SimTime::MAX) {
            if !first {
                assert!((e.at, e.seq) > last, "order violated at {count}");
            }
            last = (e.at, e.seq);
            first = false;
            count += 1;
        }
        assert_eq!(count, 50_000);
    }

    /// Thousands of same-instant events stay in seq order even though no
    /// spill boundary exists.
    #[test]
    fn same_instant_flood_pops_in_seq_order() {
        let mut pool = BoxPool::new();
        let mut cal: CalendarQueue<()> = CalendarQueue::new();
        for seq in 0..5_000u64 {
            cal.push(entry(42, seq, &mut pool));
        }
        for want in 0..5_000u64 {
            let e = cal.pop_at_most(SimTime::MAX).expect("pending");
            assert_eq!(e.seq, want);
        }
        assert!(cal.pop_at_most(SimTime::MAX).is_none());
    }

    #[test]
    fn peek_time_sees_all_tiers() {
        let mut pool = BoxPool::new();
        let mut cal: CalendarQueue<()> = CalendarQueue::new();
        assert_eq!(cal.peek_time(), None);
        // Force an epoch: overload direct mode with a wide spread.
        for i in 0..300u64 {
            cal.push(entry(1_000 + i * 997, i, &mut pool));
        }
        assert_eq!(cal.peek_time(), Some(SimTime::from_nanos(1_000)));
        let first = cal.pop_at_most(SimTime::MAX).unwrap();
        assert_eq!(first.at, SimTime::from_nanos(1_000));
        assert_eq!(cal.peek_time(), Some(SimTime::from_nanos(1_997)));
    }

    #[test]
    fn clear_resets_every_tier() {
        let mut pool = BoxPool::new();
        let mut cal: CalendarQueue<()> = CalendarQueue::new();
        for i in 0..500u64 {
            cal.push(entry(i * 7_919, i, &mut pool));
        }
        let _ = cal.pop_at_most(SimTime::MAX);
        cal.clear();
        assert_eq!(cal.len(), 0);
        assert_eq!(cal.peek_time(), None);
        assert!(cal.pop_at_most(SimTime::MAX).is_none());
        cal.push(entry(5, 500, &mut pool));
        assert_eq!(cal.pop_at_most(SimTime::MAX).map(|e| e.seq), Some(500));
    }

    #[test]
    fn deadline_pops_leave_later_events() {
        let mut pool = BoxPool::new();
        let mut cal: CalendarQueue<()> = CalendarQueue::new();
        cal.push(entry(10, 0, &mut pool));
        cal.push(entry(20, 1, &mut pool));
        assert_eq!(
            cal.pop_at_most(SimTime::from_nanos(15)).map(|e| e.seq),
            Some(0)
        );
        assert!(cal.pop_at_most(SimTime::from_nanos(15)).is_none());
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.pop_at_most(SimTime::MAX).map(|e| e.seq), Some(1));
    }
}
