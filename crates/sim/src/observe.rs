//! Engine observation hooks.
//!
//! The engine stays dependency-free: it only knows this small trait, and
//! the `ic-obs` crate supplies implementations that feed a metrics
//! registry. An observer sees one [`EventRecord`] per executed event —
//! after the handler returns, so queue depth reflects any follow-up
//! events the handler scheduled.
//!
//! Observation must never perturb the simulation: records carry only
//! the simulation clock, and the engine behaves identically with or
//! without an observer attached. Wall-clock handler timing is the
//! observer's business — the core engine never reads the host clock.
//! An observer that wants it stamps its own timestamp in
//! [`EngineObserver::on_event_start`] and measures the elapsed time in
//! [`EngineObserver::on_event`] (see `ic-obs`'s `EngineMetrics`).

use crate::time::SimTime;

/// What the engine reports about one executed event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRecord {
    /// Simulation time at which the event fired.
    pub at: SimTime,
    /// The label given at scheduling time (`"event"` for unlabeled
    /// events).
    pub kind: &'static str,
    /// Events still pending after the handler ran.
    pub queue_depth: usize,
}

/// A sink for per-event engine telemetry.
pub trait EngineObserver {
    /// Called immediately before an event's handler runs. The default
    /// does nothing; observers that time handlers capture their own
    /// wall-clock timestamp here.
    fn on_event_start(&mut self) {}

    /// Called once per executed event, after its handler returns.
    fn on_event(&mut self, record: &EventRecord);
}

/// An observer that counts events by kind without any dependencies —
/// useful in tests and as the trivial reference implementation.
#[derive(Debug, Default)]
pub struct CountingObserver {
    /// Total events seen.
    pub events: u64,
    /// Maximum queue depth seen.
    pub max_queue_depth: usize,
}

impl EngineObserver for CountingObserver {
    fn on_event(&mut self, record: &EventRecord) {
        self.events += 1;
        self.max_queue_depth = self.max_queue_depth.max(record.queue_depth);
    }
}
