//! Inline event storage for the DES hot path.
//!
//! The engine used to box every handler (`Box<dyn FnOnce>`), which put a
//! heap allocation and a pointer chase on the critical path of every
//! scheduled event. The overwhelming majority of handlers in this
//! workspace capture at most three machine words — reschedule ticks
//! (zero-capture `fn` items), M/G/k arrivals, completion-slot indices,
//! control-step markers — so [`EventCell`] stores such closures *inline*
//! in the queue node and only falls back to a heap cell for large
//! captures. The boxed fallback recycles its allocations through
//! [`BoxPool`], so even large-capture workloads stop hitting the global
//! allocator once the pool is warm.
//!
//! Safety model: an `EventCell` is a small `union`-style payload plus a
//! per-closure-type vtable (`call`, `drop_in_place`) promoted to
//! `'static`, keeping the cell at four machine words. The cell is
//! consumed exactly once, either by [`EventCell::invoke`] (which reads
//! the closure out and runs it) or by `Drop` (which drops the closure in
//! place without running it — the `Engine::clear` path). The
//! inline/boxed decision is made from `size_of`/`align_of` constants, so
//! each monomorphization compiles down to a single branch-free path.

use crate::engine::Engine;
use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};
use std::ptr;

/// Number of machine words a closure may capture and still be stored
/// inline in the queue node.
pub const INLINE_EVENT_WORDS: usize = 3;

type Payload = [MaybeUninit<usize>; INLINE_EVENT_WORDS];

/// `true` if closures of type `F` ride the inline (allocation-free) path.
pub(crate) const fn fits_inline<F>() -> bool {
    size_of::<F>() <= size_of::<Payload>() && align_of::<F>() <= align_of::<Payload>()
}

/// The two operations a stored closure supports, monomorphized per
/// concrete closure type and shared by every cell holding that type.
struct EventVtable<S: 'static> {
    /// Consumes the payload and runs the closure. The boxed variant
    /// returns its heap cell to the engine's [`BoxPool`] *before* the
    /// closure runs, so a handler that schedules another large event can
    /// reuse the memory immediately.
    call: unsafe fn(*mut Payload, &mut S, &mut Engine<S>),
    /// Drops the closure without running it (event discarded by
    /// `Engine::clear` or engine teardown).
    drop_in_place: unsafe fn(*mut Payload),
}

/// One schedulable event handler, stored inline when its captures fit in
/// [`INLINE_EVENT_WORDS`] machine words and in a pooled heap cell
/// otherwise.
pub(crate) struct EventCell<S: 'static> {
    vtable: &'static EventVtable<S>,
    payload: Payload,
}

unsafe fn call_inline<S, F: FnOnce(&mut S, &mut Engine<S>)>(
    p: *mut Payload,
    state: &mut S,
    engine: &mut Engine<S>,
) {
    let f = ptr::read(p as *mut F);
    f(state, engine)
}

unsafe fn drop_inline<F>(p: *mut Payload) {
    ptr::drop_in_place(p as *mut F)
}

unsafe fn call_boxed<S: 'static, F: FnOnce(&mut S, &mut Engine<S>)>(
    p: *mut Payload,
    state: &mut S,
    engine: &mut Engine<S>,
) {
    let raw = ptr::read(p as *mut *mut F);
    let f = ptr::read(raw);
    // The closure is now owned by value; hand the empty cell back to the
    // pool before running it so follow-up schedules can reuse it.
    engine.recycle_event_box(raw as *mut u8, Layout::new::<F>());
    f(state, engine)
}

unsafe fn drop_boxed<F>(p: *mut Payload) {
    let raw = ptr::read(p as *mut *mut F);
    ptr::drop_in_place(raw);
    dealloc(raw as *mut u8, Layout::new::<F>());
}

impl<S: 'static> EventCell<S> {
    /// Wraps `f`, storing it inline when it fits and in a (pooled) heap
    /// cell otherwise. The returned flag is `true` when the boxed
    /// fallback was taken (the engine counts those for observability).
    pub(crate) fn new<F>(f: F, pool: &mut BoxPool) -> (Self, bool)
    where
        F: FnOnce(&mut S, &mut Engine<S>) + 'static,
    {
        let mut payload: Payload = [MaybeUninit::uninit(); INLINE_EVENT_WORDS];
        if fits_inline::<F>() {
            // SAFETY: size and alignment were just checked; the payload
            // owns the closure until `invoke` or `drop` consumes it.
            unsafe { ptr::write(&mut payload as *mut Payload as *mut F, f) };
            let cell = EventCell {
                // Rvalue static promotion: both fields are constants.
                vtable: &EventVtable {
                    call: call_inline::<S, F>,
                    drop_in_place: drop_inline::<F>,
                },
                payload,
            };
            (cell, false)
        } else {
            let layout = Layout::new::<F>();
            let raw = pool.take(layout).unwrap_or_else(|| {
                // SAFETY: `F` is larger than the inline payload, so the
                // layout is never zero-sized.
                let p = unsafe { alloc(layout) };
                if p.is_null() {
                    handle_alloc_error(layout);
                }
                p
            }) as *mut F;
            // SAFETY: `raw` is a fresh (or recycled) allocation with `F`'s
            // exact layout; the thin pointer always fits one payload word.
            unsafe {
                ptr::write(raw, f);
                ptr::write(&mut payload as *mut Payload as *mut *mut F, raw);
            }
            let cell = EventCell {
                vtable: &EventVtable {
                    call: call_boxed::<S, F>,
                    drop_in_place: drop_boxed::<F>,
                },
                payload,
            };
            (cell, true)
        }
    }

    /// Consumes the cell and runs the stored closure.
    pub(crate) fn invoke(self, state: &mut S, engine: &mut Engine<S>) {
        let mut cell = ManuallyDrop::new(self);
        // SAFETY: the payload holds a live closure (cells are consumed
        // exactly once) and `ManuallyDrop` prevents the destructor from
        // double-dropping it, including when the closure panics.
        unsafe { (cell.vtable.call)(&mut cell.payload, state, engine) }
    }
}

impl<S: 'static> Drop for EventCell<S> {
    fn drop(&mut self) {
        // SAFETY: `invoke` shields itself with `ManuallyDrop`, so a cell
        // reaching `Drop` still owns an un-run closure.
        unsafe { (self.vtable.drop_in_place)(&mut self.payload) }
    }
}

/// A free-list of heap cells for the boxed event path.
///
/// Cells are keyed by exact [`Layout`]; a simulation that schedules large
/// closures typically schedules a handful of distinct closure types over
/// and over, so an exact-match linear scan over a small pool hits almost
/// always. The pool is bounded — beyond [`BoxPool::MAX_CHUNKS`] retired
/// cells are simply freed.
pub(crate) struct BoxPool {
    chunks: Vec<(*mut u8, Layout)>,
}

impl BoxPool {
    const MAX_CHUNKS: usize = 64;

    pub(crate) fn new() -> Self {
        BoxPool { chunks: Vec::new() }
    }

    /// Takes a recycled cell with exactly `layout`, if one is pooled.
    fn take(&mut self, layout: Layout) -> Option<*mut u8> {
        let pos = self.chunks.iter().position(|&(_, l)| l == layout)?;
        Some(self.chunks.swap_remove(pos).0)
    }

    /// Returns a no-longer-needed cell to the pool (or frees it when the
    /// pool is full).
    pub(crate) fn recycle(&mut self, ptr: *mut u8, layout: Layout) {
        if self.chunks.len() < Self::MAX_CHUNKS {
            self.chunks.push((ptr, layout));
        } else {
            // SAFETY: `ptr` was allocated with exactly `layout` by
            // `EventCell::new` and is not referenced anywhere else.
            unsafe { dealloc(ptr, layout) };
        }
    }

    /// Number of pooled cells (test observability).
    #[cfg(test)]
    pub(crate) fn pooled(&self) -> usize {
        self.chunks.len()
    }
}

impl Drop for BoxPool {
    fn drop(&mut self) {
        for &(ptr, layout) in &self.chunks {
            // SAFETY: every pooled chunk was allocated with its recorded
            // layout and ownership passed to the pool on recycle.
            unsafe { dealloc(ptr, layout) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn small_captures_are_inline_and_large_are_boxed() {
        let mut pool = BoxPool::new();
        let x = 7u64;
        let (small, small_boxed) = EventCell::<u64>::new(move |s, _| *s += x, &mut pool);
        assert!(!small_boxed);
        let big = [1u64; 8];
        let (large, large_boxed) =
            EventCell::<u64>::new(move |s, _| *s += big.iter().sum::<u64>(), &mut pool);
        assert!(large_boxed);
        let mut engine: Engine<u64> = Engine::new();
        let mut state = 0u64;
        small.invoke(&mut state, &mut engine);
        large.invoke(&mut state, &mut engine);
        assert_eq!(state, 15);
    }

    #[test]
    fn overaligned_captures_fall_back_to_boxed() {
        #[repr(align(32))]
        #[derive(Clone, Copy)]
        struct Wide(u8);
        let mut pool = BoxPool::new();
        let w = Wide(3);
        let (cell, boxed) = EventCell::<u64>::new(
            move |s, _| {
                let wide = w;
                *s += wide.0 as u64;
            },
            &mut pool,
        );
        assert!(boxed);
        let mut engine: Engine<u64> = Engine::new();
        let mut state = 0u64;
        cell.invoke(&mut state, &mut engine);
        assert_eq!(state, 3);
    }

    #[test]
    fn dropping_unrun_cells_drops_captures() {
        let hits = Rc::new(Cell::new(0u32));
        struct Guard(Rc<Cell<u32>>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.set(self.0.get() + 1);
            }
        }
        let mut pool = BoxPool::new();
        let small_guard = Guard(Rc::clone(&hits));
        let (small, small_boxed) = EventCell::<u64>::new(move |_, _| drop(small_guard), &mut pool);
        let large_guard = Guard(Rc::clone(&hits));
        let padding = [0u64; 8];
        let (large, large_boxed) = EventCell::<u64>::new(
            move |_, _| {
                drop(large_guard);
                let _moved = padding;
            },
            &mut pool,
        );
        assert!(!small_boxed);
        assert!(large_boxed);
        drop(small);
        drop(large);
        assert_eq!(hits.get(), 2, "both captures dropped without running");
    }

    #[test]
    fn boxed_cells_recycle_through_the_pool() {
        let mut engine: Engine<u64> = Engine::new();
        // Schedule and run a large-capture event; its cell should land in
        // the pool and be reused by the next one.
        let big = [9u64; 8];
        engine.schedule(SimTime::ZERO, move |s: &mut u64, _: &mut Engine<u64>| {
            *s += big[0]
        });
        let mut state = 0u64;
        engine.run(&mut state);
        assert_eq!(state, 9);
        assert_eq!(engine.debug_pooled_event_boxes(), 1);
        engine.schedule(engine.now(), move |s: &mut u64, _: &mut Engine<u64>| {
            *s += big[1]
        });
        assert_eq!(
            engine.debug_pooled_event_boxes(),
            0,
            "second large event reuses the pooled cell"
        );
        engine.run(&mut state);
        assert_eq!(state, 18);
    }

    #[test]
    fn zero_sized_handlers_are_inline() {
        fn bump(s: &mut u64, _: &mut Engine<u64>) {
            *s += 1;
        }
        let mut pool = BoxPool::new();
        let (cell, boxed) = EventCell::<u64>::new(bump, &mut pool);
        assert!(!boxed);
        let mut engine: Engine<u64> = Engine::new();
        let mut state = 0u64;
        cell.invoke(&mut state, &mut engine);
        assert_eq!(state, 1);
    }
}
