//! Differential test: the engine (inline event cells + calendar queue)
//! against a `BinaryHeap` reference model, on randomized self-expanding
//! event trees.
//!
//! Both sides execute the same deterministic program: every fired node
//! logs `(id, time)` and derives its children — count, time deltas
//! (including zero-delta same-instant ties), and ids — from a hash of its
//! own id, so mid-handler scheduling exercises the queue exactly where
//! pops and pushes interleave. Runs are chunked by random `run_until`
//! deadlines and single `step`s. Some nodes carry an oversized capture to
//! force the boxed event path into the mix. The logs, clocks, and pending
//! counts must match the reference at every checkpoint.

use ic_sim::engine::Engine;
use ic_sim::rng::SimRng;
use ic_sim::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// splitmix64: the shared child-derivation hash.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Nodes whose hash has this bit set are scheduled with a 4-word capture
/// (the boxed fallback); the rest ride the inline path.
const PAD_BIT: u64 = 1 << 7;

fn child(id: u64, c: u64) -> u64 {
    mix(id ^ (c + 1).wrapping_mul(0x0123_4567))
}

fn child_count(h: u64) -> u64 {
    (h >> 8) % 3
}

fn child_delta(h: u64, c: u64) -> u64 {
    (h >> (16 + 8 * c as u32)) & 0x3FF
}

#[derive(Default)]
struct St {
    log: Vec<(u64, u64)>,
}

fn schedule_node(engine: &mut Engine<St>, at: SimTime, id: u64, depth: u32) {
    if mix(id) & PAD_BIT != 0 {
        let pad = [id; 4];
        engine.schedule(at, move |st, e| {
            let _pad = pad;
            fire(st, e, id, depth)
        });
    } else {
        engine.schedule(at, move |st, e| fire(st, e, id, depth));
    }
}

fn fire(st: &mut St, engine: &mut Engine<St>, id: u64, depth: u32) {
    let now = engine.now();
    st.log.push((id, now.as_nanos()));
    if depth == 0 {
        return;
    }
    let h = mix(id);
    for c in 0..child_count(h) {
        let at = now + SimDuration::from_nanos(child_delta(h, c));
        schedule_node(engine, at, child(id, c), depth - 1);
    }
}

/// The retired-heap reference: a `BinaryHeap` ordered by `(time, seq)`
/// running the identical node program.
#[derive(Default)]
struct RefSim {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    meta: HashMap<u64, (u64, u32)>,
    seq: u64,
    now: u64,
    log: Vec<(u64, u64)>,
}

impl RefSim {
    fn schedule(&mut self, at: u64, id: u64, depth: u32) {
        self.heap.push(Reverse((at, self.seq)));
        self.meta.insert(self.seq, (id, depth));
        self.seq += 1;
    }

    fn fire(&mut self, at: u64, seq: u64) {
        let (id, depth) = self.meta.remove(&seq).expect("scheduled");
        self.now = at;
        self.log.push((id, at));
        if depth > 0 {
            let h = mix(id);
            for c in 0..child_count(h) {
                self.schedule(self.now + child_delta(h, c), child(id, c), depth - 1);
            }
        }
    }

    fn run_until(&mut self, deadline: u64) {
        while let Some(&Reverse((at, seq))) = self.heap.peek() {
            if at > deadline {
                break;
            }
            self.heap.pop();
            self.fire(at, seq);
        }
        if deadline != u64::MAX && deadline > self.now {
            self.now = deadline;
        }
    }

    fn step(&mut self) -> Option<u64> {
        let Reverse((at, seq)) = self.heap.pop()?;
        self.fire(at, seq);
        Some(at)
    }
}

#[test]
fn engine_matches_heap_reference_on_random_event_trees() {
    let mut boxed_total = 0u64;
    for seed in 0..60u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut engine: Engine<St> = Engine::new();
        let mut st = St::default();
        let mut reference = RefSim::default();

        // Seed both models with identical root nodes; spreads from tens
        // of nanoseconds to minutes exercise direct mode, spilling, and
        // multi-epoch re-anchoring underneath the engine.
        let spread = 1u64 << (4 + seed % 30);
        // Every third seed floods the queue far past the calendar's
        // direct-mode capacity so the spill and epoch tiers run under
        // the engine, not just in the calendar's own unit tests.
        let roots = if seed.is_multiple_of(3) {
            150 + rng.next_u64() % 250
        } else {
            3 + rng.next_u64() % 12
        };
        for r in 0..roots {
            let at = rng.next_u64() % spread;
            let id = mix((seed << 32) | r);
            let depth = 2 + (rng.next_u64() % 4) as u32;
            schedule_node(&mut engine, SimTime::from_nanos(at), id, depth);
            reference.schedule(at, id, depth);
        }

        // Drive both through identical chunks of deadline runs and
        // single steps, checking clocks and queue depths at every stop.
        for _ in 0..40 {
            if rng.next_u64().is_multiple_of(4) {
                let steps = 1 + rng.next_u64() % 3;
                for _ in 0..steps {
                    let got = engine.step(&mut st);
                    let want = reference.step().map(SimTime::from_nanos);
                    assert_eq!(got, want, "seed {seed} step");
                }
            } else {
                let deadline = if rng.next_u64().is_multiple_of(4) {
                    u64::MAX
                } else {
                    reference.now + rng.next_u64() % spread
                };
                let sim_deadline = if deadline == u64::MAX {
                    SimTime::MAX
                } else {
                    SimTime::from_nanos(deadline)
                };
                engine.run_until(&mut st, sim_deadline);
                reference.run_until(deadline);
            }
            assert_eq!(
                engine.now(),
                SimTime::from_nanos(reference.now),
                "seed {seed} clock"
            );
            assert_eq!(
                engine.pending(),
                reference.heap.len(),
                "seed {seed} pending"
            );
        }

        // Drain completely and compare the full execution order.
        engine.run(&mut st);
        reference.run_until(u64::MAX);
        assert_eq!(st.log, reference.log, "seed {seed} execution order");
        assert_eq!(engine.now(), SimTime::from_nanos(reference.now));
        assert_eq!(engine.pending(), 0);
        boxed_total += engine.boxed_events_scheduled();
    }
    assert!(
        boxed_total > 0,
        "the padded nodes should have exercised the boxed event path"
    );
}
