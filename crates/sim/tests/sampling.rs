//! Property and differential tests for the versioned sampler streams.
//!
//! The v2 stream's ziggurat samplers must agree with the v1 references
//! (Box–Muller normal, inverse-CDF exponential) in distribution — same
//! analytic moments, same tail mass — while producing a deterministic,
//! worker-count-invariant value sequence of their own. The [`DistKind`]
//! enum must agree with the `dyn Dist` trait path bit-for-bit under
//! both versions, and the v1 trait path itself must keep producing the
//! exact bytes every pre-versioning experiment record was built from.

use ic_sim::dist::{
    Deterministic, Dist, DistKind, DrawBuffer, Empirical, Erlang, Exponential, LogNormal, Pareto,
};
use ic_sim::rng::{SimRng, StreamVersion};

const N: usize = 1_000_000;

fn moments(samples: impl Iterator<Item = f64>) -> (f64, f64, usize) {
    let (mut sum, mut sum2, mut n) = (0.0, 0.0, 0usize);
    for x in samples {
        sum += x;
        sum2 += x * x;
        n += 1;
    }
    let mean = sum / n as f64;
    let var = sum2 / n as f64 - mean * mean;
    (mean, var, n)
}

#[test]
fn ziggurat_normal_matches_box_muller_reference_moments() {
    let mut v1 = SimRng::seed_versioned(2024, StreamVersion::V1);
    let mut v2 = SimRng::seed_versioned(2024, StreamVersion::V2);
    let (m1, var1, _) = moments((0..N).map(|_| v1.standard_normal()));
    let (m2, var2, _) = moments((0..N).map(|_| v2.standard_normal()));
    // Both against the analytic N(0, 1) moments at n = 1e6: the mean's
    // standard error is 1e-3, so 5e-3 is a five-sigma gate.
    assert!(m1.abs() < 5e-3, "v1 mean {m1}");
    assert!(m2.abs() < 5e-3, "v2 mean {m2}");
    assert!((var1 - 1.0).abs() < 1e-2, "v1 var {var1}");
    assert!((var2 - 1.0).abs() < 1e-2, "v2 var {var2}");
}

#[test]
fn ziggurat_normal_matches_reference_tail_quantiles() {
    // Tail mass beyond 2σ and 3σ: the ziggurat's wedge/tail handling is
    // exactly where a bug would distort the distribution, and the base
    // rectangle path alone never produces |z| > R = 3.65.
    let p2 = 0.045500; // P(|z| > 2)
    let p3 = 0.001350; // P(z > 3)
    for version in [StreamVersion::V1, StreamVersion::V2] {
        let mut rng = SimRng::seed_versioned(7, version);
        let (mut t2, mut t3, mut t4) = (0u32, 0u32, 0u32);
        for _ in 0..N {
            let z = rng.standard_normal();
            if z.abs() > 2.0 {
                t2 += 1;
            }
            if z > 3.0 {
                t3 += 1;
            }
            if z > 4.0 {
                t4 += 1;
            }
        }
        let f2 = t2 as f64 / N as f64;
        let f3 = t3 as f64 / N as f64;
        assert!((f2 - p2).abs() / p2 < 0.05, "{version:?} P(|z|>2) = {f2}");
        assert!((f3 - p3).abs() / p3 < 0.15, "{version:?} P(z>3) = {f3}");
        // P(z > 4) ≈ 3.2e-5: ~32 hits expected; the deep tail exists.
        assert!(t4 > 5, "{version:?} produced almost no z > 4 samples");
    }
}

#[test]
fn ziggurat_exp_matches_inverse_cdf_reference() {
    let mut v1 = SimRng::seed_versioned(11, StreamVersion::V1);
    let mut v2 = SimRng::seed_versioned(11, StreamVersion::V2);
    let (m1, var1, _) = moments((0..N).map(|_| v1.standard_exp()));
    let (m2, var2, _) = moments((0..N).map(|_| v2.standard_exp()));
    assert!((m1 - 1.0).abs() < 5e-3, "v1 mean {m1}");
    assert!((m2 - 1.0).abs() < 5e-3, "v2 mean {m2}");
    let scv1 = var1 / (m1 * m1);
    let scv2 = var2 / (m2 * m2);
    assert!((scv1 - 1.0).abs() < 2e-2, "v1 scv {scv1}");
    assert!((scv2 - 1.0).abs() < 2e-2, "v2 scv {scv2}");
    // Tail: P(x > 5) = e^-5 ≈ 6.738e-3 — crosses the ziggurat edge at
    // R = 7.7 only via the memoryless restart, so check both regions.
    for (version, seed) in [(StreamVersion::V1, 13u64), (StreamVersion::V2, 13)] {
        let mut rng = SimRng::seed_versioned(seed, version);
        let t5 = (0..N).filter(|_| rng.standard_exp() > 5.0).count();
        let f5 = t5 as f64 / N as f64;
        let p5 = (-5.0f64).exp();
        assert!((f5 - p5).abs() / p5 < 0.10, "{version:?} P(x>5) = {f5}");
        let mut rng = SimRng::seed_versioned(seed, version);
        let t9 = (0..N).filter(|_| rng.standard_exp() > 9.0).count();
        // P(x > 9) ≈ 1.2e-4: ~123 hits expected.
        assert!(t9 > 60 && t9 < 250, "{version:?} deep tail count {t9}");
    }
}

#[test]
fn v2_streams_are_seed_deterministic() {
    for seed in [0u64, 1, 42, u64::MAX] {
        let mut a = SimRng::seed_versioned(seed, StreamVersion::V2);
        let mut b = SimRng::seed_versioned(seed, StreamVersion::V2);
        for _ in 0..1000 {
            assert_eq!(a.standard_normal().to_bits(), b.standard_normal().to_bits());
            assert_eq!(a.standard_exp().to_bits(), b.standard_exp().to_bits());
        }
    }
}

#[test]
fn v1_and_v2_share_the_raw_stream_but_not_variates() {
    let mut v1 = SimRng::seed_versioned(5, StreamVersion::V1);
    let mut v2 = SimRng::seed_versioned(5, StreamVersion::V2);
    for _ in 0..100 {
        assert_eq!(v1.next_u64(), v2.next_u64());
    }
    let mut v1 = SimRng::seed_versioned(5, StreamVersion::V1);
    let mut v2 = SimRng::seed_versioned(5, StreamVersion::V2);
    let same = (0..100)
        .filter(|_| v1.standard_normal().to_bits() == v2.standard_normal().to_bits())
        .count();
    assert!(
        same < 2,
        "v1 and v2 normal sequences should differ ({same} collisions)"
    );
}

#[test]
fn versioned_streams_are_worker_count_invariant() {
    // `stream_versioned` must stay a pure function of (seed, index,
    // version): materializing streams in any order or subset — which is
    // what different worker counts do — cannot change stream i.
    let draw = |index: u64| {
        let mut r = SimRng::stream_versioned(99, index, StreamVersion::V2);
        (0..64)
            .map(|_| r.standard_normal().to_bits())
            .collect::<Vec<_>>()
    };
    let forward: Vec<_> = (0..8).map(draw).collect();
    let backward: Vec<_> = (0..8).rev().map(draw).collect();
    for (i, seq) in forward.iter().enumerate() {
        assert_eq!(
            seq,
            &backward[7 - i],
            "stream {i} depends on materialization order"
        );
    }
    // The raw u64 stream is version-independent: pinning a task to v1
    // or v2 only changes the transforms, never the underlying stream.
    let mut raw1 = SimRng::stream(99, 3);
    let mut raw2 = SimRng::stream_versioned(99, 3, StreamVersion::V2);
    for _ in 0..64 {
        assert_eq!(raw1.next_u64(), raw2.next_u64());
    }
}

#[test]
fn forks_inherit_the_stream_version() {
    let mut parent = SimRng::seed_versioned(21, StreamVersion::V2);
    let mut child = parent.fork();
    assert_eq!(child.version(), StreamVersion::V2);
    // A fork of the same-seeded v1 parent has the same raw stream but
    // samples with v1 transforms.
    let mut parent_v1 = SimRng::seed_versioned(21, StreamVersion::V1);
    let mut child_v1 = parent_v1.fork();
    assert_eq!(child_v1.version(), StreamVersion::V1);
    for _ in 0..32 {
        assert_eq!(child.next_u64(), child_v1.next_u64());
    }
}

/// Every distribution, as a (trait object, enum) pair over the same
/// parameters.
fn dist_pairs() -> Vec<(&'static str, Box<dyn Dist>, DistKind)> {
    let emp = Empirical::new(vec![0.001, 0.002, 0.004, 0.008]);
    vec![
        (
            "deterministic",
            Box::new(Deterministic::new(0.0042)) as Box<dyn Dist>,
            DistKind::from(Deterministic::new(0.0042)),
        ),
        (
            "exponential",
            Box::new(Exponential::with_mean(0.0028)),
            DistKind::from(Exponential::with_mean(0.0028)),
        ),
        (
            "lognormal",
            Box::new(LogNormal::with_mean_scv(0.0028, 2.0)),
            DistKind::from(LogNormal::with_mean_scv(0.0028, 2.0)),
        ),
        (
            "pareto",
            Box::new(Pareto::new(0.001, 2.5)),
            DistKind::from(Pareto::new(0.001, 2.5)),
        ),
        (
            "erlang",
            Box::new(Erlang::new(4, 0.0028)),
            DistKind::from(Erlang::new(4, 0.0028)),
        ),
        ("empirical", Box::new(emp.clone()), DistKind::from(emp)),
    ]
}

#[test]
fn dist_kind_is_bitwise_equal_to_dyn_dist_under_both_versions() {
    for version in [StreamVersion::V1, StreamVersion::V2] {
        for (name, boxed, kind) in dist_pairs() {
            let mut rng_trait = SimRng::seed_versioned(0xDECAF, version);
            let mut rng_enum = SimRng::seed_versioned(0xDECAF, version);
            for i in 0..1000 {
                let a = boxed.sample(&mut rng_trait);
                let b = kind.sample(&mut rng_enum);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name} {version:?} draw {i}: trait {a} vs enum {b}"
                );
            }
            assert_eq!(boxed.mean().to_bits(), kind.mean().to_bits(), "{name} mean");
            assert_eq!(boxed.scv().to_bits(), kind.scv().to_bits(), "{name} scv");
        }
    }
}

#[test]
fn v1_sample_bit_patterns_are_frozen() {
    // Captured from the pre-versioning implementation (seed 0xDECAF,
    // first 8 draws per distribution). These bytes underlie every
    // shipped experiment record: any drift here re-rolls seeded
    // history, so the exact bit patterns are pinned, not approximated.
    let expected: &[(&str, [u64; 8])] = &[
        (
            "deterministic",
            [
                0x3F713404EA4A8C15,
                0x3F713404EA4A8C15,
                0x3F713404EA4A8C15,
                0x3F713404EA4A8C15,
                0x3F713404EA4A8C15,
                0x3F713404EA4A8C15,
                0x3F713404EA4A8C15,
                0x3F713404EA4A8C15,
            ],
        ),
        (
            "exponential",
            [
                0x3F3CAB1EFCEDC262,
                0x3F4CB82F2BF81432,
                0x3F549768E05ED1BF,
                0x3F600F54421F28B2,
                0x3F21CF09E790D1B8,
                0x3F67B1C7D4A3E8B2,
                0x3F1D66B17F1F19A2,
                0x3EBFA62D3296D9EC,
            ],
        ),
        (
            "lognormal",
            [
                0x3F58B8EAF4147296,
                0x3F43A0851FCE2B5A,
                0x3F55A63294A5A77A,
                0x3F61D1138867725D,
                0x3F63A7F37A605A81,
                0x3F75BAF22ECA3774,
                0x3F5E27BB5A8162A5,
                0x3F52631EA2E654EF,
            ],
        ),
        (
            "pareto",
            [
                0x3F5170C75B2AB8F9,
                0x3F5291C0B68A8662,
                0x3F539B3332FDA667,
                0x3F55ADF4017DE18D,
                0x3F50B482B9429843,
                0x3F58C44C8A22AA3A,
                0x3F50A60C41BCFE84,
                0x3F50636F39F81DE5,
            ],
        ),
        (
            "erlang",
            [
                0x3F528F3C2E752775,
                0x3F49BDE2C4BC4176,
                0x3F728F0260950AE0,
                0x3F5F0F32C1EF611A,
                0x3F7111B6376B3B63,
                0x3F6994B499A4E425,
                0x3F60C859A09D3CF4,
                0x3F596CD0E2D1F211,
            ],
        ),
        (
            "empirical",
            [
                0x3F50624DD2F1A9FC,
                0x3F60624DD2F1A9FC,
                0x3F60624DD2F1A9FC,
                0x3F70624DD2F1A9FC,
                0x3F50624DD2F1A9FC,
                0x3F70624DD2F1A9FC,
                0x3F50624DD2F1A9FC,
                0x3F50624DD2F1A9FC,
            ],
        ),
    ];
    for ((name, boxed, _), (ename, bits)) in dist_pairs().iter().zip(expected) {
        assert_eq!(name, ename);
        let mut rng = SimRng::seed_from_u64(0xDECAF);
        for (i, want) in bits.iter().enumerate() {
            let got = boxed.sample(&mut rng);
            assert_eq!(
                got.to_bits(),
                *want,
                "{name} draw {i}: got {got} ({:#018X})",
                got.to_bits()
            );
        }
    }
    // The Box–Muller stream itself (seed 7, first 6 draws).
    let bm_expected: [u64; 6] = [
        0x3FC44E7230B9B51E,
        0xBFF6D3FB38F2FB78,
        0xC0041F401BA4A77A,
        0xBFE8B01AEC7D7E2A,
        0x40045C46BF33BE9D,
        0x3FCDB033AB6F347F,
    ];
    let mut rng = SimRng::seed_from_u64(7);
    for (i, want) in bm_expected.iter().enumerate() {
        assert_eq!(
            rng.standard_normal().to_bits(),
            *want,
            "standard_normal draw {i}"
        );
    }
}

#[test]
fn draw_buffer_preserves_the_scalar_value_sequence() {
    // Buffered consumption must equal one-at-a-time sampling on the
    // same dedicated generator — batching changes when the transforms
    // run, never what they return. Checked across a refill boundary
    // (> 1024 draws) for the hot-loop distributions under both versions.
    for version in [StreamVersion::V1, StreamVersion::V2] {
        for dist in [
            DistKind::from(LogNormal::with_mean_scv(0.0028, 2.0)),
            DistKind::Exponential { mean: 1.0 },
            DistKind::from(Erlang::new(3, 0.01)),
        ] {
            let mut buffered = DrawBuffer::new(dist.clone(), SimRng::seed_versioned(31, version));
            let mut scalar_rng = SimRng::seed_versioned(31, version);
            for i in 0..3000 {
                let a = buffered.next();
                let b = dist.sample(&mut scalar_rng);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{dist:?} {version:?} draw {i}: buffered {a} vs scalar {b}"
                );
            }
        }
    }
}

#[test]
fn erlang_v2_single_log_matches_erlang_moments() {
    // The v2 Erlang folds k stages into one log of a product of
    // uniforms; its distribution must still be Erlang-k.
    let d = Erlang::new(4, 2.0);
    let mut rng = SimRng::seed_versioned(17, StreamVersion::V2);
    let (mean, var, _) = moments((0..N).map(|_| d.sample(&mut rng)));
    assert!((mean - 2.0).abs() / 2.0 < 5e-3, "v2 Erlang mean {mean}");
    let scv = var / (mean * mean);
    assert!((scv - 0.25).abs() < 5e-3, "v2 Erlang scv {scv}");
}
