//! `ic-chaos`: wear-coupled fault injection and graceful degradation.
//!
//! The paper's overclocking pitch stands on a reliability argument
//! (Section IV): push V/f and the composite lifetime model says parts
//! die sooner; push past the stability envelope and correctable errors
//! climb. This crate closes the loop in simulation — faults are not a
//! scripted nuisance but a *consequence of the operating point the
//! control plane itself chose*:
//!
//! * [`FaultProcess`] — per-server time-to-failure and correctable-
//!   error sampling driven by the fleet's actual V/f/Tj history,
//!   via exact hazard-integration inversion
//!   ([`ic_reliability::hazard`]). Pure in `(seed, server)`: worker
//!   count, advance interleaving, and sibling servers cannot perturb a
//!   server's events. Two fleets sharing a seed share their `Exp(1)`
//!   thresholds, so the harder-driven fleet (OC3) fails no later,
//!   server by server, than the gentler one (B2) — common random
//!   numbers as a *monotone coupling*, not merely variance reduction.
//! * [`ChaosController`] — the actuation side: derives the physical
//!   operating point from live telemetry each tick, advances the
//!   process, and emits `FailServer` / `InjectErrorBurst` /
//!   `RepairServer` actions into the `ic-controlplane` runtime.
//! * [`DegradationController`] — the response side: de-overclock on a
//!   fleet-wide correctable-error spike, proactively drain a bursting
//!   server, hand the recovery to the failover controller.
//! * [`StalledController`] — wraps any controller with stall windows
//!   (the "wedged control loop" fault).
//! * [`SloScorecard`] — availability, P95/P99 breach minutes, and
//!   failed-then-recovered VM counts for the run record.
//!
//! Exogenous control-plane faults (frozen telemetry, dropped VM
//! sensors) are scheduled directly as DES events via
//! [`ic_controlplane::FaultPlan`]; this crate only provides the models
//! and controllers that need state.

pub mod controllers;
pub mod process;
pub mod slo;

pub use controllers::{
    ChaosController, DegradationController, DegradationPolicy, StalledController,
};
pub use process::{FaultEvent, FaultProcess};
pub use slo::{LatencySlo, SloInputs, SloScorecard};
