//! The wear-coupled fault process.
//!
//! [`FaultProcess`] turns ic-reliability's *rate* models into concrete
//! fault *events* for a simulated fleet. Each server owns two hazard
//! integrators fed by its actual operating history:
//!
//! * **failure** — the composite lifetime model's failure rate at the
//!   server's current (V, Tj) point, scaled by the config's
//!   `hazard_scale` (real lifetimes are years; simulated horizons are
//!   minutes, so the scale is an accelerated-aging knob);
//! * **correctable errors** — the stability model's errors/month at the
//!   server's overclock ratio, scaled by `error_scale`.
//!
//! Both integrators use exact inversion sampling
//! ([`HazardIntegrator`]): a threshold is drawn `Exp(1)` from a
//! per-server [`SimRng`] stream and the piecewise-constant hazard is
//! integrated until it crosses. Because every draw for server `s`
//! comes from `SimRng::stream(seed', 2s)` (failures + repairs) or
//! `SimRng::stream(seed', 2s + 1)` (errors), the whole process is a
//! pure function of `(config.seed, server)` — the order in which
//! servers are advanced, or how the fleet is partitioned across
//! workers, cannot change any event.
//!
//! The common-random-numbers corollary is what the `chaos` experiment
//! leans on: two fleets built from the *same* config draw the *same*
//! thresholds, so the fleet whose hazard is pointwise higher (OC3's
//! higher V and Tj) fails at least as often, server by server — a
//! deterministic, monotone coupling rather than a statistical claim.

use ic_reliability::hazard::{failure_rate_per_second, per_month_to_per_second, HazardIntegrator};
use ic_reliability::lifetime::{CompositeLifetimeModel, OperatingConditions};
use ic_reliability::stability::StabilityModel;
use ic_scenario::FaultConfig;
use ic_sim::rng::SimRng;

/// Domain separation so the fault streams never collide with workload
/// streams derived from the same experiment seed.
const CHAOS_SEED_SALT: u64 = 0x9e3d_79b9_7f4a_7c15;

/// Floor for `Exp(1)` draws: `standard_exp` can in principle return
/// exactly zero, which a hazard threshold must not be.
const MIN_DRAW: f64 = 1e-12;

/// One event produced by [`FaultProcess::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The server's cumulative failure hazard crossed its draw: the
    /// server fails now.
    Failure {
        /// Server index in the cluster.
        server: usize,
    },
    /// `count` correctable-error events landed in the advanced window.
    ErrorBurst {
        /// Server index in the cluster.
        server: usize,
        /// Correctable errors in the burst (≥ 1).
        count: u64,
    },
}

struct ServerProcess {
    /// Failure thresholds and repair delays.
    failure_rng: SimRng,
    /// Correctable-error thresholds.
    error_rng: SimRng,
    failure: HazardIntegrator,
    error: HazardIntegrator,
    down: bool,
}

impl ServerProcess {
    fn new(seed: u64, server: usize) -> Self {
        let mut failure_rng = SimRng::stream(seed, (server as u64) * 2);
        let mut error_rng = SimRng::stream(seed, (server as u64) * 2 + 1);
        let failure = HazardIntegrator::new(failure_rng.standard_exp().max(MIN_DRAW));
        let error = HazardIntegrator::new(error_rng.standard_exp().max(MIN_DRAW));
        ServerProcess {
            failure_rng,
            error_rng,
            failure,
            error,
            down: false,
        }
    }
}

/// Per-server wear-coupled failure and correctable-error sampling for a
/// fleet. See the module docs for the determinism contract.
pub struct FaultProcess {
    config: FaultConfig,
    model: CompositeLifetimeModel,
    stability: StabilityModel,
    servers: Vec<ServerProcess>,
}

impl FaultProcess {
    /// A process over `servers` servers, drawing from `config.seed`.
    /// `model` prices failures; `stability` prices correctable errors.
    pub fn new(
        config: FaultConfig,
        servers: usize,
        model: CompositeLifetimeModel,
        stability: StabilityModel,
    ) -> Self {
        let seed = config.seed ^ CHAOS_SEED_SALT;
        FaultProcess {
            config,
            model,
            stability,
            servers: (0..servers).map(|s| ServerProcess::new(seed, s)).collect(),
        }
    }

    /// Number of servers modeled.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the process models no servers at all.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Whether this process currently considers `server` failed (i.e. a
    /// [`FaultEvent::Failure`] fired and no [`FaultProcess::repair`]
    /// has landed since).
    pub fn is_down(&self, server: usize) -> bool {
        self.servers[server].down
    }

    /// The failure hazard, 1/s, at `cond` under this process's scale.
    pub fn failure_rate_per_s(&self, cond: &OperatingConditions) -> f64 {
        self.config.hazard_scale * failure_rate_per_second(&self.model, cond)
    }

    /// The correctable-error hazard, 1/s, at overclock ratio
    /// `oc_ratio` (clamped to ≥ 1: the stability model is defined from
    /// turbo upward) under this process's scale.
    pub fn error_rate_per_s(&self, oc_ratio: f64) -> f64 {
        let rate_month = self
            .stability
            .correctable_error_rate_per_month(oc_ratio.max(1.0));
        self.config.error_scale * per_month_to_per_second(rate_month)
    }

    /// Advances `server` by `dt_s` seconds spent at `cond` /
    /// `oc_ratio`, returning the fault events the window produced
    /// (error bursts first, then at most one failure). A failed server
    /// accrues nothing until repaired — dark silicon does not wear.
    pub fn advance(
        &mut self,
        server: usize,
        cond: &OperatingConditions,
        oc_ratio: f64,
        dt_s: f64,
    ) -> Vec<FaultEvent> {
        let failure_rate = self.failure_rate_per_s(cond);
        let error_rate = self.error_rate_per_s(oc_ratio);
        let sp = &mut self.servers[server];
        if sp.down || dt_s <= 0.0 {
            return Vec::new();
        }
        let mut events = Vec::new();

        // Correctable errors: a renewal process, so one window may hold
        // several crossings. Walk the accrued hazard through as many
        // thresholds as it spans.
        let mut budget = error_rate * dt_s;
        let mut count = 0u64;
        loop {
            let room = (sp.error.threshold() - sp.error.cumulative()).max(0.0);
            if budget < room {
                sp.error.accrue(budget, 1.0);
                break;
            }
            budget -= room;
            count += 1;
            sp.error.rearm(sp.error_rng.standard_exp().max(MIN_DRAW));
        }
        if count > 0 {
            events.push(FaultEvent::ErrorBurst { server, count });
        }

        if sp.failure.accrue(failure_rate, dt_s) {
            sp.down = true;
            // Draw the replacement part's threshold immediately so the
            // stream position stays a pure function of how many
            // failures this server has had, not of repair timing.
            sp.failure
                .rearm(sp.failure_rng.standard_exp().max(MIN_DRAW));
            events.push(FaultEvent::Failure { server });
        }
        events
    }

    /// The repair delay, seconds, for `server`'s current failure —
    /// uniform in the config's `[repair_min_s, repair_max_s]`, drawn
    /// from the server's own stream.
    pub fn repair_delay_s(&mut self, server: usize) -> f64 {
        let sp = &mut self.servers[server];
        sp.failure_rng
            .uniform_range(self.config.repair_min_s, self.config.repair_max_s)
    }

    /// Marks `server` repaired: wear accrual resumes on the (already
    /// drawn) replacement part.
    pub fn repair(&mut self, server: usize) {
        self.servers[server].down = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(seed: u64, hazard_scale: f64, error_scale: f64) -> FaultConfig {
        let mut c = FaultConfig::disabled();
        c.seed = seed;
        c.hazard_scale = hazard_scale;
        c.error_scale = error_scale;
        c
    }

    fn process(seed: u64, servers: usize) -> FaultProcess {
        FaultProcess::new(
            config(seed, 3e5, 5e4),
            servers,
            CompositeLifetimeModel::fitted_5nm(),
            StabilityModel::paper_characterization(),
        )
    }

    fn b2() -> OperatingConditions {
        OperatingConditions::new(0.90, 51.0, 35.0)
    }

    fn oc3() -> OperatingConditions {
        OperatingConditions::new(0.98, 60.0, 35.0)
    }

    /// Drives one server for `steps` windows and logs (step, event).
    fn trajectory(
        p: &mut FaultProcess,
        server: usize,
        cond: &OperatingConditions,
        ratio: f64,
        steps: usize,
    ) -> Vec<(usize, FaultEvent)> {
        let mut log = Vec::new();
        for step in 0..steps {
            for ev in p.advance(server, cond, ratio, 15.0) {
                if matches!(ev, FaultEvent::Failure { .. }) {
                    p.repair(server);
                }
                log.push((step, ev));
            }
        }
        log
    }

    #[test]
    fn pure_in_seed_and_server_regardless_of_interleaving() {
        // Advance servers 0 and 1 round-robin…
        let mut ab = process(7, 2);
        let mut log_ab: Vec<(usize, usize, FaultEvent)> = Vec::new();
        for step in 0..400 {
            for s in [0, 1] {
                for ev in ab.advance(s, &oc3(), 1.21, 15.0) {
                    if matches!(ev, FaultEvent::Failure { .. }) {
                        ab.repair(s);
                    }
                    log_ab.push((step, s, ev));
                }
            }
        }
        // …and each server alone, in the opposite order, on a process
        // with a different server count: identical per-server events.
        let mut ba = process(7, 3);
        let one = trajectory(&mut ba, 1, &oc3(), 1.21, 400);
        let zero = trajectory(&mut ba, 0, &oc3(), 1.21, 400);
        let only = |log: &[(usize, usize, FaultEvent)], s: usize| -> Vec<(usize, FaultEvent)> {
            log.iter()
                .filter(|&&(_, srv, _)| srv == s)
                .map(|&(step, _, ev)| (step, ev))
                .collect()
        };
        assert_eq!(only(&log_ab, 0), zero);
        assert_eq!(only(&log_ab, 1), one);
        assert!(!zero.is_empty() || !one.is_empty(), "scales produce events");
    }

    #[test]
    fn same_seed_same_events_different_seed_different_draws() {
        let mut a = process(11, 1);
        let mut b = process(11, 1);
        let mut c = process(12, 1);
        let ta = trajectory(&mut a, 0, &oc3(), 1.21, 300);
        let tb = trajectory(&mut b, 0, &oc3(), 1.21, 300);
        let tc = trajectory(&mut c, 0, &oc3(), 1.21, 300);
        assert_eq!(ta, tb);
        assert_ne!(ta, tc);
    }

    #[test]
    fn oc3_fails_no_later_than_b2_under_common_draws() {
        // Same seed ⇒ same Exp(1) thresholds; OC3's hazard is pointwise
        // higher, so each server's k-th failure lands no later. Check
        // the first failure time across a few servers.
        for server in 0..4 {
            let mut pb = process(21, 4);
            let mut po = process(21, 4);
            let first = |p: &mut FaultProcess, cond: &OperatingConditions, ratio: f64| {
                (0..10_000).find(|_| {
                    p.advance(server, cond, ratio, 15.0)
                        .iter()
                        .any(|e| matches!(e, FaultEvent::Failure { .. }))
                })
            };
            let t_b2 = first(&mut pb, &b2(), 1.0);
            let t_oc3 = first(&mut po, &oc3(), 1.21);
            let (Some(t_b2), Some(t_oc3)) = (t_b2, t_oc3) else {
                panic!("hazard scale too small for the test horizon");
            };
            assert!(t_oc3 <= t_b2, "server {server}: {t_oc3} vs {t_b2}");
        }
    }

    #[test]
    fn down_servers_do_not_wear() {
        let mut p = process(5, 1);
        // Drive to the first failure.
        let mut failed = false;
        for _ in 0..10_000 {
            if !p
                .advance(0, &oc3(), 1.21, 15.0)
                .iter()
                .any(|e| matches!(e, FaultEvent::Failure { .. }))
            {
                continue;
            }
            failed = true;
            break;
        }
        assert!(failed);
        assert!(p.is_down(0));
        // While down, no further events accrue no matter the window.
        assert!(p.advance(0, &oc3(), 1.21, 1e9).is_empty());
        p.repair(0);
        assert!(!p.is_down(0));
    }

    #[test]
    fn error_bursts_scale_with_overclock_ratio() {
        let count = |ratio: f64| -> u64 {
            let mut p = process(31, 1);
            let mut total = 0;
            for _ in 0..400 {
                for ev in p.advance(0, &oc3(), ratio, 15.0) {
                    match ev {
                        FaultEvent::ErrorBurst { count, .. } => total += count,
                        FaultEvent::Failure { .. } => p.repair(0),
                    }
                }
            }
            total
        };
        // Below-turbo ratios clamp to the flat background rate.
        assert_eq!(count(0.9), count(1.0));
        assert!(count(1.33) > count(1.0), "excess overclock must add errors");
    }

    #[test]
    fn repair_delay_is_deterministic_and_in_range() {
        let mut a = process(3, 2);
        let mut b = process(3, 2);
        let da = a.repair_delay_s(1);
        assert_eq!(da, b.repair_delay_s(1));
        let cfg = config(0, 0.0, 0.0);
        assert!((cfg.repair_min_s..=cfg.repair_max_s).contains(&da));
    }
}
