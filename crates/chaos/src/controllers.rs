//! The chaos, degradation, and stall controllers.
//!
//! * [`ChaosController`] drives a [`FaultProcess`] from live fleet
//!   telemetry: each tick it derives the fleet's physical operating
//!   point (V, Tj) from the current frequency ratio, accrues hazard,
//!   and turns crossings into [`Action::FailServer`] /
//!   [`Action::InjectErrorBurst`] actuations — plus the matching
//!   [`Action::RepairServer`] once the drawn repair delay elapses.
//! * [`DegradationController`] is the response side: watch the fault
//!   telemetry, de-overclock the fleet when the correctable-error rate
//!   spikes, and proactively drain (fail over) a server whose own
//!   counters burst — the paper's "watch the rate of change of
//!   correctable errors" mitigation, closed-loop.
//! * [`StalledController`] wraps any controller and suppresses its
//!   ticks inside configured windows — the "stalled controller"
//!   control-plane fault.

use crate::process::{FaultEvent, FaultProcess};
use ic_controlplane::{Action, Controller, FreqTarget, TelemetrySnapshot};
use ic_power::cpu::CpuSku;
use ic_power::units::{Frequency, Voltage};
use ic_reliability::lifetime::OperatingConditions;
use ic_scenario::FaultWindow;
use ic_sim::time::{SimDuration, SimTime};
use ic_thermal::junction::ThermalInterface;

/// Turns wear-model crossings into control-plane actions, keyed to the
/// fleet's actual V/f/Tj trajectory.
pub struct ChaosController {
    process: FaultProcess,
    sku: CpuSku,
    iface: ThermalInterface,
    base: Frequency,
    voltage_offset_v: f64,
    last_now: SimTime,
    /// Pending repair instants for servers this controller failed.
    repair_due: Vec<Option<SimTime>>,
    /// The last derived operating point, keyed by exact ratio — the
    /// governor's change suppression means the ratio moves rarely.
    op_cache: Option<(f64, OperatingConditions)>,
    failures: u64,
    bursts: u64,
}

impl ChaosController {
    /// A chaos controller over `process`, deriving operating points
    /// from `sku` in `iface`. `base` is the frequency that telemetry
    /// ratio 1.0 refers to; `voltage_offset_v` is added on top of the
    /// V/f curve (the paper's overclocked configs pin +50 mV).
    pub fn new(
        process: FaultProcess,
        sku: CpuSku,
        iface: ThermalInterface,
        base: Frequency,
        voltage_offset_v: f64,
    ) -> Self {
        let servers = process.len();
        ChaosController {
            process,
            sku,
            iface,
            base,
            voltage_offset_v,
            last_now: SimTime::ZERO,
            repair_due: vec![None; servers],
            op_cache: None,
            failures: 0,
            bursts: 0,
        }
    }

    /// Failures injected so far.
    pub fn failures_injected(&self) -> u64 {
        self.failures
    }

    /// Error bursts injected so far.
    pub fn bursts_injected(&self) -> u64 {
        self.bursts
    }

    /// The driven fault process.
    pub fn process(&self) -> &FaultProcess {
        &self.process
    }

    /// The physical operating point at a frequency ratio: voltage off
    /// the sku's V/f curve plus the configured offset, junction
    /// temperature from the solved steady state, Tj swing floor at the
    /// cooling medium's reference temperature.
    fn conditions_for(&mut self, ratio: f64) -> OperatingConditions {
        if let Some((r, cond)) = &self.op_cache {
            if *r == ratio {
                return *cond;
            }
        }
        let freq = Frequency::from_ghz(self.base.ghz() * ratio.max(0.1));
        let volts = self.sku.voltage_for(freq).volts() + self.voltage_offset_v;
        let steady = self
            .sku
            .steady_state(&self.iface, freq, Voltage::from_volts(volts));
        let cond = OperatingConditions::new(volts, steady.tj_c, self.iface.reference_temp_c());
        self.op_cache = Some((ratio, cond));
        cond
    }
}

impl Controller for ChaosController {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn observe(&mut self, snapshot: &TelemetrySnapshot) -> Vec<Action> {
        let now = snapshot.now;
        let dt_s = (now - self.last_now).as_secs_f64();
        self.last_now = now;
        let ratio = snapshot
            .faults
            .as_ref()
            .map(|f| f.fleet_ratio)
            .unwrap_or(1.0);
        let cond = self.conditions_for(ratio);
        let mut actions = Vec::new();
        for server in 0..self.process.len() {
            if let Some(due) = self.repair_due[server] {
                if now >= due {
                    self.repair_due[server] = None;
                    self.process.repair(server);
                    actions.push(Action::RepairServer { server });
                }
                continue;
            }
            for event in self.process.advance(server, &cond, ratio, dt_s) {
                match event {
                    FaultEvent::ErrorBurst { server, count } => {
                        self.bursts += 1;
                        actions.push(Action::InjectErrorBurst { server, count });
                    }
                    FaultEvent::Failure { server } => {
                        self.failures += 1;
                        let delay = self.process.repair_delay_s(server);
                        self.repair_due[server] = Some(now + SimDuration::from_secs_f64(delay));
                        actions.push(Action::FailServer { server });
                    }
                }
            }
        }
        actions
    }

    ic_controlplane::impl_controller_downcast!();
}

/// Thresholds and responses for [`DegradationController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationPolicy {
    /// Fleet-wide correctable errors in one tick window that trigger
    /// the de-overclock.
    pub fleet_errors_per_tick: u64,
    /// Errors on a single server in one tick window that trigger a
    /// proactive drain of that server.
    pub server_burst_errors: u64,
    /// The frequency ratio to fall back to when de-overclocking
    /// (1.0 = base clock).
    pub deoc_ratio: f64,
    /// How long a drained server stays out of rotation.
    pub drain_cooldown_s: f64,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            fleet_errors_per_tick: 6,
            server_burst_errors: 4,
            deoc_ratio: 1.0,
            drain_cooldown_s: 120.0,
        }
    }
}

/// Graceful degradation: de-overclock on a fleet-wide error-rate
/// spike (held with hysteresis — the response stays armed-off while
/// errors keep arriving and re-arms after a fully quiet tick, so every
/// spike gets a brake, not just the first) and drain individual
/// servers whose counters burst, returning them after a cooldown.
/// Failover boost and VM re-placement stay the `FailoverController`'s
/// job; this controller only decides *when* a server should leave the
/// rotation early.
pub struct DegradationController {
    policy: DegradationPolicy,
    last_errors: Vec<u64>,
    last_total: u64,
    deoc_latched: bool,
    deocs: u32,
    drains: u32,
    drain_due: Vec<Option<SimTime>>,
}

impl DegradationController {
    /// A degradation controller with `policy`.
    pub fn new(policy: DegradationPolicy) -> Self {
        DegradationController {
            policy,
            last_errors: Vec::new(),
            last_total: 0,
            deoc_latched: false,
            deocs: 0,
            drains: 0,
            drain_due: Vec::new(),
        }
    }

    /// De-overclock actions issued (one per distinct error spike —
    /// the response re-arms after a quiet tick).
    pub fn deocs(&self) -> u32 {
        self.deocs
    }

    /// Proactive server drains issued.
    pub fn drains(&self) -> u32 {
        self.drains
    }
}

impl Controller for DegradationController {
    fn name(&self) -> &'static str {
        "degradation"
    }

    fn observe(&mut self, snapshot: &TelemetrySnapshot) -> Vec<Action> {
        let Some(faults) = &snapshot.faults else {
            return Vec::new();
        };
        let now = snapshot.now;
        let servers = faults.errors_by_server.len();
        self.last_errors.resize(servers, 0);
        self.drain_due.resize(servers, None);

        let mut actions = Vec::new();
        for server in 0..servers {
            if let Some(due) = self.drain_due[server] {
                if now >= due {
                    self.drain_due[server] = None;
                    actions.push(Action::RepairServer { server });
                }
            }
        }

        let already_down = |server: usize| {
            snapshot
                .cluster
                .as_ref()
                .is_some_and(|c| c.failed_servers.contains(&server))
        };
        let total: u64 = faults.errors_by_server.iter().sum();
        for (server, (&current, last)) in faults
            .errors_by_server
            .iter()
            .zip(self.last_errors.iter_mut())
            .enumerate()
        {
            let delta = current.saturating_sub(*last);
            *last = current;
            if delta >= self.policy.server_burst_errors
                && self.drain_due[server].is_none()
                && !already_down(server)
            {
                self.drains += 1;
                self.drain_due[server] =
                    Some(now + SimDuration::from_secs_f64(self.policy.drain_cooldown_s));
                actions.push(Action::FailServer { server });
            }
        }
        let delta_total = total.saturating_sub(self.last_total);
        self.last_total = total;
        if self.deoc_latched {
            // Hysteresis: hold while errors keep arriving, re-arm only
            // after a fully quiet tick.
            if delta_total == 0 {
                self.deoc_latched = false;
            }
        } else if delta_total >= self.policy.fleet_errors_per_tick {
            self.deoc_latched = true;
            self.deocs += 1;
            actions.push(Action::SetFrequency {
                target: FreqTarget::Fleet,
                ratio: self.policy.deoc_ratio,
            });
        }
        actions
    }

    ic_controlplane::impl_controller_downcast!();
}

/// Wraps a controller and suppresses its ticks inside stall windows —
/// the controller simply does not decide while stalled (its `applied`
/// notifications still flow, matching a wedged decision loop whose
/// actuation callbacks keep arriving).
pub struct StalledController {
    inner: Box<dyn Controller>,
    windows: Vec<(SimTime, SimTime)>,
    stalled_ticks: u64,
}

impl StalledController {
    /// Wraps `inner`, stalling it inside each `[from, until)` window.
    pub fn new(inner: Box<dyn Controller>, windows: Vec<(SimTime, SimTime)>) -> Self {
        StalledController {
            inner,
            windows,
            stalled_ticks: 0,
        }
    }

    /// Wraps `inner` using scenario-level fault windows.
    pub fn from_windows(inner: Box<dyn Controller>, windows: &[FaultWindow]) -> Self {
        Self::new(
            inner,
            windows
                .iter()
                .map(|w| {
                    (
                        SimTime::from_secs_f64(w.from_s),
                        SimTime::from_secs_f64(w.until_s),
                    )
                })
                .collect(),
        )
    }

    /// Ticks swallowed by stall windows so far.
    pub fn stalled_ticks(&self) -> u64 {
        self.stalled_ticks
    }

    /// Downcasts the wrapped controller.
    pub fn inner_as<T: 'static>(&self) -> Option<&T> {
        self.inner.as_any().downcast_ref()
    }
}

impl Controller for StalledController {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn observe(&mut self, snapshot: &TelemetrySnapshot) -> Vec<Action> {
        let now = snapshot.now;
        if self
            .windows
            .iter()
            .any(|&(from, until)| from <= now && now < until)
        {
            self.stalled_ticks += 1;
            return Vec::new();
        }
        self.inner.observe(snapshot)
    }

    fn applied(
        &mut self,
        now: SimTime,
        action: &Action,
        outcome: &ic_controlplane::Outcome,
    ) -> Vec<Action> {
        self.inner.applied(now, action, outcome)
    }

    ic_controlplane::impl_controller_downcast!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_controlplane::telemetry::FaultTelemetry;

    fn snap_with_faults(
        now_s: u64,
        fleet_ratio: f64,
        errors_by_server: Vec<u64>,
    ) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::at(SimTime::from_secs(now_s));
        snap.faults = Some(FaultTelemetry {
            version: 0,
            fleet_ratio,
            error_bursts: 0,
            errors_by_server,
        });
        snap
    }

    #[test]
    fn degradation_deocs_once_on_fleet_spike() {
        let mut d = DegradationController::new(DegradationPolicy {
            fleet_errors_per_tick: 5,
            server_burst_errors: 100,
            deoc_ratio: 1.0,
            drain_cooldown_s: 60.0,
        });
        assert!(d.observe(&snap_with_faults(10, 1.2, vec![1, 1])).is_empty());
        let actions = d.observe(&snap_with_faults(20, 1.2, vec![4, 4]));
        assert_eq!(
            actions,
            vec![Action::SetFrequency {
                target: FreqTarget::Fleet,
                ratio: 1.0
            }]
        );
        assert_eq!(d.deocs(), 1);
        // Latched: an even bigger spike does not re-issue.
        assert!(d
            .observe(&snap_with_faults(30, 1.0, vec![40, 40]))
            .is_empty());
    }

    #[test]
    fn degradation_drains_and_returns_a_bursting_server() {
        let mut d = DegradationController::new(DegradationPolicy {
            fleet_errors_per_tick: 1000,
            server_burst_errors: 3,
            deoc_ratio: 1.0,
            drain_cooldown_s: 50.0,
        });
        assert!(d.observe(&snap_with_faults(10, 1.2, vec![0, 0])).is_empty());
        let actions = d.observe(&snap_with_faults(20, 1.2, vec![0, 5]));
        assert_eq!(actions, vec![Action::FailServer { server: 1 }]);
        assert_eq!(d.drains(), 1);
        // Still inside the cooldown: nothing new even if errors repeat.
        assert!(d.observe(&snap_with_faults(40, 1.2, vec![0, 9])).is_empty());
        // Past the cooldown the server returns.
        let actions = d.observe(&snap_with_faults(70, 1.2, vec![0, 9]));
        assert_eq!(actions, vec![Action::RepairServer { server: 1 }]);
    }

    #[test]
    fn degradation_skips_servers_already_down() {
        let mut d = DegradationController::new(DegradationPolicy {
            fleet_errors_per_tick: 1000,
            server_burst_errors: 2,
            deoc_ratio: 1.0,
            drain_cooldown_s: 50.0,
        });
        let mut snap = snap_with_faults(10, 1.2, vec![5, 0]);
        snap.cluster = Some(ic_controlplane::ClusterTelemetry {
            healthy_servers: 1,
            failed_servers: vec![0],
            packing_density: 1.0,
            parked_vms: Vec::new(),
        });
        assert!(d.observe(&snap).is_empty(), "server 0 is already down");
    }

    #[test]
    fn stalled_controller_swallows_ticks_in_window() {
        struct Counter(u32);
        impl Controller for Counter {
            fn name(&self) -> &'static str {
                "counter"
            }
            fn observe(&mut self, _: &TelemetrySnapshot) -> Vec<Action> {
                self.0 += 1;
                vec![Action::SetShare { share: 1.0 }]
            }
            ic_controlplane::impl_controller_downcast!();
        }
        let mut stalled = StalledController::new(
            Box::new(Counter(0)),
            vec![(SimTime::from_secs(10), SimTime::from_secs(20))],
        );
        assert_eq!(stalled.name(), "counter");
        assert_eq!(
            stalled
                .observe(&TelemetrySnapshot::at(SimTime::from_secs(5)))
                .len(),
            1
        );
        assert!(stalled
            .observe(&TelemetrySnapshot::at(SimTime::from_secs(10)))
            .is_empty());
        assert!(stalled
            .observe(&TelemetrySnapshot::at(SimTime::from_secs(19)))
            .is_empty());
        assert_eq!(stalled.stalled_ticks(), 2);
        // Window end is exclusive.
        assert_eq!(
            stalled
                .observe(&TelemetrySnapshot::at(SimTime::from_secs(20)))
                .len(),
            1
        );
        let inner = stalled.inner_as::<Counter>().expect("downcast");
        assert_eq!(inner.0, 2);
    }
}
