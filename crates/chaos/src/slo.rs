//! The SLO scorecard: what the faults cost the service.
//!
//! A fault run is only interesting if its damage is measured the way
//! an operator would: availability (server-seconds lost), latency-SLO
//! breach minutes (how many wall-clock minutes the P95/P99 exceeded
//! the objective), and how many evicted VMs made it back. The
//! scorecard is computed once from the run's timestamped completion
//! log plus the world's fault accounting, and lands in the experiment
//! record.

/// Latency objectives, seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySlo {
    /// The P95 objective.
    pub p95_s: f64,
    /// The P99 objective.
    pub p99_s: f64,
}

/// Everything the scorecard needs from one fleet run.
#[derive(Debug, Clone)]
pub struct SloInputs<'a> {
    /// `(completion time s, latency s)` for every completed request.
    pub completions: &'a [(f64, f64)],
    /// Run horizon, seconds.
    pub horizon_s: f64,
    /// Fleet availability over the horizon, `[0, 1]`.
    pub availability: f64,
    /// Server failures injected/applied.
    pub failures: u64,
    /// Evicted VMs successfully re-placed (failed-then-recovered).
    pub recovered_vms: u64,
    /// Correctable-error bursts injected.
    pub error_bursts: u64,
    /// Total correctable errors across the fleet.
    pub errors_total: u64,
}

/// The per-fleet damage report.
#[derive(Debug, Clone, PartialEq)]
pub struct SloScorecard {
    /// Fleet availability over the horizon.
    pub availability: f64,
    /// Server failures applied.
    pub failures: u64,
    /// Evicted VMs successfully re-placed.
    pub recovered_vms: u64,
    /// Correctable-error bursts injected.
    pub error_bursts: u64,
    /// Total correctable errors.
    pub errors_total: u64,
    /// Requests completed.
    pub completed: u64,
    /// Whole-run P95 latency, seconds (nearest rank).
    pub p95_latency_s: f64,
    /// Whole-run P99 latency, seconds (nearest rank).
    pub p99_latency_s: f64,
    /// Minutes whose per-minute P95 exceeded the objective.
    pub p95_breach_min: f64,
    /// Minutes whose per-minute P99 exceeded the objective.
    pub p99_breach_min: f64,
}

/// Nearest-rank percentile; `q` in `(0, 1)`. Empty input reports 0.
fn percentile(latencies: &mut [f64], q: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let n = latencies.len();
    let rank = (((q * n as f64).ceil() as usize).max(1) - 1).min(n - 1);
    let (_, &mut value, _) = latencies.select_nth_unstable_by(rank, f64::total_cmp);
    value
}

impl SloScorecard {
    /// Scores one run. Completions are bucketed into whole minutes of
    /// the horizon; a minute with no completions while demand exists is
    /// not counted as a breach (there is nothing to measure), which
    /// keeps the metric conservative.
    pub fn compute(inputs: &SloInputs<'_>, slo: &LatencySlo) -> Self {
        let mut all: Vec<f64> = inputs.completions.iter().map(|&(_, lat)| lat).collect();
        let p95_latency_s = percentile(&mut all, 0.95);
        let p99_latency_s = percentile(&mut all, 0.99);

        let minutes = (inputs.horizon_s / 60.0).ceil().max(0.0) as usize;
        let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); minutes];
        for &(at_s, lat_s) in inputs.completions {
            let idx = ((at_s / 60.0) as usize).min(minutes.saturating_sub(1));
            if minutes > 0 {
                buckets[idx].push(lat_s);
            }
        }
        let mut p95_breach_min = 0.0;
        let mut p99_breach_min = 0.0;
        for bucket in &mut buckets {
            if bucket.is_empty() {
                continue;
            }
            if percentile(bucket, 0.95) > slo.p95_s {
                p95_breach_min += 1.0;
            }
            if percentile(bucket, 0.99) > slo.p99_s {
                p99_breach_min += 1.0;
            }
        }

        SloScorecard {
            availability: inputs.availability,
            failures: inputs.failures,
            recovered_vms: inputs.recovered_vms,
            error_bursts: inputs.error_bursts,
            errors_total: inputs.errors_total,
            completed: inputs.completions.len() as u64,
            p95_latency_s,
            p99_latency_s,
            p95_breach_min,
            p99_breach_min,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(completions: &[(f64, f64)], horizon_s: f64) -> SloInputs<'_> {
        SloInputs {
            completions,
            horizon_s,
            availability: 0.97,
            failures: 3,
            recovered_vms: 5,
            error_bursts: 7,
            errors_total: 21,
        }
    }

    #[test]
    fn breach_minutes_count_only_breaching_buckets() {
        // Minutes 0–2 healthy (10 ms), minute 3 degraded (500 ms).
        let mut completions = Vec::new();
        for minute in 0..4u32 {
            for i in 0..100u32 {
                let t = minute as f64 * 60.0 + i as f64 * 0.5;
                let lat = if minute == 3 { 0.5 } else { 0.01 };
                completions.push((t, lat));
            }
        }
        let slo = LatencySlo {
            p95_s: 0.1,
            p99_s: 0.05,
        };
        let card = SloScorecard::compute(&inputs(&completions, 240.0), &slo);
        assert_eq!(card.p95_breach_min, 1.0);
        // P99 objective is tighter but still only minute 3 breaches.
        assert_eq!(card.p99_breach_min, 1.0);
        assert_eq!(card.completed, 400);
        assert_eq!(card.availability, 0.97);
        assert_eq!(card.failures, 3);
        assert_eq!(card.recovered_vms, 5);
        // Whole-run percentiles: 3/4 of traffic at 10 ms, the P95 lands
        // in the degraded tail.
        assert!(card.p95_latency_s > 0.1);
    }

    #[test]
    fn empty_run_scores_zero_latency() {
        let slo = LatencySlo {
            p95_s: 0.1,
            p99_s: 0.2,
        };
        let card = SloScorecard::compute(&inputs(&[], 120.0), &slo);
        assert_eq!(card.completed, 0);
        assert_eq!(card.p95_latency_s, 0.0);
        assert_eq!(card.p95_breach_min, 0.0);
        assert_eq!(card.p99_breach_min, 0.0);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let mut lat: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&mut lat, 0.95), 95.0);
        assert_eq!(percentile(&mut lat, 0.99), 99.0);
        let mut single = vec![4.2];
        assert_eq!(percentile(&mut single, 0.95), 4.2);
    }

    #[test]
    fn late_completions_clamp_into_the_last_bucket() {
        // A completion stamped exactly at the horizon must not panic.
        let completions = vec![(120.0, 9.9), (119.0, 9.9)];
        let slo = LatencySlo {
            p95_s: 0.1,
            p99_s: 0.1,
        };
        let card = SloScorecard::compute(&inputs(&completions, 120.0), &slo);
        assert_eq!(card.p95_breach_min, 1.0);
    }
}
