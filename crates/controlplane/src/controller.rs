//! The [`Controller`] and [`World`] traits — the two halves of the
//! runtime.
//!
//! A controller is a pure decision loop: it observes a
//! [`TelemetrySnapshot`] and returns [`Action`]s. A world owns the
//! simulated state (workload sim, cluster, power model) and knows how
//! to apply actions and assemble telemetry. The
//! [`crate::ControlPlane`] sits between them, ticking each registered
//! controller at its own cadence off one shared clock.

use crate::action::{Action, Outcome};
use crate::telemetry::TelemetrySnapshot;
use ic_sim::time::SimTime;
use std::any::Any;
use std::fmt;

/// Stamps the [`Controller::as_any`] / [`Controller::as_any_mut`]
/// downcast plumbing into a `Controller` impl block.
///
/// Every concrete controller needs the same two-line identity pair so
/// compositions can reach it through `dyn Controller`; write
/// `ic_controlplane::impl_controller_downcast!();` inside the impl
/// instead of repeating them.
#[macro_export]
macro_rules! impl_controller_downcast {
    () => {
        fn as_any(&self) -> &dyn ::std::any::Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn ::std::any::Any {
            self
        }
    };
}

/// A control loop: observe shared telemetry, decide typed actions.
///
/// Implementations must be deterministic functions of their own state
/// and the snapshot — no wall clock, no ambient randomness — so a
/// composed run is byte-identical for a given seed regardless of how
/// many `ic-par` workers execute sibling runs.
pub trait Controller {
    /// Stable short name, used in traces and tick reports.
    fn name(&self) -> &'static str;

    /// One control decision: read the snapshot, return actions in the
    /// order they must be applied.
    fn observe(&mut self, snapshot: &TelemetrySnapshot) -> Vec<Action>;

    /// Notification that `action` (issued by this controller, possibly
    /// at an earlier tick for deferred actions like scale-out) was
    /// applied with `outcome`. May return immediate follow-up actions;
    /// follow-ups are applied once and do **not** recurse.
    fn applied(&mut self, now: SimTime, action: &Action, outcome: &Outcome) -> Vec<Action> {
        let _ = (now, action, outcome);
        Vec::new()
    }

    /// Downcast support so compositions can reach a concrete
    /// controller (e.g. the runner reading `AutoScaler` window state).
    /// Implement with [`impl_controller_downcast!`].
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support. Implement with
    /// [`impl_controller_downcast!`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// What one tick did, handed to [`World::post_tick`] so the world can
/// record per-window accumulators (series, power integrals, flight
/// windows) exactly where the old bespoke loops did.
#[derive(Debug, Clone)]
pub struct TickReport {
    /// The tick's simulation time.
    pub at: SimTime,
    /// The ticked controller's [`Controller::name`].
    pub controller: &'static str,
    /// The previous tick time of this controller (window start).
    pub window_start: SimTime,
    /// Actions the controller decided this tick (before follow-ups).
    pub decided: usize,
}

impl fmt::Display for TickReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={:.1}s {}: {} action(s) over [{:.1}s, {:.1}s)",
            self.at.as_secs_f64(),
            self.controller,
            self.decided,
            self.window_start.as_secs_f64(),
            self.at.as_secs_f64(),
        )
    }
}

/// The simulated world a [`crate::ControlPlane`] drives: one clock,
/// every subsystem advanced together, every action funneled through
/// [`World::apply`].
pub trait World {
    /// Current simulation time of the underlying state.
    fn now(&self) -> SimTime;

    /// Advances the underlying simulation(s) to `t`.
    fn advance_to(&mut self, t: SimTime);

    /// Hook called at the *start* of a tick scheduled for `tick_at`,
    /// **before** the world advances — i.e. while [`World::now`] still
    /// reads the previous tick time. Worlds use it to apply exogenous
    /// inputs (load schedules) exactly as the old hand-written loops
    /// did between ticks.
    fn pre_tick(&mut self, tick_at: SimTime) {
        let _ = tick_at;
    }

    /// Refreshes and returns the shared snapshot at `now`.
    ///
    /// Worlds keep the snapshot as persistent state and update it
    /// incrementally (dirty-tracked power/cluster sections, reusable VM
    /// row buffers), so the returned borrow must be bitwise-identical
    /// to a from-scratch rebuild at the same instant.
    fn telemetry(&mut self, now: SimTime) -> &TelemetrySnapshot;

    /// Applies one action at `now` on behalf of `source` (a controller
    /// name, for traces).
    fn apply(&mut self, now: SimTime, source: &'static str, action: &Action) -> Outcome;

    /// Matures a pending scale-out at `now`: create the VM and report
    /// it. Called by the runtime when a deferred [`Action::ScaleOut`]
    /// comes due, *before* the tick's telemetry is assembled, so the
    /// newborn VM is sampled at its creation tick.
    fn complete_scale_out(&mut self, now: SimTime) -> Outcome;

    /// Hook called after a controller's tick fully applied, with the
    /// controller itself (for downcasting) and the tick report.
    fn post_tick(&mut self, now: SimTime, controller: &dyn Controller, report: &TickReport) {
        let _ = (now, controller, report);
    }
}
