//! Typed control actions and their outcomes.
//!
//! A [`crate::Controller`] never mutates the world directly: it returns
//! [`Action`] values from `observe`, and the [`crate::ControlPlane`]
//! applies them through the [`crate::World`] in decision order. Keeping
//! the verbs typed (instead of closures) makes every composed run
//! auditable — the tick report records exactly which actions fired —
//! and keeps controllers trivially serializable and replayable.

use ic_sim::time::{SimDuration, SimTime};

/// What a frequency change applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreqTarget {
    /// Every active VM / the whole managed fleet.
    Fleet,
    /// One VM by id.
    Vm(u64),
}

/// A control decision, applied by the [`crate::World`] at the tick's
/// simulation time.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Provision one more VM; it matures `latency` after the decision
    /// tick, degrading existing VMs by `interference` until then.
    ScaleOut {
        /// Provisioning latency before the VM serves traffic.
        latency: SimDuration,
        /// Fractional slowdown imposed on peers while provisioning
        /// (0 = none).
        interference: f64,
    },
    /// Retire the VM with this id.
    ScaleIn {
        /// The VM to retire.
        vm: u64,
    },
    /// Set the clock-frequency ratio (1.0 = base) on `target`.
    SetFrequency {
        /// Fleet-wide or a single VM.
        target: FreqTarget,
        /// Frequency as a ratio of base (e.g. 1.12 = +12%).
        ratio: f64,
    },
    /// Set every active VM's CPU share (0, 1].
    SetShare {
        /// The share each VM may use of its vcores.
        share: f64,
    },
    /// Grant a power domain (socket/server) a wattage budget.
    GrantPower {
        /// The power domain id.
        domain: u64,
        /// Granted watts.
        watts: f64,
    },
    /// Revoke a previous grant, returning the domain to its floor.
    RevokePower {
        /// The power domain id.
        domain: u64,
    },
    /// Re-place a parked (failed-over but unplaced) VM.
    Migrate {
        /// The VM to re-place.
        vm: u64,
    },
    /// Inject a server failure (fault injection / chaos controllers).
    FailServer {
        /// Server index in the cluster.
        server: usize,
    },
    /// Repair a previously failed server.
    RepairServer {
        /// Server index in the cluster.
        server: usize,
    },
    /// Record a burst of correctable errors against a server (fault
    /// injection). The world only bumps its fault-telemetry counters;
    /// responding (de-overclocking, draining) is a controller's job.
    InjectErrorBurst {
        /// Server index in the cluster.
        server: usize,
        /// Correctable errors in the burst.
        count: u64,
    },
    /// Serve every controller a stale (frozen) telemetry snapshot until
    /// the given instant (control-plane fault injection).
    FreezeTelemetry {
        /// When telemetry thaws.
        until: SimTime,
    },
    /// Hide one VM's telemetry row until the given instant (sensor
    /// dropout fault injection).
    DropVmSensor {
        /// The VM whose sensor goes dark.
        vm: u64,
        /// When the sensor comes back.
        until: SimTime,
    },
}

impl Action {
    /// Stable lowercase verb for traces and tick reports.
    pub fn verb(&self) -> &'static str {
        match self {
            Action::ScaleOut { .. } => "scale_out",
            Action::ScaleIn { .. } => "scale_in",
            Action::SetFrequency { .. } => "set_frequency",
            Action::SetShare { .. } => "set_share",
            Action::GrantPower { .. } => "grant_power",
            Action::RevokePower { .. } => "revoke_power",
            Action::Migrate { .. } => "migrate",
            Action::FailServer { .. } => "fail_server",
            Action::RepairServer { .. } => "repair_server",
            Action::InjectErrorBurst { .. } => "inject_error_burst",
            Action::FreezeTelemetry { .. } => "freeze_telemetry",
            Action::DropVmSensor { .. } => "drop_vm_sensor",
        }
    }
}

/// What happened when the world applied an [`Action`].
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The action took effect; nothing further to report.
    Applied,
    /// A scale-out matured (or a migrate landed) as this VM.
    VmCreated {
        /// The new VM's id.
        vm: u64,
    },
    /// A scale-in retired this VM.
    VmRemoved {
        /// The retired VM's id.
        vm: u64,
    },
    /// A power grant was recorded for this domain.
    PowerGranted {
        /// The power domain id.
        domain: u64,
        /// Granted watts.
        watts: f64,
    },
    /// A server failure was absorbed.
    FailedOver {
        /// VMs re-created on healthy servers.
        recreated: usize,
        /// VMs that could not be placed (parked).
        unplaced: usize,
    },
    /// A parked VM found a new home.
    Migrated {
        /// The VM that moved.
        vm: u64,
        /// The hosting server index.
        to: usize,
    },
    /// The world declined the action (capacity, unknown id, …).
    Rejected {
        /// Why it was declined.
        reason: &'static str,
    },
}

impl Outcome {
    /// `true` unless the world declined the action.
    pub fn accepted(&self) -> bool {
        !matches!(self, Outcome::Rejected { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_are_stable() {
        assert_eq!(
            Action::ScaleOut {
                latency: SimDuration::from_secs(60),
                interference: 0.3
            }
            .verb(),
            "scale_out"
        );
        assert_eq!(Action::ScaleIn { vm: 1 }.verb(), "scale_in");
        assert_eq!(
            Action::SetFrequency {
                target: FreqTarget::Fleet,
                ratio: 1.1
            }
            .verb(),
            "set_frequency"
        );
        assert_eq!(Action::FailServer { server: 0 }.verb(), "fail_server");
    }

    #[test]
    fn rejection_is_the_only_unaccepted_outcome() {
        assert!(Outcome::Applied.accepted());
        assert!(Outcome::VmCreated { vm: 0 }.accepted());
        assert!(!Outcome::Rejected { reason: "full" }.accepted());
    }
}
