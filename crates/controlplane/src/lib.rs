//! `ic-controlplane`: the unified control-plane runtime.
//!
//! The paper's contribution (Fig. 14) is a *control plane*: auto-scaling,
//! RAPL-style power capping, overclock governance, and failure-tolerant
//! placement all reacting to the same telemetry stream. This crate is
//! that composition layer for the reproduction:
//!
//! * [`Controller`] — one trait for every control loop:
//!   `observe(&TelemetrySnapshot) → Vec<Action>`, plus an `applied`
//!   callback for deferred actuations (scale-out latency).
//! * [`Action`] / [`Outcome`] — the typed verb set: scale out/in, set
//!   frequency, grant/revoke power, migrate, fail/repair a server.
//! * [`TelemetrySnapshot`] — the per-tick telemetry bus, assembled by a
//!   [`World`] from VM hardware counters (ic-workloads/ic-telemetry),
//!   power-domain state (ic-power), and cluster placement (ic-cluster).
//! * [`ControlPlane`] — the scheduler: N controllers at independent
//!   cadences, each tick a first-class `ic-sim` event on one clock, so
//!   interleaving is deterministic and a composed run is byte-identical
//!   under `ic-par` fan-out at any worker count.
//! * [`controllers`] — ports of the previously free-standing loops:
//!   overclock governor (ic-core), priority capping (ic-power), a
//!   scripted fault injector, and a failover/migration controller.
//! * [`fleet`] — [`fleet::FleetWorld`]: the composed world wiring a
//!   [`ic_workloads::mgk::ClientServerSim`], an [`ic_cluster`] placement
//!   fleet, and a power-domain model into one [`World`] for end-to-end
//!   "asc + capping + governor + failure" experiments.
//!
//! The `AutoScaler` itself lives in `ic-autoscale` (which depends on
//! this crate and implements [`Controller`] for it); the old
//! `Runner` harness is now a thin [`ControlPlane`] composition.

pub mod action;
pub mod controller;
pub mod controllers;
pub mod fleet;
pub mod plane;
pub mod telemetry;

pub use action::{Action, FreqTarget, Outcome};
pub use controller::{Controller, TickReport, World};
pub use controllers::ScriptError;
pub use fleet::{DomainSpec, FleetConfig, FleetConfigBuilder, FleetWorld, PowerModelSpec};
pub use plane::{ControlPlane, ControllerId, FaultPlan};
pub use telemetry::{
    ClusterTelemetry, DomainPower, FaultTelemetry, PowerTelemetry, TelemetrySnapshot, VmTelemetry,
};
