//! Worlds over [`ClientServerSim`]: shared actuation helpers plus the
//! composed [`FleetWorld`].
//!
//! The free functions here — [`sim_snapshot`], [`apply_to_sim`],
//! [`sim_complete_scale_out`] — are the one implementation of "how a
//! typed [`Action`] lands on the client-server workload sim". The ASC
//! runner's world (in `ic-autoscale`) and the composed [`FleetWorld`]
//! both delegate to them, so scale-out interference, scale-in victim
//! selection, and frequency propagation behave identically everywhere.

use crate::action::{Action, FreqTarget, Outcome};
use crate::controller::World;
use crate::telemetry::VmTelemetry;
use crate::telemetry::{
    ClusterTelemetry, DomainPower, FaultTelemetry, PowerTelemetry, TelemetrySnapshot,
};
use ic_cluster::cluster::Cluster;
use ic_cluster::placement::{Oversubscription, PlacementPolicy};
use ic_cluster::server::ServerSpec;
use ic_cluster::vm::{VmId, VmSpec};
use ic_power::batch::BatchPoint;
use ic_power::cache::SteadyStateCache;
use ic_power::capping::Priority;
use ic_power::cpu::{CpuSku, SteadyState};
use ic_power::units::Frequency;
use ic_scenario::FaultConfig;
use ic_sim::rng::StreamVersion;
use ic_sim::time::SimTime;
use ic_thermal::junction::ThermalInterface;
use ic_workloads::mgk::ClientServerSim;
use std::collections::BTreeMap;

/// Assembles the per-VM telemetry section from `sim` at `now`: one
/// [`VmTelemetry`] per active VM, in the sim's stable activation order
/// (the same order `AutoScaler` has always iterated).
pub fn sim_snapshot(sim: &ClientServerSim, now: SimTime) -> TelemetrySnapshot {
    let mut snapshot = TelemetrySnapshot::at(now);
    sim_snapshot_into(sim, now, &mut snapshot);
    snapshot
}

/// Buffer-reusing form of [`sim_snapshot`]: stamps `now` and refills
/// `out.vms` in place (every VM row carries the tick's wall-clock
/// sample, so the rows are rebuilt each tick — but into the snapshot's
/// existing buffer, with no per-tick allocation once it has grown to
/// the fleet's high-water mark). The power and cluster sections are
/// left untouched; incremental worlds maintain those on actuation.
pub fn sim_snapshot_into(sim: &ClientServerSim, now: SimTime, out: &mut TelemetrySnapshot) {
    out.now = now;
    out.vms.clear();
    for &vm in sim.active_ids() {
        out.vms.push(VmTelemetry {
            vm: vm as u64,
            sample: sim.sample(vm),
            queue_depth: sim.queue_depth(vm),
            vcores: sim.vcores(vm),
        });
    }
}

/// Applies one action to `sim`. Power and cluster verbs are not this
/// sim's to handle and come back [`Outcome::Rejected`]; composed worlds
/// route those to their power/cluster models before falling through
/// here.
pub fn apply_to_sim(sim: &mut ClientServerSim, action: &Action) -> Outcome {
    match action {
        Action::ScaleOut { interference, .. } => {
            // The in-flight VM creation (image transfer, network
            // traffic) eats into the serving VMs' capacity.
            sim.set_share_all(1.0 - interference);
            Outcome::Applied
        }
        Action::ScaleIn { vm } => {
            if sim.remove_vm(*vm as usize) {
                Outcome::VmRemoved { vm: *vm }
            } else {
                Outcome::Rejected {
                    reason: "no such vm",
                }
            }
        }
        Action::SetFrequency { target, ratio } => {
            match target {
                FreqTarget::Fleet => sim.set_freq_ratio_all(*ratio),
                FreqTarget::Vm(vm) => sim.set_freq_ratio(*vm as usize, *ratio),
            }
            Outcome::Applied
        }
        Action::SetShare { share } => {
            sim.set_share_all(*share);
            Outcome::Applied
        }
        Action::GrantPower { .. }
        | Action::RevokePower { .. }
        | Action::Migrate { .. }
        | Action::FailServer { .. }
        | Action::RepairServer { .. }
        | Action::InjectErrorBurst { .. }
        | Action::FreezeTelemetry { .. }
        | Action::DropVmSensor { .. } => Outcome::Rejected {
            reason: "not modeled by this world",
        },
    }
}

/// Matures a scale-out on `sim`: activate the VM and report its id.
pub fn sim_complete_scale_out(sim: &mut ClientServerSim) -> Outcome {
    let vm = sim.add_vm();
    Outcome::VmCreated { vm: vm as u64 }
}

/// One power domain's static shape in a [`FleetWorld`].
#[derive(Debug, Clone, Copy)]
pub struct DomainSpec {
    /// Domain id (socket or server index).
    pub domain: u64,
    /// Capping priority under contention.
    pub priority: Priority,
    /// Watts the domain cannot run below (base-frequency draw).
    pub floor_w: f64,
    /// Watts the domain asks for at full overclock.
    pub demand_w: f64,
}

/// A physical power model for the fleet's domains: instead of the
/// static [`DomainSpec::demand_w`], each domain's demand is the solved
/// steady-state socket power at the fleet's commanded frequency,
/// through one of a small set of thermal-interface *bins* (domain `i`
/// dissipates through bin `i % bins.len()` — deterministic
/// heterogeneity, e.g. tank position changing the junction-to-coolant
/// resistance). A fleet-wide `SetFrequency` re-solves every domain,
/// but only `bins.len()` operating points are distinct, so the batch
/// solve is one structure-of-arrays pass plus cache hits.
#[derive(Debug, Clone)]
pub struct PowerModelSpec {
    /// The socket populated in every domain.
    pub sku: CpuSku,
    /// Thermal-interface heterogeneity bins; must be non-empty.
    pub bins: Vec<ThermalInterface>,
    /// The frequency commanded by ratio 1.0, GHz.
    pub base_ghz: f64,
}

/// Configuration of the composed fleet world.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Workload RNG seed.
    pub seed: u64,
    /// Mean per-request core demand, seconds.
    pub service_mean_s: f64,
    /// Service-time squared coefficient of variation.
    pub service_scv: f64,
    /// Virtual cores per server VM.
    pub vcores_per_vm: u32,
    /// Counter stall fraction of the workload.
    pub stall_fraction: f64,
    /// Server VMs running (and placed) at t = 0.
    pub initial_vms: usize,
    /// Piecewise-constant client load: `(start_s, qps)` steps.
    pub schedule: Vec<(f64, f64)>,
    /// Physical servers in the cluster.
    pub servers: usize,
    /// vcore oversubscription ratio (1.0 = none).
    pub oversub: f64,
    /// The placement shape of every serving VM.
    pub vm_spec: VmSpec,
    /// Provisioned power budget shared by all domains, watts.
    pub budget_w: f64,
    /// The power domains under that budget.
    pub domains: Vec<DomainSpec>,
    /// Physical demand model; `None` keeps the static
    /// [`DomainSpec::demand_w`] asks.
    pub power_model: Option<PowerModelSpec>,
    /// Sampler stream version of the workload sim.
    /// [`StreamVersion::V1`] (the default) replays the historical value
    /// sequence byte-for-byte; [`StreamVersion::V2`] runs the buffered
    /// ziggurat fast path.
    pub rng_stream: StreamVersion,
    /// Fault-injection configuration. `None` (the default) disables the
    /// fault-telemetry section entirely, so fault-free worlds are
    /// byte-identical to their pre-fault-injection behavior.
    pub faults: Option<FaultConfig>,
}

impl FleetConfig {
    /// A small composed fleet in the paper's shape.
    #[deprecated(note = "use FleetConfigBuilder::small(seed).build()")]
    pub fn small(seed: u64) -> Self {
        FleetConfigBuilder::small(seed).build()
    }
}

/// Builder for [`FleetConfig`].
///
/// Starts from the paper-shaped `small` fleet (the Table XI
/// client-server workload on four-vcore VMs, an Open Compute cluster,
/// and two power domains — one critical, one batch — under a budget
/// that cannot satisfy both full asks) and lets call sites override
/// exactly the fields they care about:
///
/// ```
/// use ic_controlplane::fleet::FleetConfigBuilder;
/// let config = FleetConfigBuilder::small(42).initial_vms(3).build();
/// assert_eq!(config.seed, 42);
/// ```
#[derive(Debug, Clone)]
pub struct FleetConfigBuilder {
    config: FleetConfig,
}

impl FleetConfigBuilder {
    /// The paper-shaped small fleet with the given workload seed; every
    /// field can still be overridden before [`build`](Self::build).
    pub fn small(seed: u64) -> Self {
        FleetConfigBuilder {
            config: FleetConfig {
                seed,
                service_mean_s: 0.0028,
                service_scv: 2.0,
                vcores_per_vm: 4,
                stall_fraction: 0.10,
                initial_vms: 1,
                schedule: vec![(0.0, 500.0), (300.0, 1000.0), (600.0, 1500.0)],
                servers: 4,
                oversub: 1.2,
                vm_spec: VmSpec::new(4, 16.0),
                budget_w: 500.0,
                domains: vec![
                    DomainSpec {
                        domain: 0,
                        priority: Priority::Critical,
                        floor_w: 150.0,
                        demand_w: 305.0,
                    },
                    DomainSpec {
                        domain: 1,
                        priority: Priority::Batch,
                        floor_w: 150.0,
                        demand_w: 305.0,
                    },
                ],
                power_model: None,
                rng_stream: StreamVersion::V1,
                faults: None,
            },
        }
    }

    /// Workload RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Mean per-request core demand, seconds.
    pub fn service_mean_s(mut self, mean_s: f64) -> Self {
        self.config.service_mean_s = mean_s;
        self
    }

    /// Service-time squared coefficient of variation.
    pub fn service_scv(mut self, scv: f64) -> Self {
        self.config.service_scv = scv;
        self
    }

    /// Virtual cores per server VM (workload sim side).
    pub fn vcores_per_vm(mut self, vcores: u32) -> Self {
        self.config.vcores_per_vm = vcores;
        self
    }

    /// Counter stall fraction of the workload.
    pub fn stall_fraction(mut self, fraction: f64) -> Self {
        self.config.stall_fraction = fraction;
        self
    }

    /// Server VMs running (and placed) at t = 0.
    pub fn initial_vms(mut self, vms: usize) -> Self {
        self.config.initial_vms = vms;
        self
    }

    /// Piecewise-constant client load: `(start_s, qps)` steps.
    pub fn schedule(mut self, schedule: Vec<(f64, f64)>) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// Physical servers in the cluster.
    pub fn servers(mut self, servers: usize) -> Self {
        self.config.servers = servers;
        self
    }

    /// vcore oversubscription ratio (1.0 = none).
    pub fn oversub(mut self, oversub: f64) -> Self {
        self.config.oversub = oversub;
        self
    }

    /// The placement shape of every serving VM.
    pub fn vm_spec(mut self, spec: VmSpec) -> Self {
        self.config.vm_spec = spec;
        self
    }

    /// Provisioned power budget shared by all domains, watts.
    pub fn budget_w(mut self, watts: f64) -> Self {
        self.config.budget_w = watts;
        self
    }

    /// The power domains under the budget (ids strictly ascending).
    pub fn domains(mut self, domains: Vec<DomainSpec>) -> Self {
        self.config.domains = domains;
        self
    }

    /// Physical demand model replacing the static domain asks.
    pub fn power_model(mut self, model: PowerModelSpec) -> Self {
        self.config.power_model = Some(model);
        self
    }

    /// Sampler stream version of the workload sim.
    pub fn rng_stream(mut self, version: StreamVersion) -> Self {
        self.config.rng_stream = version;
        self
    }

    /// Fault-injection configuration (enables the fault-telemetry
    /// section and the fault actuation verbs).
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.config.faults = Some(faults);
        self
    }

    /// The finished configuration.
    pub fn build(self) -> FleetConfig {
        self.config
    }
}

/// The composed [`World`]: the client-server workload sim, a placement
/// cluster, and a set of power domains — everything the four stock
/// controllers (auto-scaler, governor, power capper, failover) need,
/// advanced on one clock.
///
/// Serving VMs exist in both models: each live sim VM has a placement
/// in the cluster (`vm_map`). Server failures displace placements; VMs
/// the cluster cannot re-place are *parked* — removed from the serving
/// sim and listed in [`ClusterTelemetry::parked_vms`] until a
/// [`Action::Migrate`] finds them a new home.
pub struct FleetWorld {
    sim: ClientServerSim,
    cluster: Cluster,
    schedule: Vec<(f64, f64)>,
    next_step: usize,
    vm_spec: VmSpec,
    /// Live sim VM → its cluster placement, in placement order.
    vm_map: Vec<(u64, VmId)>,
    parked: Vec<u64>,
    budget_w: f64,
    domains: Vec<DomainSpec>,
    grants: BTreeMap<u64, f64>,
    /// The persistent snapshot [`World::telemetry`] hands out. VM rows
    /// are refilled (allocation-free) each tick; the power section is
    /// updated in place at actuation time; the cluster section is
    /// recomputed only when `cluster_dirty` says placement state moved.
    snap: TelemetrySnapshot,
    cluster_dirty: bool,
    power_model: Option<FleetPowerModel>,
    /// Fault-injection runtime state, present iff the config carried a
    /// [`FaultConfig`].
    faults: Option<FaultState>,
    /// Per-server failure start times (for any `FailServer`, scripted
    /// or injected), settled into `downtime_s` on repair.
    down_since: Vec<Option<SimTime>>,
    /// Total completed server downtime, seconds (open failure intervals
    /// are settled by [`FleetWorld::downtime_s`]).
    downtime_s: f64,
    /// Accepted `FailServer` transitions (healthy → failed).
    failures_applied: u64,
    /// Parked VMs successfully migrated back into service.
    recovered_vms: u64,
}

/// Runtime state of fault injection (the actuation side; the event
/// *sources* — wear process, fault plan — live outside the world).
struct FaultState {
    config: FaultConfig,
    /// Authoritative copies of the fault-telemetry fields; the snapshot
    /// section mirrors these at actuation time and
    /// [`FleetWorld::recompute_snapshot`] rebuilds from them.
    version: u64,
    fleet_ratio: f64,
    error_bursts: u64,
    errors_by_server: Vec<u64>,
    /// Active sensor dropouts: `(vm, until)`.
    dropouts: Vec<(u64, SimTime)>,
    /// Stale-telemetry freeze: the snapshot cloned at freeze time,
    /// content served unchanged (clock refreshed) until the instant.
    frozen: Option<(SimTime, Box<TelemetrySnapshot>)>,
}

impl FaultState {
    fn new(config: FaultConfig, servers: usize) -> Self {
        FaultState {
            config,
            version: 0,
            fleet_ratio: 1.0,
            error_bursts: 0,
            errors_by_server: vec![0; servers],
            dropouts: Vec::new(),
            frozen: None,
        }
    }

    fn telemetry(&self) -> FaultTelemetry {
        FaultTelemetry {
            version: self.version,
            fleet_ratio: self.fleet_ratio,
            error_bursts: self.error_bursts,
            errors_by_server: self.errors_by_server.clone(),
        }
    }

    fn frozen_at(&self, now: SimTime) -> Option<&TelemetrySnapshot> {
        match &self.frozen {
            Some((until, snap)) if now < *until => Some(snap),
            _ => None,
        }
    }
}

/// Runtime state of the optional physical demand model.
struct FleetPowerModel {
    sku: CpuSku,
    bins: Vec<ThermalInterface>,
    base_ghz: f64,
    cache: SteadyStateCache,
    /// The fleet frequency ratio currently reflected in the demand
    /// rows (so a from-scratch recompute can re-derive them).
    cur_ratio: f64,
    /// Fleet-wide demand refreshes performed (one per distinct
    /// commanded ratio that reached the model).
    refreshes: u64,
    /// Scratch for batch solves.
    solved: Vec<SteadyState>,
}

impl FleetPowerModel {
    /// Batch-solves the per-bin steady states at `ratio` into
    /// `self.solved` (one entry per heterogeneity bin).
    fn solve_bins(&mut self, ratio: f64) {
        let f = Frequency::from_ghz(self.base_ghz * ratio);
        let v = self.sku.voltage_for(f);
        let points: Vec<BatchPoint<'_>> = self
            .bins
            .iter()
            .map(|iface| BatchPoint { iface, f, v })
            .collect();
        self.solved.clear();
        self.cache
            .steady_state_batch_into(&self.sku, &points, &mut self.solved);
        self.cur_ratio = ratio;
        self.refreshes += 1;
    }

    /// The solved demand for domain index `i` (its bin's socket power).
    fn demand_for(&self, i: usize) -> f64 {
        self.solved[i % self.bins.len()].power_w
    }

    /// The demand a from-scratch recompute derives for domain `i` at
    /// the model's current ratio — the scalar cache path, bitwise equal
    /// to what [`solve_bins`](Self::solve_bins) wrote.
    fn recompute_demand_for(&self, i: usize) -> f64 {
        let f = Frequency::from_ghz(self.base_ghz * self.cur_ratio);
        let v = self.sku.voltage_for(f);
        self.cache
            .steady_state(&self.sku, &self.bins[i % self.bins.len()], f, v)
            .power_w
    }
}

impl FleetWorld {
    /// Builds the world and places the initial VMs.
    ///
    /// # Panics
    ///
    /// Panics if the cluster cannot hold `initial_vms`.
    pub fn new(config: FleetConfig) -> Self {
        let mut sim = ClientServerSim::with_stream_version(
            config.seed,
            config.service_mean_s,
            config.service_scv,
            config.vcores_per_vm,
            config.stall_fraction,
            config.rng_stream,
        );
        let mut cluster = Cluster::new(
            vec![ServerSpec::open_compute(); config.servers],
            PlacementPolicy::WorstFit,
            if config.oversub > 1.0 {
                Oversubscription::ratio(config.oversub)
            } else {
                Oversubscription::none()
            },
        );
        let mut vm_map = Vec::new();
        for _ in 0..config.initial_vms {
            let vm = sim.add_vm() as u64;
            let cid = cluster
                .create_vm(SimTime::ZERO, config.vm_spec)
                .expect("cluster holds the initial fleet");
            vm_map.push((vm, cid));
        }
        // In-place power-row updates binary-search by domain id, so the
        // spec order must be ascending (it doubles as the stable
        // telemetry order).
        assert!(
            config.domains.windows(2).all(|w| w[0].domain < w[1].domain),
            "domain ids must be strictly ascending"
        );
        let mut power_model = config.power_model.map(|spec| {
            assert!(!spec.bins.is_empty(), "power model needs at least one bin");
            FleetPowerModel {
                sku: spec.sku,
                bins: spec.bins,
                base_ghz: spec.base_ghz,
                cache: SteadyStateCache::new(),
                cur_ratio: 1.0,
                refreshes: 0,
                solved: Vec::new(),
            }
        });
        if let Some(model) = &mut power_model {
            model.solve_bins(1.0);
            model.refreshes = 0; // the seed solve is not an actuation
        }
        let mut snap = TelemetrySnapshot::at(SimTime::ZERO);
        snap.power = Some(PowerTelemetry {
            budget_w: config.budget_w,
            version: 0,
            domains: config
                .domains
                .iter()
                .enumerate()
                .map(|(i, d)| DomainPower {
                    domain: d.domain,
                    priority: d.priority,
                    floor_w: d.floor_w,
                    demand_w: power_model.as_ref().map_or(d.demand_w, |m| m.demand_for(i)),
                    granted_w: d.floor_w,
                })
                .collect(),
        });
        snap.cluster = Some(ClusterTelemetry {
            healthy_servers: 0,
            failed_servers: Vec::new(),
            packing_density: 0.0,
            parked_vms: Vec::new(),
        });
        let faults = config
            .faults
            .map(|fault_config| FaultState::new(fault_config, config.servers));
        snap.faults = faults.as_ref().map(FaultState::telemetry);
        FleetWorld {
            sim,
            cluster,
            schedule: config.schedule,
            next_step: 0,
            vm_spec: config.vm_spec,
            vm_map,
            parked: Vec::new(),
            budget_w: config.budget_w,
            domains: config.domains,
            grants: BTreeMap::new(),
            snap,
            cluster_dirty: true,
            power_model,
            faults,
            down_since: vec![None; config.servers],
            downtime_s: 0.0,
            failures_applied: 0,
            recovered_vms: 0,
        }
    }

    /// The serving workload sim.
    pub fn sim(&self) -> &ClientServerSim {
        &self.sim
    }

    /// The serving workload sim, mutably — for result extraction after
    /// the horizon (draining completions, say). Mutating mid-run from
    /// outside a controller forfeits determinism guarantees.
    pub fn sim_mut(&mut self) -> &mut ClientServerSim {
        &mut self.sim
    }

    /// The placement cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// VMs evicted by failures and still awaiting placement.
    pub fn parked(&self) -> &[u64] {
        &self.parked
    }

    /// Current power grants by domain id.
    pub fn grants(&self) -> &BTreeMap<u64, f64> {
        &self.grants
    }

    /// Fleet-wide demand refreshes the power model has performed (0
    /// without a model).
    pub fn demand_refreshes(&self) -> u64 {
        self.power_model.as_ref().map_or(0, |m| m.refreshes)
    }

    /// The power model's steady-state cache counters `(hits, misses)`,
    /// `(0, 0)` without a model.
    pub fn model_cache_counters(&self) -> (u64, u64) {
        self.power_model
            .as_ref()
            .map_or((0, 0), |m| (m.cache.hits(), m.cache.misses()))
    }

    /// The fault-injection configuration, if this world has one.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.faults.as_ref().map(|f| &f.config)
    }

    /// Accepted `FailServer` transitions (healthy → failed) so far,
    /// scripted and injected alike.
    pub fn failures_applied(&self) -> u64 {
        self.failures_applied
    }

    /// Parked VMs successfully migrated back into service so far.
    pub fn recovered_vms(&self) -> u64 {
        self.recovered_vms
    }

    /// Total server downtime, seconds, with failure intervals still
    /// open at `horizon` settled against it.
    pub fn downtime_s(&self, horizon: SimTime) -> f64 {
        let open: f64 = self
            .down_since
            .iter()
            .flatten()
            .map(|t0| (horizon.as_secs_f64() - t0.as_secs_f64()).max(0.0))
            .sum();
        self.downtime_s + open
    }

    /// Fleet availability over `[0, horizon]`: the fraction of
    /// server-seconds the fleet was not failed.
    pub fn availability(&self, horizon: SimTime) -> f64 {
        let total = self.down_since.len() as f64 * horizon.as_secs_f64();
        if total <= 0.0 {
            return 1.0;
        }
        1.0 - self.downtime_s(horizon) / total
    }

    /// Rebuilds the whole snapshot from authoritative state (sim,
    /// cluster, grants map, domain specs, power model, fault state),
    /// ignoring the incrementally-maintained copy. The incremental
    /// snapshot must be bitwise-equal to this at every tick — the
    /// property tests pin that; production ticks never pay this cost.
    ///
    /// An active stale-telemetry freeze is part of the
    /// [`World::telemetry`] contract, so inside a freeze window this
    /// returns the frozen snapshot too.
    pub fn recompute_snapshot(&self, now: SimTime) -> TelemetrySnapshot {
        if let Some(frozen) = self.faults.as_ref().and_then(|f| f.frozen_at(now)) {
            // The freeze stales the *content*, not the clock:
            // controllers always know wall time, and time-difference
            // arithmetic (cooldowns, windows) must never run backwards.
            let mut snap = frozen.clone();
            snap.now = now;
            return snap;
        }
        self.recompute_snapshot_live(now)
    }

    /// The from-scratch rebuild itself, ignoring any active freeze —
    /// also what [`Action::FreezeTelemetry`] clones as the frozen view.
    fn recompute_snapshot_live(&self, now: SimTime) -> TelemetrySnapshot {
        let mut snapshot = sim_snapshot(&self.sim, now);
        if let Some(faults) = &self.faults {
            snapshot.vms.retain(|row| {
                !faults
                    .dropouts
                    .iter()
                    .any(|&(vm, until)| vm == row.vm && now < until)
            });
            snapshot.faults = Some(faults.telemetry());
        }
        snapshot.power = Some(PowerTelemetry {
            budget_w: self.budget_w,
            version: self.snap.power.as_ref().map_or(0, |p| p.version),
            domains: self
                .domains
                .iter()
                .enumerate()
                .map(|(i, d)| DomainPower {
                    domain: d.domain,
                    priority: d.priority,
                    floor_w: d.floor_w,
                    demand_w: self
                        .power_model
                        .as_ref()
                        .map_or(d.demand_w, |m| m.recompute_demand_for(i)),
                    granted_w: self.grants.get(&d.domain).copied().unwrap_or(d.floor_w),
                })
                .collect(),
        });
        let failed: Vec<usize> = self
            .cluster
            .servers()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_failed())
            .map(|(i, _)| i)
            .collect();
        snapshot.cluster = Some(ClusterTelemetry {
            healthy_servers: self.cluster.servers().len() - failed.len(),
            failed_servers: failed,
            packing_density: self.cluster.packing_density(),
            parked_vms: self.parked.clone(),
        });
        snapshot
    }

    /// Updates one power row in place (rows are in ascending domain-id
    /// order) and bumps the section version. Returns `false` for an
    /// unknown domain.
    fn set_grant_row(&mut self, domain: u64, granted_w: f64) -> bool {
        let power = self.snap.power.as_mut().expect("fleet models power");
        match power.domains.binary_search_by_key(&domain, |d| d.domain) {
            Ok(i) => {
                power.domains[i].granted_w = granted_w;
                power.version += 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Recomputes demand rows after a fleet-wide frequency change (only
    /// with a power model attached; `bins.len()` distinct solves cover
    /// the whole fleet).
    fn refresh_demands(&mut self, ratio: f64) {
        let Some(model) = &mut self.power_model else {
            return;
        };
        model.solve_bins(ratio);
        let power = self.snap.power.as_mut().expect("fleet models power");
        for (i, row) in power.domains.iter_mut().enumerate() {
            row.demand_w = model.demand_for(i);
        }
        power.version += 1;
    }

    /// Re-points `vm_map` after a failover: cluster ids that vanished
    /// were either re-created under fresh ids (matched here, in id
    /// order — the cluster allocates new ids in displacement order) or
    /// reported unplaced (handled by the caller).
    fn remap_recreated(&mut self, recreated: &[(VmId, usize)]) {
        if recreated.is_empty() {
            return;
        }
        let known: Vec<VmId> = self.vm_map.iter().map(|&(_, cid)| cid).collect();
        let mut fresh: Vec<VmId> = (0..self.cluster.servers().len())
            .flat_map(|h| self.cluster.vms_on(h))
            .map(|vm| vm.id)
            .filter(|id| !known.contains(id))
            .collect();
        fresh.sort();
        for (&(old, _), &new_id) in recreated.iter().zip(&fresh) {
            if let Some(entry) = self.vm_map.iter_mut().find(|(_, cid)| *cid == old) {
                entry.1 = new_id;
            }
        }
    }
}

impl World for FleetWorld {
    fn now(&self) -> SimTime {
        self.sim.now()
    }

    fn advance_to(&mut self, t: SimTime) {
        self.sim.advance_to(t);
    }

    fn pre_tick(&mut self, _tick_at: SimTime) {
        let t = self.sim.now();
        while self.next_step < self.schedule.len()
            && SimTime::from_secs_f64(self.schedule[self.next_step].0) <= t
        {
            self.sim.set_qps(self.schedule[self.next_step].1);
            self.next_step += 1;
        }
    }

    fn telemetry(&mut self, now: SimTime) -> &TelemetrySnapshot {
        // A stale-telemetry fault serves the frozen clone with its
        // content untouched — only the clock advances, so controller
        // time arithmetic never runs backwards. Expired freezes thaw
        // on the next read. (Checked before the borrow so the early
        // return does not pin `self.faults`.)
        let frozen_active = self
            .faults
            .as_ref()
            .is_some_and(|f| f.frozen_at(now).is_some());
        if frozen_active {
            let faults = self.faults.as_mut().expect("frozen implies fault state");
            let (_, snap) = faults.frozen.as_mut().expect("checked above");
            snap.now = now;
            return snap;
        }
        if let Some(faults) = &mut self.faults {
            faults.frozen = None;
        }
        // VM rows carry the tick's wall-clock sample, so they are
        // refilled every tick — but into the persistent buffer, with
        // no allocation at steady state. The power section was kept
        // current at actuation time; the cluster section is recomputed
        // only when placement state actually moved.
        sim_snapshot_into(&self.sim, now, &mut self.snap);
        if let Some(faults) = &mut self.faults {
            // Expired dropouts are pruned here (the only time-driven
            // fault state), so steady-state reads stay allocation-free.
            faults.dropouts.retain(|&(_, until)| now < until);
            if !faults.dropouts.is_empty() {
                let dropouts = &faults.dropouts;
                self.snap
                    .vms
                    .retain(|row| !dropouts.iter().any(|&(vm, _)| vm == row.vm));
            }
        }
        if self.cluster_dirty {
            let cluster = self.snap.cluster.as_mut().expect("fleet models placement");
            cluster.failed_servers.clear();
            cluster.failed_servers.extend(
                self.cluster
                    .servers()
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_failed())
                    .map(|(i, _)| i),
            );
            cluster.healthy_servers = self.cluster.servers().len() - cluster.failed_servers.len();
            cluster.packing_density = self.cluster.packing_density();
            cluster.parked_vms.clear();
            cluster.parked_vms.extend_from_slice(&self.parked);
            self.cluster_dirty = false;
        }
        &self.snap
    }

    fn apply(&mut self, now: SimTime, _source: &'static str, action: &Action) -> Outcome {
        match action {
            Action::ScaleIn { vm } => {
                let outcome = apply_to_sim(&mut self.sim, action);
                if outcome.accepted() {
                    if let Some(pos) = self.vm_map.iter().position(|&(v, _)| v == *vm) {
                        let (_, cid) = self.vm_map.remove(pos);
                        let _ = self.cluster.delete_vm(now, cid);
                        self.cluster_dirty = true;
                    }
                }
                outcome
            }
            Action::GrantPower { domain, watts } => {
                if self.set_grant_row(*domain, *watts) {
                    self.grants.insert(*domain, *watts);
                    Outcome::PowerGranted {
                        domain: *domain,
                        watts: *watts,
                    }
                } else {
                    Outcome::Rejected {
                        reason: "unknown power domain",
                    }
                }
            }
            Action::RevokePower { domain } => {
                if self.grants.remove(domain).is_some() {
                    let floor = self
                        .domains
                        .iter()
                        .find(|d| d.domain == *domain)
                        .map(|d| d.floor_w)
                        .expect("grant existed, so the domain does");
                    self.set_grant_row(*domain, floor);
                    Outcome::Applied
                } else {
                    Outcome::Rejected {
                        reason: "no grant to revoke",
                    }
                }
            }
            Action::FailServer { server } => match self.cluster.fail_server(now, *server) {
                Ok(report) => {
                    // Downtime accounting: only a healthy → failed
                    // transition opens an interval (failing an
                    // already-failed server is a no-op re-fail).
                    if self.down_since[*server].is_none() {
                        self.down_since[*server] = Some(now);
                        self.failures_applied += 1;
                    }
                    self.remap_recreated(&report.recreated);
                    for cid in &report.unplaced {
                        if let Some(pos) = self.vm_map.iter().position(|&(_, c)| c == *cid) {
                            let (vm, _) = self.vm_map.remove(pos);
                            self.sim.remove_vm(vm as usize);
                            self.parked.push(vm);
                        }
                    }
                    self.cluster_dirty = true;
                    Outcome::FailedOver {
                        recreated: report.recreated.len(),
                        unplaced: report.unplaced.len(),
                    }
                }
                Err(_) => Outcome::Rejected {
                    reason: "unknown server",
                },
            },
            Action::RepairServer { server } => match self.cluster.repair_server(now, *server) {
                Ok(()) => {
                    // Repairing a healthy server is an accepted no-op;
                    // only a real repair settles the open interval.
                    if let Some(t0) = self.down_since[*server].take() {
                        self.downtime_s += (now.as_secs_f64() - t0.as_secs_f64()).max(0.0);
                    }
                    self.cluster_dirty = true;
                    Outcome::Applied
                }
                Err(_) => Outcome::Rejected {
                    reason: "unknown server",
                },
            },
            Action::Migrate { vm } => {
                let Some(pos) = self.parked.iter().position(|&p| p == *vm) else {
                    return Outcome::Rejected {
                        reason: "vm is not parked",
                    };
                };
                match self.cluster.create_vm(now, self.vm_spec) {
                    Ok(cid) => {
                        self.parked.remove(pos);
                        let host = self.cluster.vm(cid).map(|v| v.host).unwrap_or(0);
                        let new_vm = self.sim.add_vm() as u64;
                        self.vm_map.push((new_vm, cid));
                        self.cluster_dirty = true;
                        self.recovered_vms += 1;
                        Outcome::Migrated {
                            vm: new_vm,
                            to: host,
                        }
                    }
                    Err(_) => Outcome::Rejected {
                        reason: "no cluster capacity",
                    },
                }
            }
            Action::SetFrequency {
                target: FreqTarget::Fleet,
                ratio,
            } => {
                self.refresh_demands(*ratio);
                if let Some(faults) = &mut self.faults {
                    if faults.fleet_ratio != *ratio {
                        faults.fleet_ratio = *ratio;
                        faults.version += 1;
                        self.snap.faults = Some(faults.telemetry());
                    }
                }
                apply_to_sim(&mut self.sim, action)
            }
            Action::InjectErrorBurst { server, count } => {
                let Some(faults) = &mut self.faults else {
                    return Outcome::Rejected {
                        reason: "fault injection disabled",
                    };
                };
                let Some(slot) = faults.errors_by_server.get_mut(*server) else {
                    return Outcome::Rejected {
                        reason: "unknown server",
                    };
                };
                *slot += count;
                faults.error_bursts += 1;
                faults.version += 1;
                self.snap.faults = Some(faults.telemetry());
                Outcome::Applied
            }
            Action::FreezeTelemetry { until } => {
                if self.faults.is_none() {
                    return Outcome::Rejected {
                        reason: "fault injection disabled",
                    };
                }
                // Capture telemetry exactly as a tick at `now` would
                // see it, then serve that clone until the thaw.
                let frozen = Box::new(self.recompute_snapshot_live(now));
                let faults = self.faults.as_mut().expect("checked above");
                faults.frozen = Some((*until, frozen));
                Outcome::Applied
            }
            Action::DropVmSensor { vm, until } => {
                let Some(faults) = &mut self.faults else {
                    return Outcome::Rejected {
                        reason: "fault injection disabled",
                    };
                };
                faults.dropouts.push((*vm, *until));
                Outcome::Applied
            }
            _ => apply_to_sim(&mut self.sim, action),
        }
    }

    fn complete_scale_out(&mut self, now: SimTime) -> Outcome {
        match self.cluster.create_vm(now, self.vm_spec) {
            Ok(cid) => {
                let vm = self.sim.add_vm() as u64;
                self.vm_map.push((vm, cid));
                self.cluster_dirty = true;
                Outcome::VmCreated { vm }
            }
            Err(_) => Outcome::Rejected {
                reason: "no cluster capacity",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_sim::time::SimDuration;

    fn sim() -> ClientServerSim {
        let mut sim = ClientServerSim::new(1, 0.0028, 1.5, 4, 0.1);
        sim.add_vm();
        sim.set_qps(500.0);
        sim
    }

    #[test]
    fn snapshot_lists_vms_in_activation_order() {
        let mut sim = sim();
        sim.add_vm();
        sim.advance_to(SimTime::from_secs(3));
        let snap = sim_snapshot(&sim, sim.now());
        let ids: Vec<u64> = snap.vms.iter().map(|v| v.vm).collect();
        assert_eq!(
            ids,
            sim.active_vms()
                .iter()
                .map(|&v| v as u64)
                .collect::<Vec<_>>()
        );
        assert!(snap.vms.iter().all(|v| v.vcores == 4));
    }

    #[test]
    fn scale_verbs_land_on_the_sim() {
        let mut sim = sim();
        assert_eq!(
            apply_to_sim(
                &mut sim,
                &Action::ScaleOut {
                    latency: SimDuration::from_secs(60),
                    interference: 0.32
                }
            ),
            Outcome::Applied
        );
        let created = sim_complete_scale_out(&mut sim);
        let Outcome::VmCreated { vm } = created else {
            panic!("expected VmCreated, got {created:?}");
        };
        assert_eq!(
            apply_to_sim(
                &mut sim,
                &Action::SetFrequency {
                    target: FreqTarget::Vm(vm),
                    ratio: 1.2
                }
            ),
            Outcome::Applied
        );
        assert!((sim.freq_ratio(vm as usize) - 1.2).abs() < 1e-12);
        assert_eq!(
            apply_to_sim(&mut sim, &Action::ScaleIn { vm }),
            Outcome::VmRemoved { vm }
        );
        assert_eq!(
            apply_to_sim(&mut sim, &Action::ScaleIn { vm }),
            Outcome::Rejected {
                reason: "no such vm"
            }
        );
    }

    #[test]
    fn fleet_world_serves_power_and_cluster_telemetry() {
        let mut world = FleetWorld::new(FleetConfigBuilder::small(3).build());
        let snap = world.telemetry(SimTime::ZERO).clone();
        assert_eq!(snap.vms.len(), 1);
        let power = snap.power.expect("fleet models power");
        assert_eq!(power.domains.len(), 2);
        // Ungranted domains report their floor.
        assert!(power.domains.iter().all(|d| d.granted_w == d.floor_w));
        let cluster = snap.cluster.expect("fleet models placement");
        assert_eq!(cluster.healthy_servers, 4);
        assert!(cluster.parked_vms.is_empty());
    }

    #[test]
    fn grants_land_and_revoke() {
        let mut world = FleetWorld::new(FleetConfigBuilder::small(3).build());
        let granted = world.apply(
            SimTime::ZERO,
            "powercap",
            &Action::GrantPower {
                domain: 1,
                watts: 222.0,
            },
        );
        assert_eq!(
            granted,
            Outcome::PowerGranted {
                domain: 1,
                watts: 222.0
            }
        );
        let snap = world.telemetry(SimTime::ZERO).clone();
        let d1 = &snap.power.unwrap().domains[1];
        assert_eq!(d1.granted_w, 222.0);
        assert!(world
            .apply(
                SimTime::ZERO,
                "powercap",
                &Action::RevokePower { domain: 1 }
            )
            .accepted());
        assert!(!world
            .apply(
                SimTime::ZERO,
                "powercap",
                &Action::RevokePower { domain: 1 }
            )
            .accepted());
        assert!(!world
            .apply(
                SimTime::ZERO,
                "powercap",
                &Action::GrantPower {
                    domain: 99,
                    watts: 1.0
                }
            )
            .accepted());
    }

    #[test]
    fn failover_parks_unplaced_vms_and_migrate_replaces_them() {
        // Two servers, VMs sized so each server holds exactly one: any
        // failure strands its VM.
        let config = FleetConfigBuilder::small(5)
            .servers(2)
            .oversub(1.0)
            .initial_vms(2)
            .vm_spec(VmSpec::new(48, 64.0))
            .build();
        let mut world = FleetWorld::new(config);
        let t = SimTime::from_secs(10);

        let outcome = world.apply(t, "script", &Action::FailServer { server: 0 });
        assert_eq!(
            outcome,
            Outcome::FailedOver {
                recreated: 0,
                unplaced: 1
            }
        );
        assert_eq!(world.parked().len(), 1);
        let snap = world.telemetry(t);
        assert_eq!(snap.vms.len(), 1, "parked VM left the serving sim");
        assert_eq!(snap.cluster.as_ref().unwrap().failed_servers, vec![0]);

        // No capacity yet: the migrate is declined and the VM stays
        // parked.
        let parked = world.parked()[0];
        assert!(!world
            .apply(t, "failover", &Action::Migrate { vm: parked })
            .accepted());
        assert_eq!(world.parked().len(), 1);

        // Repair brings back capacity; the migrate then lands.
        assert!(world
            .apply(t, "failover", &Action::RepairServer { server: 0 })
            .accepted());
        let migrated = world.apply(t, "failover", &Action::Migrate { vm: parked });
        assert!(matches!(migrated, Outcome::Migrated { .. }), "{migrated:?}");
        assert!(world.parked().is_empty());
        assert_eq!(world.telemetry(t).vms.len(), 2);
    }

    #[test]
    fn failover_remaps_recreated_vms_so_scale_in_still_lands() {
        // Plenty of room: failing a server re-creates its VM elsewhere
        // under a fresh cluster id; a later ScaleIn on the sim VM must
        // still release the (remapped) cluster placement.
        let config = FleetConfigBuilder::small(7).initial_vms(3).build();
        let mut world = FleetWorld::new(config);
        let t = SimTime::from_secs(5);
        let hosted: Vec<usize> = (0..world.cluster().servers().len())
            .filter(|&h| !world.cluster().vms_on(h).is_empty())
            .collect();
        let outcome = world.apply(t, "script", &Action::FailServer { server: hosted[0] });
        let Outcome::FailedOver {
            recreated,
            unplaced,
        } = outcome
        else {
            panic!("expected FailedOver, got {outcome:?}");
        };
        assert!(recreated >= 1);
        assert_eq!(unplaced, 0);
        assert_eq!(world.parked().len(), 0);
        // Every serving VM can still be scaled in, and the cluster
        // placement count follows.
        let vms: Vec<u64> = world.telemetry(t).vms.iter().map(|v| v.vm).collect();
        assert_eq!(vms.len(), 3);
        for vm in vms {
            assert!(world.apply(t, "asc", &Action::ScaleIn { vm }).accepted());
        }
        assert_eq!(world.cluster().vm_count(), 0);
    }

    #[test]
    fn scale_out_completion_is_gated_by_cluster_capacity() {
        let config = FleetConfigBuilder::small(9)
            .servers(1)
            .oversub(1.0)
            .initial_vms(1)
            .vm_spec(VmSpec::new(48, 64.0))
            .build();
        let mut world = FleetWorld::new(config);
        let declined = world.complete_scale_out(SimTime::from_secs(1));
        assert_eq!(
            declined,
            Outcome::Rejected {
                reason: "no cluster capacity"
            }
        );
        assert_eq!(world.telemetry(SimTime::from_secs(1)).vms.len(), 1);
    }

    /// Drives `world` through `steps` random actuations (scale, power,
    /// frequency, failure, repair, migration) and asserts after every
    /// step — sometimes with intervening telemetry reads, sometimes
    /// with several actions batched between reads — that the
    /// incrementally maintained snapshot is bitwise-identical to a
    /// from-scratch recompute.
    fn check_incremental_matches_recompute(mut world: FleetWorld, seed: u64, steps: usize) {
        use ic_sim::rng::SimRng;
        let mut rng = SimRng::seed_from_u64(seed);
        let mut t = SimTime::ZERO;
        let servers = world.cluster().servers().len();
        for step in 0..steps {
            t += SimDuration::from_secs_f64(rng.uniform_range(0.1, 5.0));
            world.advance_to(t);
            match rng.index(12) {
                0 => {
                    let _ = world.apply(
                        t,
                        "prop",
                        &Action::ScaleOut {
                            latency: SimDuration::from_secs(30),
                            interference: 0.32,
                        },
                    );
                    let _ = world.complete_scale_out(t);
                }
                1 => {
                    let vms: Vec<u64> =
                        world.sim().active_ids().iter().map(|&v| v as u64).collect();
                    if vms.len() > 1 {
                        let vm = vms[rng.index(vms.len())];
                        let _ = world.apply(t, "prop", &Action::ScaleIn { vm });
                    }
                }
                2 => {
                    let ratio = [1.0, 1.05, 1.1, 1.15, 1.2][rng.index(5)];
                    let _ = world.apply(
                        t,
                        "prop",
                        &Action::SetFrequency {
                            target: FreqTarget::Fleet,
                            ratio,
                        },
                    );
                }
                3 => {
                    let domain = rng.index(3) as u64; // includes an unknown id
                    let watts = rng.uniform_range(150.0, 305.0);
                    let _ = world.apply(t, "prop", &Action::GrantPower { domain, watts });
                }
                4 => {
                    let domain = rng.index(3) as u64;
                    let _ = world.apply(t, "prop", &Action::RevokePower { domain });
                }
                5 => {
                    let server = rng.index(servers);
                    let _ = world.apply(t, "prop", &Action::FailServer { server });
                }
                6 => {
                    let server = rng.index(servers);
                    let _ = world.apply(t, "prop", &Action::RepairServer { server });
                }
                7 => {
                    if !world.parked().is_empty() {
                        let vm = world.parked()[rng.index(world.parked().len())];
                        let _ = world.apply(t, "prop", &Action::Migrate { vm });
                    }
                }
                8 => {
                    // Includes an out-of-range server; rejected on
                    // fault-free worlds.
                    let server = rng.index(servers + 1);
                    let count = 1 + rng.index(50) as u64;
                    let _ = world.apply(t, "prop", &Action::InjectErrorBurst { server, count });
                }
                9 => {
                    let until = t + SimDuration::from_secs_f64(rng.uniform_range(0.5, 8.0));
                    let _ = world.apply(t, "prop", &Action::FreezeTelemetry { until });
                }
                10 => {
                    let vm = rng.index(8) as u64;
                    let until = t + SimDuration::from_secs_f64(rng.uniform_range(0.5, 8.0));
                    let _ = world.apply(t, "prop", &Action::DropVmSensor { vm, until });
                }
                _ => {
                    let share = rng.uniform_range(0.5, 1.0);
                    let _ = world.apply(t, "prop", &Action::SetShare { share });
                }
            }
            // Sometimes skip the read so dirt accumulates across
            // several actuations before the next refresh.
            if rng.index(3) == 0 {
                continue;
            }
            let expect = world.recompute_snapshot(t);
            let got = world.telemetry(t);
            assert_eq!(got, &expect, "divergence at step {step} (seed {seed})");
        }
        let expect = world.recompute_snapshot(t);
        assert_eq!(
            world.telemetry(t),
            &expect,
            "final divergence (seed {seed})"
        );
    }

    #[test]
    fn incremental_snapshot_matches_recompute_under_random_actuation() {
        for seed in [11, 52, 93] {
            let config = FleetConfigBuilder::small(seed).initial_vms(3).build();
            check_incremental_matches_recompute(FleetWorld::new(config), seed, 120);
        }
    }

    #[test]
    fn incremental_snapshot_matches_recompute_with_physical_power_model() {
        use ic_thermal::fluid::DielectricFluid;
        for seed in [7, 41] {
            let config = FleetConfigBuilder::small(seed)
                .initial_vms(3)
                .power_model(PowerModelSpec {
                    sku: CpuSku::xeon_w3175x(),
                    bins: (0..3)
                        .map(|b| {
                            ThermalInterface::two_phase(
                                DielectricFluid::hfe7000(),
                                0.084 + 0.002 * b as f64,
                                0.0,
                            )
                        })
                        .collect(),
                    base_ghz: 3.4,
                })
                .build();
            let world = FleetWorld::new(config);
            check_incremental_matches_recompute(world, seed, 120);
        }
    }

    #[test]
    fn incremental_snapshot_matches_recompute_with_faults_enabled() {
        for seed in [13, 77] {
            let config = FleetConfigBuilder::small(seed)
                .initial_vms(3)
                .faults(FaultConfig::disabled())
                .build();
            check_incremental_matches_recompute(FleetWorld::new(config), seed, 160);
        }
    }

    #[test]
    #[allow(deprecated)]
    fn builder_small_preset_matches_deprecated_constructor() {
        let legacy = FleetConfig::small(42);
        let built = FleetConfigBuilder::small(42).build();
        assert_eq!(format!("{legacy:?}"), format!("{built:?}"));
    }

    #[test]
    fn error_bursts_accumulate_and_are_rejected_without_fault_config() {
        let mut plain = FleetWorld::new(FleetConfigBuilder::small(1).build());
        assert!(!plain
            .apply(
                SimTime::ZERO,
                "chaos",
                &Action::InjectErrorBurst {
                    server: 0,
                    count: 3
                }
            )
            .accepted());
        assert!(plain.telemetry(SimTime::ZERO).faults.is_none());

        let mut world = FleetWorld::new(
            FleetConfigBuilder::small(1)
                .faults(FaultConfig::disabled())
                .build(),
        );
        let t = SimTime::from_secs(1);
        assert!(world
            .apply(
                t,
                "chaos",
                &Action::InjectErrorBurst {
                    server: 2,
                    count: 5
                }
            )
            .accepted());
        assert!(world
            .apply(
                t,
                "chaos",
                &Action::InjectErrorBurst {
                    server: 2,
                    count: 2
                }
            )
            .accepted());
        assert!(!world
            .apply(
                t,
                "chaos",
                &Action::InjectErrorBurst {
                    server: 9,
                    count: 1
                }
            )
            .accepted());
        let faults = world.telemetry(t).faults.clone().expect("fault section");
        assert_eq!(faults.errors_by_server, vec![0, 0, 7, 0]);
        assert_eq!(faults.error_bursts, 2);
        assert_eq!(faults.version, 2);
    }

    #[test]
    fn freeze_telemetry_serves_stale_snapshot_until_thaw() {
        let mut world = FleetWorld::new(
            FleetConfigBuilder::small(3)
                .initial_vms(2)
                .faults(FaultConfig::disabled())
                .build(),
        );
        let t0 = SimTime::from_secs(5);
        world.advance_to(t0);
        assert!(world
            .apply(
                t0,
                "fault",
                &Action::FreezeTelemetry {
                    until: SimTime::from_secs(20)
                }
            )
            .accepted());
        let frozen = world.telemetry(SimTime::from_secs(10)).clone();
        assert_eq!(
            frozen.now,
            SimTime::from_secs(10),
            "the clock stays live; only the content freezes"
        );
        // A scale-in lands on the world but the frozen view hides it.
        let vm = frozen.vms[0].vm;
        assert!(world
            .apply(SimTime::from_secs(12), "asc", &Action::ScaleIn { vm })
            .accepted());
        let still = world.telemetry(SimTime::from_secs(15)).clone();
        assert_eq!(still.vms.len(), 2, "stale telemetry hides the scale-in");
        assert_eq!(
            world.recompute_snapshot(SimTime::from_secs(15)),
            still,
            "recompute honors the freeze contract"
        );
        // Past the thaw instant the live state shows through.
        let live = world.telemetry(SimTime::from_secs(20));
        assert_eq!(live.now, SimTime::from_secs(20));
        assert_eq!(live.vms.len(), 1);
    }

    #[test]
    fn sensor_dropout_hides_vm_rows_until_expiry() {
        let mut world = FleetWorld::new(
            FleetConfigBuilder::small(3)
                .initial_vms(2)
                .faults(FaultConfig::disabled())
                .build(),
        );
        let t = SimTime::from_secs(1);
        let vm = world.telemetry(t).vms[0].vm;
        assert!(world
            .apply(
                t,
                "fault",
                &Action::DropVmSensor {
                    vm,
                    until: SimTime::from_secs(10)
                }
            )
            .accepted());
        let during = world.telemetry(SimTime::from_secs(5));
        assert_eq!(during.vms.len(), 1);
        assert!(during.vm(vm).is_none(), "dropped sensor is invisible");
        let after = world.telemetry(SimTime::from_secs(10));
        assert_eq!(after.vms.len(), 2, "sensor returns at expiry");
    }

    #[test]
    fn downtime_accounting_tracks_fail_and_repair() {
        let mut world = FleetWorld::new(FleetConfigBuilder::small(5).build());
        let horizon = SimTime::from_secs(100);
        assert_eq!(world.downtime_s(horizon), 0.0);
        assert_eq!(world.availability(horizon), 1.0);

        assert!(world
            .apply(
                SimTime::from_secs(10),
                "script",
                &Action::FailServer { server: 1 }
            )
            .accepted());
        // Re-failing an already-failed server must not double-count.
        assert!(world
            .apply(
                SimTime::from_secs(12),
                "script",
                &Action::FailServer { server: 1 }
            )
            .accepted());
        assert_eq!(world.failures_applied(), 1);
        assert!(world
            .apply(
                SimTime::from_secs(40),
                "script",
                &Action::RepairServer { server: 1 }
            )
            .accepted());
        // Repairing a healthy server is a no-op for accounting.
        assert!(world
            .apply(
                SimTime::from_secs(50),
                "script",
                &Action::RepairServer { server: 1 }
            )
            .accepted());
        assert_eq!(world.downtime_s(horizon), 30.0);

        // An interval still open at the horizon settles against it.
        assert!(world
            .apply(
                SimTime::from_secs(80),
                "script",
                &Action::FailServer { server: 0 }
            )
            .accepted());
        assert_eq!(world.downtime_s(horizon), 50.0);
        // 4 servers × 100 s = 400 server-seconds; 50 lost.
        assert!((world.availability(horizon) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn cluster_verbs_are_not_this_worlds_problem() {
        let mut sim = sim();
        assert!(!apply_to_sim(&mut sim, &Action::FailServer { server: 0 }).accepted());
        assert!(!apply_to_sim(
            &mut sim,
            &Action::GrantPower {
                domain: 0,
                watts: 100.0
            }
        )
        .accepted());
    }
}
