//! The telemetry bus: one snapshot per control tick.
//!
//! Every controller sees the same [`TelemetrySnapshot`], assembled by
//! the [`crate::World`] from whatever subsystems it composes — VM
//! hardware counters (ic-workloads / ic-telemetry), power-domain demand
//! and grants (ic-power), and cluster placement state (ic-cluster).
//! Sections a world does not model are simply `None`/empty; controllers
//! are expected to no-op on missing sections rather than panic, so the
//! same controller runs unmodified against a single-sim world (the ASC
//! runner) or the full fleet world.

use ic_power::capping::Priority;
use ic_sim::time::SimTime;
use ic_telemetry::counters::CounterSample;

/// Per-VM telemetry: the cumulative counter sample plus instantaneous
/// queue state, exactly what the paper's Equation-1 control loop reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmTelemetry {
    /// The VM id (stable across ticks while the VM lives).
    pub vm: u64,
    /// Cumulative Aperf/Pperf/busy/wall counters at the tick instant.
    pub sample: CounterSample,
    /// Requests queued (not yet in service) at the tick instant.
    pub queue_depth: usize,
    /// Virtual cores backing the VM.
    pub vcores: u32,
}

/// One power domain's demand and current grant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainPower {
    /// Domain id (socket or server index).
    pub domain: u64,
    /// Capping priority under contention.
    pub priority: Priority,
    /// Watts the domain cannot run below.
    pub floor_w: f64,
    /// Watts the domain wants right now.
    pub demand_w: f64,
    /// Watts currently granted (floor if never granted).
    pub granted_w: f64,
}

/// Fleet-level power state.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTelemetry {
    /// The provisioned budget shared by all domains.
    pub budget_w: f64,
    /// Monotone change counter: the world bumps this whenever any
    /// domain's demand or grant changes. Controllers whose decision is
    /// a pure function of the power section may skip their scan when
    /// the version matches the previous tick's — the inputs are
    /// guaranteed identical, so the decision (and emitted actions)
    /// would be too.
    pub version: u64,
    /// Per-domain demand/grant, in stable domain-id order.
    pub domains: Vec<DomainPower>,
}

/// Cluster placement state.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTelemetry {
    /// Servers currently healthy.
    pub healthy_servers: usize,
    /// Indices of failed servers, ascending.
    pub failed_servers: Vec<usize>,
    /// Allocated vcores / healthy pcores.
    pub packing_density: f64,
    /// VMs evicted by failures and still awaiting placement, in
    /// eviction order.
    pub parked_vms: Vec<u64>,
}

/// Fault-injection state (present only in worlds with a fault config).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTelemetry {
    /// Monotone change counter, bumped whenever any field below moves
    /// (same skip contract as [`PowerTelemetry::version`]).
    pub version: u64,
    /// The last fleet-wide commanded frequency ratio (1.0 = base).
    /// Degradation controllers step down from here; the fault process
    /// derives the wear operating point from it.
    pub fleet_ratio: f64,
    /// Correctable-error bursts injected so far, fleet-wide.
    pub error_bursts: u64,
    /// Cumulative injected correctable errors per server index.
    pub errors_by_server: Vec<u64>,
}

/// Everything a controller may observe at one control tick.
///
/// Handed out by [`crate::World::telemetry`] each tick as a borrowed
/// view into state the world maintains incrementally — observing cannot
/// mutate the world (controllers get `&TelemetrySnapshot`) and every
/// controller at the same tick sees identical state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// The tick's simulation time.
    pub now: SimTime,
    /// Per-VM counters, in ascending VM-id order.
    pub vms: Vec<VmTelemetry>,
    /// Power section, if the world models power delivery.
    pub power: Option<PowerTelemetry>,
    /// Cluster section, if the world models placement.
    pub cluster: Option<ClusterTelemetry>,
    /// Fault-injection section, if the world has a fault config.
    pub faults: Option<FaultTelemetry>,
}

impl TelemetrySnapshot {
    /// A snapshot with only a timestamp (every section empty).
    pub fn at(now: SimTime) -> Self {
        TelemetrySnapshot {
            now,
            ..Default::default()
        }
    }

    /// The telemetry row for `vm`, if it is active. `vms` is kept in
    /// ascending VM-id order, so this is a binary search.
    pub fn vm(&self, vm: u64) -> Option<&VmTelemetry> {
        self.vms
            .binary_search_by_key(&vm, |v| v.vm)
            .ok()
            .map(|i| &self.vms[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_has_no_sections() {
        let snap = TelemetrySnapshot::at(SimTime::from_secs(5));
        assert_eq!(snap.now, SimTime::from_secs(5));
        assert!(snap.vms.is_empty());
        assert!(snap.power.is_none());
        assert!(snap.cluster.is_none());
        assert!(snap.faults.is_none());
        assert!(snap.vm(0).is_none());
    }

    #[test]
    fn vm_lookup_finds_by_id() {
        let mut snap = TelemetrySnapshot::at(SimTime::ZERO);
        snap.vms.push(VmTelemetry {
            vm: 7,
            sample: CounterSample::default(),
            queue_depth: 3,
            vcores: 4,
        });
        assert_eq!(snap.vm(7).unwrap().queue_depth, 3);
        assert!(snap.vm(8).is_none());
    }
}
