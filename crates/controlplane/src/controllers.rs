//! Ports of the previously free-standing control loops onto
//! [`Controller`].
//!
//! Each wraps the domain logic that already lives in its home crate —
//! [`OverclockGovernor`] (ic-core), [`PowerAllocator`] (ic-power) —
//! and adapts it to the observe/decide cycle: read the relevant
//! telemetry section, run the existing algorithm, emit typed
//! [`Action`]s. Two smaller loops round out the set: a scripted fault
//! injector (deterministic chaos) and a failover controller
//! implementing the paper's *virtual buffer* — boost the survivors
//! instead of reserving idle hardware.

use crate::action::{Action, FreqTarget};
use crate::controller::Controller;
use crate::telemetry::TelemetrySnapshot;
use ic_core::governor::{GovernorDecision, OverclockGovernor};
use ic_power::capping::{AllocScratch, PowerAllocator, PowerGrant, PowerRequest};
use ic_power::units::Frequency;
use ic_sim::time::SimTime;
use std::fmt;

/// Ratios closer than this are "the same frequency" — matches the
/// epsilon the auto-scaler has always used for change suppression.
const RATIO_EPS: f64 = 1e-12;

/// The overclock governor as a controller: each tick it re-derives the
/// highest safe frequency from the stability / lifetime / power
/// ceilings (power from the capping controller's latest grant, seen
/// through telemetry) and emits a fleet-wide [`Action::SetFrequency`]
/// whenever the safe bin changes.
pub struct GovernorController {
    governor: OverclockGovernor,
    /// The frequency the workload wants (typically the stability
    /// ceiling: "as fast as safely possible").
    requested: Frequency,
    /// The base bin ratios are expressed against.
    base: Frequency,
    last_ratio: f64,
    last_decision: Option<GovernorDecision>,
    /// The power-section version the last decision was derived from.
    /// The decision is a pure function of that section (plus fixed
    /// controller state), so an unchanged version means an unchanged
    /// decision — and the change-suppressed action set is empty.
    last_power_version: Option<u64>,
}

impl GovernorController {
    /// Wraps `governor`, requesting `requested` each tick, with ratios
    /// expressed against `base`. The governor's ceiling-search ladder
    /// is batch-prewarmed so the first tick pays no per-point solves.
    pub fn new(governor: OverclockGovernor, requested: Frequency, base: Frequency) -> Self {
        governor.prewarm();
        GovernorController {
            governor,
            requested,
            base,
            last_ratio: 1.0,
            last_decision: None,
            last_power_version: None,
        }
    }

    /// The wrapped governor.
    pub fn governor(&self) -> &OverclockGovernor {
        &self.governor
    }

    /// The most recent decision, if any tick has run.
    pub fn last_decision(&self) -> Option<&GovernorDecision> {
        self.last_decision.as_ref()
    }

    /// The watts this controller's socket may draw: the smallest grant
    /// across power domains, or `f64::MAX` when the world models no
    /// power delivery (the power ceiling then never binds).
    fn granted_w(snapshot: &TelemetrySnapshot) -> f64 {
        snapshot
            .power
            .as_ref()
            .map(|p| {
                p.domains
                    .iter()
                    .map(|d| d.granted_w)
                    .fold(f64::MAX, f64::min)
            })
            .unwrap_or(f64::MAX)
    }
}

impl Controller for GovernorController {
    fn name(&self) -> &'static str {
        "governor"
    }

    fn observe(&mut self, snapshot: &TelemetrySnapshot) -> Vec<Action> {
        if let Some(p) = &snapshot.power {
            if self.last_power_version == Some(p.version) {
                // Same inputs as last tick ⇒ same decision ⇒ the ratio
                // cannot have moved ⇒ no actions, without rescanning
                // the domains or re-deriving the ceilings.
                return Vec::new();
            }
            self.last_power_version = Some(p.version);
        }
        let granted_w = Self::granted_w(snapshot);
        let decision = self.governor.decide(self.requested, granted_w);
        let ratio = decision.frequency.ratio_to(self.base);
        self.last_decision = Some(decision);
        if (ratio - self.last_ratio).abs() > RATIO_EPS {
            self.last_ratio = ratio;
            vec![Action::SetFrequency {
                target: FreqTarget::Fleet,
                ratio,
            }]
        } else {
            Vec::new()
        }
    }

    crate::impl_controller_downcast!();
}

/// Priority-aware power capping as a controller: each tick it re-runs
/// the [`PowerAllocator`] over the power domains' current demand and
/// emits [`Action::GrantPower`] for every domain whose grant moved.
pub struct PowerCapController {
    allocator: PowerAllocator,
    last_grants: Vec<PowerGrant>,
    /// Request rows rebuilt from the power section each re-allocation
    /// (reused, never reallocated at steady state).
    requests: Vec<PowerRequest>,
    scratch: AllocScratch,
    /// See [`GovernorController::last_power_version`]: the allocation
    /// is a pure function of the power section, so an unchanged
    /// version short-circuits the whole scan.
    last_power_version: Option<u64>,
}

impl PowerCapController {
    /// A capping controller enforcing `allocator`'s budget.
    pub fn new(allocator: PowerAllocator) -> Self {
        PowerCapController {
            allocator,
            last_grants: Vec::new(),
            requests: Vec::new(),
            scratch: AllocScratch::default(),
            last_power_version: None,
        }
    }

    /// The enforced budget, watts.
    pub fn budget_w(&self) -> f64 {
        self.allocator.budget_w()
    }

    /// The most recent allocation, in request order.
    pub fn last_grants(&self) -> &[PowerGrant] {
        &self.last_grants
    }
}

impl Controller for PowerCapController {
    fn name(&self) -> &'static str {
        "powercap"
    }

    fn observe(&mut self, snapshot: &TelemetrySnapshot) -> Vec<Action> {
        let Some(power) = &snapshot.power else {
            return Vec::new();
        };
        if self.last_power_version == Some(power.version) {
            return Vec::new();
        }
        self.last_power_version = Some(power.version);
        self.requests.clear();
        self.requests
            .extend(power.domains.iter().map(|d| PowerRequest {
                id: d.domain,
                priority: d.priority,
                floor_w: d.floor_w,
                demand_w: d.demand_w,
            }));
        self.allocator
            .try_allocate_into(&self.requests, &mut self.scratch, &mut self.last_grants)
            .unwrap_or_else(|e| panic!("{e}"));
        let mut actions = Vec::new();
        // Requests were built from the domain rows in order and grants
        // come back in request order, so grant i belongs to domain row
        // i — no per-grant search.
        for (grant, row) in self.last_grants.iter().zip(&power.domains) {
            if row.granted_w != grant.granted_w {
                actions.push(Action::GrantPower {
                    domain: grant.id,
                    watts: grant.granted_w,
                });
            }
        }
        actions
    }

    crate::impl_controller_downcast!();
}

/// A [`ScriptController`] construction error: the script's entries were
/// not in non-decreasing time order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptError {
    /// Index of the first entry whose time precedes its predecessor's.
    pub index: usize,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "script entry {} is earlier than its predecessor: entries must be sorted by time",
            self.index
        )
    }
}

impl std::error::Error for ScriptError {}

/// Deterministic fault injection: a fixed script of `(at, action)`
/// pairs, each fired at the first tick at or after its time. Used to
/// inject server failures and repairs into composed experiments
/// without any randomness outside the seeded workload.
#[derive(Debug)]
pub struct ScriptController {
    script: Vec<(SimTime, Action)>,
    next: usize,
}

impl ScriptController {
    /// A script controller; entries must be in non-decreasing time
    /// order, else this returns [`ScriptError`] naming the first
    /// out-of-order entry.
    pub fn new(script: Vec<(SimTime, Action)>) -> Result<Self, ScriptError> {
        if let Some(pos) = script.windows(2).position(|w| w[0].0 > w[1].0) {
            return Err(ScriptError { index: pos + 1 });
        }
        Ok(ScriptController { script, next: 0 })
    }

    /// Entries not yet fired.
    pub fn remaining(&self) -> usize {
        self.script.len() - self.next
    }
}

impl Controller for ScriptController {
    fn name(&self) -> &'static str {
        "script"
    }

    fn observe(&mut self, snapshot: &TelemetrySnapshot) -> Vec<Action> {
        let mut actions = Vec::new();
        while self.next < self.script.len() && self.script[self.next].0 <= snapshot.now {
            actions.push(self.script[self.next].1.clone());
            self.next += 1;
        }
        actions
    }

    crate::impl_controller_downcast!();
}

/// The paper's virtual buffer as a controller: when servers fail, boost
/// the survivors' frequency to absorb the lost capacity instead of
/// holding idle spares; while failed-over VMs remain unplaced, keep
/// asking the world to migrate them back as capacity returns, and drop
/// the boost once the fleet is whole again.
pub struct FailoverController {
    boost_ratio: f64,
    restore_ratio: f64,
    boosted: bool,
}

impl FailoverController {
    /// A failover controller that boosts survivors to `boost_ratio`
    /// (e.g. 1.2 = +20 %) while any server is down.
    pub fn new(boost_ratio: f64) -> Self {
        Self::with_restore(boost_ratio, 1.0)
    }

    /// Like [`FailoverController::new`], but when the fleet heals the
    /// frequency returns to `restore_ratio` instead of base — pass the
    /// governor's standing grant so a failover cycle does not silently
    /// de-overclock a fleet whose governor only re-issues on change.
    pub fn with_restore(boost_ratio: f64, restore_ratio: f64) -> Self {
        FailoverController {
            boost_ratio,
            restore_ratio,
            boosted: false,
        }
    }

    /// Whether the survivor boost is currently engaged.
    pub fn boosted(&self) -> bool {
        self.boosted
    }
}

impl Controller for FailoverController {
    fn name(&self) -> &'static str {
        "failover"
    }

    fn observe(&mut self, snapshot: &TelemetrySnapshot) -> Vec<Action> {
        let Some(cluster) = &snapshot.cluster else {
            return Vec::new();
        };
        let mut actions = Vec::new();
        if !cluster.failed_servers.is_empty() && !self.boosted {
            self.boosted = true;
            actions.push(Action::SetFrequency {
                target: FreqTarget::Fleet,
                ratio: self.boost_ratio,
            });
        } else if cluster.failed_servers.is_empty() && self.boosted {
            self.boosted = false;
            actions.push(Action::SetFrequency {
                target: FreqTarget::Fleet,
                ratio: self.restore_ratio,
            });
        }
        for vm in &cluster.parked_vms {
            actions.push(Action::Migrate { vm: *vm });
        }
        actions
    }

    crate::impl_controller_downcast!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{ClusterTelemetry, DomainPower, PowerTelemetry};
    use ic_power::capping::Priority;

    fn snapshot_with_power(
        domains: Vec<DomainPower>,
        budget_w: f64,
        version: u64,
    ) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::at(SimTime::from_secs(1));
        snap.power = Some(PowerTelemetry {
            budget_w,
            version,
            domains,
        });
        snap
    }

    #[test]
    fn script_fires_in_order_and_only_once() {
        let mut script = ScriptController::new(vec![
            (SimTime::from_secs(10), Action::FailServer { server: 0 }),
            (SimTime::from_secs(20), Action::RepairServer { server: 0 }),
        ])
        .expect("sorted script");
        let early = TelemetrySnapshot::at(SimTime::from_secs(5));
        assert!(script.observe(&early).is_empty());
        let mid = TelemetrySnapshot::at(SimTime::from_secs(12));
        assert_eq!(script.observe(&mid), vec![Action::FailServer { server: 0 }]);
        assert_eq!(script.remaining(), 1);
        let late = TelemetrySnapshot::at(SimTime::from_secs(30));
        assert_eq!(
            script.observe(&late),
            vec![Action::RepairServer { server: 0 }]
        );
        assert!(script.observe(&late).is_empty());
    }

    #[test]
    fn script_rejects_unsorted_entries_with_typed_error() {
        let err = ScriptController::new(vec![
            (SimTime::from_secs(20), Action::FailServer { server: 0 }),
            (SimTime::from_secs(10), Action::RepairServer { server: 0 }),
        ])
        .expect_err("unsorted script must be rejected");
        assert_eq!(err, ScriptError { index: 1 });
        assert!(err.to_string().contains("sorted"));
    }

    #[test]
    fn powercap_regrants_only_on_change() {
        let mut cap = PowerCapController::new(PowerAllocator::new(300.0));
        let domains = vec![
            DomainPower {
                domain: 0,
                priority: Priority::Batch,
                floor_w: 50.0,
                demand_w: 200.0,
                granted_w: 50.0,
            },
            DomainPower {
                domain: 1,
                priority: Priority::Critical,
                floor_w: 50.0,
                demand_w: 200.0,
                granted_w: 50.0,
            },
        ];
        let snap = snapshot_with_power(domains.clone(), 300.0, 0);
        let actions = cap.observe(&snap);
        // Critical gets its full demand; batch absorbs the shortfall.
        assert!(actions.contains(&Action::GrantPower {
            domain: 1,
            watts: 200.0
        }));
        assert!(actions.contains(&Action::GrantPower {
            domain: 0,
            watts: 100.0
        }));
        // Re-observing with the grants already in telemetry is quiet.
        let mut settled = domains;
        settled[0].granted_w = 100.0;
        settled[1].granted_w = 200.0;
        // A bumped version forces a genuine re-allocation (not the
        // version short-circuit); it must still be quiet.
        let snap = snapshot_with_power(settled, 300.0, 2);
        assert!(cap.observe(&snap).is_empty());
    }

    #[test]
    fn powercap_skips_rescan_when_power_version_is_unchanged() {
        let mut cap = PowerCapController::new(PowerAllocator::new(300.0));
        let domains = vec![DomainPower {
            domain: 0,
            priority: Priority::Batch,
            floor_w: 50.0,
            demand_w: 200.0,
            granted_w: 50.0,
        }];
        let snap = snapshot_with_power(domains, 300.0, 7);
        assert_eq!(cap.observe(&snap).len(), 1);
        // Same version again: short-circuits before re-allocating —
        // correct because an identical section yields the identical
        // allocation, whose actions the change suppression would drop.
        assert!(cap.observe(&snap).is_empty());
        assert_eq!(cap.last_grants().len(), 1, "last allocation is kept");
    }

    #[test]
    fn powercap_ignores_worlds_without_power() {
        let mut cap = PowerCapController::new(PowerAllocator::new(300.0));
        assert!(cap
            .observe(&TelemetrySnapshot::at(SimTime::ZERO))
            .is_empty());
    }

    #[test]
    fn failover_boosts_once_and_releases() {
        let mut fo = FailoverController::new(1.2);
        let mut snap = TelemetrySnapshot::at(SimTime::from_secs(1));
        snap.cluster = Some(ClusterTelemetry {
            healthy_servers: 11,
            failed_servers: vec![3],
            packing_density: 1.1,
            parked_vms: vec![42],
        });
        let actions = fo.observe(&snap);
        assert_eq!(
            actions,
            vec![
                Action::SetFrequency {
                    target: FreqTarget::Fleet,
                    ratio: 1.2
                },
                Action::Migrate { vm: 42 },
            ]
        );
        assert!(fo.boosted());
        // Same failure state again: no duplicate boost, keep migrating.
        let again = fo.observe(&snap);
        assert_eq!(again, vec![Action::Migrate { vm: 42 }]);
        // Fleet whole again: release the boost.
        snap.cluster = Some(ClusterTelemetry {
            healthy_servers: 12,
            failed_servers: Vec::new(),
            packing_density: 1.0,
            parked_vms: Vec::new(),
        });
        assert_eq!(
            fo.observe(&snap),
            vec![Action::SetFrequency {
                target: FreqTarget::Fleet,
                ratio: 1.0
            }]
        );
        assert!(!fo.boosted());
    }
}
