//! The [`ControlPlane`] scheduler: N controllers, independent cadences,
//! one clock.
//!
//! Each registered controller's tick is a first-class `ic-sim` event
//! (`kind = "control_tick"`) on the control plane's own engine, so
//! interleaving between controllers is governed by the engine's
//! deterministic (time, insertion-seq) order — never by iteration over
//! a hash map or by wall clock. The managed [`World`] is advanced
//! lazily to each tick time, which reproduces the classic
//! "advance-then-decide" loop the bespoke harnesses used, including the
//! trailing partial window when the horizon does not divide the
//! cadence.

use crate::action::{Action, Outcome};
use crate::controller::{Controller, TickReport, World};
use ic_obs::json::Value;
use ic_obs::trace::TraceLevel;
use ic_obs::ObsSinks;
use ic_sim::engine::Engine;
use ic_sim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Handle to a registered controller, returned by
/// [`ControlPlane::register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerId(usize);

/// A time-ordered list of fault actuations, scheduled into the control
/// plane as ordinary DES events by [`ControlPlane::schedule_faults`].
///
/// Unlike a `ScriptController` (which fires at its own tick *after* its
/// time passes), plan entries land on the world at their exact instant,
/// between controller ticks — the actuation path for exogenous faults
/// like telemetry freezes and sensor dropouts.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<(SimTime, Action)>,
}

impl FaultPlan {
    /// A plan from `(at, action)` pairs; entries are sorted by time
    /// (stable, so same-instant entries keep their given order).
    pub fn new(mut entries: Vec<(SimTime, Action)>) -> Self {
        entries.sort_by_key(|&(at, _)| at);
        FaultPlan { entries }
    }

    /// Entries in firing order.
    pub fn entries(&self) -> &[(SimTime, Action)] {
        &self.entries
    }

    /// Whether the plan schedules anything at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

struct Entry {
    controller: Box<dyn Controller>,
    cadence: SimDuration,
    last_tick: SimTime,
    ticks: u64,
    scheduled: bool,
}

/// A decided [`Action::ScaleOut`] waiting out its provisioning latency.
struct Deferred {
    due: SimTime,
    owner: usize,
    action: Action,
}

struct CpState<W> {
    world: W,
    entries: Vec<Entry>,
    deferred: VecDeque<Deferred>,
    sinks: ObsSinks,
    ticks_total: u64,
}

/// The control-plane runtime: registers [`Controller`]s at independent
/// cadences and drives them against one [`World`] off one clock.
pub struct ControlPlane<W: World + 'static> {
    engine: Engine<CpState<W>>,
    state: CpState<W>,
}

impl<W: World + 'static> ControlPlane<W> {
    /// A runtime over `world` with no controllers yet.
    pub fn new(world: W) -> Self {
        ControlPlane {
            engine: Engine::new(),
            state: CpState {
                world,
                entries: Vec::new(),
                deferred: VecDeque::new(),
                sinks: ObsSinks::none(),
                ticks_total: 0,
            },
        }
    }

    /// Attaches observability sinks; the runtime emits a debug-level
    /// `tick` event and `cp_ticks_total` counters through them. With no
    /// sinks attached the runtime records nothing — a ported harness is
    /// byte-identical to its hand-written predecessor.
    pub fn attach_sinks(&mut self, sinks: ObsSinks) {
        self.state.sinks = sinks;
    }

    /// Registers `controller` to tick every `cadence` (first tick one
    /// cadence after the clock when [`ControlPlane::run_until`] is next
    /// called). Ties at the same instant fire in registration order.
    ///
    /// # Panics
    ///
    /// Panics if `cadence` is zero.
    pub fn register(
        &mut self,
        controller: Box<dyn Controller>,
        cadence: SimDuration,
    ) -> ControllerId {
        assert!(!cadence.is_zero(), "controller cadence must be positive");
        self.state.entries.push(Entry {
            controller,
            cadence,
            last_tick: self.engine.now(),
            ticks: 0,
            scheduled: false,
        });
        ControllerId(self.state.entries.len() - 1)
    }

    /// The control-plane clock.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The managed world.
    pub fn world(&self) -> &W {
        &self.state.world
    }

    /// The managed world, mutably (setup only — mutating mid-run from
    /// outside a controller forfeits determinism guarantees).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.state.world
    }

    /// Consumes the runtime, returning the world (for result
    /// extraction after the horizon).
    pub fn into_world(self) -> W {
        self.state.world
    }

    /// Downcasts a registered controller to its concrete type.
    pub fn controller<T: 'static>(&self, id: ControllerId) -> Option<&T> {
        self.state
            .entries
            .get(id.0)?
            .controller
            .as_any()
            .downcast_ref()
    }

    /// Mutable variant of [`ControlPlane::controller`].
    pub fn controller_mut<T: 'static>(&mut self, id: ControllerId) -> Option<&mut T> {
        self.state
            .entries
            .get_mut(id.0)?
            .controller
            .as_any_mut()
            .downcast_mut()
    }

    /// Ticks executed by the controller behind `id`.
    pub fn ticks(&self, id: ControllerId) -> u64 {
        self.state.entries.get(id.0).map_or(0, |e| e.ticks)
    }

    /// Ticks executed across all controllers.
    pub fn ticks_total(&self) -> u64 {
        self.state.ticks_total
    }

    /// Control-plane engine events processed (tick events only; the
    /// world's own engines count their events separately).
    pub fn events_processed(&self) -> u64 {
        self.engine.events_processed()
    }

    /// Schedules every entry of `plan` as a DES event (`kind =
    /// "fault"`) that applies its action to the world at its exact
    /// instant — after any controller tick scheduled for the same time
    /// (faults are inserted later, and ties fire in insertion order).
    /// No controller owns these actions, so no `applied` notification
    /// fires; controllers see the effects through telemetry.
    pub fn schedule_faults(&mut self, plan: FaultPlan) {
        for (at, action) in plan.entries {
            self.engine
                .schedule_labeled(at, "fault", move |state, engine| {
                    let now = engine.now();
                    state.world.pre_tick(now);
                    state.world.advance_to(now);
                    let outcome = state.world.apply(now, "fault", &action);
                    if !state.sinks.is_quiet() {
                        state.sinks.instant(
                            now,
                            "chaos",
                            TraceLevel::Info,
                            "fault",
                            vec![
                                ("verb", Value::Str(action.verb().to_string())),
                                ("accepted", Value::Bool(outcome.accepted())),
                            ],
                        );
                    }
                });
        }
    }

    /// Runs every registered controller against the world up to `end`
    /// (inclusive), then advances the world itself to `end`.
    ///
    /// Controllers whose cadence does not divide the horizon get one
    /// trailing partial-window tick at `end`, exactly like the
    /// hand-written `while t < end { t = (t + period).min(end); … }`
    /// loops this runtime replaces.
    pub fn run_until(&mut self, end: SimTime) {
        let now = self.engine.now();
        for idx in 0..self.state.entries.len() {
            let entry = &mut self.state.entries[idx];
            if !entry.scheduled {
                entry.scheduled = true;
                let cadence = entry.cadence;
                Self::schedule_tick(&mut self.engine, now + cadence, idx);
            }
        }
        self.engine.run_until(&mut self.state, end);
        for idx in 0..self.state.entries.len() {
            if self.state.entries[idx].last_tick < end {
                Self::run_tick(&mut self.state, end, idx);
            }
        }
        self.state.world.advance_to(end);
    }

    fn schedule_tick(engine: &mut Engine<CpState<W>>, at: SimTime, idx: usize) {
        engine.schedule_labeled(at, "control_tick", move |state, engine| {
            let now = engine.now();
            Self::run_tick(state, now, idx);
            let cadence = state.entries[idx].cadence;
            Self::schedule_tick(engine, now + cadence, idx);
        });
    }

    fn run_tick(state: &mut CpState<W>, now: SimTime, idx: usize) {
        state.world.pre_tick(now);
        state.world.advance_to(now);
        Self::mature_deferred(state, now);

        let snapshot = state.world.telemetry(now);
        let source = state.entries[idx].controller.name();
        let actions = state.entries[idx].controller.observe(snapshot);
        let decided = actions.len();
        for action in &actions {
            let outcome = state.world.apply(now, source, action);
            if let Action::ScaleOut { latency, .. } = action {
                if outcome.accepted() {
                    state.deferred.push_back(Deferred {
                        due: now + *latency,
                        owner: idx,
                        action: action.clone(),
                    });
                }
            }
            Self::notify_applied(state, idx, now, action, &outcome);
        }

        let report = TickReport {
            at: now,
            controller: source,
            window_start: state.entries[idx].last_tick,
            decided,
        };
        if !state.sinks.is_quiet() {
            state.sinks.instant(
                now,
                "controlplane",
                TraceLevel::Debug,
                "tick",
                vec![
                    ("controller", Value::Str(source.to_string())),
                    ("decided", Value::U64(decided as u64)),
                ],
            );
            if let Some(metrics) = state.sinks.metrics() {
                let mut m = metrics.borrow_mut();
                m.counter_add("cp_ticks_total", 1);
                if decided > 0 {
                    m.counter_add("cp_actions_total", decided as u64);
                }
            }
        }
        let CpState { world, entries, .. } = state;
        world.post_tick(now, entries[idx].controller.as_ref(), &report);
        state.entries[idx].last_tick = now;
        state.entries[idx].ticks += 1;
        state.ticks_total += 1;
    }

    /// Matures every deferred scale-out due by `now`, in decision
    /// order, *before* telemetry is assembled — the newborn VM must be
    /// sampled (and share the load) from its creation tick onward, as
    /// the original `AutoScaler::step` maturation did.
    fn mature_deferred(state: &mut CpState<W>, now: SimTime) {
        let mut i = 0;
        while i < state.deferred.len() {
            if state.deferred[i].due > now {
                i += 1;
                continue;
            }
            let d = state.deferred.remove(i).expect("index in bounds");
            let outcome = state.world.complete_scale_out(now);
            Self::notify_applied(state, d.owner, now, &d.action, &outcome);
        }
    }

    /// Routes an outcome back to the owning controller and applies any
    /// follow-up actions once (follow-ups of follow-ups are dropped —
    /// actuation chains must be finite by construction).
    fn notify_applied(
        state: &mut CpState<W>,
        owner: usize,
        now: SimTime,
        action: &Action,
        outcome: &Outcome,
    ) {
        let source = state.entries[owner].controller.name();
        let follow = state.entries[owner]
            .controller
            .applied(now, action, outcome);
        for fa in follow {
            let fo = state.world.apply(now, source, &fa);
            let _ = state.entries[owner].controller.applied(now, &fa, &fo);
        }
    }
}
