//! Deterministic scatter-gather parallelism for inside an experiment.
//!
//! The experiment registry (`ic-bench`) already fans whole experiments
//! out across `--jobs` threads with deterministic output; this crate
//! extends that contract *into* an experiment: policy sweeps, ramp
//! schedules, and ablation grids decompose into a fixed task list up
//! front, workers pull tasks from work-stealing deques, and the results
//! are reassembled in submission order. Because the decomposition is
//! fixed before any worker starts and each task derives its randomness
//! by counter-splitting [`SimRng`] (`SimRng::stream(seed, index)` — a
//! pure function of the task index), the gathered output is
//! **byte-identical for any worker count**, including 1.
//!
//! What the pool guarantees: result order and per-task RNG streams are
//! independent of scheduling. What the caller must uphold: each task is
//! a pure function of its inputs (no shared mutable state, no
//! wall-clock reads inside the task body).
//!
//! # Example
//!
//! ```
//! use ic_par::ParPool;
//!
//! let squares = ParPool::with_workers(4).scatter_gather(
//!     (0u64..100).collect(),
//!     |_, x| x * x,
//! );
//! assert_eq!(squares[7], 49); // submission order, whatever ran first
//! ```

use ic_obs::flight::{shared_flight, FlightRecorder};
use ic_sim::rng::SimRng;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Mutex;
use std::sync::OnceLock;

/// The environment variable overriding the default worker count.
pub const WORKERS_ENV: &str = "IC_PAR_WORKERS";

/// A deterministic scatter-gather pool: a worker count and nothing
/// else. Threads are scoped to each [`scatter_gather`] call, so pools
/// are free to construct, nest, and drop.
///
/// [`scatter_gather`]: ParPool::scatter_gather
#[derive(Debug, Clone, Copy)]
pub struct ParPool {
    workers: usize,
}

impl ParPool {
    /// A pool with exactly `workers` workers (clamped to at least 1).
    pub fn with_workers(workers: usize) -> Self {
        ParPool {
            workers: workers.max(1),
        }
    }

    /// The default pool: `IC_PAR_WORKERS` if set, otherwise the
    /// machine's available parallelism. The environment is read once
    /// per process.
    pub fn from_env() -> Self {
        static WORKERS: OnceLock<usize> = OnceLock::new();
        let workers = *WORKERS.get_or_init(|| {
            std::env::var(WORKERS_ENV)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                })
        });
        ParPool { workers }
    }

    /// The worker count this pool fans out to.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `run(index, task)` for every task and returns the results
    /// **in submission order**, whatever order workers finished in.
    ///
    /// The task list is decomposed up front into one contiguous chunk
    /// per worker (fixed decomposition — no racing on a shared
    /// counter); each worker drains its own deque from the front and,
    /// when empty, steals from the back of the busiest neighbour, so a
    /// skewed task (one slow policy run in a sweep) does not idle the
    /// other workers.
    ///
    /// Tasks needing randomness should derive it as
    /// `SimRng::stream(seed, index)` (see [`task_rngs`]) so the stream
    /// is a function of the task, not of the worker that ran it.
    pub fn scatter_gather<T, R, F>(&self, tasks: Vec<T>, run: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = tasks.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            return tasks
                .into_iter()
                .enumerate()
                .map(|(i, t)| run(i, t))
                .collect();
        }

        // Fixed up-front decomposition: worker w owns the contiguous
        // index range [w·n/workers, (w+1)·n/workers).
        let mut deques: Vec<Mutex<VecDeque<(usize, T)>>> = Vec::with_capacity(workers);
        {
            let mut tasks = tasks.into_iter().enumerate();
            for w in 0..workers {
                let end = (w + 1) * n / workers;
                let start = w * n / workers;
                let chunk: VecDeque<(usize, T)> = tasks.by_ref().take(end - start).collect();
                deques.push(Mutex::new(chunk));
            }
        }
        let deques = &deques;
        let run = &run;

        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut pieces: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            // Own work first (front), then steal from a
                            // victim's back.
                            let next = deques[w].lock().unwrap().pop_front().or_else(|| {
                                (1..workers).find_map(|d| {
                                    deques[(w + d) % workers].lock().unwrap().pop_back()
                                })
                            });
                            match next {
                                Some((i, task)) => local.push((i, run(i, task))),
                                None => break,
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("ic-par worker panicked"))
                .collect()
        });
        for (i, r) in pieces.drain(..).flatten() {
            debug_assert!(slots[i].is_none(), "task {i} ran twice");
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every task produces a result"))
            .collect()
    }

    /// [`scatter_gather`](Self::scatter_gather) with per-task flight
    /// recording: each task gets a fresh [`FlightRecorder`] of
    /// `capacity` records (level-filtered via `IC_OBS_LEVEL`) and its
    /// finished recorder rides back with its result — **in submission
    /// order**, like the results themselves. Callers typically
    /// [`absorb`](FlightRecorder::absorb) the recorders into one main
    /// recorder in that order, which is what makes the merged trace
    /// byte-identical for any worker count.
    ///
    /// The recorder handle is task-local (`Rc`, not `Arc`): tasks must
    /// not leak clones of it past their own return, which the
    /// `Rc::try_unwrap` below enforces.
    pub fn scatter_gather_traced<T, R, F>(
        &self,
        tasks: Vec<T>,
        capacity: usize,
        run: F,
    ) -> Vec<(R, FlightRecorder)>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T, &ic_obs::flight::FlightHandle) -> R + Sync,
    {
        self.scatter_gather(tasks, |i, task| {
            let flight = shared_flight(capacity);
            if let Some(level) = ic_obs::trace::TraceLevel::from_env() {
                flight.borrow_mut().set_min_level(level);
            }
            let result = run(i, task, &flight);
            let recorder = Rc::try_unwrap(flight)
                .expect("task leaked its FlightHandle")
                .into_inner();
            (result, recorder)
        })
    }
}

/// The process-default pool (see [`ParPool::from_env`]).
pub fn pool() -> ParPool {
    ParPool::from_env()
}

/// One counter-split RNG per task of an `n`-task decomposition:
/// `task_rngs(seed, n)[i]` equals `SimRng::stream(seed, i)` and is
/// independent of every sibling, so pre-dealing the generators (or
/// deriving them lazily inside each task) gives identical streams.
pub fn task_rngs(seed: u64, n: usize) -> Vec<SimRng> {
    (0..n as u64).map(|i| SimRng::stream(seed, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately skewed workload: task 0 spins far longer than the
    /// rest, so without stealing the first worker's chunk dominates.
    fn skewed(i: usize, x: u64) -> u64 {
        let spins = if i == 0 { 200_000 } else { 200 };
        let mut acc = x;
        for _ in 0..spins {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        acc
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let tasks: Vec<u64> = (0..50).collect();
        let serial: Vec<u64> = tasks
            .iter()
            .enumerate()
            .map(|(i, &x)| skewed(i, x))
            .collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = ParPool::with_workers(workers).scatter_gather(tasks.clone(), skewed);
            assert_eq!(got, serial, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_singleton_task_lists() {
        let pool = ParPool::with_workers(4);
        assert!(pool.scatter_gather(Vec::<u8>::new(), |_, x| x).is_empty());
        assert_eq!(pool.scatter_gather(vec![9u8], |i, x| (i, x)), [(0, 9u8)]);
    }

    #[test]
    fn per_task_streams_are_independent_of_worker_count() {
        let draw = |_i: usize, rng: SimRng| {
            let mut rng = rng;
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        let serial = ParPool::with_workers(1).scatter_gather(task_rngs(7, 24), draw);
        let parallel = ParPool::with_workers(6).scatter_gather(task_rngs(7, 24), draw);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn nested_scatter_gather_does_not_deadlock() {
        let outer = ParPool::with_workers(3);
        let sums = outer.scatter_gather((0u64..6).collect(), |_, base| {
            ParPool::with_workers(2)
                .scatter_gather((0u64..10).collect(), move |_, x| base * 10 + x)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(sums[2], (0..10).map(|x| 20 + x).sum::<u64>());
    }

    #[test]
    fn worker_count_is_clamped_to_one() {
        assert_eq!(ParPool::with_workers(0).workers(), 1);
        let out = ParPool::with_workers(0).scatter_gather(vec![1, 2, 3], |_, x| x * 2);
        assert_eq!(out, [2, 4, 6]);
    }

    #[test]
    fn traced_scatter_gather_is_worker_count_invariant() {
        use ic_obs::flight::FlightRecorder;
        use ic_obs::trace::TraceLevel;
        use ic_sim::time::SimTime;

        let run = |i: usize, x: u64, flight: &ic_obs::flight::FlightHandle| {
            let mut f = flight.borrow_mut();
            let tok = f
                .open_at(SimTime::ZERO, "task", "run", TraceLevel::Info, vec![])
                .unwrap();
            f.close_at(tok, SimTime::from_secs(x + 1));
            drop(f);
            skewed(i, x)
        };
        let merge = |parts: Vec<(u64, FlightRecorder)>| {
            let mut main = FlightRecorder::new(1 << 12);
            for (i, (_, rec)) in parts.into_iter().enumerate() {
                main.absorb(rec, &format!("task{i}"));
            }
            main.to_chrome_trace()
        };
        let tasks: Vec<u64> = (0..20).collect();
        let serial = merge(ParPool::with_workers(1).scatter_gather_traced(tasks.clone(), 256, run));
        for workers in [2, 7] {
            let parallel = merge(ParPool::with_workers(workers).scatter_gather_traced(
                tasks.clone(),
                256,
                run,
            ));
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn task_rngs_match_direct_streams() {
        let dealt = task_rngs(99, 5);
        for (i, rng) in dealt.into_iter().enumerate() {
            let mut a = rng;
            let mut b = SimRng::stream(99, i as u64);
            for _ in 0..4 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }
}
