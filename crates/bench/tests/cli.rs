//! End-to-end tests for the `run_all` and `check` binaries: flag
//! handling, registry coverage, scenario loading, the `--jobs`
//! determinism contract, flight-recorder trace export, and the
//! perf-regression gate.
//!
//! These spawn the compiled binaries (via `CARGO_BIN_EXE_*`) so they
//! exercise argument parsing and exit codes exactly as a user would.

use ic_bench::registry::{registry, Experiment};
use ic_scenario::json::{self, Json};
use ic_scenario::Scenario;
use std::path::PathBuf;
use std::process::Command;

fn run_all(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args(args)
        .output()
        .expect("run_all binary spawns")
}

fn stdout_with_env(args: &[&str], envs: &[(&str, &str)]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args(args)
        .envs(envs.iter().map(|&(k, v)| (k, v)))
        .output()
        .expect("run_all binary spawns");
    assert!(
        out.status.success(),
        "run_all {:?} with {:?} failed: {}",
        args,
        envs,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

fn stdout_of(args: &[&str]) -> String {
    let out = run_all(args);
    assert!(
        out.status.success(),
        "run_all {:?} failed: {}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// Strips the one nondeterministic field from a JSONL report.
fn normalize_wall_ms(jsonl: &str) -> String {
    jsonl
        .lines()
        .map(|line| {
            let mut s = line.to_string();
            if let Some(start) = s.find("\"wall_ms\":") {
                let tail = start + "\"wall_ms\":".len();
                let end = s[tail..]
                    .find([',', '}'])
                    .map(|i| tail + i)
                    .unwrap_or(s.len());
                s.replace_range(tail..end, "X");
            }
            s + "\n"
        })
        .collect()
}

#[test]
fn list_prints_every_registered_experiment() {
    let listing = stdout_of(&["--list"]);
    let listed: Vec<&str> = listing
        .lines()
        .map(|l| l.split_whitespace().next().expect("id column"))
        .collect();
    let expected: Vec<&str> = registry().iter().map(|e| e.id()).collect();
    assert_eq!(listed, expected, "--list must mirror registration order");
}

#[test]
fn only_filters_in_registration_order() {
    // Request out of registration order; output must come back in it.
    let out = stdout_of(&["--quick", "--json", "--only", "fig4,table2"]);
    let ids: Vec<String> = out
        .lines()
        .map(|l| {
            let start = l.find("\"id\":\"").expect("id field") + 6;
            let end = l[start..].find('"').expect("closing quote") + start;
            l[start..end].to_string()
        })
        .collect();
    assert_eq!(ids, ["table2", "fig4"]);
}

#[test]
fn unknown_id_fails_with_diagnostic() {
    let out = run_all(&["--only", "nope"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown experiment id") && stderr.contains("nope"),
        "stderr was: {stderr}"
    );
}

#[test]
fn unreadable_scenario_fails_with_diagnostic() {
    let out = run_all(&["--scenario", "/nonexistent/scenario.json"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot read scenario"),
        "stderr was: {stderr}"
    );
}

#[test]
fn paper_scenario_file_reproduces_the_default_run() {
    let dir = std::env::temp_dir().join(format!("ic-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("paper.json");
    std::fs::write(&path, Scenario::paper().to_json()).expect("write scenario");

    let from_file = stdout_of(&["--quick", "--scenario", path.to_str().expect("utf-8 path")]);
    let default = stdout_of(&["--quick"]);
    assert_eq!(from_file, default, "paper scenario file must be a no-op");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn intra_experiment_worker_count_does_not_change_the_report() {
    // The full determinism contract of the ic-par conversion: the outer
    // experiment fan-out (--jobs) and the inner sweep scatter-gather
    // (IC_PAR_WORKERS) both vary, and the records stay byte-identical
    // modulo wall_ms. Restricted to the two experiments that sweep
    // policies through run_batch, to keep the differential fast.
    let only = "fig8,table11";
    let serial = stdout_with_env(
        &["--quick", "--json", "--only", only, "--jobs", "1"],
        &[("IC_PAR_WORKERS", "1")],
    );
    for (jobs, workers) in [("1", "4"), ("4", "2"), ("3", "5")] {
        let got = stdout_with_env(
            &["--quick", "--json", "--only", only, "--jobs", jobs],
            &[("IC_PAR_WORKERS", workers)],
        );
        assert_eq!(
            normalize_wall_ms(&serial),
            normalize_wall_ms(&got),
            "--jobs {jobs} IC_PAR_WORKERS={workers} must match the serial report"
        );
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ic-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Parses a Chrome Trace Event file and checks the structural contract
/// Perfetto / chrome://tracing rely on, returning the event count.
fn assert_valid_chrome_trace(text: &str) -> usize {
    let doc = json::parse(text).expect("trace file is valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit"),
        Some(&Json::Str("ms".to_string()))
    );
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty(), "trace must contain events");
    for event in events {
        let ph = match event.get("ph") {
            Some(Json::Str(ph)) => ph.as_str(),
            other => panic!("event without ph: {other:?}"),
        };
        assert!(matches!(event.get("name"), Some(Json::Str(_))));
        assert!(matches!(event.get("pid"), Some(Json::Num(_))));
        assert!(matches!(event.get("tid"), Some(Json::Num(_))));
        match ph {
            "M" => {}
            "X" => {
                assert!(matches!(event.get("ts"), Some(Json::Num(_))));
                assert!(matches!(event.get("dur"), Some(Json::Num(_))));
            }
            "i" => {
                assert!(matches!(event.get("ts"), Some(Json::Num(_))));
                assert_eq!(event.get("s"), Some(&Json::Str("t".to_string())));
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    events.len()
}

#[test]
fn chrome_trace_is_valid_and_byte_identical_across_worker_counts() {
    // The acceptance contract: `--only table11 --trace-out` emits valid
    // Chrome Trace Event JSON whose bytes do not depend on the worker
    // count — neither the in-experiment pool (IC_PAR_WORKERS, which
    // `ParPool::from_env` reads once per process, hence the spawned
    // binaries) nor the experiment fan-out (--jobs).
    let dir = temp_dir("trace");
    let mut traces = Vec::new();
    for (workers, jobs) in [("1", "1"), ("2", "2"), ("7", "1")] {
        let path = dir.join(format!("table11-w{workers}-j{jobs}.json"));
        let path = path.to_str().expect("utf-8 path");
        stdout_with_env(
            &[
                "--quick",
                "--json",
                "--only",
                "table11",
                "--jobs",
                jobs,
                "--trace-out",
                path,
                "--trace-format",
                "chrome",
            ],
            &[("IC_PAR_WORKERS", workers)],
        );
        traces.push(std::fs::read_to_string(path).expect("trace file written"));
    }
    let events = assert_valid_chrome_trace(&traces[0]);
    assert!(events > 100, "table11 trace should be dense, got {events}");
    assert_eq!(
        traces[0], traces[1],
        "IC_PAR_WORKERS=1/--jobs 1 vs IC_PAR_WORKERS=2/--jobs 2"
    );
    assert_eq!(
        traces[0], traces[2],
        "IC_PAR_WORKERS=1/--jobs 1 vs IC_PAR_WORKERS=7/--jobs 1"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_out_does_not_change_stdout() {
    let dir = temp_dir("trace-stdout");
    let path = dir.join("fig8.json");
    let path = path.to_str().expect("utf-8 path");
    let untraced = stdout_of(&["--quick", "--json", "--only", "fig8"]);
    let traced = stdout_of(&["--quick", "--json", "--only", "fig8", "--trace-out", path]);
    assert_eq!(
        normalize_wall_ms(&untraced),
        normalize_wall_ms(&traced),
        "tracing must not change the records"
    );
    let untraced_text = stdout_of(&["--quick", "--only", "fig8"]);
    let traced_text = stdout_of(&["--quick", "--only", "fig8", "--trace-out", path]);
    assert_eq!(
        untraced_text, traced_text,
        "tracing must not change the text report"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn jsonl_trace_has_schema_header_and_parseable_lines() {
    let dir = temp_dir("trace-jsonl");
    let path = dir.join("fig8.jsonl");
    let path_str = path.to_str().expect("utf-8 path");
    let out = run_all(&[
        "--quick",
        "--json",
        "--only",
        "fig8",
        "--trace-out",
        path_str,
        "--trace-format",
        "jsonl",
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let mut lines = text.lines();
    let header = json::parse(lines.next().expect("header line")).expect("header parses");
    assert_eq!(
        header.get("schema"),
        Some(&Json::Str("ic-obs/flight/v1".to_string()))
    );
    let mut spans = 0;
    for line in lines {
        let span = json::parse(line).expect("span line parses");
        assert!(matches!(span.get("target"), Some(Json::Str(_))), "{line}");
        spans += 1;
    }
    assert!(spans > 0, "jsonl trace should contain spans");
    // The stderr summary accompanies every traced run.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("flight recorder: self-time by span kind"),
        "stderr was: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_format_without_trace_out_is_rejected() {
    let out = run_all(&["--trace-format", "chrome"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--trace-format requires --trace-out"),
        "stderr was: {stderr}"
    );
    let out = run_all(&["--trace-out", "/tmp/x.json", "--trace-format", "protobuf"]);
    assert_eq!(out.status.code(), Some(2));
}

fn baseline_path() -> PathBuf {
    // BENCH_sim.json lives at the workspace root, two levels above this
    // crate's manifest.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sim.json")
}

fn run_check(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_check"))
        .args(args)
        .output()
        .expect("check binary spawns")
}

#[test]
fn check_bin_passes_against_the_checked_in_baseline() {
    let baseline = baseline_path();
    let baseline = baseline.to_str().expect("utf-8 path");
    let out = run_check(&["--baseline", baseline, "--current", baseline]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout was: {stdout}");
    assert!(stdout.contains("all keys within tolerance"), "{stdout}");
}

#[test]
fn check_bin_fails_on_an_injected_regression() {
    let baseline = std::fs::read_to_string(baseline_path()).expect("baseline readable");
    let key = "\"table11_wall_ms\":";
    let start = baseline.find(key).expect("baseline has table11_wall_ms") + key.len();
    let end = baseline[start..]
        .find([',', '}'])
        .map(|i| start + i)
        .expect("number terminator");
    let mut current = baseline.clone();
    current.replace_range(start..end, "9e9");

    let dir = temp_dir("check");
    let current_path = dir.join("current.json");
    std::fs::write(&current_path, current).expect("write current snapshot");
    let baseline_str = baseline_path();
    let out = run_check(&[
        "--baseline",
        baseline_str.to_str().expect("utf-8 path"),
        "--current",
        current_path.to_str().expect("utf-8 path"),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout was: {stdout}");
    assert!(stdout.contains("FAIL  table11_wall_ms"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_bin_reports_usage_errors_with_exit_2() {
    let out = run_check(&["--baseline", "/nonexistent/BENCH.json", "--current", "-x"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run_check(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn jobs_do_not_change_the_report() {
    let serial = stdout_of(&["--quick", "--json", "--jobs", "1"]);
    let parallel = stdout_of(&["--quick", "--json", "--jobs", "8"]);
    assert_eq!(
        normalize_wall_ms(&serial),
        normalize_wall_ms(&parallel),
        "--jobs 8 must emit byte-identical records (modulo wall_ms)"
    );
    assert_eq!(serial.lines().count(), registry().len());
}
